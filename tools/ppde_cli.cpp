// ppde — command-line front end for the library.
//
//   ppde info <n> [--equality]       sizes + threshold of the construction
//   ppde program <n> [--equality]    the Section-6 population program
//   ppde machine <n> [--equality]    the lowered population machine
//   ppde protocol <n> [--dot]        converted protocol stats (n = 1..2)
//   ppde simulate <n> <extra> [seed] run the full protocol with |F|+extra
//                                    agents until consensus
//   ppde ensemble <n> <extra> <trials> [threads] [seed] [--json]
//                                    run a fleet of independent trials on
//                                    the count+null-skip engine (S21) and
//                                    report aggregate statistics
//   ppde certify <n> <extra> [--trials=N] [--threads=T] [--seed=S]
//                  [--delta=D] [--alpha=A] [--beta=B] [--indifference=E]
//                  [--window=W] [--budget=I] [--json]
//                                    statistical model checking (S23): SPRT
//                                    certificate that the full protocol
//                                    stabilises to the correct output with
//                                    probability >= 1-delta at |F|+extra
//                                    agents; reproducible at any thread
//                                    count from (seed, alpha, beta, budget)
//   ppde verify <n> <m_regs> [--threads=T] [--max-configs=N] [--max-edges=E]
//                  [--prune]         exact fair-run verdict from pi(C) on
//                                    the parallel verification kernel (S22)
//   ppde decide <n> <m>              program-level exhaustive decision
//   ppde window <lo> <hi> <m>        decide lo <= m < hi with a Figure-1
//                                    style program (exhaustive)
//
// Exit code: 0 on success (for verify/decide: also when the verdict was
// computed, regardless of accept/reject), 1 on usage or resource errors.
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bignum/nat.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/ensemble.hpp"
#include "machine/interp.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/sample_programs.hpp"
#include "smc/certify.hpp"
#include "smc/json.hpp"

namespace {

using namespace ppde;

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

/// Value of `--flag=<u64>` if present, else `fallback`.
std::uint64_t flag_value(int argc, char** argv, const char* flag,
                         std::uint64_t fallback) {
  const std::size_t flag_len = std::strlen(flag);
  for (int i = 0; i < argc; ++i)
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=')
      return std::strtoull(argv[i] + flag_len + 1, nullptr, 10);
  return fallback;
}

/// Value of `--flag=<double>` if present, else `fallback`.
double flag_double(int argc, char** argv, const char* flag, double fallback) {
  const std::size_t flag_len = std::strlen(flag);
  for (int i = 0; i < argc; ++i)
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=')
      return std::strtod(argv[i] + flag_len + 1, nullptr);
  return fallback;
}

czerner::Construction build(int n, bool equality) {
  return equality ? czerner::build_equality_construction(n)
                  : czerner::build_construction(n);
}

int cmd_info(int n, bool equality) {
  const czerner::Construction c = build(n, equality);
  const auto size = c.program.size();
  const auto lowered = compile::lower_program(c.program);
  std::printf("construction n=%d%s\n", n, equality ? " (equality variant)" : "");
  std::printf("  predicate ......... x %s %s\n", equality ? "=" : ">=",
              czerner::Construction::threshold(n).to_decimal().c_str());
  std::printf("  program size ...... %llu (|Q|=%llu, L=%llu, S=%llu)\n",
              (unsigned long long)size.total(),
              (unsigned long long)size.num_registers,
              (unsigned long long)size.num_instructions,
              (unsigned long long)size.swap_size);
  std::printf("  machine size ...... %llu (%zu instructions, |F|=%zu)\n",
              (unsigned long long)lowered.machine.size(),
              lowered.machine.num_instructions(),
              lowered.machine.num_pointers());
  std::printf("  protocol states ... %llu\n",
              (unsigned long long)compile::conversion_state_count(
                  lowered.machine));
  return 0;
}

int cmd_simulate(int n, std::uint32_t extra, std::uint64_t seed) {
  const auto lowered = compile::lower_program(build(n, false).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + extra;
  std::printf("simulating n=%d with m = |F| + %u = %llu agents (seed %llu)\n",
              n, extra, (unsigned long long)m, (unsigned long long)seed);
  pp::Simulator sim(conv.protocol, conv.initial_config(m), seed);
  pp::SimulationOptions options;
  options.stable_window = 90'000'000;
  options.max_interactions = 2'000'000'000;
  const auto result = sim.run_until_stable(options);
  if (!result.stabilised) {
    std::printf("no consensus within %llu interactions\n",
                (unsigned long long)options.max_interactions);
    return 1;
  }
  // consensus_since is kNeverStabilised (~1.8e19) for non-stabilised runs;
  // never feed the sentinel into arithmetic.
  char since[32];
  if (result.consensus_since == pp::SimulationResult::kNeverStabilised)
    std::snprintf(since, sizeof since, "never");
  else
    std::snprintf(since, sizeof since, "%.1fM",
                  static_cast<double>(result.consensus_since) / 1e6);
  std::printf("%s after %.1fM interactions (consensus since %s)\n",
              result.output ? "ACCEPT" : "reject (one-sided: see README)",
              static_cast<double>(result.interactions) / 1e6, since);
  return 0;
}

int cmd_ensemble(int n, std::uint32_t extra, std::uint64_t trials,
                 unsigned threads, std::uint64_t seed, bool json) {
  const auto lowered = compile::lower_program(build(n, false).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + extra;
  engine::EnsembleOptions options;
  options.trials = trials;
  options.threads = threads;
  options.master_seed = seed;
  options.engine = engine::EngineKind::kCountNullSkip;
  options.sim.stable_window = 90'000'000;
  options.sim.max_interactions = 2'000'000'000;
  const engine::EnsembleStats stats =
      engine::run_ensemble(conv.protocol, conv.initial_config(m), options);
  if (json) {
    std::printf("%s\n",
                smc::to_jsonl(stats, m, seed, options.engine).c_str());
  } else {
    std::printf("ensemble n=%d with m = |F| + %u = %llu agents, %llu trials "
                "(master seed %llu)\n",
                n, extra, (unsigned long long)m, (unsigned long long)trials,
                (unsigned long long)seed);
    std::printf("%s", engine::describe(stats).c_str());
  }
  return stats.stabilised == stats.trials ? 0 : 1;
}

int cmd_certify(int argc, char** argv, int n, std::uint32_t extra,
                bool json) {
  const czerner::Construction c = build(n, false);
  const auto lowered = compile::lower_program(c.program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + extra;
  // Theorem 5's shift: the protocol decides phi'(m) <=> m >= |F| and
  // phi(m - |F|); with m = |F| + extra that is phi(extra) = extra >= k(n).
  const bool expected =
      bignum::Nat(extra) >= czerner::Construction::threshold(n);

  smc::CertifyOptions options;
  options.delta = flag_double(argc, argv, "--delta", 0.01);
  options.indifference = flag_double(argc, argv, "--indifference", 0.05);
  options.alpha = flag_double(argc, argv, "--alpha", 0.01);
  options.beta = flag_double(argc, argv, "--beta", 0.01);
  options.max_trials = flag_value(argc, argv, "--trials", 4096);
  options.batch = flag_value(argc, argv, "--batch", 8);
  options.threads =
      static_cast<unsigned>(flag_value(argc, argv, "--threads", 0));
  options.seed = flag_value(argc, argv, "--seed", 42);
  options.sim.stable_window =
      flag_value(argc, argv, "--window", 90'000'000);
  options.sim.max_interactions =
      flag_value(argc, argv, "--budget", 2'000'000'000);

  const smc::Certificate cert =
      smc::certify(conv.protocol, conv.initial_config(m), expected, options);
  if (json) {
    std::printf("%s\n", smc::to_jsonl(cert).c_str());
  } else {
    std::printf("certify n=%d with m = |F| + %u = %llu agents (expected "
                "%s: k(%d) = %s)\n",
                n, extra, (unsigned long long)m,
                expected ? "ACCEPT" : "REJECT", n,
                czerner::Construction::threshold(n).to_decimal().c_str());
    std::printf("%s", smc::describe(cert).c_str());
  }
  return cert.verdict == smc::Verdict::kCertified ? 0 : 1;
}

int cmd_verify(int argc, char** argv, int n, std::uint64_t m_regs,
               bool equality) {
  const czerner::Construction c = build(n, equality);
  const auto lowered = compile::lower_program(c.program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  std::vector<std::uint64_t> regs(c.num_registers(), 0);
  regs[c.R()] = m_regs;
  pp::VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = flag_value(argc, argv, "--max-configs", 8'000'000);
  options.max_edges = flag_value(argc, argv, "--max-edges", UINT64_MAX);
  // Default 0 = all hardware threads; results are thread-count-independent.
  options.threads = static_cast<unsigned>(
      flag_value(argc, argv, "--threads", 0));
  options.prune = has_flag(argc, argv, "--prune");
  const auto verdict =
      pp::Verifier(conv.protocol)
          .verify(conv.pi(machine::initial_state(lowered.machine, regs),
                          false),
                  options);
  std::printf("n=%d, m_regs=%llu: %s\n", n, (unsigned long long)m_regs,
              to_string(verdict.verdict).c_str());
  std::printf("  explored %llu configurations, %llu edges\n",
              (unsigned long long)verdict.explored_configs,
              (unsigned long long)verdict.explored_edges);
  return verdict.stabilises() ? 0 : 1;
}

int cmd_decide(int n, std::uint64_t m, bool equality) {
  const czerner::Construction c = build(n, equality);
  const auto flat = progmodel::FlatProgram::compile(c.program);
  std::vector<std::uint64_t> regs(c.num_registers(), 0);
  regs[c.R()] = m;
  progmodel::ExploreLimits limits;
  limits.max_nodes = 8'000'000;
  const auto result = progmodel::decide(flat, regs, limits);
  const char* text =
      result.verdict == progmodel::DecisionResult::Verdict::kStabilisesTrue
          ? "ACCEPT"
          : result.verdict ==
                    progmodel::DecisionResult::Verdict::kStabilisesFalse
                ? "reject"
                : result.verdict ==
                          progmodel::DecisionResult::Verdict::kLimit
                      ? "resource limit"
                      : "does not stabilise";
  std::printf("n=%d, m=%llu: %s (%llu configurations)\n", n,
              (unsigned long long)m, text,
              (unsigned long long)result.explored_nodes);
  return result.stabilises() ? 0 : 1;
}

int cmd_window(std::uint32_t lo, std::uint32_t hi, std::uint64_t m) {
  const auto program = progmodel::make_window_program(lo, hi);
  const auto flat = progmodel::FlatProgram::compile(program);
  progmodel::ExploreLimits limits;
  limits.max_nodes = 8'000'000;
  const auto result = progmodel::decide(flat, {0, 0, m}, limits);
  std::printf("%u <= %llu < %u: %s\n", lo, (unsigned long long)m, hi,
              result.stabilises() ? (result.output() ? "ACCEPT" : "reject")
                                  : "undecided (limit)");
  return result.stabilises() ? 0 : 1;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: ppde <command> ...\n"
      "  info <n> [--equality]\n"
      "  program <n> [--equality]\n"
      "  machine <n> [--equality]\n"
      "  protocol <n> [--dot]\n"
      "  simulate <n> <extra-agents> [seed]\n"
      "  ensemble <n> <extra-agents> <trials> [threads] [seed] [--json]\n"
      "  certify <n> <extra-agents> [--trials=N] [--batch=K] [--threads=T]\n"
      "          [--seed=S] [--delta=D] [--alpha=A] [--beta=B]\n"
      "          [--indifference=E] [--window=W] [--budget=I] [--json]\n"
      "          SPRT certificate that the protocol stabilises to the\n"
      "          correct output with probability >= 1-D at |F|+extra\n"
      "          agents; identical certificate digest at every thread\n"
      "          count for fixed (seed, alpha, beta, trials budget).\n"
      "  verify <n> <m_regs> [--equality] [--threads=T] [--max-configs=N]\n"
      "         [--max-edges=E] [--prune]\n"
      "         T=0 (default) uses all hardware threads; the verdict is\n"
      "         identical at every thread count. --prune drops states no\n"
      "         run can occupy before exploring.\n"
      "  decide <n> <m> [--equality]\n"
      "  window <lo> <hi> <m>\n");
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  // Positional arguments with the --flags filtered out, so flags may
  // appear anywhere on the line (e.g. `ppde ensemble 1 2 16 --json`).
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--", 2) != 0) pos.push_back(argv[i]);
  if (pos.size() < 2) return usage();
  const std::string command = pos[0];
  const bool equality = has_flag(argc, argv, "--equality");
  const bool json = has_flag(argc, argv, "--json");
  const int n = std::atoi(pos[1]);
  if (n < 1 && command != "window") return usage();

  try {
    if (command == "info") return cmd_info(n, equality);
    if (command == "program") {
      std::printf("%s", build(n, equality).program.to_string().c_str());
      return 0;
    }
    if (command == "machine") {
      std::printf("%s", compile::lower_program(build(n, equality).program)
                            .machine.to_string()
                            .c_str());
      return 0;
    }
    if (command == "protocol") {
      const auto lowered = compile::lower_program(build(n, equality).program);
      if (n > 2) {
        std::printf("protocol states: %llu (full transition relation only "
                    "materialised for n <= 2)\n",
                    (unsigned long long)compile::conversion_state_count(
                        lowered.machine));
        return 0;
      }
      const auto conv = compile::machine_to_protocol(lowered.machine);
      if (has_flag(argc, argv, "--dot")) {
        std::printf("%s", conv.protocol.to_dot().c_str());
      } else {
        std::printf("states: %zu, transitions: %zu, |F| = %u\n",
                    conv.protocol.num_states(),
                    conv.protocol.num_transitions(), conv.num_pointers);
      }
      return 0;
    }
    if (command == "simulate" && pos.size() >= 3)
      return cmd_simulate(n, static_cast<std::uint32_t>(std::atoi(pos[2])),
                          pos.size() >= 4 ? std::strtoull(pos[3], nullptr, 10)
                                          : 42);
    if (command == "ensemble" && pos.size() >= 4)
      return cmd_ensemble(
          n, static_cast<std::uint32_t>(std::atoi(pos[2])),
          std::strtoull(pos[3], nullptr, 10),
          pos.size() >= 5 ? static_cast<unsigned>(std::atoi(pos[4])) : 0,
          pos.size() >= 6 ? std::strtoull(pos[5], nullptr, 10) : 42, json);
    if (command == "certify" && pos.size() >= 3)
      return cmd_certify(argc, argv, n,
                         static_cast<std::uint32_t>(std::atoi(pos[2])), json);
    if (command == "verify" && pos.size() >= 3)
      return cmd_verify(argc, argv, n, std::strtoull(pos[2], nullptr, 10),
                        equality);
    if (command == "decide" && pos.size() >= 3)
      return cmd_decide(n, std::strtoull(pos[2], nullptr, 10), equality);
    if (command == "window" && pos.size() >= 4)
      return cmd_window(static_cast<std::uint32_t>(std::atoi(pos[1])),
                        static_cast<std::uint32_t>(std::atoi(pos[2])),
                        std::strtoull(pos[3], nullptr, 10));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
