// ppde — command-line front end for the library.
//
// Run `ppde help` for the verb list and `ppde help <verb>` for the full
// flag reference of one verb. Every verb additionally accepts the global
// observability flags (S24):
//
//   --trace=FILE       record a Chrome trace-event file (open in Perfetto
//                      or about:tracing); `obs_trace_v` = 1
//   --progress[=SECS]  print a liveness heartbeat to stderr every SECS
//                      seconds (default 5; =0 disables). Auto-enabled at
//                      10s when stderr is a TTY, for the long-running
//                      verbs (ensemble, certify, verify).
//
// Exit code: 0 on success (for verify/decide: also when the verdict was
// computed, regardless of accept/reject), 1 on usage or resource errors.
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#if defined(_WIN32)
#include <io.h>
#define PPDE_ISATTY(fd) _isatty(fd)
#else
#include <unistd.h>
#define PPDE_ISATTY(fd) isatty(fd)
#endif

#include "bignum/nat.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/ensemble.hpp"
#include "isa/compiled.hpp"
#include "machine/interp.hpp"
#include "obs/progress.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/sample_programs.hpp"
#include "sched/scenario.hpp"
#include "serve/client.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"
#include "serve/signals.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"
#include "smc/certify.hpp"
#include "smc/json.hpp"

namespace {

using namespace ppde;

bool has_flag(int argc, char** argv, const char* flag) {
  for (int i = 0; i < argc; ++i)
    if (std::strcmp(argv[i], flag) == 0) return true;
  return false;
}

/// Value of `--flag=<text>` if present, else nullptr.
const char* flag_cstr(int argc, char** argv, const char* flag) {
  const std::size_t flag_len = std::strlen(flag);
  for (int i = 0; i < argc; ++i)
    if (std::strncmp(argv[i], flag, flag_len) == 0 &&
        argv[i][flag_len] == '=')
      return argv[i] + flag_len + 1;
  return nullptr;
}

/// Value of `--flag=<u64>` if present, else `fallback`.
std::uint64_t flag_value(int argc, char** argv, const char* flag,
                         std::uint64_t fallback) {
  const char* text = flag_cstr(argc, argv, flag);
  return text != nullptr ? std::strtoull(text, nullptr, 10) : fallback;
}

/// Value of `--flag=<double>` if present, else `fallback`.
double flag_double(int argc, char** argv, const char* flag, double fallback) {
  const char* text = flag_cstr(argc, argv, flag);
  return text != nullptr ? std::strtod(text, nullptr) : fallback;
}

/// Execution core selected by `--dispatch={interp,bytecode}` (S26);
/// default bytecode. Both cores produce bit-identical trajectories,
/// digests and verdicts, so this is a performance/debugging switch, not
/// a semantic one. Throws std::invalid_argument on an unknown value.
isa::Dispatch flag_dispatch(int argc, char** argv) {
  const char* text = flag_cstr(argc, argv, "--dispatch");
  return text != nullptr ? isa::parse_dispatch(text)
                         : isa::Dispatch::kBytecode;
}

/// Stress scenario (S27) selected by `--scheduler=...` and `--fault=...`;
/// both default to the classic uniform, fault-free model. Throws
/// std::invalid_argument (with the offending descriptor) on a malformed
/// value.
sched::Scenario flag_scenario(int argc, char** argv) {
  sched::Scenario scenario;
  if (const char* text = flag_cstr(argc, argv, "--scheduler"))
    scenario.scheduler = sched::parse_scheduler(text);
  if (const char* text = flag_cstr(argc, argv, "--fault"))
    scenario.fault = sched::parse_fault(text);
  return scenario;
}

/// Lockstep batch width (S28, engine/batch_sim.hpp) selected by
/// `--batch={auto,off,N}`: auto (default) lets the engine pick the
/// measured-best width for this machine (currently scalar — see
/// EXPERIMENTS.md S28), off forces the scalar path, N requests exactly
/// N lockstep lanes. Trial records and certificate digests are
/// bit-identical at every width — this flag only moves wall time. Throws
/// std::invalid_argument on a malformed value.
std::uint32_t flag_batch(int argc, char** argv) {
  const char* text = flag_cstr(argc, argv, "--batch");
  if (text == nullptr || std::strcmp(text, "auto") == 0) return 0;
  if (std::strcmp(text, "off") == 0) return 1;
  char* end = nullptr;
  const unsigned long value = std::strtoul(text, &end, 10);
  if (end == text || *end != '\0' || value == 0)
    throw std::invalid_argument(std::string("bad --batch value '") + text +
                                "' (want auto, off, or a lane count)");
  return static_cast<std::uint32_t>(value);
}

czerner::Construction build(int n, bool equality) {
  return equality ? czerner::build_equality_construction(n)
                  : czerner::build_construction(n);
}

// ---------------------------------------------------------------------------
// Observability plumbing (S24): tracer lifetime + the progress heartbeat.

/// Tracer options from the global flags: --trace-max-mb=N caps the trace
/// file (S29; events past the cap are counted in `obs.trace_truncated`
/// instead of written, and the file stays one valid JSON array).
obs::TracerOptions flag_tracer_options(int argc, char** argv) {
  obs::TracerOptions options;
  options.max_file_bytes =
      flag_value(argc, argv, "--trace-max-mb", 0) * 1024 * 1024;
  return options;
}

/// Starts the tracer if --trace=FILE was given; stops it on scope exit.
/// Declared before the progress monitor in main() so the monitor (whose
/// final tick may emit trace counters) is destroyed first, and so every
/// instrumented worker pool has drained before stop() runs.
struct TracerGuard {
  bool active = false;

  explicit TracerGuard(const char* path,
                       const obs::TracerOptions& options = {}) {
    if (path == nullptr || *path == '\0') return;
    active = obs::Tracer::start(path, options);
    if (!active)
      std::fprintf(stderr, "ppde: warning: cannot open trace file '%s'\n",
                   path);
  }
  ~TracerGuard() {
    if (active) obs::Tracer::stop();
  }
};

/// Heartbeat period in seconds for this invocation: --progress=S wins
/// (S=0 disables), bare --progress means 5s, and a TTY on stderr turns
/// the heartbeat on automatically at 10s so interactive long runs are
/// never silent.
double progress_period(int argc, char** argv) {
  const char* text = flag_cstr(argc, argv, "--progress");
  if (text != nullptr) return std::strtod(text, nullptr);
  if (has_flag(argc, argv, "--progress")) return 5.0;
  return PPDE_ISATTY(2) ? 10.0 : 0.0;
}

/// Rate estimator for heartbeat lines: change in a monotone quantity per
/// second of wall time between consecutive ticks.
class RateMeter {
 public:
  double rate(double value) {
    const auto now = std::chrono::steady_clock::now();
    double rate = 0.0;
    if (primed_) {
      const double dt = std::chrono::duration<double>(now - last_at_).count();
      if (dt > 0.0) rate = (value - last_value_) / dt;
    }
    last_value_ = value;
    last_at_ = now;
    primed_ = true;
    return rate;
  }

 private:
  double last_value_ = 0.0;
  std::chrono::steady_clock::time_point last_at_;
  bool primed_ = false;
};

std::string format_si(double value) {
  char buffer[32];
  if (value >= 1e9)
    std::snprintf(buffer, sizeof buffer, "%.2fG", value / 1e9);
  else if (value >= 1e6)
    std::snprintf(buffer, sizeof buffer, "%.2fM", value / 1e6);
  else if (value >= 1e4)
    std::snprintf(buffer, sizeof buffer, "%.1fk", value / 1e3);
  else
    std::snprintf(buffer, sizeof buffer, "%.0f", value);
  return buffer;
}

std::string format_bytes(double bytes) {
  char buffer[32];
  if (bytes >= 1024.0 * 1024.0 * 1024.0)
    std::snprintf(buffer, sizeof buffer, "%.2fGiB",
                  bytes / (1024.0 * 1024.0 * 1024.0));
  else if (bytes >= 1024.0 * 1024.0)
    std::snprintf(buffer, sizeof buffer, "%.1fMiB", bytes / (1024.0 * 1024.0));
  else
    std::snprintf(buffer, sizeof buffer, "%.0fKiB", bytes / 1024.0);
  return buffer;
}

std::string format_eta(double seconds) {
  char buffer[32];
  if (!std::isfinite(seconds) || seconds < 0.0)
    std::snprintf(buffer, sizeof buffer, "?");
  else if (seconds < 90.0)
    std::snprintf(buffer, sizeof buffer, "%.0fs", seconds);
  else if (seconds < 5400.0)
    std::snprintf(buffer, sizeof buffer, "%.1fm", seconds / 60.0);
  else
    std::snprintf(buffer, sizeof buffer, "%.1fh", seconds / 3600.0);
  return buffer;
}

/// Heartbeat line for `ensemble`: trials done / total, trial rate, ETA,
/// cumulative meetings. Reads only registry metrics published by
/// engine::run_trial_fleet, so it observes without perturbing.
std::function<std::string()> ensemble_heartbeat() {
  return [meter = RateMeter()]() mutable -> std::string {
    obs::Registry& registry = obs::Registry::global();
    const double done =
        static_cast<double>(registry.counter("engine.trials_done").value());
    const double total = registry.gauge("engine.trials_total").value();
    const double rate = meter.rate(done);
    if (done <= 0.0) return "[ensemble] starting...";
    const double eta =
        rate > 0.0 && total > done ? (total - done) / rate : NAN;
    const double meetings =
        static_cast<double>(registry.counter("engine.meetings").value());
    char line[160];
    std::snprintf(line, sizeof line,
                  "[ensemble] %.0f/%.0f trials  %.1f trials/s  eta %s  "
                  "%s meetings",
                  done, total, rate, format_eta(eta).c_str(),
                  format_si(meetings).c_str());
    return line;
  };
}

/// Heartbeat line for `certify`: SPRT position (trials consumed, llr
/// between the accept/reject thresholds), successes, trial rate.
std::function<std::string()> certify_heartbeat() {
  return [meter = RateMeter()]() mutable -> std::string {
    obs::Registry& registry = obs::Registry::global();
    const double trials = registry.gauge("smc.trials").value();
    const double rate = meter.rate(trials);
    if (trials <= 0.0) return "[certify] starting...";
    char line[200];
    std::snprintf(
        line, sizeof line,
        "[certify] %.0f/%.0f trials  %.0f ok  llr %+.3f in "
        "(reject %.2f .. %.2f accept)  %.1f trials/s",
        trials, registry.gauge("smc.max_trials").value(),
        registry.gauge("smc.successes").value(),
        registry.gauge("smc.llr").value(),
        registry.gauge("smc.llr_lower").value(),
        registry.gauge("smc.llr_upper").value(), rate);
    return line;
  };
}

/// Heartbeat line for `verify`: explored configurations (+rate), edges,
/// BFS frontier size, interner footprint.
std::function<std::string()> verify_heartbeat() {
  return [meter = RateMeter()]() mutable -> std::string {
    obs::Registry& registry = obs::Registry::global();
    const double nodes = registry.gauge("verify.nodes").value();
    const double rate = meter.rate(nodes);
    if (nodes <= 0.0) return "[verify] starting...";
    char line[200];
    std::snprintf(line, sizeof line,
                  "[verify] %s configs (+%s/s)  %s edges  frontier %s  "
                  "interner %s",
                  format_si(nodes).c_str(), format_si(rate).c_str(),
                  format_si(registry.gauge("verify.edges").value()).c_str(),
                  format_si(registry.gauge("verify.frontier").value()).c_str(),
                  format_bytes(registry.gauge("verify.interner_bytes").value())
                      .c_str());
    return line;
  };
}

// ---------------------------------------------------------------------------
// Verbs.

int cmd_info(int n, bool equality) {
  const czerner::Construction c = build(n, equality);
  const auto size = c.program.size();
  const auto lowered = compile::lower_program(c.program);
  std::printf("construction n=%d%s\n", n, equality ? " (equality variant)" : "");
  std::printf("  predicate ......... x %s %s\n", equality ? "=" : ">=",
              czerner::Construction::threshold(n).to_decimal().c_str());
  std::printf("  program size ...... %llu (|Q|=%llu, L=%llu, S=%llu)\n",
              (unsigned long long)size.total(),
              (unsigned long long)size.num_registers,
              (unsigned long long)size.num_instructions,
              (unsigned long long)size.swap_size);
  std::printf("  machine size ...... %llu (%zu instructions, |F|=%zu)\n",
              (unsigned long long)lowered.machine.size(),
              lowered.machine.num_instructions(),
              lowered.machine.num_pointers());
  std::printf("  protocol states ... %llu\n",
              (unsigned long long)compile::conversion_state_count(
                  lowered.machine));
  return 0;
}

int cmd_simulate(int argc, char** argv, int n, std::uint32_t extra,
                 std::uint64_t seed, isa::Dispatch dispatch,
                 const sched::Scenario& scenario) {
  const auto lowered = compile::lower_program(build(n, false).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + extra;
  std::printf("simulating n=%d with m = |F| + %u = %llu agents (seed %llu)\n",
              n, extra, (unsigned long long)m, (unsigned long long)seed);
  if (!scenario.is_default())
    std::printf("scenario: %s\n", scenario.to_string().c_str());
  pp::Simulator sim(conv.protocol, conv.initial_config(m), scenario, seed,
                    dispatch);
  pp::SimulationOptions options;
  options.stable_window = flag_value(argc, argv, "--window", 90'000'000);
  options.max_interactions =
      flag_value(argc, argv, "--budget", 2'000'000'000);
  const auto result = sim.run_until_stable(options);
  if (const sched::FaultStats* faults = sim.fault_stats())
    std::printf("faults: %llu events (%llu corruptions, %llu arrivals, "
                "%llu departures)\n",
                (unsigned long long)faults->events,
                (unsigned long long)faults->corruptions,
                (unsigned long long)faults->arrivals,
                (unsigned long long)faults->departures);
  if (!result.stabilised) {
    std::printf("no consensus within %llu interactions\n",
                (unsigned long long)options.max_interactions);
    return 1;
  }
  // consensus_since is kNeverStabilised (~1.8e19) for non-stabilised runs;
  // never feed the sentinel into arithmetic.
  char since[32];
  if (result.consensus_since == pp::SimulationResult::kNeverStabilised)
    std::snprintf(since, sizeof since, "never");
  else
    std::snprintf(since, sizeof since, "%.1fM",
                  static_cast<double>(result.consensus_since) / 1e6);
  std::printf("%s after %.1fM interactions (consensus since %s)\n",
              result.output ? "ACCEPT" : "reject (one-sided: see README)",
              static_cast<double>(result.interactions) / 1e6, since);
  return 0;
}

int cmd_ensemble(int n, std::uint32_t extra, std::uint64_t trials,
                 unsigned threads, std::uint64_t seed, bool json,
                 isa::Dispatch dispatch, const sched::Scenario& scenario,
                 std::uint32_t batch) {
  const auto lowered = compile::lower_program(build(n, false).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + extra;
  engine::EnsembleOptions options;
  options.trials = trials;
  options.threads = threads;
  options.master_seed = seed;
  options.engine = engine::EngineKind::kCountNullSkip;
  options.dispatch = dispatch;
  options.scenario = scenario;
  options.batch = batch;
  options.sim.stable_window = 90'000'000;
  options.sim.max_interactions = 2'000'000'000;
  const engine::EnsembleStats stats =
      engine::run_ensemble(conv.protocol, conv.initial_config(m), options);
  if (json) {
    std::printf("%s\n",
                smc::to_jsonl(stats, m, seed, options.engine).c_str());
  } else {
    std::printf("ensemble n=%d with m = |F| + %u = %llu agents, %llu trials "
                "(master seed %llu)\n",
                n, extra, (unsigned long long)m, (unsigned long long)trials,
                (unsigned long long)seed);
    std::printf("%s", engine::describe(stats).c_str());
  }
  return stats.stabilised == stats.trials ? 0 : 1;
}

int cmd_certify(int argc, char** argv, int n, std::uint32_t extra,
                bool json) {
  const czerner::Construction c = build(n, false);
  const auto lowered = compile::lower_program(c.program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint64_t m = conv.num_pointers + extra;
  // Theorem 5's shift: the protocol decides phi'(m) <=> m >= |F| and
  // phi(m - |F|); with m = |F| + extra that is phi(extra) = extra >= k(n).
  const bool expected =
      bignum::Nat(extra) >= czerner::Construction::threshold(n);

  smc::CertifyOptions options;
  options.delta = flag_double(argc, argv, "--delta", 0.01);
  options.indifference = flag_double(argc, argv, "--indifference", 0.05);
  options.alpha = flag_double(argc, argv, "--alpha", 0.01);
  options.beta = flag_double(argc, argv, "--beta", 0.01);
  options.max_trials = flag_value(argc, argv, "--trials", 4096);
  options.batch = flag_value(argc, argv, "--round", 8);
  options.batch_width = flag_batch(argc, argv);
  options.threads =
      static_cast<unsigned>(flag_value(argc, argv, "--threads", 0));
  options.seed = flag_value(argc, argv, "--seed", 42);
  options.sim.stable_window =
      flag_value(argc, argv, "--window", 90'000'000);
  options.sim.max_interactions =
      flag_value(argc, argv, "--budget", 2'000'000'000);
  options.dispatch = flag_dispatch(argc, argv);
  options.scenario = flag_scenario(argc, argv);

  const smc::Certificate cert =
      smc::certify(conv.protocol, conv.initial_config(m), expected, options);
  if (json) {
    std::printf("%s\n", smc::to_jsonl(cert).c_str());
  } else {
    std::printf("certify n=%d with m = |F| + %u = %llu agents (expected "
                "%s: k(%d) = %s)\n",
                n, extra, (unsigned long long)m,
                expected ? "ACCEPT" : "REJECT", n,
                czerner::Construction::threshold(n).to_decimal().c_str());
    std::printf("%s", smc::describe(cert).c_str());
  }
  return cert.verdict == smc::Verdict::kCertified ? 0 : 1;
}

int cmd_verify(int argc, char** argv, int n, std::uint64_t m_regs,
               bool equality) {
  const czerner::Construction c = build(n, equality);
  const auto lowered = compile::lower_program(c.program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  std::vector<std::uint64_t> regs(c.num_registers(), 0);
  regs[c.R()] = m_regs;
  pp::VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = flag_value(argc, argv, "--max-configs", 8'000'000);
  options.max_edges = flag_value(argc, argv, "--max-edges", UINT64_MAX);
  options.max_bytes = flag_value(argc, argv, "--max-bytes", UINT64_MAX);
  // Default 0 = all hardware threads; results are thread-count-independent.
  options.threads = static_cast<unsigned>(
      flag_value(argc, argv, "--threads", 0));
  options.prune = has_flag(argc, argv, "--prune");
  options.dispatch = flag_dispatch(argc, argv);
  const auto verdict =
      pp::Verifier(conv.protocol)
          .verify(conv.pi(machine::initial_state(lowered.machine, regs),
                          false),
                  options);
  std::printf("n=%d, m_regs=%llu: %s\n", n, (unsigned long long)m_regs,
              to_string(verdict.verdict).c_str());
  std::printf("  explored %llu configurations, %llu edges\n",
              (unsigned long long)verdict.explored_configs,
              (unsigned long long)verdict.explored_edges);
  return verdict.stabilises() ? 0 : 1;
}

int cmd_decide(int n, std::uint64_t m, bool equality) {
  const czerner::Construction c = build(n, equality);
  const auto flat = progmodel::FlatProgram::compile(c.program);
  std::vector<std::uint64_t> regs(c.num_registers(), 0);
  regs[c.R()] = m;
  progmodel::ExploreLimits limits;
  limits.max_nodes = 8'000'000;
  const auto result = progmodel::decide(flat, regs, limits);
  const char* text =
      result.verdict == progmodel::DecisionResult::Verdict::kStabilisesTrue
          ? "ACCEPT"
          : result.verdict ==
                    progmodel::DecisionResult::Verdict::kStabilisesFalse
                ? "reject"
                : result.verdict ==
                          progmodel::DecisionResult::Verdict::kLimit
                      ? "resource limit"
                      : "does not stabilise";
  std::printf("n=%d, m=%llu: %s (%llu configurations)\n", n,
              (unsigned long long)m, text,
              (unsigned long long)result.explored_nodes);
  return result.stabilises() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Serve verbs (S25): the daemon, a standalone remote worker, the client.

int cmd_serve(int argc, char** argv) {
  serve::ServerOptions options;
  if (const char* host = flag_cstr(argc, argv, "--host")) options.host = host;
  options.port =
      static_cast<std::uint16_t>(flag_value(argc, argv, "--port", 7421));
  options.workers =
      static_cast<unsigned>(flag_value(argc, argv, "--workers", 2));
  options.max_active =
      static_cast<unsigned>(flag_value(argc, argv, "--max-active", 2));
  options.queue_limit =
      static_cast<unsigned>(flag_value(argc, argv, "--queue-limit", 16));
  options.max_trials_cap =
      flag_value(argc, argv, "--max-trials-cap", 1u << 20);
  options.max_query_seconds =
      flag_double(argc, argv, "--max-seconds", 600.0);
  options.shard = flag_value(argc, argv, "--shard", 8);
  options.kill_worker_after =
      flag_value(argc, argv, "--kill-worker-after", 0);
  // --prom-port=0 means "ephemeral", distinct from the flag being absent
  // (disabled) — so probe presence, not value.
  if (flag_cstr(argc, argv, "--prom-port") != nullptr)
    options.prom_port = static_cast<std::int32_t>(
        flag_value(argc, argv, "--prom-port", 0));
  options.flight_capacity = static_cast<std::size_t>(
      flag_value(argc, argv, "--flight-capacity", 128));
  if (const char* remote = flag_cstr(argc, argv, "--remote")) {
    std::string list = remote;
    std::size_t start = 0;
    while (start <= list.size()) {
      const std::size_t comma = list.find(',', start);
      const std::string endpoint =
          list.substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
      if (!endpoint.empty()) options.remote_workers.push_back(endpoint);
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
  }
  // The Server constructor forks the worker pool and binds the socket
  // before any thread exists; the SignalWatch then claims SIGINT/SIGTERM
  // before run() spawns the runner threads.
  serve::Server server(options);
  // The tracer starts strictly AFTER the constructor's fork()s: a child
  // must not inherit an active tracer (shared FILE*, phantom collector).
  // With it active, run() announces every worker as a track group and
  // stitches their shipped spans, so --trace=FILE yields ONE fleet-wide
  // Perfetto timeline (S29).
  TracerGuard tracer(flag_cstr(argc, argv, "--trace"),
                     flag_tracer_options(argc, argv));
  std::fprintf(stderr,
               "ppde serve: listening on %s:%u (%u local workers, "
               "%zu remote)\n",
               options.host.c_str(), static_cast<unsigned>(server.port()),
               options.workers, options.remote_workers.size());
  if (server.prom_port() != 0)
    std::fprintf(stderr,
                 "ppde serve: prometheus metrics on "
                 "http://127.0.0.1:%u/metrics\n",
                 static_cast<unsigned>(server.prom_port()));
  serve::SignalWatch watch([&server](int) { server.request_stop(); });
  server.run();
  std::fprintf(stderr, "ppde serve: stopped\n");
  return 0;
}

int cmd_client(int argc, char** argv, const std::vector<char*>& pos) {
  if (pos.size() < 3) return 1;
  const std::string hostport = pos[1];
  serve::QueryParams query;
  query.req = pos[2];
  if (query.req == "certify" || query.req == "ensemble") {
    if (pos.size() < 5) {
      std::fprintf(stderr,
                   "usage: ppde client <host:port> %s <n> <extra> [flags]\n",
                   query.req.c_str());
      return 1;
    }
    query.n = std::atoi(pos[3]);
    query.extra = static_cast<std::uint32_t>(std::atoi(pos[4]));
    if (query.n < 1) return 1;
    query.trials = flag_value(argc, argv, "--trials", query.trials);
    query.seed = flag_value(argc, argv, "--seed", query.seed);
    query.delta = flag_double(argc, argv, "--delta", query.delta);
    query.indifference =
        flag_double(argc, argv, "--indifference", query.indifference);
    query.alpha = flag_double(argc, argv, "--alpha", query.alpha);
    query.beta = flag_double(argc, argv, "--beta", query.beta);
    query.window = flag_value(argc, argv, "--window", query.window);
    query.budget = flag_value(argc, argv, "--budget", query.budget);
    query.shard = flag_value(argc, argv, "--shard", 0);
    query.batch = flag_batch(argc, argv);
    // Validate locally so a typo fails here, not server-side.
    query.dispatch = isa::to_string(flag_dispatch(argc, argv));
    // Same local validation for the scenario; the wire carries the
    // canonical rendering and omits the field for the default scenario
    // (pre-S27 servers keep working).
    const sched::Scenario scenario = flag_scenario(argc, argv);
    if (!scenario.is_default()) query.scenario = scenario.to_string();
  } else if (query.req == "stats") {
    // S29: --recent=N dumps the daemon's flight recorder as JSONL;
    // --format=prometheus fetches the text exposition over the serve
    // protocol (no second port needed).
    query.recent = flag_value(argc, argv, "--recent", 0);
    if (const char* format = flag_cstr(argc, argv, "--format"))
      query.format = format;
  } else if (query.req != "shutdown") {
    std::fprintf(stderr, "ppde client: unknown request '%s'\n",
                 query.req.c_str());
    return 1;
  }
  std::string response;
  std::string error;
  if (!serve::rpc(hostport, serve::encode_query(query), &response, &error)) {
    std::fprintf(stderr, "ppde client: %s\n", error.c_str());
    return 1;
  }
  try {
    const serve::Json reply = serve::Json::parse(response);
    const bool ok = reply.boolean("ok", false);
    if (ok && query.req == "stats" && query.format == "prometheus") {
      // Unwrap to the raw scrape text, ready to diff against a /metrics
      // fetch or pipe into promtool.
      std::printf("%s", reply.str("prometheus", "").c_str());
      return 0;
    }
    if (ok && query.req == "stats" && query.recent != 0) {
      if (const serve::Json* recent = reply.find("recent")) {
        // Flight records as JSONL, newest first — one object per line.
        for (const serve::Json& record : recent->items())
          std::printf("%s\n", record.dump().c_str());
        return 0;
      }
    }
    // Otherwise the response is printed verbatim: for certify it embeds
    // the raw certificate JSONL record, so `"digest":"..."` greps exactly
    // like the output of in-process `ppde certify --json`.
    std::printf("%s\n", response.c_str());
    return ok ? 0 : 1;
  } catch (const std::exception&) {
    std::printf("%s\n", response.c_str());
    return 1;
  }
}

int cmd_window(std::uint32_t lo, std::uint32_t hi, std::uint64_t m) {
  const auto program = progmodel::make_window_program(lo, hi);
  const auto flat = progmodel::FlatProgram::compile(program);
  progmodel::ExploreLimits limits;
  limits.max_nodes = 8'000'000;
  const auto result = progmodel::decide(flat, {0, 0, m}, limits);
  std::printf("%u <= %llu < %u: %s\n", lo, (unsigned long long)m, hi,
              result.stabilises() ? (result.output() ? "ACCEPT" : "reject")
                                  : "undecided (limit)");
  return result.stabilises() ? 0 : 1;
}

// ---------------------------------------------------------------------------
// Usage & per-verb help. One table drives both, so the synopsis a user
// sees in `ppde` and the detail in `ppde help <verb>` cannot drift apart;
// every flag a verb parses above is enumerated here.

struct VerbHelp {
  const char* name;
  const char* synopsis;  ///< one line, without the leading verb name
  const char* detail;    ///< multi-line flag reference for `help <verb>`
};

constexpr VerbHelp kVerbs[] = {
    {"info", "<n> [--equality]",
     "  Sizes and decided threshold of the Czerner construction.\n"
     "    <n>          construction index; threshold k(n) is a tower of\n"
     "                 2^2^n sizes (see README)\n"
     "    --equality   build the x = k(n) variant instead of x >= k(n)\n"},
    {"program", "<n> [--equality]",
     "  Print the Section-6 population program.\n"
     "    --equality   the x = k(n) variant\n"},
    {"machine", "<n> [--equality]",
     "  Print the lowered population machine.\n"
     "    --equality   the x = k(n) variant\n"},
    {"protocol", "<n> [--dot]",
     "  Converted protocol statistics (full transition relation is only\n"
     "  materialised for n <= 2).\n"
     "    --dot        emit the protocol as a Graphviz digraph\n"},
    {"simulate", "<n> <extra-agents> [seed] [flags]",
     "  Run the full protocol with m = |F| + extra agents until consensus\n"
     "  (per-agent reference simulator).\n"
     "    [seed]        RNG seed (default 42)\n"
     "    --window=W    consensus stability window (default 9e7)\n"
     "    --budget=I    interaction budget (default 2e9)\n"
     "    --dispatch=D  execution core (S26): bytecode (default) or interp;\n"
     "                  trajectories are bit-identical either way\n"
     "    --scheduler=S meeting scheduler (S27): uniform (default), clique,\n"
     "                  ring, grid[:W], regular[:D], biased[:G], aging\n"
     "    --fault=F     fault plan (S27): none (default), corrupt:RATE[,K],\n"
     "                  churn:RATE[,CAP], burst:AT,K[;AT,K...]\n"},
    {"ensemble", "<n> <extra-agents> <trials> [threads] [seed] [flags]",
     "  Run a fleet of independent trials on the count+null-skip engine\n"
     "  (S21) and report aggregate statistics.\n"
     "    [threads]    worker threads; 0 = all hardware threads (default)\n"
     "    [seed]       master seed; trial i uses derive_trial_seed(seed, i)\n"
     "                 so results are identical at every thread count\n"
     "    --dispatch=D execution core (S26): bytecode (default) or interp;\n"
     "                 per-trial records are bit-identical either way\n"
     "    --scheduler=S / --fault=F\n"
     "                 stress scenario (S27); a non-default scenario falls\n"
     "                 back to the per-agent simulator (fast paths are\n"
     "                 uniform-only), results stay seed-deterministic\n"
     "    --batch=B    lockstep lanes per worker (S28): auto (default),\n"
     "                 off, or a lane count; records are bit-identical at\n"
     "                 every width — only wall time moves\n"
     "    --json       one JSONL record instead of the human summary\n"},
    {"certify", "<n> <extra-agents> [flags]",
     "  Statistical model checking (S23): an SPRT certificate that the\n"
     "  full protocol stabilises to the correct output with probability\n"
     "  >= 1-delta at m = |F| + extra agents. The certificate digest is\n"
     "  identical at every thread count for fixed (seed, errors, budget).\n"
     "    --trials=N         trial budget (default 4096)\n"
     "    --round=K          trials per SPRT round (default 8)\n"
     "    --batch=B          lockstep lanes per worker (S28): auto\n"
     "                       (default), off, or a lane count; the\n"
     "                       certificate digest is identical at every width\n"
     "    --threads=T        worker threads; 0 = all hardware (default)\n"
     "    --seed=S           master seed (default 42)\n"
     "    --delta=D          certified failure probability (default 0.01)\n"
     "    --alpha=A          type-I error bound (default 0.01)\n"
     "    --beta=B           type-II error bound (default 0.01)\n"
     "    --indifference=E   SPRT indifference width (default 0.05)\n"
     "    --window=W         consensus stability window (default 9e7)\n"
     "    --budget=I         per-trial interaction budget (default 2e9)\n"
     "    --dispatch=D       execution core (S26): bytecode (default) or\n"
     "                       interp; the certificate digest is identical\n"
     "    --scheduler=S      meeting scheduler (S27): uniform (default),\n"
     "                       clique, ring, grid[:W], regular[:D],\n"
     "                       biased[:G], aging\n"
     "    --fault=F          fault plan (S27): none (default),\n"
     "                       corrupt:RATE[,K], churn:RATE[,CAP],\n"
     "                       burst:AT,K[;AT,K...]\n"
     "                       A non-default scenario becomes part of the\n"
     "                       certified statement: the canonical descriptor\n"
     "                       is folded into the certificate digest\n"
     "    --json             one JSONL certificate record\n"},
    {"verify", "<n> <m_regs> [flags]",
     "  Exact fair-run verdict from pi(C) on the parallel verification\n"
     "  kernel (S22). The verdict is identical at every thread count.\n"
     "    --equality         verify the x = k(n) variant\n"
     "    --threads=T        worker threads; 0 = all hardware (default)\n"
     "    --max-configs=N    configuration budget (default 8000000)\n"
     "    --max-edges=E      edge budget (default unlimited)\n"
     "    --max-bytes=B      interner byte budget (default unlimited)\n"
     "    --prune            drop states no run can occupy before\n"
     "                       exploring (verdict unchanged)\n"
     "    --dispatch=D       execution core (S26) for the successor\n"
     "                       generator: bytecode (default) or interp;\n"
     "                       node IDs, SCCs and verdict are identical\n"},
    {"decide", "<n> <m> [--equality]",
     "  Program-level exhaustive decision.\n"
     "    --equality   decide the x = k(n) variant\n"},
    {"serve", "[flags]",
     "  Certification/ensemble daemon (S25): accepts framed-JSON queries,\n"
     "  fans trial batches out to forked worker processes and merges the\n"
     "  SPRT/quantile statistics so the certificate digest is identical to\n"
     "  in-process `ppde certify` at any worker count or shard layout.\n"
     "    --host=H              bind address (default 127.0.0.1)\n"
     "    --port=P              listen port; 0 = ephemeral (default 7421)\n"
     "    --workers=W           forked local workers (default 2)\n"
     "    --remote=H:P[,H:P]    additional `ppde worker` endpoints\n"
     "    --max-active=A        concurrently executing queries (default 2)\n"
     "    --queue-limit=Q       admission queue bound (default 16)\n"
     "    --max-trials-cap=N    reject queries above this trial budget\n"
     "    --max-seconds=S       per-query wall budget (default 600)\n"
     "    --shard=K             trials per worker batch (default 8)\n"
     "    --kill-worker-after=N test hook: SIGKILL one worker after the\n"
     "                          Nth dispatched batch (default 0 = never)\n"
     "    --prom-port=P         serve Prometheus text exposition on\n"
     "                          http://127.0.0.1:P/metrics (S29); 0 =\n"
     "                          ephemeral port (logged on startup);\n"
     "                          omit the flag to disable\n"
     "    --flight-capacity=N   per-query flight-recorder ring size\n"
     "                          (default 128; see `client stats --recent`)\n"
     "  With --trace=FILE the daemon stitches its own spans and every\n"
     "  worker's shipped spans into ONE Chrome trace: each worker process\n"
     "  appears as its own track group (S29).\n"},
    {"worker", "[--port=P]",
     "  Standalone remote trial worker for `ppde serve --remote=...`:\n"
     "  serves batch requests on 0.0.0.0:P (default 7421) until told to\n"
     "  exit.\n"},
    {"client", "<host:port> <request> [args] [flags]",
     "  Query a running `ppde serve` daemon and print the raw JSON\n"
     "  response (exit 0 iff the response says ok).\n"
     "    certify <n> <extra>   SPRT certification; accepts the same\n"
     "                          --trials/--seed/--delta/--indifference/\n"
     "                          --alpha/--beta/--window/--budget/--dispatch/\n"
     "                          --scheduler/--fault/--batch flags as\n"
     "                          `ppde certify`, plus --shard=K\n"
     "    ensemble <n> <extra>  fleet summary; --trials=N is the exact\n"
     "                          fleet size\n"
     "    stats                 daemon uptime, worker pool state, and the\n"
     "                          full obs metrics registry snapshot\n"
     "                          (fleet-wide `worker.*` roll-ups included)\n"
     "      --recent=N          dump the newest N flight-recorder records\n"
     "                          as JSONL (one query per line, S29)\n"
     "      --format=prometheus print the daemon's Prometheus text\n"
     "                          exposition instead of JSON\n"
     "    shutdown              graceful daemon stop\n"},
    {"window", "<lo> <hi> <m>",
     "  Decide lo <= m < hi with a Figure-1 style program (exhaustive).\n"},
    {"help", "[<verb>]",
     "  Without a verb: the synopsis list. With one: its flag reference.\n"},
};

void print_global_flags(std::FILE* out) {
  std::fprintf(
      out,
      "global flags (every verb):\n"
      "  --trace=FILE       record a Chrome trace-event file (S24);\n"
      "                     open in Perfetto or about:tracing\n"
      "  --trace-max-mb=N   cap the trace file at N MiB (S29); events past\n"
      "                     the cap are dropped and counted in the\n"
      "                     obs.trace_truncated metric, and the file stays\n"
      "                     a valid JSON array\n"
      "  --progress[=SECS]  heartbeat to stderr every SECS seconds\n"
      "                     (bare flag: 5s; =0 disables; auto-on at 10s\n"
      "                     when stderr is a TTY)\n");
}

int usage() {
  std::fprintf(stderr, "usage: ppde <verb> ...\n");
  for (const VerbHelp& verb : kVerbs)
    std::fprintf(stderr, "  %s %s\n", verb.name, verb.synopsis);
  print_global_flags(stderr);
  std::fprintf(stderr, "run `ppde help <verb>` for the full flag list.\n");
  return 1;
}

int cmd_help(const char* verb) {
  if (verb == nullptr) {
    usage();
    return 0;  // explicit `ppde help` is a success, unlike a parse error
  }
  for (const VerbHelp& entry : kVerbs) {
    if (std::strcmp(entry.name, verb) != 0) continue;
    std::printf("usage: ppde %s %s\n%s", entry.name, entry.synopsis,
                entry.detail);
    print_global_flags(stdout);
    return 0;
  }
  std::fprintf(stderr, "ppde: unknown verb '%s'\n", verb);
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  // Positional arguments with the --flags filtered out, so flags may
  // appear anywhere on the line (e.g. `ppde ensemble 1 2 16 --json`).
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i)
    if (std::strncmp(argv[i], "--", 2) != 0) pos.push_back(argv[i]);
  if (pos.empty()) return usage();
  const std::string command = pos[0];
  // `help` takes a verb name, not a number — dispatch before the numeric
  // argument checks below would reject it (atoi("verify") == 0). The
  // serve-family verbs likewise take flags / a host:port, not <n>.
  if (command == "help")
    return cmd_help(pos.size() >= 2 ? pos[1] : nullptr);
  try {
    if (command == "serve") return cmd_serve(argc, argv);
    if (command == "worker")
      return serve::worker_listen(
          static_cast<std::uint16_t>(flag_value(argc, argv, "--port", 7421)));
    if (command == "client") {
      const int status = cmd_client(argc, argv, pos);
      if (status == 1 && pos.size() < 3) return usage();
      return status;
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  if (pos.size() < 2) return usage();
  const bool equality = has_flag(argc, argv, "--equality");
  const bool json = has_flag(argc, argv, "--json");
  const int n = std::atoi(pos[1]);
  if (n < 1 && command != "window") return usage();

  // Graceful interruption (S25): for the long-running verbs, a dedicated
  // watcher thread owns SIGINT/SIGTERM and, on delivery, prints one final
  // progress line, flushes the trace ring to a valid file (footer and
  // all), and exits with the conventional 128+signo — instead of the
  // default action silently dropping every buffered span. Installed
  // before any other thread is spawned so the process-wide signal mask is
  // inherited by all of them.
  std::function<std::string()> heartbeat;
  if (command == "ensemble")
    heartbeat = ensemble_heartbeat();
  else if (command == "certify")
    heartbeat = certify_heartbeat();
  else if (command == "verify")
    heartbeat = verify_heartbeat();
  std::unique_ptr<serve::SignalWatch> watch;
  if (heartbeat) {
    watch = std::make_unique<serve::SignalWatch>(
        [heartbeat, command](int signo) {
          std::fprintf(stderr, "%s\n", heartbeat().c_str());
          std::fprintf(stderr,
                       "ppde: %s interrupted by signal %d; trace flushed\n",
                       command.c_str(), signo);
          obs::Tracer::interrupt_stop();
          _exit(128 + signo);
        });
  }

  // Observability (S24). The guard starts the tracer now and stops it on
  // every return path below — after the verb's worker pools have joined
  // and after the monitor (declared later, destroyed earlier) has stopped.
  TracerGuard tracer(flag_cstr(argc, argv, "--trace"),
                     flag_tracer_options(argc, argv));
  std::unique_ptr<obs::ProgressMonitor> monitor;
  const double period = progress_period(argc, argv);
  if (period > 0.0 && heartbeat)
    monitor = std::make_unique<obs::ProgressMonitor>(period, heartbeat);

  try {
    if (command == "info") return cmd_info(n, equality);
    if (command == "program") {
      std::printf("%s", build(n, equality).program.to_string().c_str());
      return 0;
    }
    if (command == "machine") {
      std::printf("%s", compile::lower_program(build(n, equality).program)
                            .machine.to_string()
                            .c_str());
      return 0;
    }
    if (command == "protocol") {
      const auto lowered = compile::lower_program(build(n, equality).program);
      if (n > 2) {
        std::printf("protocol states: %llu (full transition relation only "
                    "materialised for n <= 2)\n",
                    (unsigned long long)compile::conversion_state_count(
                        lowered.machine));
        return 0;
      }
      const auto conv = compile::machine_to_protocol(lowered.machine);
      if (has_flag(argc, argv, "--dot")) {
        std::printf("%s", conv.protocol.to_dot().c_str());
      } else {
        std::printf("states: %zu, transitions: %zu, |F| = %u\n",
                    conv.protocol.num_states(),
                    conv.protocol.num_transitions(), conv.num_pointers);
      }
      return 0;
    }
    if (command == "simulate" && pos.size() >= 3)
      return cmd_simulate(argc, argv, n,
                          static_cast<std::uint32_t>(std::atoi(pos[2])),
                          pos.size() >= 4 ? std::strtoull(pos[3], nullptr, 10)
                                          : 42,
                          flag_dispatch(argc, argv),
                          flag_scenario(argc, argv));
    if (command == "ensemble" && pos.size() >= 4)
      return cmd_ensemble(
          n, static_cast<std::uint32_t>(std::atoi(pos[2])),
          std::strtoull(pos[3], nullptr, 10),
          pos.size() >= 5 ? static_cast<unsigned>(std::atoi(pos[4])) : 0,
          pos.size() >= 6 ? std::strtoull(pos[5], nullptr, 10) : 42, json,
          flag_dispatch(argc, argv), flag_scenario(argc, argv),
          flag_batch(argc, argv));
    if (command == "certify" && pos.size() >= 3)
      return cmd_certify(argc, argv, n,
                         static_cast<std::uint32_t>(std::atoi(pos[2])), json);
    if (command == "verify" && pos.size() >= 3)
      return cmd_verify(argc, argv, n, std::strtoull(pos[2], nullptr, 10),
                        equality);
    if (command == "decide" && pos.size() >= 3)
      return cmd_decide(n, std::strtoull(pos[2], nullptr, 10), equality);
    if (command == "window" && pos.size() >= 4)
      return cmd_window(static_cast<std::uint32_t>(std::atoi(pos[1])),
                        static_cast<std::uint32_t>(std::atoi(pos[2])),
                        std::strtoull(pos[3], nullptr, 10));
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return usage();
}
