#!/usr/bin/env python3
"""Validate every BENCH_*.json report against its versioned schema.

One pass over all machine-readable benchmark reports, dispatched on the
schema tag each report leads with (bench_engine_v / bench_serve_v /
bench_sched_v). CI smoke jobs call this instead of re-growing per-job
grep pipelines; EXPERIMENTS.md numbers are copied from the same files.

Usage:
    python3 tools/check_bench.py [FILE...]

With no arguments, validates every BENCH_*.json in the repository root
(the directory above this script). Exits non-zero with a per-file message
on the first schema violation.
"""

import glob
import json
import os
import sys


def fail(path, message):
    raise SystemExit(f"{path}: {message}")


def require(path, condition, message):
    if not condition:
        fail(path, message)


def check_engine(path, doc):
    """bench_engine_v == 2: per-(mode, dispatch, m) throughput rows."""
    require(path, doc.get("bench_engine_v") == 2,
            f"bench_engine_v != 2 (got {doc.get('bench_engine_v')})")
    rows = doc.get("rows")
    require(path, isinstance(rows, list) and rows, "rows missing or empty")
    for i, row in enumerate(rows):
        for key in ("protocol", "m", "mode", "dispatch", "firings_per_sec",
                    "effective_meetings_per_sec", "threads"):
            require(path, key in row, f"rows[{i}] missing {key}")
        # Rates must be real positive numbers, not zeros or NaN.
        require(path, row["firings_per_sec"] > 0,
                f"rows[{i}] nonpositive firings_per_sec")
        require(path, row["effective_meetings_per_sec"] > 0,
                f"rows[{i}] nonpositive effective_meetings_per_sec")
    # All three engine modes, both dispatch cores (S26), the large
    # population point.
    modes = {row["mode"] for row in rows}
    for mode in ("per-agent", "count-based", "count+null-skip"):
        require(path, mode in modes, f"missing mode {mode}")
    dispatches = {row["dispatch"] for row in rows}
    for dispatch in ("interp", "bytecode"):
        require(path, dispatch in dispatches, f"missing dispatch {dispatch}")
    require(path, any(row["m"] == 100014 for row in rows),
            "missing m=100014 row")


def check_serve(path, doc):
    """bench_serve_v == 1: certify digests by worker count + scaling."""
    require(path, doc.get("bench_serve_v") == 1,
            f"bench_serve_v != 1 (got {doc.get('bench_serve_v')})")
    runs = doc.get("runs")
    require(path, isinstance(runs, list) and runs, "runs missing or empty")
    digests = set()
    for i, run in enumerate(runs):
        for key in ("workers", "wall_seconds", "verdict", "digest"):
            require(path, key in run, f"runs[{i}] missing {key}")
        digests.add(run["digest"])
    # The whole point of the daemon: sharding is invisible to the digest.
    require(path, len(digests) == 1,
            f"certificate digest varies across worker counts: {digests}")
    require(path, doc.get("digest_identical") is True,
            "digest_identical flag not true")
    ensemble_runs = doc.get("ensemble_runs")
    require(path, isinstance(ensemble_runs, list) and ensemble_runs,
            "ensemble_runs missing or empty")
    for i, run in enumerate(ensemble_runs):
        for key in ("workers", "wall_seconds", "speedup"):
            require(path, key in run, f"ensemble_runs[{i}] missing {key}")


def check_sched(path, doc):
    """bench_sched_v == 1: scheduler x construction convergence table."""
    require(path, doc.get("bench_sched_v") == 1,
            f"bench_sched_v != 1 (got {doc.get('bench_sched_v')})")
    trials = doc.get("trials")
    require(path, isinstance(trials, int) and trials > 0,
            "trials missing or nonpositive")
    rows = doc.get("rows")
    require(path, isinstance(rows, list) and rows, "rows missing or empty")
    for i, row in enumerate(rows):
        for key in ("construction", "scenario", "population", "window",
                    "budget", "stabilised", "accepted", "interactions_p50",
                    "parallel_time_p50", "total_firings", "wall_seconds"):
            require(path, key in row, f"rows[{i}] missing {key}")
        require(path, row["population"] >= 2, f"rows[{i}] population < 2")
        require(path, 0 <= row["stabilised"] <= trials,
                f"rows[{i}] stabilised out of [0, trials]")
        require(path, 0 <= row["accepted"] <= row["stabilised"],
                f"rows[{i}] accepted > stabilised")
        require(path, row["interactions_p50"] > 0,
                f"rows[{i}] nonpositive interactions_p50")
    # The table must actually cover the S27 matrix: every scheduler
    # strategy and at least one of each fault kind, over >= 3
    # constructions (threshold protocol + the two baselines).
    constructions = {row["construction"] for row in rows}
    require(path, len(constructions) >= 3,
            f"expected >= 3 constructions, got {sorted(constructions)}")
    schedulers = {row["scenario"].split("+")[0].split(":")[0]
                  for row in rows}
    for scheduler in ("uniform", "ring", "grid", "regular", "biased",
                      "aging"):
        require(path, scheduler in schedulers,
                f"missing scheduler {scheduler}")
    faults = {row["scenario"].split("+")[1].split(":")[0]
              for row in rows if "+" in row["scenario"]}
    for fault in ("corrupt", "churn", "burst"):
        require(path, fault in faults, f"missing fault plan {fault}")


CHECKERS = {
    "bench_engine_v": check_engine,
    "bench_serve_v": check_serve,
    "bench_sched_v": check_sched,
}


def check_file(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(path, f"unreadable or invalid JSON: {error}")
    for tag, checker in CHECKERS.items():
        if tag in doc:
            checker(path, doc)
            print(f"{path}: OK ({tag} = {doc[tag]})")
            return
    fail(path, f"no recognised schema tag (one of {sorted(CHECKERS)})")


def main(argv):
    paths = argv[1:]
    if not paths:
        root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        raise SystemExit("check_bench: no BENCH_*.json files found")
    for path in paths:
        check_file(path)
    print(f"{len(paths)} report(s) valid")


if __name__ == "__main__":
    main(sys.argv)
