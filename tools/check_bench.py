#!/usr/bin/env python3
"""Validate every BENCH_*.json report against its versioned schema.

One pass over all machine-readable benchmark reports, dispatched on the
schema tag each report leads with (bench_engine_v / bench_serve_v /
bench_sched_v). CI smoke jobs call this instead of re-growing per-job
grep pipelines; EXPERIMENTS.md numbers are copied from the same files.

Usage:
    python3 tools/check_bench.py [FILE...]
    python3 tools/check_bench.py --fresh FRESH.json [--factor 2.0] \
        [--warn-only] [FILE...]

With no positional arguments, validates every BENCH_*.json in the
repository root (the directory above this script). Exits non-zero with a
per-file message on the first schema violation.

--fresh FRESH.json additionally compares the committed BENCH_engine.json
against a just-measured report on the current machine and flags any row
whose throughput deviates by more than --factor (default 2.0) in either
direction — a committed baseline from different hardware or predating an
engine change fails loudly instead of anchoring EXPERIMENTS.md to numbers
nobody can reproduce. --warn-only prints deviations without failing (for
noisy CI runners).
"""

import glob
import json
import os
import sys


def fail(path, message):
    raise SystemExit(f"{path}: {message}")


def require(path, condition, message):
    if not condition:
        fail(path, message)


def check_engine(path, doc):
    """bench_engine_v == 3: per-(mode, dispatch, harness, batch, m) rows."""
    require(path, doc.get("bench_engine_v") == 3,
            f"bench_engine_v != 3 (got {doc.get('bench_engine_v')})")
    require(path, doc.get("simd") in ("avx2", "neon", "scalar"),
            f"bad simd tag {doc.get('simd')!r}")
    rows = doc.get("rows")
    require(path, isinstance(rows, list) and rows, "rows missing or empty")
    for i, row in enumerate(rows):
        for key in ("protocol", "m", "mode", "dispatch", "harness", "batch",
                    "firings_per_sec", "effective_meetings_per_sec",
                    "threads"):
            require(path, key in row, f"rows[{i}] missing {key}")
        # Rates must be real positive numbers, not zeros or NaN.
        require(path, row["firings_per_sec"] > 0,
                f"rows[{i}] nonpositive firings_per_sec")
        require(path, row["effective_meetings_per_sec"] > 0,
                f"rows[{i}] nonpositive effective_meetings_per_sec")
        require(path, row["harness"] in ("step", "fleet"),
                f"rows[{i}] bad harness {row['harness']!r}")
        require(path, isinstance(row["batch"], int) and row["batch"] >= 1,
                f"rows[{i}] bad batch {row['batch']!r}")
        require(path, row["harness"] == "fleet" or row["batch"] == 1,
                f"rows[{i}] step row with batch != 1")
    # All three engine modes, both dispatch cores (S26), the large
    # population point.
    modes = {row["mode"] for row in rows}
    for mode in ("per-agent", "count-based", "count+null-skip"):
        require(path, mode in modes, f"missing mode {mode}")
    dispatches = {row["dispatch"] for row in rows}
    for dispatch in ("interp", "bytecode"):
        require(path, dispatch in dispatches, f"missing dispatch {dispatch}")
    require(path, any(row["m"] == 100014 for row in rows),
            "missing m=100014 row")
    # The S28 lockstep matrix: scalar and batched fleet rows at the large
    # population, so the batch win (or shortfall) is always on record.
    fleet = [row for row in rows
             if row["harness"] == "fleet" and row["m"] == 100014]
    require(path, any(row["batch"] == 1 for row in fleet),
            "missing fleet batch=1 row at m=100014")
    require(path, any(row["batch"] > 1 for row in fleet),
            "missing fleet batch>1 row at m=100014")


def row_key(row):
    """Identity of one engine row across re-measures of the same machine."""
    return (row["protocol"], row["m"], row["mode"], row["dispatch"],
            row["harness"], row["batch"], row["threads"])


def compare_fresh(baseline_path, fresh_path, factor, warn_only):
    """Flag baseline rows deviating more than `factor`x from a fresh
    re-measure on the current machine. A committed BENCH_engine.json from
    different hardware (or a stale one after an engine change) fails here
    instead of silently anchoring EXPERIMENTS.md to numbers nobody can
    reproduce."""
    with open(baseline_path) as handle:
        baseline = json.load(handle)
    with open(fresh_path) as handle:
        fresh = json.load(handle)
    for doc, path in ((baseline, baseline_path), (fresh, fresh_path)):
        require(path, "bench_engine_v" in doc,
                "--fresh compares bench_engine_v reports only")
    fresh_rows = {row_key(row): row for row in fresh["rows"]}
    deviations = []
    missing = []
    for row in baseline["rows"]:
        other = fresh_rows.get(row_key(row))
        if other is None:
            missing.append(row_key(row))
            continue
        for metric in ("firings_per_sec", "effective_meetings_per_sec"):
            ratio = row[metric] / other[metric]
            if ratio > factor or ratio < 1.0 / factor:
                deviations.append(
                    f"{row_key(row)} {metric}: baseline {row[metric]:.3e} "
                    f"vs fresh {other[metric]:.3e} ({ratio:.2f}x)")
    for key in missing:
        print(f"check_bench: fresh report has no row {key}")
    for line in deviations:
        print(f"check_bench: deviation > {factor}x: {line}")
    if not deviations and not missing:
        print(f"check_bench: {baseline_path} within {factor}x of "
              f"{fresh_path} on all {len(baseline['rows'])} rows")
    elif not warn_only:
        raise SystemExit(
            f"{baseline_path}: {len(deviations)} row(s) deviate more than "
            f"{factor}x from {fresh_path} (re-measure and commit, or "
            f"run with --warn-only)")


def check_serve(path, doc):
    """bench_serve_v == 1: certify digests by worker count + scaling."""
    require(path, doc.get("bench_serve_v") == 1,
            f"bench_serve_v != 1 (got {doc.get('bench_serve_v')})")
    runs = doc.get("runs")
    require(path, isinstance(runs, list) and runs, "runs missing or empty")
    digests = set()
    for i, run in enumerate(runs):
        for key in ("workers", "wall_seconds", "verdict", "digest"):
            require(path, key in run, f"runs[{i}] missing {key}")
        digests.add(run["digest"])
    # The whole point of the daemon: sharding is invisible to the digest.
    require(path, len(digests) == 1,
            f"certificate digest varies across worker counts: {digests}")
    require(path, doc.get("digest_identical") is True,
            "digest_identical flag not true")
    ensemble_runs = doc.get("ensemble_runs")
    require(path, isinstance(ensemble_runs, list) and ensemble_runs,
            "ensemble_runs missing or empty")
    for i, run in enumerate(ensemble_runs):
        for key in ("workers", "wall_seconds", "speedup"):
            require(path, key in run, f"ensemble_runs[{i}] missing {key}")


def check_sched(path, doc):
    """bench_sched_v == 1: scheduler x construction convergence table."""
    require(path, doc.get("bench_sched_v") == 1,
            f"bench_sched_v != 1 (got {doc.get('bench_sched_v')})")
    trials = doc.get("trials")
    require(path, isinstance(trials, int) and trials > 0,
            "trials missing or nonpositive")
    rows = doc.get("rows")
    require(path, isinstance(rows, list) and rows, "rows missing or empty")
    for i, row in enumerate(rows):
        for key in ("construction", "scenario", "population", "window",
                    "budget", "stabilised", "accepted", "interactions_p50",
                    "parallel_time_p50", "total_firings", "wall_seconds"):
            require(path, key in row, f"rows[{i}] missing {key}")
        require(path, row["population"] >= 2, f"rows[{i}] population < 2")
        require(path, 0 <= row["stabilised"] <= trials,
                f"rows[{i}] stabilised out of [0, trials]")
        require(path, 0 <= row["accepted"] <= row["stabilised"],
                f"rows[{i}] accepted > stabilised")
        require(path, row["interactions_p50"] > 0,
                f"rows[{i}] nonpositive interactions_p50")
    # The table must actually cover the S27 matrix: every scheduler
    # strategy and at least one of each fault kind, over >= 3
    # constructions (threshold protocol + the two baselines).
    constructions = {row["construction"] for row in rows}
    require(path, len(constructions) >= 3,
            f"expected >= 3 constructions, got {sorted(constructions)}")
    schedulers = {row["scenario"].split("+")[0].split(":")[0]
                  for row in rows}
    for scheduler in ("uniform", "ring", "grid", "regular", "biased",
                      "aging"):
        require(path, scheduler in schedulers,
                f"missing scheduler {scheduler}")
    faults = {row["scenario"].split("+")[1].split(":")[0]
              for row in rows if "+" in row["scenario"]}
    for fault in ("corrupt", "churn", "burst"):
        require(path, fault in faults, f"missing fault plan {fault}")


def check_obs(path, doc):
    """bench_obs_v == 1: S29 distributed-tracing data-path timings."""
    require(path, doc.get("bench_obs_v") == 1,
            f"bench_obs_v != 1 (got {doc.get('bench_obs_v')})")
    rows = doc.get("rows")
    require(path, isinstance(rows, list) and rows, "rows missing or empty")
    for i, row in enumerate(rows):
        for key in ("name", "ns_per_op", "ops"):
            require(path, key in row, f"rows[{i}] missing {key}")
        require(path, row["ns_per_op"] > 0,
                f"rows[{i}] nonpositive ns_per_op")
        require(path, isinstance(row["ops"], int) and row["ops"] > 0,
                f"rows[{i}] nonpositive ops")
    names = {row["name"] for row in rows}
    # The report must cover both ends of the wire (worker capture +
    # serialisation, daemon stitch) and both metric surfaces (delta
    # roll-up, Prometheus render), anchored by the disabled-path row.
    for name in ("span_disabled", "span_capture", "capture_drain_per_event",
                 "stitch_emit_foreign", "delta_collect",
                 "prometheus_render"):
        require(path, name in names, f"missing row {name}")
    by_name = {row["name"]: row for row in rows}
    # The disabled path must stay orders of magnitude below the capture
    # path — the contract that lets hot loops carry spans unconditionally.
    require(path,
            by_name["span_disabled"]["ns_per_op"] <
            by_name["span_capture"]["ns_per_op"],
            "span_disabled not cheaper than span_capture")


CHECKERS = {
    "bench_engine_v": check_engine,
    "bench_serve_v": check_serve,
    "bench_sched_v": check_sched,
    "bench_obs_v": check_obs,
}


def check_file(path):
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        fail(path, f"unreadable or invalid JSON: {error}")
    for tag, checker in CHECKERS.items():
        if tag in doc:
            checker(path, doc)
            print(f"{path}: OK ({tag} = {doc[tag]})")
            return
    fail(path, f"no recognised schema tag (one of {sorted(CHECKERS)})")


def main(argv):
    args = argv[1:]
    fresh = None
    factor = 2.0
    warn_only = False
    paths = []
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--fresh":
            i += 1
            fresh = args[i]
        elif arg.startswith("--fresh="):
            fresh = arg.split("=", 1)[1]
        elif arg == "--factor":
            i += 1
            factor = float(args[i])
        elif arg.startswith("--factor="):
            factor = float(arg.split("=", 1)[1])
        elif arg == "--warn-only":
            warn_only = True
        elif arg.startswith("-"):
            raise SystemExit(f"check_bench: unknown flag {arg}")
        else:
            paths.append(arg)
        i += 1
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    if not paths:
        paths = sorted(glob.glob(os.path.join(root, "BENCH_*.json")))
    if not paths:
        raise SystemExit("check_bench: no BENCH_*.json files found")
    for path in paths:
        check_file(path)
    print(f"{len(paths)} report(s) valid")
    if fresh is not None:
        check_file(fresh)
        baseline = next(
            (path for path in paths
             if os.path.basename(path) == "BENCH_engine.json"), None)
        if baseline is None:
            raise SystemExit(
                "check_bench: --fresh needs BENCH_engine.json among the "
                "validated reports")
        compare_fresh(baseline, fresh, factor, warn_only)


if __name__ == "__main__":
    main(sys.argv)
