// Observability overhead benchmarks (DESIGN.md S24).
//
// The obs subsystem's contract is numeric: with tracing *disabled* an
// instrumentation site costs one relaxed load plus a branch — sub-ns, so
// the engine's hot loops can carry spans unconditionally — and with
// tracing *enabled* a span is a clock read plus stores into the calling
// thread's own ring. This binary pins both ends, plus the registry
// primitives the heartbeat reads:
//
//   BM_SpanDisabled        the default path every ppde run pays
//   BM_SpanEnabled         span recording into an active tracer
//   BM_CounterAdd          sharded counter add (per-trial cadence)
//   BM_GaugeSet            relaxed gauge store (per-wave cadence)
//   BM_HistogramRecord     log₂ bucketing + CAS max
//   BM_RegistryLookup      find-or-create by name (why sites cache refs)
//
// EXPERIMENTS.md records the end-to-end check: bench_simulator's
// count+null-skip throughput with the instrumented library is within
// noise (<1%) of the committed BENCH_engine.json baseline.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ppde;

std::string temp_trace_path() {
  return "/tmp/ppde_bench_obs_trace.json";
}

void BM_SpanDisabled(benchmark::State& state) {
  // No tracer active: constructor + destructor must reduce to a relaxed
  // load and a branch each.
  for (auto _ : state) {
    obs::ObsSpan span("bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::TracerOptions options;
  options.ring_capacity = 1u << 16;
  options.flush_period_ms = 50;
  if (!obs::Tracer::start(temp_trace_path(), options)) {
    state.SkipWithError("cannot start tracer");
    return;
  }
  for (auto _ : state) {
    obs::ObsSpan span("bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  obs::Tracer::stop();
  std::remove(temp_trace_path().c_str());
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterAdd(benchmark::State& state) {
  static obs::Counter& counter =
      obs::Registry::global().counter("bench.counter");
  for (auto _ : state) counter.add(1);
}
BENCHMARK(BM_CounterAdd)->Threads(1)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  static obs::Gauge& gauge = obs::Registry::global().gauge("bench.gauge");
  double value = 0.0;
  for (auto _ : state) gauge.set(value += 1.0);
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  static obs::Histogram& histogram =
      obs::Registry::global().histogram("bench.histogram");
  std::uint64_t value = 1;
  for (auto _ : state) {
    histogram.record(value);
    value = value * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryLookup(benchmark::State& state) {
  // The cost a `static Counter& c = ...` cache at an instrument site
  // avoids paying per hit: mutex + map find.
  for (auto _ : state)
    benchmark::DoNotOptimize(
        &obs::Registry::global().counter("bench.lookup"));
}
BENCHMARK(BM_RegistryLookup);

}  // namespace

BENCHMARK_MAIN();
