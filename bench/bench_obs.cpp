// Observability overhead benchmarks (DESIGN.md S24).
//
// The obs subsystem's contract is numeric: with tracing *disabled* an
// instrumentation site costs one relaxed load plus a branch — sub-ns, so
// the engine's hot loops can carry spans unconditionally — and with
// tracing *enabled* a span is a clock read plus stores into the calling
// thread's own ring. This binary pins both ends, plus the registry
// primitives the heartbeat reads:
//
//   BM_SpanDisabled        the default path every ppde run pays
//   BM_SpanEnabled         span recording into an active tracer
//   BM_CounterAdd          sharded counter add (per-trial cadence)
//   BM_GaugeSet            relaxed gauge store (per-wave cadence)
//   BM_HistogramRecord     log₂ bucketing + CAS max
//   BM_RegistryLookup      find-or-create by name (why sites cache refs)
//
// With `--json=PATH` the binary instead times the distributed-tracing
// data path the serve fleet added in S29 — capture-mode span recording,
// per-event capture drain (the wire serialisation a worker pays per
// traced batch), daemon-side emit_foreign stitching, DeltaTracker
// collect, and the Prometheus render — and writes a machine-readable
// report (schema tag `bench_obs_v` = 1, default path BENCH_obs.json)
// that tools/check_bench.py validates. EXPERIMENTS.md records the
// numbers next to the end-to-end check: bench_simulator's
// count+null-skip throughput with the instrumented library is within
// noise (<1%) of the committed BENCH_engine.json baseline.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/rollup.hpp"
#include "obs/trace.hpp"

namespace {

using namespace ppde;

std::string temp_trace_path() {
  return "/tmp/ppde_bench_obs_trace.json";
}

void BM_SpanDisabled(benchmark::State& state) {
  // No tracer active: constructor + destructor must reduce to a relaxed
  // load and a branch each.
  for (auto _ : state) {
    obs::ObsSpan span("bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::TracerOptions options;
  options.ring_capacity = 1u << 16;
  options.flush_period_ms = 50;
  if (!obs::Tracer::start(temp_trace_path(), options)) {
    state.SkipWithError("cannot start tracer");
    return;
  }
  for (auto _ : state) {
    obs::ObsSpan span("bench_span", "bench");
    benchmark::DoNotOptimize(&span);
  }
  obs::Tracer::stop();
  std::remove(temp_trace_path().c_str());
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterAdd(benchmark::State& state) {
  static obs::Counter& counter =
      obs::Registry::global().counter("bench.counter");
  for (auto _ : state) counter.add(1);
}
BENCHMARK(BM_CounterAdd)->Threads(1)->Threads(4);

void BM_GaugeSet(benchmark::State& state) {
  static obs::Gauge& gauge = obs::Registry::global().gauge("bench.gauge");
  double value = 0.0;
  for (auto _ : state) gauge.set(value += 1.0);
}
BENCHMARK(BM_GaugeSet);

void BM_HistogramRecord(benchmark::State& state) {
  static obs::Histogram& histogram =
      obs::Registry::global().histogram("bench.histogram");
  std::uint64_t value = 1;
  for (auto _ : state) {
    histogram.record(value);
    value = value * 2862933555777941757ULL + 3037000493ULL;  // cheap LCG
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_RegistryLookup(benchmark::State& state) {
  // The cost a `static Counter& c = ...` cache at an instrument site
  // avoids paying per hit: mutex + map find.
  for (auto _ : state)
    benchmark::DoNotOptimize(
        &obs::Registry::global().counter("bench.lookup"));
}
BENCHMARK(BM_RegistryLookup);

// ---------------------------------------------------------------------------
// --json report: the S29 distributed-tracing data path, timed end to end
// and written as a bench_obs_v schema for tools/check_bench.py.

struct ReportRow {
  const char* name;
  double ns_per_op;
  std::uint64_t ops;
};

template <typename Fn>
ReportRow time_row(const char* name, std::uint64_t ops, Fn&& fn) {
  using Clock = std::chrono::steady_clock;
  const Clock::time_point begin = Clock::now();
  fn();
  const double ns = static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           begin)
          .count());
  return ReportRow{name, ns / static_cast<double>(ops), ops};
}

int write_report(const std::string& path) {
  std::vector<ReportRow> rows;

  // The disabled path every instrumentation site pays by default.
  constexpr std::uint64_t kDisabledOps = 20'000'000;
  rows.push_back(time_row("span_disabled", kDisabledOps, [] {
    for (std::uint64_t i = 0; i < kDisabledOps; ++i) {
      obs::ObsSpan span("bench_span", "bench");
      benchmark::DoNotOptimize(&span);
    }
  }));

  // Worker hot path: spans into a capture-mode tracer's rings, drained
  // every `kBatch` events the way worker_main drains per traced batch.
  // The drain row is the wire-serialisation cost (ring slots -> owned
  // CapturedEvent records) a worker adds to every traced batch reply.
  {
    obs::TracerOptions options;
    options.ring_capacity = 1u << 16;
    if (!obs::Tracer::start_capture(options)) {
      std::fprintf(stderr, "bench_obs: cannot start capture tracer\n");
      return 1;
    }
    constexpr std::uint64_t kBatch = 8'192;
    constexpr std::uint64_t kRounds = 256;
    std::vector<obs::CapturedEvent> drained;
    double drain_ns = 0.0;
    rows.push_back(
        time_row("span_capture", kBatch * kRounds, [&] {
          using Clock = std::chrono::steady_clock;
          for (std::uint64_t round = 0; round < kRounds; ++round) {
            for (std::uint64_t i = 0; i < kBatch; ++i) {
              obs::ObsSpan span("bench_span", "bench");
              benchmark::DoNotOptimize(&span);
            }
            const Clock::time_point begin = Clock::now();
            drained = obs::Tracer::drain_capture();
            drain_ns += static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    Clock::now() - begin)
                    .count());
          }
        }));
    // span_capture's wall included the drains; subtract them out.
    rows.back().ns_per_op -=
        drain_ns / static_cast<double>(kBatch * kRounds);
    rows.push_back(ReportRow{"capture_drain_per_event",
                             drain_ns / static_cast<double>(kBatch * kRounds),
                             kBatch * kRounds});
    obs::Tracer::stop();
  }

  // Daemon side of the stitch: emit_foreign rebases and serialises one
  // worker event into the trace file per call.
  {
    const std::string trace_path = temp_trace_path();
    if (!obs::Tracer::start(trace_path)) {
      std::fprintf(stderr, "bench_obs: cannot start file tracer\n");
      return 1;
    }
    obs::Tracer* tracer = obs::Tracer::active();
    obs::CapturedEvent event;
    event.name = "bench_foreign";
    event.cat = "bench";
    event.ts_ns = tracer->epoch_ns();
    event.dur_ns = 1'000;
    event.tid = 1;
    constexpr std::uint64_t kStitchOps = 200'000;
    rows.push_back(time_row("stitch_emit_foreign", kStitchOps, [&] {
      for (std::uint64_t i = 0; i < kStitchOps; ++i)
        tracer->emit_foreign(4242, "bench worker", event);
    }));
    obs::Tracer::stop();
    std::remove(trace_path.c_str());
  }

  // Worker metric shipping: one collect() over a registry with live
  // counters and histograms (the per-batch-reply roll-up cost).
  {
    obs::Counter& counter =
        obs::Registry::global().counter("bench.delta_counter");
    obs::Histogram& histogram =
        obs::Registry::global().histogram("bench.delta_histogram");
    obs::DeltaTracker tracker;
    constexpr std::uint64_t kCollects = 20'000;
    rows.push_back(time_row("delta_collect", kCollects, [&] {
      for (std::uint64_t i = 0; i < kCollects; ++i) {
        counter.add(3);
        histogram.record(i + 1);
        benchmark::DoNotOptimize(tracker.collect());
      }
    }));
  }

  // One Prometheus exposition render (the per-scrape cost).
  {
    constexpr std::uint64_t kRenders = 20'000;
    rows.push_back(time_row("prometheus_render", kRenders, [&] {
      for (std::uint64_t i = 0; i < kRenders; ++i)
        benchmark::DoNotOptimize(obs::Registry::global().to_prometheus());
    }));
  }

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_obs: cannot open %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out, "{\"bench_obs_v\": 1, \"rows\": [");
  for (std::size_t i = 0; i < rows.size(); ++i)
    std::fprintf(out,
                 "%s\n  {\"name\": \"%s\", \"ns_per_op\": %.3f, "
                 "\"ops\": %llu}",
                 i == 0 ? "" : ",", rows[i].name, rows[i].ns_per_op,
                 static_cast<unsigned long long>(rows[i].ops));
  std::fprintf(out, "\n]}\n");
  std::fclose(out);
  for (const ReportRow& row : rows)
    std::printf("%-24s %10.3f ns/op  (%llu ops)\n", row.name, row.ns_per_op,
                static_cast<unsigned long long>(row.ops));
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0)
      return write_report(argv[i] + 7);
    if (std::strcmp(argv[i], "--json") == 0) return write_report("BENCH_obs.json");
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
