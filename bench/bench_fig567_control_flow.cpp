// Figures 5, 6, 7 — the control-flow lowerings of Appendix B.2.
//
//   Figure 5: while-loops become detect + IP := f(CF) conditional jumps.
//   Figure 6: procedure calls set a return pointer, returns jump IP := f(P).
//   Figure 7: restart is replaced by a shuffle helper that funnels all
//             agents through a hub register and jumps to instruction 1.
//
// The report renders each lowering from real programs; the timed part
// measures how lowering scales with loop/procedure/restart counts.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "compile/lower.hpp"
#include "progmodel/builder.hpp"
#include "progmodel/sample_programs.hpp"

namespace {

using namespace ppde;
using progmodel::BlockBuilder;
using progmodel::ProcRef;
using progmodel::Program;
using progmodel::ProgramBuilder;
using progmodel::Reg;

Program make_figure5_program() {
  // while !(detect x > 0) do x -> y  (plus the trailing "..." as a no-op).
  ProgramBuilder b;
  const Reg x = b.reg("x");
  const Reg y = b.reg("y");
  const ProcRef main = b.proc("Main", false, [&](BlockBuilder& s) {
    s.while_(s.not_(s.detect(x)), [&](BlockBuilder& t) { t.move(x, y); });
  });
  return std::move(b).build(main);
}

Program make_figure6_program() {
  // AddTwo(); ...  with AddTwo: x -> y; x -> y; return true.
  ProgramBuilder b;
  const Reg x = b.reg("x");
  const Reg y = b.reg("y");
  const ProcRef add_two = b.proc("AddTwo", true, [&](BlockBuilder& s) {
    s.move(x, y);
    s.move(x, y);
    s.return_(true);
  });
  const ProcRef main = b.proc("Main", false,
                              [&](BlockBuilder& s) { s.call(add_two); });
  return std::move(b).build(main);
}

Program make_figure7_program() {
  // A single restart statement.
  ProgramBuilder b;
  b.reg("x");
  b.reg("y");
  const ProcRef main =
      b.proc("Main", false, [](BlockBuilder& s) { s.restart(); });
  return std::move(b).build(main);
}

void show(const char* title, const Program& program) {
  const auto lowered = compile::lower_program(program);
  std::printf("--- %s ---\nsource:\n%sresulting machine:\n%s", title,
              program.to_string().c_str(),
              lowered.machine.to_string().c_str());
  if (lowered.restart_helper_entry)
    std::printf("(restart shuffle helper starts at instruction %u)\n",
                *lowered.restart_helper_entry + 1);
  std::printf("\n");
}

void print_report() {
  std::printf("== Figures 5/6/7: control-flow lowering ==\n\n");
  show("Figure 5: while-loop", make_figure5_program());
  show("Figure 6: procedure call and return", make_figure6_program());
  show("Figure 7: restart via shuffle helper", make_figure7_program());
}

// Lowering scales linearly with expanded loop bodies (for-loops are macros).
void BM_LowerExpandedLoops(benchmark::State& state) {
  ProgramBuilder b;
  const Reg x = b.reg("x");
  const Reg y = b.reg("y");
  const ProcRef main = b.proc("Main", false, [&](BlockBuilder& s) {
    for (std::int64_t i = 0; i < state.range(0); ++i)
      s.while_(s.detect(x), [&](BlockBuilder& t) { t.move(x, y); });
  });
  const Program program = std::move(b).build(main);
  for (auto _ : state)
    benchmark::DoNotOptimize(compile::lower_program(program));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LowerExpandedLoops)->Range(8, 512)->Complexity(benchmark::oN);

void BM_LowerManyProcedures(benchmark::State& state) {
  ProgramBuilder b;
  const Reg x = b.reg("x");
  const Reg y = b.reg("y");
  std::vector<ProcRef> procs;
  for (std::int64_t i = 0; i < state.range(0); ++i)
    procs.push_back(b.proc("P" + std::to_string(i), true,
                           [&](BlockBuilder& s) {
                             s.move(x, y);
                             s.return_(true);
                           }));
  const ProcRef main = b.proc("Main", false, [&](BlockBuilder& s) {
    for (const ProcRef& proc : procs) s.call(proc);
  });
  const Program program = std::move(b).build(main);
  for (auto _ : state)
    benchmark::DoNotOptimize(compile::lower_program(program));
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LowerManyProcedures)->Range(8, 256)->Complexity(benchmark::oN);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
