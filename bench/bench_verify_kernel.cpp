// Exhaustive-verification scale on the S22 kernel.
//
// Workload: exact fair-run verification of the converted czerner n=1
// protocol from pi(C) with m_regs agents in the input register — the same
// state spaces `ppde verify 1 <m>` explores. Reports wall time and
// explored nodes/edges at 1, 4 and 8 threads for a sweep of m_regs, plus
// the largest m_regs that completes within the 8M-node budget. Feeds the
// EXPERIMENTS.md verification-scale table.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>

#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "machine/interp.hpp"
#include "pp/verifier.hpp"

namespace {

using namespace ppde;

struct Workload {
  czerner::Construction c;
  compile::LoweredMachine lowered;
  compile::ProtocolConversion conv;
};

/// Built in place: the conversion keeps a pointer to `lowered.machine`, so
/// the workload must never be moved after conversion.
const Workload& workload() {
  static Workload* w = [] {
    auto* workload = new Workload;
    workload->c = czerner::build_construction(1);
    workload->lowered = compile::lower_program(workload->c.program);
    compile::ConversionOptions nb;
    nb.with_broadcast = false;
    workload->conv =
        compile::machine_to_protocol(workload->lowered.machine, nb);
    return workload;
  }();
  return *w;
}

pp::Config initial_for(const Workload& w, std::uint64_t m_regs) {
  std::vector<std::uint64_t> regs(w.c.num_registers(), 0);
  regs[w.c.R()] = m_regs;
  return w.conv.pi(machine::initial_state(w.lowered.machine, regs), false);
}

void BM_VerifyConvertedN1(benchmark::State& state) {
  const Workload& w = workload();
  const std::uint64_t m_regs = static_cast<std::uint64_t>(state.range(0));
  const unsigned threads = static_cast<unsigned>(state.range(1));
  const pp::Config initial = initial_for(w, m_regs);
  pp::VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = 8'000'000;
  options.threads = threads;
  pp::VerificationResult result;
  for (auto _ : state) {
    result = pp::Verifier(w.conv.protocol).verify(initial, options);
    benchmark::DoNotOptimize(result);
  }
  state.counters["configs"] = static_cast<double>(result.explored_configs);
  state.counters["edges"] = static_cast<double>(result.explored_edges);
  state.counters["configs/s"] = benchmark::Counter(
      static_cast<double>(result.explored_configs),
      benchmark::Counter::kIsIterationInvariantRate);
}

void configure(benchmark::internal::Benchmark* bench) {
  for (const int m : {4, 6, 8})
    for (const int threads : {1, 4, 8}) bench->Args({m, threads});
  bench->Unit(benchmark::kMillisecond)->MeasureProcessCPUTime()
      ->UseRealTime();
}

BENCHMARK(BM_VerifyConvertedN1)->Apply(configure);

/// Not a google-benchmark timing loop: finds the largest m_regs whose full
/// graph is verified within the 8M-node budget AND a per-population
/// wall-clock allowance — the headline number for EXPERIMENTS.md ("how big
/// a population can we verify exactly?"). Stops at the first population
/// that misses the allowance or trips the node budget.
void BM_FrontierWithinBudget(benchmark::State& state) {
  const Workload& w = workload();
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const double allowance_seconds = 12.0;
  std::uint64_t frontier = 0;
  for (auto _ : state) {
    frontier = 0;
    for (std::uint64_t m = 1;; ++m) {
      pp::VerifierOptions options;
      options.witness_mode = true;
      options.max_configs = 8'000'000;
      options.threads = threads;
      const auto start = std::chrono::steady_clock::now();
      const pp::VerificationResult result =
          pp::Verifier(w.conv.protocol).verify(initial_for(w, m), options);
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      if (!result.stabilises() || elapsed > allowance_seconds) break;
      frontier = m;
    }
  }
  state.counters["max_m_regs"] = static_cast<double>(frontier);
}

BENCHMARK(BM_FrontierWithinBudget)
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kSecond)
    ->Iterations(1)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
