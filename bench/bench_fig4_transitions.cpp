// Figure 4 — converting machine instructions into protocol transitions.
//
// Regenerates the figure's content quantitatively: for each instruction
// kind, how many transitions the Appendix-B.3 gadgets generate, and a few
// concrete transitions rendered from the real converted protocol. Then
// times the conversion.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/crn.hpp"
#include "analysis/tables.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "progmodel/sample_programs.hpp"

namespace {

using namespace ppde;

void print_report() {
  std::printf("== Figure 4: instruction -> transition conversion ==\n\n");
  const auto lowered =
      compile::lower_program(progmodel::make_figure3_program());
  const machine::Machine& m = lowered.machine;
  const auto conv = compile::machine_to_protocol(m);

  std::printf("machine: %zu instructions, %zu pointers -> protocol: %zu "
              "states, %zu transitions\n\n",
              m.num_instructions(), m.num_pointers(),
              conv.protocol.num_states(), conv.protocol.num_transitions());

  // Render the gadget for the first move instruction (paper's line 1):
  std::uint32_t move_at = 0;
  while (m.instrs[move_at].kind != machine::Instr::Kind::kMove) ++move_at;
  const pp::State ip_none =
      conv.pointer_state(m.ip, move_at, compile::Stage::kNone, false);
  const machine::PtrId vx = m.v_reg[m.instrs[move_at].x];
  const pp::State vx_none =
      conv.pointer_state(vx, 0, compile::Stage::kNone, false);
  std::printf("sample <move> gadget transitions (x -> y at instruction %u):\n",
              move_at + 1);
  for (std::uint32_t index : conv.protocol.transitions_for(ip_none, vx_none)) {
    const pp::Transition& t = conv.protocol.transitions()[index];
    std::printf("  %s, %s -> %s, %s\n", conv.protocol.name(t.q).c_str(),
                conv.protocol.name(t.r).c_str(),
                conv.protocol.name(t.q2).c_str(),
                conv.protocol.name(t.r2).c_str());
  }

  std::printf("\ntransitions per machine for the pipeline stages (the CRN"
              " columns read the\nprotocol as the chemical reaction network"
              " of the paper's motivation — one species\nper state, one"
              " bimolecular reaction per distinct transition):\n");
  analysis::TextTable t({"machine", "instrs", "|F|", "protocol states",
                         "transitions", "CRN reactions"});
  for (const auto& [name, program] :
       {std::pair{std::string("figure 3"), progmodel::make_figure3_program()},
        {std::string("figure 1"), progmodel::make_figure1_program()},
        {std::string("threshold(3)"), progmodel::make_threshold_program(3)},
        {std::string("czerner n=1"),
         czerner::build_construction(1).program}}) {
    const auto lm = compile::lower_program(program);
    const auto pc = compile::machine_to_protocol(lm.machine);
    t.add_row({name, std::to_string(lm.machine.num_instructions()),
               std::to_string(lm.machine.num_pointers()),
               std::to_string(pc.protocol.num_states()),
               std::to_string(pc.protocol.num_transitions()),
               std::to_string(analysis::crn_stats(pc.protocol).reactions)});
  }
  t.print(std::cout);
  std::printf("\nNote: transition counts are dominated by the <elect> "
              "wildcards over IP's 3L states\nand the <test> false-case "
              "(one transition per other state); the *state* count is\n"
              "what Theorem 5 bounds.\n\n");
}

void BM_ConvertFigure1(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(progmodel::make_figure1_program());
  for (auto _ : state)
    benchmark::DoNotOptimize(compile::machine_to_protocol(lowered.machine));
}
BENCHMARK(BM_ConvertFigure1);

void BM_ConvertCzernerN1(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  for (auto _ : state)
    benchmark::DoNotOptimize(compile::machine_to_protocol(lowered.machine));
}
BENCHMARK(BM_ConvertCzernerN1);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
