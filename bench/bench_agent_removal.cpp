// Agent removal — the paper's closing open question, measured.
//
// "A natural next step would be to investigate the *removal* of agents:
//  can a protocol provide guarantees in the case that a small number of
//  agents disappear during the computation?"
//
// This harness removes one agent mid-run from the converted n=1 protocol
// and reports what happens, separated by the victim's role:
//   * a register agent — the population total changes; the protocol keeps
//     restarting and (empirically) re-converges to phi' of the *new*
//     total: the detect-restart architecture is removal-tolerant for
//     counted agents,
//   * a pointer agent — the machinery loses a unique role that leader
//     election cannot re-create (election only merges duplicates); the
//     computation freezes and the output is whatever opinion distribution
//     was left — no guarantee survives, confirming that removal tolerance
//     would need new machinery, exactly as the paper suggests.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/count_sim.hpp"
#include "pp/simulator.hpp"

namespace {

using namespace ppde;

void print_report() {
  std::printf("== Open question: removing an agent mid-run (n = 1) ==\n\n");
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const std::uint32_t f = conv.num_pointers;

  // Register agents occupy the first 2 * |Q| realized states (both
  // opinions); everything else is pointer/gadget machinery.
  const pp::State last_register_state =
      conv.reg_state(static_cast<machine::RegId>(
                         lowered.machine.num_registers() - 1),
                     true);
  const auto is_register_agent = [last_register_state](pp::State q) {
    return q <= last_register_state;
  };

  analysis::TextTable t({"victim", "m before", "m after", "verdict",
                         "expected phi'(m after)"});
  pp::SimulationOptions options;
  options.stable_window = 90'000'000;
  options.max_interactions = 1'200'000'000;

  struct Scenario {
    const char* label;
    std::uint32_t extra;
    bool remove_register;
  };
  const Scenario scenarios[] = {
      {"register agent", 3, true},   // 3 -> 2 counted agents: still accept
      {"register agent", 2, true},   // 2 -> 1: must flip to reject
      {"pointer agent", 2, false},   // machinery lost: stuck (reads reject)
      {"pointer agent", 3, false},   // machinery lost on an accepting total:
                                     // the freeze VISIBLY breaks the
                                     // guarantee (expected accept, gets
                                     // stuck)
  };
  const engine::PairIndex index(conv.protocol);
  for (const auto& scenario : scenarios) {
    engine::CountSimulator sim(
        conv.protocol, index, conv.initial_config(f + scenario.extra),
        191 + scenario.extra + (scenario.remove_register ? 7 : 0));
    // Let the protocol elect and get going, then strike. A frozen run can
    // never un-freeze, so stop early instead of spinning on null meetings.
    while (sim.interactions() < 3'000'000 && !sim.frozen()) sim.step();
    const std::uint64_t before = sim.population();
    const auto removed = sim.remove_random_agent(
        scenario.remove_register
            ? std::function<bool(pp::State)>(is_register_agent)
            : std::function<bool(pp::State)>(
                  [&](pp::State q) { return !is_register_agent(q); }));
    const std::uint64_t after = sim.population();
    const bool expected =
        after >= f && after - f >= 2;
    std::string verdict = "no consensus";
    if (removed.has_value()) {
      const auto result = sim.run_until_stable(options);
      if (result.stabilised)
        verdict = result.output ? "ACCEPT" : "reject";
    }
    t.add_row({scenario.label, std::to_string(before), std::to_string(after),
               verdict, expected ? "accept" : "reject"});
  }
  t.print(std::cout);
  std::printf(
      "\nRegister-agent removal: the restart loop recounts and the verdict "
      "tracks the new\ntotal. Pointer-agent removal: rejection rows may still "
      "read 'reject' (silence is\nindistinguishable from a frozen machine), "
      "but accepting totals freeze either\nshort of consensus or on the wrong "
      "verdict — no guarantee survives, matching\nthe paper's assessment "
      "that this needs new machinery.\n\n");
}

void BM_RemovalScan(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  pp::Simulator sim(conv.protocol, conv.initial_config(conv.num_pointers + 8),
                    3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.remove_random_agent([](pp::State) { return true; }));
    state.PauseTiming();
    // keep population stable for steady-state measurement
    state.ResumeTiming();
  }
}
BENCHMARK(BM_RemovalScan)->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
