// Figure 2 — configuration types of the construction.
//
// Regenerates the figure's example rows (i-proper / weakly i-proper /
// i-low / i-high / i-empty) through the classifier, cross-checks the
// classification matrix, then times classification and good-configuration
// construction.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "czerner/classify.hpp"
#include "czerner/construction.hpp"
#include "support/rng.hpp"

namespace {

using namespace ppde::czerner;

void print_report() {
  const Construction c = build_construction(3);
  std::printf("== Figure 2: configuration types (n = 3; N = 1, 4, 25) ==\n\n");

  // The paper's five example rows, instantiated at i = 2.
  struct Row {
    const char* label;
    RegValues regs;
  };
  const std::vector<Row> rows = {
      // x1 ~x1 y1 ~y1 | x2 ~x2 y2 ~y2 | x3 ~x3 y3 ~y3 | R
      {"2-proper", {0, 1, 0, 1, 0, 4, 0, 4, 0, 0, 0, 0, 0}},
      {"weakly 2-proper", {0, 1, 0, 1, 3, 1, 2, 2, 0, 0, 0, 0, 0}},
      {"2-low", {0, 1, 0, 1, 0, 3, 0, 4, 0, 0, 0, 0, 0}},
      {"2-high", {0, 1, 0, 1, 3, 4, 2, 5, 0, 0, 0, 0, 0}},
      {"3-empty junk", {2, 4, 8, 3, 5, 3, 0, 7, 0, 0, 0, 0, 0}},
  };

  ppde::analysis::TextTable t({"configuration", "labels (classifier)"});
  for (const Row& row : rows) {
    std::string labels;
    for (const std::string& label : classify(c, row.regs)) {
      if (!labels.empty()) labels += ", ";
      labels += label;
    }
    t.add_row({row.label, labels});
  }
  t.print(std::cout);

  std::printf("\nGood configurations of Theorem 3 (m agents -> C_m):\n");
  ppde::analysis::TextTable good({"m", "C_m classification", "shape"});
  const Construction c2 = build_construction(2);
  for (std::uint64_t m : {0ull, 3ull, 7ull, 9ull, 10ull, 13ull}) {
    const RegValues regs = good_config(c2, m);
    std::string labels;
    for (const std::string& label : classify(c2, regs)) {
      if (!labels.empty()) labels += ", ";
      labels += label;
    }
    std::string shape;
    for (std::size_t i = 0; i < regs.size(); ++i) {
      if (i) shape += ",";
      shape += std::to_string(regs[i]);
    }
    good.add_row({std::to_string(m), labels, shape});
  }
  good.print(std::cout);
  std::printf("\n");
}

void BM_Classify(benchmark::State& state) {
  const Construction c = build_construction(4);
  ppde::support::Rng rng(5);
  std::vector<RegValues> samples;
  for (int i = 0; i < 64; ++i) {
    RegValues regs(c.num_registers());
    for (auto& value : regs) value = rng.below(30);
    samples.push_back(std::move(regs));
  }
  std::size_t index = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify(c, samples[index]));
    index = (index + 1) % samples.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Classify);

void BM_GoodConfig(benchmark::State& state) {
  const Construction c = build_construction(5);
  std::uint64_t m = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(good_config(c, m));
    m = (m * 31 + 7) % 900'000;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_GoodConfig);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
