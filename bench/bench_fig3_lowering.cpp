// Figure 3 — converting a population program to a population machine.
//
// Regenerates the figure: the two-line while/swap program and its
// machine listing (detect, conditional jump, move, three register-map
// assignments, loop jump), then times the lowering across construction
// sizes (Proposition 14: output is linear in program size).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "compile/lower.hpp"
#include "czerner/construction.hpp"
#include "progmodel/sample_programs.hpp"

namespace {

void print_report() {
  using namespace ppde;
  const progmodel::Program program = progmodel::make_figure3_program();
  std::printf("== Figure 3: program -> machine conversion ==\n\n");
  std::printf("source program:\n%s\n", program.to_string().c_str());
  const compile::LoweredMachine lowered = compile::lower_program(program);
  std::printf("population machine (instructions are numbered from 1, as in "
              "the paper; the paper's\nfigure shows Main's body — here it "
              "sits after the call-Main prologue):\n%s\n",
              lowered.machine.to_string().c_str());

  std::printf("machine sizes across the construction "
              "(Proposition 14: linear in program size):\n");
  analysis::TextTable t({"n", "program size", "machine size", "|F|", "L",
                         "ratio machine/program"});
  for (int n = 1; n <= 10; ++n) {
    const auto c = czerner::build_construction(n);
    const auto m = compile::lower_program(c.program);
    const auto ps = c.program.size().total();
    t.add_row({std::to_string(n), std::to_string(ps),
               std::to_string(m.machine.size()),
               std::to_string(m.machine.num_pointers()),
               std::to_string(m.machine.num_instructions()),
               analysis::fmt_double(static_cast<double>(m.machine.size()) /
                                        static_cast<double>(ps),
                                    2)});
  }
  t.print(std::cout);
  std::printf("\n");
}

void BM_LowerConstruction(benchmark::State& state) {
  const auto c =
      ppde::czerner::build_construction(static_cast<int>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(ppde::compile::lower_program(c.program));
}
BENCHMARK(BM_LowerConstruction)->Arg(1)->Arg(4)->Arg(8)->Arg(12);

void BM_LowerWindowProgram(benchmark::State& state) {
  const auto program = ppde::progmodel::make_window_program(
      static_cast<std::uint32_t>(state.range(0)),
      static_cast<std::uint32_t>(state.range(0) * 2));
  for (auto _ : state)
    benchmark::DoNotOptimize(ppde::compile::lower_program(program));
}
BENCHMARK(BM_LowerWindowProgram)->Arg(8)->Arg(64)->Arg(512);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
