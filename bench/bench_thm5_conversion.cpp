// Theorem 5 / Proposition 16 — converting machines to protocols costs only
// a constant factor in states and shifts the predicate by i = |F|.
//
// Reports |Q'| / machine-size across the construction and the sample
// programs (the paper's bound: |Q'| = 2|Q*| <= 2(|Q| + 7 sum|F_X| + L)),
// and demonstrates the input shift: the protocol for czerner n=1 accepts
// exactly the populations m with m - |F| >= 2, checked by exact
// verification.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/reachability.hpp"
#include "analysis/tables.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "machine/interp.hpp"
#include "pp/verifier.hpp"
#include "progmodel/sample_programs.hpp"

namespace {

using namespace ppde;

void print_report() {
  std::printf("== Theorem 5: machine -> protocol conversion overhead ==\n\n");
  analysis::TextTable t({"machine", "size", "|F|", "protocol states",
                         "states/size", "paper bound 2(|Q|+7*sumF+L)"});
  auto add = [&t](const std::string& name, const machine::Machine& m) {
    const std::uint64_t states = compile::conversion_state_count(m);
    std::uint64_t domain_sum = 0;
    for (const auto& pointer : m.pointers) domain_sum += pointer.domain.size();
    const std::uint64_t bound =
        2 * (m.num_registers() + 7 * domain_sum + m.num_instructions());
    t.add_row({name, std::to_string(m.size()),
               std::to_string(m.num_pointers()), std::to_string(states),
               analysis::fmt_double(static_cast<double>(states) /
                                        static_cast<double>(m.size()),
                                    2),
               std::to_string(bound)});
  };
  add("figure 1",
      compile::lower_program(progmodel::make_figure1_program()).machine);
  add("threshold(8)",
      compile::lower_program(progmodel::make_threshold_program(8)).machine);
  for (int n = 1; n <= 8; ++n)
    add("czerner n=" + std::to_string(n),
        compile::lower_program(czerner::build_construction(n).program)
            .machine);
  t.print(std::cout);

  {
    // Effective vs nominal state counts: the conversion allocates every
    // value x stage combination, but only a subset is occupiable.
    const auto lowered_n1 =
        compile::lower_program(czerner::build_construction(1).program);
    const auto conv_n1 = compile::machine_to_protocol(lowered_n1.machine);
    const std::uint64_t effective = analysis::reachable_state_count(
        conv_n1.protocol, conv_n1.initial_config(conv_n1.num_pointers + 4));
    std::printf("\neffective (occupiable) states for czerner n=1: %llu of "
                "%zu nominal (%.0f%%)\n",
                (unsigned long long)effective, conv_n1.protocol.num_states(),
                100.0 * static_cast<double>(effective) /
                    static_cast<double>(conv_n1.protocol.num_states()));
  }

  std::printf("\ninput shift (phi'(x) <=> x >= |F| && phi(x - |F|)), exact "
              "verdicts for czerner n=1 (k=2):\n");
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  pp::VerifierOptions options;
  options.witness_mode = true;
  options.max_configs = 2'000'000;
  for (std::uint64_t m_regs = 0; m_regs <= 3; ++m_regs) {
    std::vector<std::uint64_t> regs(5, 0);
    regs[4] = m_regs;
    const auto verdict = pp::Verifier(conv.protocol)
                             .verify(conv.pi(machine::initial_state(
                                                 lowered.machine, regs),
                                             false),
                                     options);
    std::printf("  m = |F| + %llu = %llu: %s   [phi'(m) = %s]\n",
                (unsigned long long)m_regs,
                (unsigned long long)(conv.num_pointers + m_regs),
                to_string(verdict.verdict).c_str(),
                m_regs >= 2 ? "accept" : "reject");
  }
  std::printf("\n");
}

void BM_StateCountFormula(benchmark::State& state) {
  const auto lowered = compile::lower_program(
      czerner::build_construction(static_cast<int>(state.range(0))).program);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        compile::conversion_state_count(lowered.machine));
}
BENCHMARK(BM_StateCountFormula)->Arg(4)->Arg(12);

void BM_FullConversionCzernerN1(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  for (auto _ : state)
    benchmark::DoNotOptimize(compile::machine_to_protocol(lowered.machine));
}
BENCHMARK(BM_FullConversionCzernerN1);

void BM_ExactPipelineVerification(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  std::vector<std::uint64_t> regs(5, 0);
  regs[4] = state.range(0);
  const pp::Config initial =
      conv.pi(machine::initial_state(lowered.machine, regs), false);
  pp::VerifierOptions options;
  options.witness_mode = true;
  for (auto _ : state)
    benchmark::DoNotOptimize(pp::Verifier(conv.protocol)
                                 .verify(initial, options));
}
BENCHMARK(BM_ExactPipelineVerification)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
