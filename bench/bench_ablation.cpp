// Ablation — the design choices behind the detect-restart loop.
//
// Two knobs of the randomized semantics are varied to show *why* the
// construction is built the way it is:
//
//   1. Restart distribution. The model requires every composition to be a
//      possible restart target; the Figure-7 shuffle realises that. The
//      ablation replaces it with (a) a uniform-composition sampler
//      (heavier register tails) and (b) a deliberately broken all-in-one-
//      register policy. Policy (b) can never produce the structured good
//      configurations (x̄_i = ȳ_i = N_i), so accepting inputs fail to
//      stabilise within any budget — restart coverage is load-bearing.
//
//   2. Detect bias. detect may return true with any probability when the
//      register is occupied (fairness only forbids probability 0). The
//      sweep shows convergence degrades smoothly at 1/4 and 3/4 — the
//      paper's correctness is scheduler-independent, only the constants
//      move.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "czerner/construction.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/interp.hpp"

namespace {

using namespace ppde;
using progmodel::RestartPolicy;

const char* policy_name(RestartPolicy policy) {
  switch (policy) {
    case RestartPolicy::kMultinomial:
      return "multinomial";
    case RestartPolicy::kStarsAndBars:
      return "uniform composition";
    case RestartPolicy::kAllInHub:
      return "all-in-hub (broken)";
  }
  return "?";
}

void print_report() {
  std::printf("== Ablation: restart distribution and detect bias ==\n\n");
  const auto c = czerner::build_construction(2);
  const auto flat = progmodel::FlatProgram::compile(c.program);

  std::printf("restart policy (n = 2, k = 10, accept case m = 10):\n");
  analysis::TextTable policy_table(
      {"policy", "verdict", "restarts", "steps"});
  for (RestartPolicy policy :
       {RestartPolicy::kMultinomial, RestartPolicy::kStarsAndBars,
        RestartPolicy::kAllInHub}) {
    std::vector<std::uint64_t> regs(9, 0);
    regs[8] = 10;
    progmodel::Runner runner(flat, regs, 12345 + 10);
    progmodel::RunOptions options;
    options.stable_window = 3'000'000;
    options.max_steps = 400'000'000;
    options.restart_policy = policy;
    const auto result = runner.run(options);
    // m = 10 = k must accept; a "reject" here is the window heuristic
    // reporting an OF that never became true — i.e. the policy failed.
    std::string verdict = "BUDGET EXHAUSTED";
    if (result.stabilised)
      verdict = result.output ? "ACCEPT"
                              : "stuck rejecting (WRONG: never accepts)";
    policy_table.add_row({policy_name(policy), verdict,
                          std::to_string(result.restarts),
                          std::to_string(result.steps)});
  }
  policy_table.print(std::cout);
  std::printf("\n(all-in-hub cannot reach any n-proper configuration, so "
              "the accept case never\naccepts — restart coverage of all "
              "compositions, which the Figure-7 shuffle\nprovides, is "
              "load-bearing. Also note uniform-composition restarts reach "
              "the\nstructured good configurations orders of magnitude "
              "faster than multinomial\nones, whose mass concentrates "
              "around m/|Q| per register.)\n\n");

  std::printf("detect bias (n = 2, k = 10, m = 10, multinomial restarts):\n");
  analysis::TextTable bias_table(
      {"P(detect true | occupied)", "verdict", "restarts", "steps"});
  for (const auto& [num, den] :
       {std::pair{1u, 4u}, {1u, 2u}, {3u, 4u}}) {
    std::vector<std::uint64_t> regs(9, 0);
    regs[8] = 10;
    progmodel::Runner runner(flat, regs, 777);
    progmodel::RunOptions options;
    options.stable_window = 3'000'000;
    options.max_steps = 900'000'000;
    options.detect_true_num = num;
    options.detect_true_den = den;
    const auto result = runner.run(options);
    bias_table.add_row(
        {std::to_string(num) + "/" + std::to_string(den),
         result.stabilised ? (result.output ? "ACCEPT" : "reject")
                           : "budget exhausted",
         std::to_string(result.restarts), std::to_string(result.steps)});
  }
  bias_table.print(std::cout);
  std::printf("\n");
}

void BM_PolicyThroughput(benchmark::State& state) {
  const auto c = czerner::build_construction(2);
  const auto flat = progmodel::FlatProgram::compile(c.program);
  std::vector<std::uint64_t> regs(9, 0);
  regs[8] = 40;
  progmodel::Runner runner(flat, regs, 5);
  runner.set_policies(static_cast<RestartPolicy>(state.range(0)), 1, 2);
  for (auto _ : state) benchmark::DoNotOptimize(runner.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyThroughput)->Arg(0)->Arg(1)->Arg(2);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
