// Theorem 1 / Theorem 3 — O(n) states decide x >= k for k >= 2^(2^(n-1)).
//
// The headline result. For each n the harness reports the exact threshold
// k(n) = 2 * sum N_i (bignum), the paper's lower bound 2^(2^(n-1)), the
// sizes of every pipeline stage, and the normalised state counts, checking:
//   * k(n) >= 2^(2^(n-1))                       (Theorem 3's bound),
//   * per-level increments of every size metric are eventually constant
//     (the O(n) claims), and
//   * states / log2 |phi| converges (the O(log |phi|) reading).
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "bignum/nat.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "presburger/predicate.hpp"
#include "smc/certify.hpp"
#include "smc/json.hpp"

namespace {

using namespace ppde;
using bignum::Nat;

void print_report() {
  std::printf("== Theorem 1: population protocols decide double-exponential "
              "thresholds ==\n\n");
  analysis::TextTable t({"n", "k(n) digits", ">= 2^(2^(n-1))?", "|phi|",
                         "program", "machine", "protocol states",
                         "states/log2|phi|"});
  std::uint64_t prev_states = 0, prev_delta = 0;
  bool deltas_stabilise = true;
  for (int n = 1; n <= 16; ++n) {
    const Nat k = czerner::Construction::threshold(n);
    const bool bound_holds =
        k >= Nat::pow2(std::uint64_t{1} << (n - 1));
    const auto c = czerner::build_construction(n);
    const auto lowered = compile::lower_program(c.program);
    const std::uint64_t states =
        compile::conversion_state_count(lowered.machine);
    const std::uint64_t phi =
        presburger::Predicate::unary_threshold(k)->size();
    t.add_row({std::to_string(n), std::to_string(k.to_decimal().size()),
               bound_holds ? "yes" : "NO!", std::to_string(phi),
               std::to_string(c.program.size().total()),
               std::to_string(lowered.machine.size()),
               std::to_string(states),
               analysis::fmt_double(static_cast<double>(states) /
                                        std::log2(static_cast<double>(phi)),
                                    1)});
    // The first levels differ (AssertProper(0) and AssertProper(i-2) are
    // omitted near the bottom), so the per-level increment settles at n=4.
    if (n >= 4) {
      const std::uint64_t delta = states - prev_states;
      if (prev_delta != 0 && delta != prev_delta) deltas_stabilise = false;
      prev_delta = delta;
    }
    prev_states = states;
  }
  t.print(std::cout);
  std::printf("\nper-level state increment %s constant from n >= 4 -> state "
              "count is exactly linear in n.\n",
              deltas_stabilise ? "is" : "IS NOT");
  std::printf("paper: O(n) states for k >= 2^(2^n) (main text) resp. "
              "2^(2^(n-1)) (Theorem 3). measured: linear states, bound "
              "holds at every n.\n\n");

  std::printf("exact thresholds (k fits no machine word from n = 7):\n");
  for (int n : {1, 2, 3, 4, 5, 6, 7, 10}) {
    const Nat k = czerner::Construction::threshold(n);
    std::string text = k.to_decimal();
    if (text.size() > 60) text = text.substr(0, 56) + "...";
    std::printf("  k(%2d) = %s\n", n, text.c_str());
  }
  std::printf("\n");

  // The sizes above are exact; the *behaviour* claim (stabilise to the
  // correct verdict) is exhaustively verified only up to the S22 frontier.
  // Close the report with an S23 certificate for the full n = 1 pipeline —
  // election, counting, broadcast — an SMC verdict with explicit error
  // bounds instead of a bare trial count.
  std::printf("SMC certificate (S23), full n = 1 pipeline, m = |F| + 4 "
              "(expected ACCEPT, k(1) = 2):\n");
  {
    const auto lowered =
        compile::lower_program(czerner::build_construction(1).program);
    const auto conv = compile::machine_to_protocol(lowered.machine);
    smc::CertifyOptions options;
    options.delta = 0.1;
    options.indifference = 0.8;
    options.alpha = options.beta = 0.01;
    options.max_trials = 24;
    options.seed = 20230710;
    options.sim.stable_window = 90'000'000;
    options.sim.max_interactions = 2'000'000'000;
    const smc::Certificate cert =
        smc::certify(conv.protocol,
                     conv.initial_config(conv.num_pointers + 4),
                     /*expected_output=*/true, options);
    std::printf("  %s\n\n", smc::to_jsonl(cert).c_str());
  }
}

void BM_ThresholdBignum(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state)
    benchmark::DoNotOptimize(czerner::Construction::threshold(n));
}
BENCHMARK(BM_ThresholdBignum)->Arg(8)->Arg(12)->Arg(16)->Arg(20);

void BM_FullPipelineSizes(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto lowered =
        compile::lower_program(czerner::build_construction(n).program);
    benchmark::DoNotOptimize(
        compile::conversion_state_count(lowered.machine));
  }
}
BENCHMARK(BM_FullPipelineSizes)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
