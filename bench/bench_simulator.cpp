// Substrate benchmarks: simulator and exact-verifier throughput.
//
// Not a paper artefact — these measure the infrastructure every other
// experiment stands on: interactions/second of the random scheduler across
// protocol shapes and population sizes, and configurations/second of the
// bottom-SCC verifier.
#include <benchmark/benchmark.h>

#include "baselines/flock.hpp"
#include "baselines/majority.hpp"
#include "baselines/remainder.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"

namespace {

using namespace ppde;

void BM_SimulatorMajority(benchmark::State& state) {
  const pp::Protocol protocol = baselines::make_majority();
  const auto half = static_cast<std::uint32_t>(state.range(0) / 2);
  pp::Simulator sim(protocol,
                    baselines::majority_initial(protocol, half, half), 7);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorMajority)->Arg(100)->Arg(10'000)->Arg(1'000'000);

void BM_SimulatorFlock(benchmark::State& state) {
  const pp::Protocol protocol =
      baselines::make_flock_of_birds(state.range(0));
  pp::Simulator sim(
      protocol,
      baselines::flock_initial(protocol,
                               static_cast<std::uint32_t>(state.range(0))),
      11);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorFlock)->Arg(64)->Arg(1024);

void BM_SimulatorCzernerProtocol(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  pp::Simulator sim(conv.protocol,
                    conv.initial_config(conv.num_pointers + state.range(0)),
                    13);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorCzernerProtocol)->Arg(2)->Arg(16)->Arg(64);

void BM_VerifierMajority(benchmark::State& state) {
  const pp::Protocol protocol = baselines::make_majority();
  const auto half = static_cast<std::uint32_t>(state.range(0) / 2);
  const pp::Config initial =
      baselines::majority_initial(protocol, half, half + 1);
  for (auto _ : state) {
    const auto result = pp::Verifier(protocol).verify(initial);
    benchmark::DoNotOptimize(result);
    state.counters["configs"] = static_cast<double>(result.explored_configs);
  }
}
BENCHMARK(BM_VerifierMajority)->Arg(10)->Arg(40)->Arg(100);

void BM_VerifierRemainder(benchmark::State& state) {
  const pp::Protocol protocol = baselines::make_remainder(5, 2);
  const pp::Config initial = baselines::remainder_initial(
      protocol, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(pp::Verifier(protocol).verify(initial));
}
BENCHMARK(BM_VerifierRemainder)->Arg(8)->Arg(16);

void BM_VerifierCzernerPipeline(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  std::vector<std::uint64_t> regs(5, 0);
  regs[4] = state.range(0);
  pp::VerifierOptions options;
  options.witness_mode = true;
  const pp::Config initial =
      conv.pi(machine::initial_state(lowered.machine, regs), false);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        pp::Verifier(conv.protocol).verify(initial, options));
}
BENCHMARK(BM_VerifierCzernerPipeline)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

BENCHMARK_MAIN();
