// Substrate benchmarks: simulator and exact-verifier throughput.
//
// Not a paper artefact — these measure the infrastructure every other
// experiment stands on: interactions/second of the random scheduler across
// protocol shapes and population sizes, and configurations/second of the
// bottom-SCC verifier. Before the google-benchmark tables this binary
// prints two engine reports (DESIGN.md S21): per-agent vs count-based vs
// count+null-skip effective throughput on the converted n=1 Czerner
// protocol, and ensemble wall-clock scaling over thread counts.
//
// With --json[=path] the binary instead writes a machine-readable engine
// report (default BENCH_engine.json) and exits — the CI perf-smoke job's
// regression artefact.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string_view>
#include <vector>

#include "baselines/flock.hpp"
#include "baselines/majority.hpp"
#include "baselines/remainder.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/count_sim.hpp"
#include "engine/ensemble.hpp"
#include "engine/simd.hpp"
#include "isa/compiled.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"

namespace {

using namespace ppde;

// ---------------------------------------------------------------------------
// Engine comparison: same protocol, same population, fixed wall budget per
// engine; the figure of merit is *effective* interactions/second — meetings
// advanced per second of wall clock, where a skipped null meeting counts
// exactly like an executed one (it is one, just accounted in closed form).
// ---------------------------------------------------------------------------

template <typename Step>
std::uint64_t run_for(double budget_seconds, const Step& step) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline =
      start + std::chrono::duration<double>(budget_seconds);
  std::uint64_t batches = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    // Check the clock every few thousand steps, not every step.
    for (int i = 0; i < 4096; ++i) step();
    ++batches;
  }
  return batches;
}

struct EngineRow {
  const char* name;
  std::uint64_t interactions;
  std::uint64_t firings;
  double seconds;
};

struct EngineComparison {
  std::uint32_t m;
  EngineRow rows[3];
};

EngineComparison measure_engines(std::uint32_t extra_agents,
                                 double budget_seconds,
                                 isa::Dispatch dispatch) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const pp::Config initial =
      conv.initial_config(conv.num_pointers + extra_agents);
  const engine::PairIndex index(conv.protocol);

  EngineComparison result;
  result.m = conv.num_pointers + extra_agents;

  {
    pp::Simulator sim(conv.protocol, initial, 13, dispatch);
    const auto start = std::chrono::steady_clock::now();
    run_for(budget_seconds, [&] { sim.step(); });
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.rows[0] = {"per-agent", sim.interactions(), sim.metrics().firings,
                      elapsed};
  }
  for (int skip = 0; skip <= 1; ++skip) {
    engine::CountSimOptions options;
    options.null_skip = skip != 0;
    options.dispatch = dispatch;
    engine::CountSimulator sim(conv.protocol, index, initial, 13, options);
    const auto start = std::chrono::steady_clock::now();
    run_for(budget_seconds, [&] { sim.step(); });
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    result.rows[1 + skip] = {skip ? "count+null-skip" : "count-based",
                             sim.interactions(), sim.metrics().firings,
                             elapsed};
  }
  return result;
}

void print_engine_comparison(std::uint32_t extra_agents,
                             double budget_seconds, isa::Dispatch dispatch) {
  const EngineComparison comparison =
      measure_engines(extra_agents, budget_seconds, dispatch);
  std::printf(
      "\n=== Engine comparison: converted Czerner n=1, m = %u agents, "
      "%.1fs budget per engine, %s dispatch ===\n",
      comparison.m, budget_seconds, isa::to_string(dispatch));
  std::printf("%-16s %18s %14s %20s %10s\n", "engine", "interactions",
              "firings", "eff. interactions/s", "speedup");
  const double base =
      static_cast<double>(comparison.rows[0].interactions) /
      comparison.rows[0].seconds;
  for (const EngineRow& row : comparison.rows) {
    const double rate =
        static_cast<double>(row.interactions) / row.seconds;
    std::printf("%-16s %18llu %14llu %20.3e %9.1fx\n", row.name,
                static_cast<unsigned long long>(row.interactions),
                static_cast<unsigned long long>(row.firings), rate,
                rate / base);
  }
}

// ---------------------------------------------------------------------------
// Machine-readable perf regression report (--json[=path]). One row per
// (m, engine mode, dispatch mode, harness, batch width) on the converted
// Czerner n=1 protocol; the perf-smoke CI job validates the schema and
// archives the file so throughput trends stay visible across commits.
// firings_per_sec is the regression metric (work actually done);
// effective_meetings_per_sec counts closed-form-skipped null meetings too
// and is the figure comparable across engine modes. Schema v2 added the
// "dispatch" field (S26). Schema v3 (S28) adds "harness" — "step" rows
// drive one simulator's step() loop, "fleet" rows drive run_ensemble at
// threads = 1 — and "batch", the lockstep lane width (1 on every scalar
// row). Fleet rows exist for batch 1 vs 8 vs 16 on count+null-skip so the
// lockstep win (or shortfall) is measured where it ships, and their
// physics counters are bit-identical across widths by construction.
// ---------------------------------------------------------------------------

struct ReportRow {
  std::uint32_t m;
  const char* mode;
  const char* dispatch;
  const char* harness;
  std::uint32_t batch;
  double firings_per_sec;
  double effective_meetings_per_sec;
};

/// One fleet measurement: `trials` independent count+null-skip trials run
/// to a fixed per-trial interaction budget (the window is set beyond the
/// budget so no trial stabilises early — every width does identical
/// work). Throughput is summed firings (resp. meetings, skipped included)
/// over fleet wall time.
ReportRow measure_fleet(const compile::ProtocolConversion& conv,
                        std::uint32_t m, std::uint32_t batch,
                        std::uint64_t trials, std::uint64_t per_trial) {
  engine::EnsembleOptions options;
  options.trials = trials;
  options.threads = 1;
  options.master_seed = 13;
  options.engine = engine::EngineKind::kCountNullSkip;
  options.dispatch = isa::Dispatch::kBytecode;
  options.batch = batch;
  options.sim.stable_window = ~std::uint64_t{0} / 4;
  options.sim.max_interactions = per_trial;
  const engine::EnsembleStats stats =
      engine::run_ensemble(conv.protocol, conv.initial_config(m), options);
  const double wall = stats.wall_seconds > 0 ? stats.wall_seconds : 1e-9;
  return {m,
          "count+null-skip",
          "bytecode",
          "fleet",
          batch,
          static_cast<double>(stats.totals.firings) / wall,
          static_cast<double>(stats.totals.meetings) / wall};
}

int write_json_report(const char* path, double budget_seconds) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);

  std::vector<ReportRow> rows;
  for (const std::uint32_t extra : {10'000u, 100'000u}) {
    double null_skip_bytecode_rate = 0.0;
    std::uint32_t m = 0;
    for (const isa::Dispatch dispatch :
         {isa::Dispatch::kInterp, isa::Dispatch::kBytecode}) {
      const EngineComparison comparison =
          measure_engines(extra, budget_seconds, dispatch);
      m = comparison.m;
      for (const EngineRow& row : comparison.rows) {
        const double eff =
            static_cast<double>(row.interactions) / row.seconds;
        const double firings =
            static_cast<double>(row.firings) / row.seconds;
        rows.push_back({comparison.m, row.name, isa::to_string(dispatch),
                        "step", 1, firings, eff});
        if (dispatch == isa::Dispatch::kBytecode &&
            std::string_view(row.name) == "count+null-skip")
          null_skip_bytecode_rate = eff;
      }
    }
    // Fleet rows: per-trial budget calibrated from the step loop's
    // measured rate so the scalar fleet spends ~budget_seconds; every
    // width then runs the identical trial workload.
    const std::uint64_t trials = 32;
    const std::uint64_t per_trial = std::max<std::uint64_t>(
        100'000,
        static_cast<std::uint64_t>(null_skip_bytecode_rate * budget_seconds) /
            trials);
    for (const std::uint32_t batch : {1u, 8u, 16u})
      rows.push_back(measure_fleet(conv, m, batch, trials, per_trial));
  }

  std::FILE* out = std::fopen(path, "w");
  if (out == nullptr) {
    std::fprintf(stderr, "bench_simulator: cannot open %s for writing\n",
                 path);
    return 1;
  }
  std::fprintf(out,
               "{\n  \"bench_engine_v\": 3,\n  \"simd\": \"%s\",\n"
               "  \"rows\": [",
               engine::simd::isa_name());
  bool first = true;
  for (const ReportRow& row : rows) {
    std::fprintf(out,
                 "%s\n    {\"protocol\": \"czerner-n1-converted\", "
                 "\"m\": %u, \"mode\": \"%s\", \"dispatch\": \"%s\", "
                 "\"harness\": \"%s\", \"batch\": %u, "
                 "\"firings_per_sec\": %.6e, "
                 "\"effective_meetings_per_sec\": %.6e, \"threads\": 1}",
                 first ? "" : ",", row.m, row.mode, row.dispatch, row.harness,
                 row.batch, row.firings_per_sec,
                 row.effective_meetings_per_sec);
    first = false;
  }
  std::fprintf(out, "\n  ]\n}\n");
  std::fclose(out);
  std::printf("bench_simulator: wrote %s\n", path);
  return 0;
}

// ---------------------------------------------------------------------------
// Ensemble scaling: K independent flock-of-birds trials to stable
// consensus, identical verdicts at every thread count (per-trial seeds
// derive from the master seed, not from thread assignment); only the wall
// clock moves. Flock converges one way and then freezes, so each trial is
// substantial but strictly bounded — unlike e.g. 4-state majority, whose
// a/b counter-dynamics can random-walk past any budget.
// ---------------------------------------------------------------------------

void print_ensemble_scaling(std::uint32_t population,
                            std::uint64_t trials) {
  const pp::Protocol protocol = baselines::make_flock_of_birds(64);
  const pp::Config initial = baselines::flock_initial(protocol, population);

  engine::EnsembleOptions options;
  options.trials = trials;
  options.master_seed = 17;
  options.engine = engine::EngineKind::kCountNullSkip;
  // The window must exceed the time to the *first* accepting agent, or the
  // initial all-reject consensus "stabilises" spuriously; once the flock
  // freezes all-accepting, the frozen shortcut satisfies any window for
  // free.
  options.sim.stable_window = 10'000'000'000ULL;
  options.sim.max_interactions = 1'000'000'000'000ULL;

  std::printf(
      "\n=== Ensemble scaling: flock k=64, m = %u, %llu trials, "
      "count+null-skip ===\n",
      population, static_cast<unsigned long long>(trials));
  std::printf("%-8s %14s %12s %12s %12s\n", "threads", "wall [s]",
              "speedup", "stabilised", "accept");
  double base_wall = 0.0;
  for (unsigned threads : {1u, 4u, 8u}) {
    options.threads = threads;
    const engine::EnsembleStats stats =
        engine::run_ensemble(protocol, initial, options);
    if (threads == 1) base_wall = stats.wall_seconds;
    std::printf("%-8u %14.3f %11.2fx %12.2f %12.2f\n", stats.threads_used,
                stats.wall_seconds, base_wall / stats.wall_seconds,
                stats.stabilised_fraction(), stats.accept_fraction());
  }
}

void BM_SimulatorMajority(benchmark::State& state) {
  const pp::Protocol protocol = baselines::make_majority();
  const auto half = static_cast<std::uint32_t>(state.range(0) / 2);
  pp::Simulator sim(protocol,
                    baselines::majority_initial(protocol, half, half), 7);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorMajority)->Arg(100)->Arg(10'000)->Arg(1'000'000);

void BM_SimulatorFlock(benchmark::State& state) {
  const pp::Protocol protocol =
      baselines::make_flock_of_birds(state.range(0));
  pp::Simulator sim(
      protocol,
      baselines::flock_initial(protocol,
                               static_cast<std::uint32_t>(state.range(0))),
      11);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorFlock)->Arg(64)->Arg(1024);

void BM_SimulatorCzernerProtocol(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  pp::Simulator sim(conv.protocol,
                    conv.initial_config(conv.num_pointers + state.range(0)),
                    13);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SimulatorCzernerProtocol)->Arg(2)->Arg(16)->Arg(64);

void BM_CountSimulatorCzerner(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  engine::CountSimOptions options;
  options.null_skip = false;
  engine::CountSimulator sim(
      conv.protocol, conv.initial_config(conv.num_pointers + state.range(0)),
      13, options);
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSimulatorCzerner)->Arg(2)->Arg(64)->Arg(10'000);

void BM_CountSimulatorCzernerNullSkip(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  engine::CountSimulator sim(
      conv.protocol, conv.initial_config(conv.num_pointers + state.range(0)),
      13);
  // One step() can advance many meetings; report *meetings* as items so the
  // items/s column is directly comparable with the per-agent benchmarks.
  std::uint64_t before = sim.interactions();
  for (auto _ : state) benchmark::DoNotOptimize(sim.step());
  state.SetItemsProcessed(sim.interactions() - before);
}
BENCHMARK(BM_CountSimulatorCzernerNullSkip)->Arg(2)->Arg(64)->Arg(10'000);

void BM_VerifierMajority(benchmark::State& state) {
  const pp::Protocol protocol = baselines::make_majority();
  const auto half = static_cast<std::uint32_t>(state.range(0) / 2);
  const pp::Config initial =
      baselines::majority_initial(protocol, half, half + 1);
  for (auto _ : state) {
    const auto result = pp::Verifier(protocol).verify(initial);
    benchmark::DoNotOptimize(result);
    state.counters["configs"] = static_cast<double>(result.explored_configs);
  }
}
BENCHMARK(BM_VerifierMajority)->Arg(10)->Arg(40)->Arg(100);

void BM_VerifierRemainder(benchmark::State& state) {
  const pp::Protocol protocol = baselines::make_remainder(5, 2);
  const pp::Config initial = baselines::remainder_initial(
      protocol, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state)
    benchmark::DoNotOptimize(pp::Verifier(protocol).verify(initial));
}
BENCHMARK(BM_VerifierRemainder)->Arg(8)->Arg(16);

void BM_VerifierCzernerPipeline(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  std::vector<std::uint64_t> regs(5, 0);
  regs[4] = state.range(0);
  pp::VerifierOptions options;
  options.witness_mode = true;
  const pp::Config initial =
      conv.pi(machine::initial_state(lowered.machine, regs), false);
  for (auto _ : state)
    benchmark::DoNotOptimize(
        pp::Verifier(conv.protocol).verify(initial, options));
}
BENCHMARK(BM_VerifierCzernerPipeline)->Arg(1)->Arg(2)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark sees (and rejects) them.
  const char* json_path = nullptr;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--json") {
      json_path = "BENCH_engine.json";
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = argv[i] + 7;
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (json_path != nullptr)
    return write_json_report(json_path, /*budget_seconds=*/2.0);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  print_engine_comparison(/*extra_agents=*/10'000, /*budget_seconds=*/1.0,
                          isa::Dispatch::kInterp);
  print_engine_comparison(/*extra_agents=*/10'000, /*budget_seconds=*/1.0,
                          isa::Dispatch::kBytecode);
  print_ensemble_scaling(/*population=*/1'000'000, /*trials=*/8);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
