// Serve-daemon scaling benchmark (DESIGN.md S25).
//
// Runs the same certification query against an in-process `ppde serve`
// instance at 1, 2, 4 and 8 forked workers, and reports the wall time of
// each run plus the certificate digest. The digest MUST be byte-identical
// at every worker count — the daemon replays the canonical fold over
// ordered trial records, so sharding is invisible to the certificate —
// and this binary exits non-zero if it is not, making it usable as a CI
// gate as well as a scaling probe.
//
// The certify rows pin the invariant, not throughput — the SPRT stops
// after a handful of trials, so their wall time is fork + speculative
// drain overhead and *rises* with workers. Scaling is measured on a
// second set of rows: a fixed-size ensemble query (no early stopping,
// every trial runs its full budget), which is the embarrassingly parallel
// workload the worker fleet exists for.
//
// Not a google-benchmark binary: each measurement forks worker processes,
// which must happen from a single-threaded parent, and the unit of
// interest is one whole query, not a tight loop. Writes a machine-
// readable report (default BENCH_serve.json, override with --json=PATH):
//
//   {"bench_serve_v": 1, "query": {...}, "runs": [...],
//    "ensemble_query": {...}, "ensemble_runs": [...]}
//
// EXPERIMENTS.md records the numbers.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/proto.hpp"
#include "serve/server.hpp"

namespace {

using namespace ppde;

serve::QueryParams bench_query() {
  serve::QueryParams query;
  query.req = "certify";
  query.n = 1;
  query.extra = 8;  // population 22
  query.trials = 24;
  query.seed = 7;
  query.delta = 0.1;
  query.indifference = 0.8;
  query.window = 1'000'000;
  query.budget = 100'000'000;
  query.shard = 4;
  return query;
}

serve::QueryParams scaling_query() {
  // Fixed work: 16 trials, each running its full interaction budget (the
  // 90M-meeting consensus window is never satisfied at population 22, so
  // no trial stops early), dispatched one trial per batch so every worker
  // stays busy.
  serve::QueryParams query = bench_query();
  query.req = "ensemble";
  query.trials = 16;
  query.window = 90'000'000;
  query.budget = 200'000'000;
  query.shard = 1;
  return query;
}

std::string extract(const std::string& response, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto start = response.find(needle);
  if (start == std::string::npos) return {};
  const auto begin = start + needle.size();
  const auto end = response.find('"', begin);
  if (end == std::string::npos) return {};
  return response.substr(begin, end - begin);
}

struct Run {
  unsigned workers = 0;
  double wall_seconds = 0.0;
  std::string digest;
  std::string verdict;
};

Run run_at(unsigned workers, const serve::QueryParams& query) {
  serve::ServerOptions options;
  options.port = 0;  // ephemeral
  options.workers = workers;
  options.shard = query.shard;
  serve::Server server(options);
  std::thread runner([&server] { server.run(); });

  const std::string hostport =
      "127.0.0.1:" + std::to_string(server.port());
  std::string response, error;
  const auto start = std::chrono::steady_clock::now();
  const bool ok =
      serve::rpc(hostport, serve::encode_query(query), &response, &error);
  const auto stop = std::chrono::steady_clock::now();

  server.request_stop();
  runner.join();

  if (!ok) throw std::runtime_error("rpc failed: " + error);
  if (response.find("\"ok\":true") == std::string::npos)
    throw std::runtime_error("query failed: " + response);

  Run run;
  run.workers = workers;
  run.wall_seconds = std::chrono::duration<double>(stop - start).count();
  if (query.req == "certify") {
    run.digest = extract(response, "digest");
    run.verdict = extract(response, "verdict");
    if (run.digest.empty() || run.verdict.empty())
      throw std::runtime_error("malformed certificate: " + response);
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path = "BENCH_serve.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
  }

  const serve::QueryParams query = bench_query();
  const serve::QueryParams ensemble = scaling_query();
  std::vector<Run> runs, ensemble_runs;
  try {
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      runs.push_back(run_at(workers, query));
      const Run& run = runs.back();
      std::printf("certify   workers=%u  wall=%.3fs  verdict=%s  "
                  "digest=%s\n",
                  run.workers, run.wall_seconds, run.verdict.c_str(),
                  run.digest.c_str());
    }
    for (unsigned workers : {1u, 2u, 4u, 8u}) {
      ensemble_runs.push_back(run_at(workers, ensemble));
      const Run& run = ensemble_runs.back();
      std::printf("ensemble  workers=%u  wall=%.3fs  speedup=%.2f\n",
                  run.workers, run.wall_seconds,
                  ensemble_runs.front().wall_seconds / run.wall_seconds);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }

  bool identical = true;
  for (const Run& run : runs)
    identical = identical && run.digest == runs.front().digest &&
                run.verdict == runs.front().verdict;
  if (!identical) {
    std::fprintf(stderr,
                 "bench_serve: digest/verdict differ across worker "
                 "counts — merge determinism is broken\n");
    return 1;
  }

  std::FILE* out = std::fopen(json_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n",
                 json_path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\"bench_serve_v\": 1, \"query\": {\"n\": %d, \"extra\": "
               "%u, \"trials\": %llu, \"seed\": %llu, \"delta\": %g, "
               "\"indifference\": %g, \"window\": %llu, \"budget\": %llu, "
               "\"shard\": %llu}, \"runs\": [",
               query.n, query.extra,
               static_cast<unsigned long long>(query.trials),
               static_cast<unsigned long long>(query.seed), query.delta,
               query.indifference,
               static_cast<unsigned long long>(query.window),
               static_cast<unsigned long long>(query.budget),
               static_cast<unsigned long long>(query.shard));
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const Run& run = runs[i];
    std::fprintf(out,
                 "%s{\"workers\": %u, \"wall_seconds\": %.6f, "
                 "\"verdict\": \"%s\", \"digest\": \"%s\"}",
                 i == 0 ? "" : ", ", run.workers, run.wall_seconds,
                 run.verdict.c_str(), run.digest.c_str());
  }
  std::fprintf(out,
               "], \"digest_identical\": true, \"ensemble_query\": "
               "{\"trials\": %llu, \"budget\": %llu, \"shard\": %llu}, "
               "\"ensemble_runs\": [",
               static_cast<unsigned long long>(ensemble.trials),
               static_cast<unsigned long long>(ensemble.budget),
               static_cast<unsigned long long>(ensemble.shard));
  for (std::size_t i = 0; i < ensemble_runs.size(); ++i) {
    const Run& run = ensemble_runs[i];
    std::fprintf(out,
                 "%s{\"workers\": %u, \"wall_seconds\": %.6f, "
                 "\"speedup\": %.3f}",
                 i == 0 ? "" : ", ", run.workers, run.wall_seconds,
                 ensemble_runs.front().wall_seconds / run.wall_seconds);
  }
  std::fprintf(out, "]}\n");
  std::fclose(out);
  std::printf("wrote %s\n", json_path.c_str());
  return 0;
}
