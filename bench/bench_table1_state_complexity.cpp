// Table 1 — state complexity of threshold predicates x >= k.
//
// The paper's table summarises the landscape:
//
//   year  result                     type           ordinary        leaders
//   2018  Blondin, Esparza, Jaax     construction   O(|phi|)        O(log|phi|)
//   2021  Czerner, Esparza           impossibility  Ω(log log|phi|) Ω(ack^-1|phi|)
//   2021  Czerner, Esparza, Leroux   impossibility  Ω(log|phi|)
//   2022  Leroux                     impossibility                  Ω(log|phi|)
//   this  paper                      construction   O(log|phi|)
//
// This harness regenerates the *measurable* rows with the protocols built
// in this repository: the exponential-state classic (flock of birds, the
// 2004 baseline that O(|phi|) constructions improve), a Theta(|phi|)-state
// leaderless construction (the doubling protocol, standing in for
// Blondin–Esparza–Jaax, DESIGN.md §4), and this paper's Theta(log |phi|)
// construction. For each family it prints measured state counts against
// |phi| and the normalised ratio that should be constant if the family
// matches its claimed growth law.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "baselines/doubling.hpp"
#include "baselines/flock.hpp"
#include "bignum/nat.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "presburger/predicate.hpp"

namespace {

using ppde::bignum::Nat;

std::uint64_t phi_size(const Nat& k) {
  return ppde::presburger::Predicate::unary_threshold(k)->size();
}

void print_report() {
  std::printf(
      "== Table 1: state complexity of threshold predicates (measured) ==\n"
      "Upper bounds need only hold for infinitely many k; each family is\n"
      "sampled on its natural ladder. 'ratio' divides states by the claimed\n"
      "growth law — a flat column confirms the law's shape.\n\n");

  {
    std::printf("[2004 baseline] flock of birds — Theta(k) = Theta(2^|phi|) "
                "states, 1-aware:\n");
    ppde::analysis::TextTable t(
        {"k", "|phi|", "states", "ratio states/2^|phi| (~const)"});
    for (std::uint64_t k : {4ull, 16ull, 64ull, 256ull, 1024ull}) {
      const auto states = ppde::baselines::make_flock_of_birds(k).num_states();
      t.add_row({std::to_string(k), std::to_string(phi_size(Nat{k})),
                 std::to_string(states),
                 ppde::analysis::fmt_double(
                     static_cast<double>(states) /
                         std::pow(2.0, static_cast<double>(phi_size(Nat{k})) -
                                           3.0),
                     3)});
    }
    t.print(std::cout);
  }

  {
    std::printf("\n[2018-style succinct] doubling protocol — Theta(|phi|) "
                "states, leaderless, 1-aware:\n");
    ppde::analysis::TextTable t(
        {"k", "|phi|", "states", "ratio states/|phi| (~const)"});
    for (std::uint32_t j : {4u, 8u, 16u, 32u, 63u}) {
      const Nat k = Nat::pow2(j);
      const auto states = ppde::baselines::make_doubling(j).num_states();
      t.add_row({"2^" + std::to_string(j), std::to_string(phi_size(k)),
                 std::to_string(states),
                 ppde::analysis::fmt_double(static_cast<double>(states) /
                                                static_cast<double>(
                                                    phi_size(k)),
                                            3)});
    }
    t.print(std::cout);
  }

  {
    std::printf("\n[this paper] Section-6 construction — Theta(log |phi|) "
                "states, leaderless, NOT 1-aware:\n");
    ppde::analysis::TextTable t({"n", "k (digits)", "|phi|", "states",
                                 "ratio states/log2|phi| (~const)"});
    for (int n = 4; n <= 14; n += 2) {
      const Nat k = ppde::czerner::Construction::threshold(n);
      const auto lowered = ppde::compile::lower_program(
          ppde::czerner::build_construction(n).program);
      const std::uint64_t states =
          ppde::compile::conversion_state_count(lowered.machine);
      t.add_row({std::to_string(n), std::to_string(k.to_decimal().size()),
                 std::to_string(phi_size(k)), std::to_string(states),
                 ppde::analysis::fmt_double(
                     static_cast<double>(states) /
                         std::log2(static_cast<double>(phi_size(k))),
                     1)});
    }
    t.print(std::cout);
  }

  std::printf(
      "\nLower-bound rows (not constructions; for context): "
      "Ω(log|phi|) states are necessary\nboth without leaders "
      "[Czerner-Esparza-Leroux 21] and with [Leroux 22] — the measured\n"
      "O(log|phi|) row above is therefore tight.\n\n");
}

// -- timed benchmarks ---------------------------------------------------------

void BM_BuildFlock(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(
        ppde::baselines::make_flock_of_birds(state.range(0)));
}
BENCHMARK(BM_BuildFlock)->Arg(64)->Arg(256)->Arg(1024);

void BM_BuildDoubling(benchmark::State& state) {
  for (auto _ : state)
    benchmark::DoNotOptimize(ppde::baselines::make_doubling(
        static_cast<std::uint32_t>(state.range(0))));
}
BENCHMARK(BM_BuildDoubling)->Arg(16)->Arg(32)->Arg(63);

void BM_BuildCzernerPipelineStates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    const auto lowered = ppde::compile::lower_program(
        ppde::czerner::build_construction(n).program);
    benchmark::DoNotOptimize(
        ppde::compile::conversion_state_count(lowered.machine));
  }
}
BENCHMARK(BM_BuildCzernerPipelineStates)->Arg(2)->Arg(6)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
