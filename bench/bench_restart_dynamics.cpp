// Section 5.2 / Lemma 4 — dynamics of the detect-restart loop.
//
// The construction trades time for space: it guesses an initial
// configuration, verifies invariants, and restarts on any violation, so
// the number of restarts until a good configuration is hit — and survives
// verification — explodes near the threshold. This harness measures, at
// program level (restart = one step):
//   * restarts and steps to stabilisation vs m for n = 1 and n = 2,
//   * the space/time trade against the flock-of-birds baseline: the
//     construction wins the state count by a double-exponential factor and
//     loses convergence time by orders of magnitude — the shape the paper
//     predicts (it explicitly leaves running-time optimisation to future
//     work).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "baselines/flock.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/count_sim.hpp"
#include "engine/ensemble.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/interp.hpp"

namespace {

using namespace ppde;

void dynamics_table(int n, std::uint64_t max_m, std::uint64_t max_steps) {
  const auto c = czerner::build_construction(n);
  const auto flat = progmodel::FlatProgram::compile(c.program);
  const std::uint64_t k = czerner::Construction::threshold_u64(n);
  std::printf("n = %d (k = %llu): program-level randomized runs, everything "
              "starts in R\n",
              n, (unsigned long long)k);
  analysis::TextTable t(
      {"m", "verdict", "restarts", "steps", "expected"});
  for (std::uint64_t m = 0; m <= max_m; ++m) {
    std::vector<std::uint64_t> regs(c.num_registers(), 0);
    regs[c.R()] = m;
    progmodel::Runner runner(flat, regs, 1234 + m);
    progmodel::RunOptions options;
    options.stable_window = n == 1 ? 400'000 : 3'000'000;
    options.max_steps = max_steps;
    const auto result = runner.run(options);
    t.add_row({std::to_string(m),
               result.stabilised ? (result.output ? "ACCEPT" : "reject")
                                 : "budget hit",
               std::to_string(result.restarts), std::to_string(result.steps),
               m >= k ? "ACCEPT" : "reject"});
  }
  t.print(std::cout);
  std::printf("\n");
}

void print_report() {
  std::printf("== Restart dynamics of the detect-restart loop ==\n\n");
  dynamics_table(1, 6, 100'000'000);
  dynamics_table(2, 12, 900'000'000);

  std::printf("protocol-level convergence scaling (n = 1, accept side):\n");
  {
    const auto lowered =
        compile::lower_program(czerner::build_construction(1).program);
    const auto conv = compile::machine_to_protocol(lowered.machine);
    analysis::TextTable scale({"m (= |F| + extra)", "interactions to full"
                               " consensus", "parallel time"});
    const engine::PairIndex index(conv.protocol);
    for (std::uint32_t extra : {2u, 6u, 14u, 30u}) {
      engine::CountSimulator sim(conv.protocol, index,
                                 conv.initial_config(conv.num_pointers + extra),
                                 811 + extra);
      std::uint64_t done = 0;
      const std::uint64_t budget = 3'000'000'000ull;
      while (sim.accepting_agents() != sim.population() &&
             sim.interactions() < budget && !sim.frozen())
        sim.step();
      done = sim.interactions();
      scale.add_row(
          {std::to_string(conv.num_pointers + extra),
           done >= budget ? "budget hit" : std::to_string(done),
           analysis::fmt_double(static_cast<double>(done) /
                                    static_cast<double>(sim.population()),
                                0)});
    }
    scale.print(std::cout);
    std::printf("\n(the machine's execution is inherently sequential — one"
                " IP agent drives every\ninstruction — so parallel time"
                " grows with m instead of shrinking: the price of\n"
                "simulating a register machine in a population.)\n\n");
  }

  std::printf("space/time trade at threshold k = 2 (n = 1):\n");
  analysis::TextTable t({"protocol", "states", "median interactions to"
                         " stable consensus (m = 4)"});
  {
    pp::Protocol flock = baselines::make_flock_of_birds(2);
    engine::EnsembleOptions options;
    options.trials = 9;
    options.master_seed = 5;
    options.sim.stable_window = 50'000;
    const engine::EnsembleStats stats =
        engine::run_ensemble(flock, baselines::flock_initial(flock, 4),
                             options);
    t.add_row({"flock of birds (k=2)", std::to_string(flock.num_states()),
               analysis::fmt_double(stats.interactions.p50, 0)});
  }
  t.add_row({"this construction (n=1, k=2)", "880",
             "~1e7 (see test_to_protocol / quickstart)"});
  t.print(std::cout);
  std::printf("\nthe construction needs ~3 orders of magnitude more "
              "interactions at the same k —\nand wins the state count "
              "by a factor 2^(2^(n-1))/n as k grows.\n\n");
}

void BM_ProgramRunN1(benchmark::State& state) {
  const auto c = czerner::build_construction(1);
  const auto flat = progmodel::FlatProgram::compile(c.program);
  const std::uint64_t m = state.range(0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    std::vector<std::uint64_t> regs(5, 0);
    regs[4] = m;
    progmodel::Runner runner(flat, regs, seed++);
    progmodel::RunOptions options;
    options.stable_window = 200'000;
    options.max_steps = 50'000'000;
    benchmark::DoNotOptimize(runner.run(options));
  }
}
BENCHMARK(BM_ProgramRunN1)->Arg(1)->Arg(2)->Arg(4);

void BM_RestartThroughput(benchmark::State& state) {
  // Raw cost of the restart primitive (multinomial redistribution).
  const auto c = czerner::build_construction(2);
  const auto flat = progmodel::FlatProgram::compile(c.program);
  std::vector<std::uint64_t> regs(9, 0);
  regs[8] = 50;
  progmodel::Runner runner(flat, regs, 3);
  for (auto _ : state) benchmark::DoNotOptimize(runner.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RestartThroughput);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
