// Theorem 2 — the protocols are almost self-stabilising (Definition 7).
//
// Sweeps noise configurations C_N on top of the intended input and reports
// the fraction of correct decisions — which must be 1.0, exactly — plus the
// contrast row for the 1-aware flock-of-birds baseline, which a single
// accepting noise agent flips. Exact (bottom-SCC) verdicts for the n=1
// pipeline; simulation for the broadcast-wrapped protocol.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <iostream>

#include "analysis/robustness.hpp"
#include "analysis/tables.hpp"
#include "smc/certify.hpp"
#include "baselines/flock.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "machine/interp.hpp"
#include "pp/verifier.hpp"

namespace {

using namespace ppde;

void print_report() {
  std::printf("== Theorem 2: almost self-stabilisation ==\n\n");
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  const auto phi_prime = [&conv](std::uint64_t m) {
    return m >= conv.num_pointers && m - conv.num_pointers >= 2;
  };

  pp::VerifierOptions exact;
  exact.witness_mode = true;
  exact.max_configs = 2'000'000;

  std::vector<pp::State> register_pool;
  for (machine::RegId r = 0; r < lowered.machine.num_registers(); ++r)
    register_pool.push_back(conv.reg_state(r, false));

  analysis::TextTable t({"base configuration", "noise", "trials", "correct",
                         "wrong", "unresolved"});
  for (std::uint64_t m_regs : {0ull, 1ull, 2ull, 3ull}) {
    std::vector<std::uint64_t> regs(5, 0);
    regs[4] = m_regs;
    const pp::Config base =
        conv.pi(machine::initial_state(lowered.machine, regs), false);
    const auto result = analysis::sweep_exact(
        conv.protocol, base, /*max_noise=*/3, /*trials=*/20, phi_prime,
        exact, /*seed=*/99 + m_regs, &register_pool);
    t.add_row({"pi(" + std::to_string(m_regs) + " register agents)",
               "<=3 register agents", std::to_string(result.trials),
               std::to_string(result.correct), std::to_string(result.wrong),
               std::to_string(result.unresolved)});
  }
  t.print(std::cout);

  std::printf("\ncontrast: the 1-aware flock-of-birds baseline under one "
              "planted accepting agent:\n");
  {
    pp::Protocol flock = baselines::make_flock_of_birds(5);
    pp::Config poisoned = baselines::flock_initial(flock, 2);
    poisoned.add(flock.state("5"), 1);
    const auto verdict = pp::Verifier(flock).verify(poisoned);
    std::printf("  k=5, x=2 + one agent in state '5': %s  "
                "(3 agents pass as >= 5 -> NOT robust)\n",
                to_string(verdict.verdict).c_str());
  }
  {
    std::vector<std::uint64_t> regs(5, 0);
    pp::Config poisoned =
        conv.pi(machine::initial_state(lowered.machine, regs), false);
    poisoned.add(conv.pointer_state(lowered.machine.of, 1,
                                    compile::Stage::kNone, false));
    pp::VerifierOptions big = exact;
    big.max_configs = 4'000'000;
    const auto verdict = pp::Verifier(conv.protocol).verify(poisoned, big);
    std::printf("  this construction + one agent planted in an accepting "
                "state: %s  (recounted, robust)\n\n",
                to_string(verdict.verdict).c_str());
  }

  // The broadcast-wrapped protocol is beyond the exact verifier's reach;
  // certify it statistically (S23): the SPRT allocates trials until
  // "correct over noise draw and scheduler w.p. >= 1 - delta" is accepted
  // or refuted, instead of reporting a bare fixed-trial count. Verdict and
  // digest identical at every thread count.
  std::printf("broadcast-wrapped pipeline, SMC-certified noise sweep "
              "(4 threads):\n");
  {
    const auto bconv = compile::machine_to_protocol(lowered.machine);
    const auto bphi = [&bconv](std::uint64_t m) {
      return m >= bconv.num_pointers && m - bconv.num_pointers >= 2;
    };
    std::vector<std::uint64_t> regs(5, 0);
    regs[4] = 2;
    const pp::Config base =
        bconv.pi(machine::initial_state(lowered.machine, regs), false);
    smc::CertifyOptions options;
    options.delta = 0.1;
    options.indifference = 0.8;  // H0: correct w.p. <= 0.1
    options.alpha = options.beta = 0.01;
    options.max_trials = 24;
    options.threads = 4;
    options.seed = 7;
    options.sim.stable_window = 80'000'000;
    options.sim.max_interactions = 1'500'000'000;
    const smc::Certificate cert = analysis::sweep_certified(
        bconv.protocol, base, /*max_noise=*/2, bphi, options);
    std::printf("  pi(2 register agents) + <=2 noise agents: %s after %llu "
                "trials (%llu successes, llr %.2f, CI [%.3f, %.3f] at "
                "%.2f)\n\n",
                smc::to_string(cert.verdict),
                (unsigned long long)cert.trials,
                (unsigned long long)cert.successes, cert.llr,
                cert.interval.lower, cert.interval.upper,
                cert.ci_confidence);
  }
}

void BM_ExactNoiseSweepRejectSide(benchmark::State& state) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  std::vector<std::uint64_t> regs(5, 0);
  regs[4] = 1;
  const pp::Config base =
      conv.pi(machine::initial_state(lowered.machine, regs), false);
  pp::VerifierOptions exact;
  exact.witness_mode = true;
  std::vector<pp::State> pool;
  for (machine::RegId r = 0; r < 5; ++r)
    pool.push_back(conv.reg_state(r, false));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::sweep_exact(
        conv.protocol, base, 1, 1,
        [&conv](std::uint64_t m) {
          return m >= conv.num_pointers && m - conv.num_pointers >= 2;
        },
        exact, seed++, &pool));
  }
}
BENCHMARK(BM_ExactNoiseSweepRejectSide);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
