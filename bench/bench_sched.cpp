// Convergence under adversarial scheduling & faults (DESIGN.md S27).
//
// Runs small trial fleets of three constructions — the paper's n=1
// double-exponential threshold protocol, the flock-of-birds baseline and
// the 4-state majority baseline — under every scheduler strategy plus
// representative fault plans, and reports per-scenario stabilisation
// counts and convergence quantiles. This is the data behind the
// EXPERIMENTS.md scheduler × construction table: the threshold protocol's
// almost self-stabilisation (Theorem 2) predicts it recovers from
// transient corruption, while the 1-aware flock baseline does not.
//
// Not a google-benchmark binary: the unit of interest is a whole fleet
// under one scenario, and the output is a machine-readable report
// (default BENCH_sched.json, override with --json=PATH):
//
//   {"bench_sched_v": 1, "trials": T, "rows": [
//     {"construction": "...", "scenario": "...", "population": m,
//      "window": W, "budget": B, "stabilised": k, "accepted": k,
//      "interactions_p50": ..., "parallel_time_p50": ...,
//      "total_firings": ..., "wall_seconds": ...}, ...]}
//
// tools/check_bench.py validates the schema; EXPERIMENTS.md records the
// numbers.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/flock.hpp"
#include "baselines/majority.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/ensemble.hpp"
#include "sched/scenario.hpp"

namespace {

using namespace ppde;

const char* kScenarios[] = {
    "uniform", "ring", "grid", "regular:4", "biased:4", "aging",
    "uniform+corrupt:0.0001", "uniform+churn:0.0001",
    "uniform+burst:200000,4",
};

struct Workload {
  std::string name;
  const pp::Protocol* protocol;
  pp::Config initial;
  std::uint64_t window;
  std::uint64_t budget;
};

struct Row {
  std::string construction;
  std::string scenario;
  std::uint64_t population = 0;
  std::uint64_t window = 0;
  std::uint64_t budget = 0;
  engine::EnsembleStats stats;
};

Row run_row(const Workload& load, const std::string& scenario_text,
            std::uint64_t trials) {
  engine::EnsembleOptions options;
  options.trials = trials;
  options.threads = 0;
  options.master_seed = 7;
  options.scenario = sched::Scenario::parse(scenario_text);
  options.sim.stable_window = load.window;
  options.sim.max_interactions = load.budget;
  Row row;
  row.construction = load.name;
  row.scenario = options.scenario.to_string();
  row.population = load.initial.total();
  row.window = load.window;
  row.budget = load.budget;
  row.stats = engine::run_ensemble(*load.protocol, load.initial, options);
  return row;
}

void append_row(std::string& out, const Row& row) {
  char buffer[512];
  std::snprintf(
      buffer, sizeof buffer,
      "{\"construction\": \"%s\", \"scenario\": \"%s\", "
      "\"population\": %llu, \"window\": %llu, \"budget\": %llu, "
      "\"stabilised\": %llu, \"accepted\": %llu, "
      "\"interactions_p50\": %.1f, \"parallel_time_p50\": %.3f, "
      "\"total_firings\": %llu, \"wall_seconds\": %.6f}",
      row.construction.c_str(), row.scenario.c_str(),
      static_cast<unsigned long long>(row.population),
      static_cast<unsigned long long>(row.window),
      static_cast<unsigned long long>(row.budget),
      static_cast<unsigned long long>(row.stats.stabilised),
      static_cast<unsigned long long>(row.stats.accepted),
      row.stats.interactions.p50, row.stats.parallel_time.p50,
      static_cast<unsigned long long>(row.stats.totals.firings),
      row.stats.wall_seconds);
  out += buffer;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_sched.json";
  std::uint64_t trials = 8;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) json_path = argv[i] + 7;
    if (std::strncmp(argv[i], "--trials=", 9) == 0)
      trials = std::strtoull(argv[i] + 9, nullptr, 10);
  }

  // The paper's construction at n=1 with 8 extra agents (population 22),
  // and the two baselines at comparable populations.
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  const auto conv = compile::machine_to_protocol(lowered.machine);
  const pp::Protocol flock = baselines::make_flock_of_birds(16);
  const pp::Protocol majority = baselines::make_majority();

  std::vector<Workload> workloads;
  workloads.push_back({"czerner:n=1,extra=8", &conv.protocol,
                       conv.initial_config(conv.num_pointers + 8),
                       /*window=*/200'000, /*budget=*/4'000'000});
  workloads.push_back({"flock:k=16,x=20", &flock,
                       baselines::flock_initial(flock, 20),
                       /*window=*/50'000, /*budget=*/2'000'000});
  workloads.push_back({"majority:x=12,y=8", &majority,
                       baselines::majority_initial(majority, 12, 8),
                       /*window=*/50'000, /*budget=*/2'000'000});

  std::string out = "{\"bench_sched_v\": 1, \"trials\": ";
  out += std::to_string(trials);
  out += ", \"rows\": [";
  bool first = true;
  for (const Workload& load : workloads) {
    for (const char* scenario : kScenarios) {
      const Row row = run_row(load, scenario, trials);
      std::printf("%-22s %-24s stabilised %llu/%llu  accepted %llu  "
                  "p50 %.2fM interactions\n",
                  row.construction.c_str(), row.scenario.c_str(),
                  static_cast<unsigned long long>(row.stats.stabilised),
                  static_cast<unsigned long long>(row.stats.trials),
                  static_cast<unsigned long long>(row.stats.accepted),
                  row.stats.interactions.p50 / 1e6);
      std::fflush(stdout);
      if (!first) out += ", ";
      first = false;
      append_row(out, row);
    }
  }
  out += "]}";

  std::FILE* file = std::fopen(json_path, "w");
  if (file == nullptr) {
    std::fprintf(stderr, "bench_sched: cannot write %s\n", json_path);
    return 1;
  }
  std::fprintf(file, "%s\n", out.c_str());
  std::fclose(file);
  std::printf("wrote %s\n", json_path);
  return 0;
}
