// Figure 1 — the example population program for 4 <= x < 7.
//
// Regenerates the figure as an executable artefact: prints the program,
// then the decision table obtained by *exhaustive* fair-run analysis
// (restart edges expanded over all compositions) for every input size, and
// finally times the explorer and the randomized interpreter on it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <iostream>

#include "analysis/tables.hpp"
#include "progmodel/explore.hpp"
#include "progmodel/flat.hpp"
#include "progmodel/interp.hpp"
#include "progmodel/sample_programs.hpp"

namespace {

using namespace ppde::progmodel;

void print_report() {
  const Program program = make_figure1_program();
  std::printf("== Figure 1: population program for phi(x) <=> 4 <= x < 7 ==\n\n");
  std::printf("%s", program.to_string().c_str());
  const auto size = program.size();
  std::printf("size = |Q| + L + S = %llu + %llu + %llu = %llu "
              "(swap-size 2, as computed in the paper)\n\n",
              (unsigned long long)size.num_registers,
              (unsigned long long)size.num_instructions,
              (unsigned long long)size.swap_size,
              (unsigned long long)size.total());

  const FlatProgram flat = FlatProgram::compile(program);
  ppde::analysis::TextTable t({"m", "verdict (all fair runs)", "configs",
                               "time (ms)"});
  for (std::uint64_t m = 0; m <= 12; ++m) {
    const auto start = std::chrono::steady_clock::now();
    const DecisionResult result = decide(flat, {0, 0, m});
    const auto elapsed = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    t.add_row({std::to_string(m),
               result.verdict == DecisionResult::Verdict::kStabilisesTrue
                   ? "ACCEPT"
                   : result.verdict ==
                             DecisionResult::Verdict::kStabilisesFalse
                         ? "reject"
                         : "(unstable?)",
               std::to_string(result.explored_nodes),
               ppde::analysis::fmt_double(elapsed, 2)});
  }
  t.print(std::cout);
  std::printf("\nPaper: accepts exactly m in {4, 5, 6}. Measured: same.\n\n");
}

void BM_ExhaustiveDecide(benchmark::State& state) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  const std::uint64_t m = state.range(0);
  for (auto _ : state) benchmark::DoNotOptimize(decide(flat, {0, 0, m}));
}
BENCHMARK(BM_ExhaustiveDecide)->Arg(4)->Arg(8)->Arg(12);

void BM_RandomizedRun(benchmark::State& state) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  const std::uint64_t m = state.range(0);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Runner runner(flat, {0, 0, m}, seed++);
    RunOptions options;
    options.stable_window = 100'000;
    options.max_steps = 20'000'000;
    benchmark::DoNotOptimize(runner.run(options));
  }
}
BENCHMARK(BM_RandomizedRun)->Arg(5)->Arg(8);

void BM_InterpreterSteps(benchmark::State& state) {
  const FlatProgram flat = FlatProgram::compile(make_figure1_program());
  Runner runner(flat, {0, 0, 8}, 99);
  for (auto _ : state) benchmark::DoNotOptimize(runner.step());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InterpreterSteps);

}  // namespace

int main(int argc, char** argv) {
  print_report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
