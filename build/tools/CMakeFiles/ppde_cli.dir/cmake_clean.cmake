file(REMOVE_RECURSE
  "CMakeFiles/ppde_cli.dir/ppde_cli.cpp.o"
  "CMakeFiles/ppde_cli.dir/ppde_cli.cpp.o.d"
  "ppde"
  "ppde.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ppde_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
