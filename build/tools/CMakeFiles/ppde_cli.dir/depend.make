# Empty dependencies file for ppde_cli.
# This may be replaced when dependencies are built.
