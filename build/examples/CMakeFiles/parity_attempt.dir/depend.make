# Empty dependencies file for parity_attempt.
# This may be replaced when dependencies are built.
