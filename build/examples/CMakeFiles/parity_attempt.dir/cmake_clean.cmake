file(REMOVE_RECURSE
  "CMakeFiles/parity_attempt.dir/parity_attempt.cpp.o"
  "CMakeFiles/parity_attempt.dir/parity_attempt.cpp.o.d"
  "parity_attempt"
  "parity_attempt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parity_attempt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
