# Empty dependencies file for program_playground.
# This may be replaced when dependencies are built.
