file(REMOVE_RECURSE
  "CMakeFiles/program_playground.dir/program_playground.cpp.o"
  "CMakeFiles/program_playground.dir/program_playground.cpp.o.d"
  "program_playground"
  "program_playground.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/program_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
