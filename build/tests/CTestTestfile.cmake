# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_nat[1]_include.cmake")
include("/root/repo/build/tests/test_presburger[1]_include.cmake")
include("/root/repo/build/tests/test_protocol_core[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_progmodel[1]_include.cmake")
include("/root/repo/build/tests/test_construction[1]_include.cmake")
include("/root/repo/build/tests/test_machine[1]_include.cmake")
include("/root/repo/build/tests/test_to_protocol[1]_include.cmake")
include("/root/repo/build/tests/test_czerner_lemmas[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_equality[1]_include.cmake")
include("/root/repo/build/tests/test_differential[1]_include.cmake")
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_parser[1]_include.cmake")
