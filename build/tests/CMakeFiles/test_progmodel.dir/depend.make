# Empty dependencies file for test_progmodel.
# This may be replaced when dependencies are built.
