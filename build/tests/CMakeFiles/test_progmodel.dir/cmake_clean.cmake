file(REMOVE_RECURSE
  "CMakeFiles/test_progmodel.dir/test_progmodel.cpp.o"
  "CMakeFiles/test_progmodel.dir/test_progmodel.cpp.o.d"
  "test_progmodel"
  "test_progmodel.pdb"
  "test_progmodel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_progmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
