file(REMOVE_RECURSE
  "CMakeFiles/test_czerner_lemmas.dir/test_czerner_lemmas.cpp.o"
  "CMakeFiles/test_czerner_lemmas.dir/test_czerner_lemmas.cpp.o.d"
  "test_czerner_lemmas"
  "test_czerner_lemmas.pdb"
  "test_czerner_lemmas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_czerner_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
