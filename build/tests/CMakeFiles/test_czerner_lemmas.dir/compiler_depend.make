# Empty compiler generated dependencies file for test_czerner_lemmas.
# This may be replaced when dependencies are built.
