# Empty dependencies file for test_protocol_core.
# This may be replaced when dependencies are built.
