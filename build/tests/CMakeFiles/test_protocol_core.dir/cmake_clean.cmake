file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_core.dir/test_protocol_core.cpp.o"
  "CMakeFiles/test_protocol_core.dir/test_protocol_core.cpp.o.d"
  "test_protocol_core"
  "test_protocol_core.pdb"
  "test_protocol_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
