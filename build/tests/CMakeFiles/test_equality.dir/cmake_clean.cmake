file(REMOVE_RECURSE
  "CMakeFiles/test_equality.dir/test_equality.cpp.o"
  "CMakeFiles/test_equality.dir/test_equality.cpp.o.d"
  "test_equality"
  "test_equality.pdb"
  "test_equality[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_equality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
