# Empty dependencies file for test_to_protocol.
# This may be replaced when dependencies are built.
