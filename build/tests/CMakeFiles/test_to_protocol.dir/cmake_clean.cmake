file(REMOVE_RECURSE
  "CMakeFiles/test_to_protocol.dir/test_to_protocol.cpp.o"
  "CMakeFiles/test_to_protocol.dir/test_to_protocol.cpp.o.d"
  "test_to_protocol"
  "test_to_protocol.pdb"
  "test_to_protocol[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_to_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
