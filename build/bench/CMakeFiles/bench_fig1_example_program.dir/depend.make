# Empty dependencies file for bench_fig1_example_program.
# This may be replaced when dependencies are built.
