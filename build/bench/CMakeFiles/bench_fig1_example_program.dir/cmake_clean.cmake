file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_example_program.dir/bench_fig1_example_program.cpp.o"
  "CMakeFiles/bench_fig1_example_program.dir/bench_fig1_example_program.cpp.o.d"
  "bench_fig1_example_program"
  "bench_fig1_example_program.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_example_program.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
