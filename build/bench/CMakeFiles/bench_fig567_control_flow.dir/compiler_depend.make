# Empty compiler generated dependencies file for bench_fig567_control_flow.
# This may be replaced when dependencies are built.
