file(REMOVE_RECURSE
  "CMakeFiles/bench_agent_removal.dir/bench_agent_removal.cpp.o"
  "CMakeFiles/bench_agent_removal.dir/bench_agent_removal.cpp.o.d"
  "bench_agent_removal"
  "bench_agent_removal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_agent_removal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
