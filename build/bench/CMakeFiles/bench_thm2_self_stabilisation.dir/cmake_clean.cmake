file(REMOVE_RECURSE
  "CMakeFiles/bench_thm2_self_stabilisation.dir/bench_thm2_self_stabilisation.cpp.o"
  "CMakeFiles/bench_thm2_self_stabilisation.dir/bench_thm2_self_stabilisation.cpp.o.d"
  "bench_thm2_self_stabilisation"
  "bench_thm2_self_stabilisation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm2_self_stabilisation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
