# Empty compiler generated dependencies file for bench_thm2_self_stabilisation.
# This may be replaced when dependencies are built.
