file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_lowering.dir/bench_fig3_lowering.cpp.o"
  "CMakeFiles/bench_fig3_lowering.dir/bench_fig3_lowering.cpp.o.d"
  "bench_fig3_lowering"
  "bench_fig3_lowering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_lowering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
