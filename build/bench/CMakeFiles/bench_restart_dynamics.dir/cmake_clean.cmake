file(REMOVE_RECURSE
  "CMakeFiles/bench_restart_dynamics.dir/bench_restart_dynamics.cpp.o"
  "CMakeFiles/bench_restart_dynamics.dir/bench_restart_dynamics.cpp.o.d"
  "bench_restart_dynamics"
  "bench_restart_dynamics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_restart_dynamics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
