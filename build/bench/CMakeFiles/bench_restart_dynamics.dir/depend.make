# Empty dependencies file for bench_restart_dynamics.
# This may be replaced when dependencies are built.
