# Empty compiler generated dependencies file for bench_fig2_config_types.
# This may be replaced when dependencies are built.
