file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_config_types.dir/bench_fig2_config_types.cpp.o"
  "CMakeFiles/bench_fig2_config_types.dir/bench_fig2_config_types.cpp.o.d"
  "bench_fig2_config_types"
  "bench_fig2_config_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_config_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
