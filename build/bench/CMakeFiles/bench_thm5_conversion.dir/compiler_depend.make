# Empty compiler generated dependencies file for bench_thm5_conversion.
# This may be replaced when dependencies are built.
