file(REMOVE_RECURSE
  "CMakeFiles/bench_thm5_conversion.dir/bench_thm5_conversion.cpp.o"
  "CMakeFiles/bench_thm5_conversion.dir/bench_thm5_conversion.cpp.o.d"
  "bench_thm5_conversion"
  "bench_thm5_conversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm5_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
