file(REMOVE_RECURSE
  "libppde.a"
)
