
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/convergence.cpp" "src/CMakeFiles/ppde.dir/analysis/convergence.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/analysis/convergence.cpp.o.d"
  "/root/repo/src/analysis/crn.cpp" "src/CMakeFiles/ppde.dir/analysis/crn.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/analysis/crn.cpp.o.d"
  "/root/repo/src/analysis/reachability.cpp" "src/CMakeFiles/ppde.dir/analysis/reachability.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/analysis/reachability.cpp.o.d"
  "/root/repo/src/analysis/robustness.cpp" "src/CMakeFiles/ppde.dir/analysis/robustness.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/analysis/robustness.cpp.o.d"
  "/root/repo/src/analysis/tables.cpp" "src/CMakeFiles/ppde.dir/analysis/tables.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/analysis/tables.cpp.o.d"
  "/root/repo/src/baselines/doubling.cpp" "src/CMakeFiles/ppde.dir/baselines/doubling.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/baselines/doubling.cpp.o.d"
  "/root/repo/src/baselines/flock.cpp" "src/CMakeFiles/ppde.dir/baselines/flock.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/baselines/flock.cpp.o.d"
  "/root/repo/src/baselines/majority.cpp" "src/CMakeFiles/ppde.dir/baselines/majority.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/baselines/majority.cpp.o.d"
  "/root/repo/src/baselines/remainder.cpp" "src/CMakeFiles/ppde.dir/baselines/remainder.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/baselines/remainder.cpp.o.d"
  "/root/repo/src/bignum/nat.cpp" "src/CMakeFiles/ppde.dir/bignum/nat.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/bignum/nat.cpp.o.d"
  "/root/repo/src/compile/lower.cpp" "src/CMakeFiles/ppde.dir/compile/lower.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/compile/lower.cpp.o.d"
  "/root/repo/src/compile/to_protocol.cpp" "src/CMakeFiles/ppde.dir/compile/to_protocol.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/compile/to_protocol.cpp.o.d"
  "/root/repo/src/czerner/classify.cpp" "src/CMakeFiles/ppde.dir/czerner/classify.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/czerner/classify.cpp.o.d"
  "/root/repo/src/czerner/construction.cpp" "src/CMakeFiles/ppde.dir/czerner/construction.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/czerner/construction.cpp.o.d"
  "/root/repo/src/machine/interp.cpp" "src/CMakeFiles/ppde.dir/machine/interp.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/machine/interp.cpp.o.d"
  "/root/repo/src/machine/machine.cpp" "src/CMakeFiles/ppde.dir/machine/machine.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/machine/machine.cpp.o.d"
  "/root/repo/src/pp/config.cpp" "src/CMakeFiles/ppde.dir/pp/config.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/pp/config.cpp.o.d"
  "/root/repo/src/pp/protocol.cpp" "src/CMakeFiles/ppde.dir/pp/protocol.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/pp/protocol.cpp.o.d"
  "/root/repo/src/pp/simulator.cpp" "src/CMakeFiles/ppde.dir/pp/simulator.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/pp/simulator.cpp.o.d"
  "/root/repo/src/pp/verifier.cpp" "src/CMakeFiles/ppde.dir/pp/verifier.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/pp/verifier.cpp.o.d"
  "/root/repo/src/presburger/parser.cpp" "src/CMakeFiles/ppde.dir/presburger/parser.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/presburger/parser.cpp.o.d"
  "/root/repo/src/presburger/predicate.cpp" "src/CMakeFiles/ppde.dir/presburger/predicate.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/presburger/predicate.cpp.o.d"
  "/root/repo/src/progmodel/ast.cpp" "src/CMakeFiles/ppde.dir/progmodel/ast.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/progmodel/ast.cpp.o.d"
  "/root/repo/src/progmodel/builder.cpp" "src/CMakeFiles/ppde.dir/progmodel/builder.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/progmodel/builder.cpp.o.d"
  "/root/repo/src/progmodel/explore.cpp" "src/CMakeFiles/ppde.dir/progmodel/explore.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/progmodel/explore.cpp.o.d"
  "/root/repo/src/progmodel/flat.cpp" "src/CMakeFiles/ppde.dir/progmodel/flat.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/progmodel/flat.cpp.o.d"
  "/root/repo/src/progmodel/interp.cpp" "src/CMakeFiles/ppde.dir/progmodel/interp.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/progmodel/interp.cpp.o.d"
  "/root/repo/src/progmodel/sample_programs.cpp" "src/CMakeFiles/ppde.dir/progmodel/sample_programs.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/progmodel/sample_programs.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/ppde.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/scc.cpp" "src/CMakeFiles/ppde.dir/support/scc.cpp.o" "gcc" "src/CMakeFiles/ppde.dir/support/scc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
