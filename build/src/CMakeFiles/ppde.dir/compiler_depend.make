# Empty compiler generated dependencies file for ppde.
# This may be replaced when dependencies are built.
