// Population machines (paper Section 7.1 / Definition 6).
//
// A population machine A = (Q, F, F_domains, I) is the assembly-like
// intermediate form between population programs and population protocols:
//   * registers Q with values in N (as in population programs),
//   * pointers F, each with a finite domain; three are special: the output
//     flag OF, the condition flag CF, and the instruction pointer IP; and
//     for every register x there is a register-map pointer V_x (plus the
//     scratch pointer V_square) used to implement swaps,
//   * instructions I: (x -> y), (detect x > 0), and (X := f(Y)).
//
// Semantics (Definition 13): move and detect operate on the registers
// *pointed to* by V_x / V_y; (X := f(Y)) assigns pointer X from pointer Y
// through an explicit finite map f; non-jump instructions increment IP and
// the machine hangs (no successor) when IP would leave the program or a
// move's source register is empty.
//
// The size of A is |Q| + |F| + sum_X |F_X| + |I| — the quantity Theorem 5
// preserves up to a constant factor when converting to protocols.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ppde::machine {

using RegId = std::uint32_t;
using PtrId = std::uint32_t;

/// A pointer with its finite domain of raw values. Raw values are plain
/// uint32: booleans 0/1 for OF/CF, instruction indices for IP and procedure
/// return pointers, register ids for the register map.
struct Pointer {
  std::string name;
  std::vector<std::uint32_t> domain;
  std::uint32_t initial = 0;
  /// Values are instruction indices (IP, procedure return pointers);
  /// renderers display them 1-based like instruction numbers.
  bool holds_addresses = false;

  bool in_domain(std::uint32_t value) const;
};

struct Instr {
  enum class Kind {
    kMove,    ///< regs[*V_x] -> regs[*V_y]
    kDetect,  ///< CF := nondet in {false, regs[*V_x] > 0}
    kAssign,  ///< X := f(Y)
  };
  Kind kind = Kind::kMove;
  RegId x = 0, y = 0;  ///< kMove: x -> y; kDetect: x
  PtrId target = 0;    ///< kAssign: X
  PtrId source = 0;    ///< kAssign: Y
  /// kAssign: f as explicit (value of Y -> value of X) pairs. Must cover the
  /// whole domain of Y.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> mapping;

  std::optional<std::uint32_t> map(std::uint32_t value) const;
};

struct Machine {
  std::vector<std::string> registers;
  std::vector<Pointer> pointers;
  std::vector<Instr> instrs;

  // Special pointers.
  PtrId of = 0, cf = 0, ip = 0, v_square = 0;
  std::vector<PtrId> v_reg;  ///< V_x per register x

  std::size_t num_registers() const { return registers.size(); }
  std::size_t num_pointers() const { return pointers.size(); }
  std::size_t num_instructions() const { return instrs.size(); }

  /// Definition 6 size: |Q| + |F| + sum |F_X| + |I|.
  std::uint64_t size() const;

  /// Structural validation per Definition 6; throws std::logic_error.
  void validate() const;

  /// Assembly listing for goldens and debugging.
  std::string to_string() const;
};

}  // namespace ppde::machine
