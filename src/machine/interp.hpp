// Execution of population machines: a randomized runner (fair with
// probability 1) and an exhaustive bottom-SCC decision procedure mirroring
// Definition 13 exactly.
//
// Note the machine needs no special restart handling: restarts were
// compiled into the Figure-7 shuffle helper plus IP := 1, so the explorer
// reaches every post-restart configuration through ordinary detect
// branching.
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine.hpp"
#include "support/rng.hpp"

namespace ppde::machine {

/// Full machine configuration (Definition 13): register values + pointer
/// values (raw).
struct MachineState {
  std::vector<std::uint64_t> regs;
  std::vector<std::uint32_t> ptrs;
};

/// The initial configuration: IP = first instruction, V_x = x, all other
/// pointers at their declared initial values; registers as given.
MachineState initial_state(const Machine& machine,
                           std::vector<std::uint64_t> regs);

struct MachineRunOptions {
  std::uint64_t max_steps = 50'000'000;
  std::uint64_t stable_window = 1'000'000;
  std::uint64_t seed = 1;
};

struct MachineRunResult {
  bool stabilised = false;
  bool output = false;
  bool hung = false;
  std::uint64_t steps = 0;
};

class MachineRunner {
 public:
  MachineRunner(const Machine& machine, MachineState state,
                std::uint64_t seed = 1);

  enum class StepStatus { kOk, kHung };
  StepStatus step();

  MachineRunResult run(const MachineRunOptions& options);

  const MachineState& state() const { return state_; }
  bool output_flag() const { return state_.ptrs[machine_.of] != 0; }

 private:
  const Machine& machine_;
  MachineState state_;
  support::Rng rng_;
};

/// Exhaustive decision: every fair run from the initial configuration with
/// the given register values stabilises to b iff every reachable bottom SCC
/// is OF-constant with value b.
struct MachineDecision {
  enum class Verdict {
    kStabilisesTrue,
    kStabilisesFalse,
    kDoesNotStabilise,
    kLimit,
  };
  Verdict verdict = Verdict::kLimit;
  std::uint64_t explored_nodes = 0;

  bool stabilises() const {
    return verdict == Verdict::kStabilisesTrue ||
           verdict == Verdict::kStabilisesFalse;
  }
  bool output() const { return verdict == Verdict::kStabilisesTrue; }
};

struct MachineExploreLimits {
  std::uint64_t max_nodes = 2'000'000;
  /// Worker threads for frontier expansion (0 = hardware concurrency).
  /// Results are identical at every thread count (DESIGN.md S22).
  unsigned threads = 1;
};

MachineDecision decide_machine(const Machine& machine,
                               const std::vector<std::uint64_t>& initial_regs,
                               const MachineExploreLimits& limits = {});

}  // namespace ppde::machine
