#include "machine/machine.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace ppde::machine {

bool Pointer::in_domain(std::uint32_t value) const {
  return std::find(domain.begin(), domain.end(), value) != domain.end();
}

std::optional<std::uint32_t> Instr::map(std::uint32_t value) const {
  for (const auto& [from, to] : mapping)
    if (from == value) return to;
  return std::nullopt;
}

std::uint64_t Machine::size() const {
  std::uint64_t domains = 0;
  for (const Pointer& pointer : pointers) domains += pointer.domain.size();
  return registers.size() + pointers.size() + domains + instrs.size();
}

void Machine::validate() const {
  auto fail = [](const std::string& message) {
    throw std::logic_error("Machine: " + message);
  };

  if (pointers.empty()) fail("no pointers");
  for (PtrId special : {of, cf, ip, v_square})
    if (special >= pointers.size()) fail("special pointer out of range");
  if (v_reg.size() != registers.size()) fail("v_reg size mismatch");
  for (PtrId v : v_reg)
    if (v >= pointers.size()) fail("register-map pointer out of range");

  // Definition 6 domain requirements.
  const std::vector<std::uint32_t> boolean = {0, 1};
  if (pointers[of].domain != boolean) fail("OF domain must be {false,true}");
  if (pointers[cf].domain != boolean) fail("CF domain must be {false,true}");
  if (pointers[ip].domain.size() != instrs.size())
    fail("IP domain must be {1..L}");
  for (std::uint32_t i = 0; i < instrs.size(); ++i)
    if (pointers[ip].domain[i] != i) fail("IP domain must be {1..L}");
  for (RegId x = 0; x < registers.size(); ++x) {
    const Pointer& vx = pointers[v_reg[x]];
    if (!vx.in_domain(x)) fail("x must be in the domain of V_x");
    for (std::uint32_t value : vx.domain)
      if (value >= registers.size()) fail("V_x domain must be within Q");
    if (vx.initial != x) fail("V_x must initially point to x");
  }
  if (pointers[ip].initial != 0) fail("IP must initially be 1 (index 0)");

  for (const Pointer& pointer : pointers) {
    if (pointer.domain.empty()) fail("empty pointer domain");
    if (!pointer.in_domain(pointer.initial))
      fail("initial value outside domain for " + pointer.name);
  }

  for (const Instr& instr : instrs) {
    switch (instr.kind) {
      case Instr::Kind::kMove:
        if (instr.x >= registers.size() || instr.y >= registers.size())
          fail("move register out of range");
        if (instr.x == instr.y) fail("move with x == y");
        break;
      case Instr::Kind::kDetect:
        if (instr.x >= registers.size()) fail("detect register out of range");
        break;
      case Instr::Kind::kAssign: {
        if (instr.target >= pointers.size() || instr.source >= pointers.size())
          fail("assign pointer out of range");
        const Pointer& target = pointers[instr.target];
        const Pointer& source = pointers[instr.source];
        for (std::uint32_t value : source.domain) {
          const auto mapped = instr.map(value);
          if (!mapped) fail("assign map does not cover source domain");
          if (!target.in_domain(*mapped))
            fail("assign map leaves target domain of " + target.name);
        }
        break;
      }
    }
  }
}

std::string Machine::to_string() const {
  std::ostringstream os;
  os << "registers:";
  for (const std::string& name : registers) os << " " << name;
  os << "\npointers:";
  for (const Pointer& pointer : pointers)
    os << " " << pointer.name << "[" << pointer.domain.size() << "]";
  os << "\n";
  for (std::uint32_t i = 0; i < instrs.size(); ++i) {
    const Instr& instr = instrs[i];
    os << "  " << (i + 1) << ": ";  // paper numbers instructions from 1
    switch (instr.kind) {
      case Instr::Kind::kMove:
        os << registers[instr.x] << " -> " << registers[instr.y];
        break;
      case Instr::Kind::kDetect:
        os << "detect " << registers[instr.x] << " > 0";
        break;
      case Instr::Kind::kAssign: {
        os << pointers[instr.target].name << " := f("
           << pointers[instr.source].name << ")  {";
        // Address-valued pointers (IP, return pointers) display 1-based,
        // like the instruction numbers on the left.
        const std::uint32_t from_shift =
            pointers[instr.source].holds_addresses ? 1 : 0;
        const std::uint32_t to_shift =
            pointers[instr.target].holds_addresses ? 1 : 0;
        bool first = true;
        for (const auto& [from, to] : instr.mapping) {
          if (!first) os << ", ";
          first = false;
          os << (from + from_shift) << "->" << (to + to_shift);
        }
        os << "}";
        break;
      }
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ppde::machine
