#include "machine/interp.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "support/hash.hpp"
#include "support/scc.hpp"

namespace ppde::machine {

MachineState initial_state(const Machine& machine,
                           std::vector<std::uint64_t> regs) {
  if (regs.size() != machine.num_registers())
    throw std::invalid_argument("initial_state: wrong register count");
  MachineState state;
  state.regs = std::move(regs);
  state.ptrs.reserve(machine.num_pointers());
  for (const Pointer& pointer : machine.pointers)
    state.ptrs.push_back(pointer.initial);
  return state;
}

MachineRunner::MachineRunner(const Machine& machine, MachineState state,
                             std::uint64_t seed)
    : machine_(machine), state_(std::move(state)), rng_(seed) {
  if (state_.regs.size() != machine.num_registers() ||
      state_.ptrs.size() != machine.num_pointers())
    throw std::invalid_argument("MachineRunner: malformed state");
}

MachineRunner::StepStatus MachineRunner::step() {
  const std::uint32_t ip = state_.ptrs[machine_.ip];
  const Instr& instr = machine_.instrs[ip];
  const bool last = ip + 1 == machine_.num_instructions();

  switch (instr.kind) {
    case Instr::Kind::kMove: {
      const RegId src = state_.ptrs[machine_.v_reg[instr.x]];
      const RegId dst = state_.ptrs[machine_.v_reg[instr.y]];
      if (state_.regs[src] == 0 || last) return StepStatus::kHung;
      --state_.regs[src];
      ++state_.regs[dst];
      ++state_.ptrs[machine_.ip];
      break;
    }
    case Instr::Kind::kDetect: {
      if (last) return StepStatus::kHung;
      const RegId src = state_.ptrs[machine_.v_reg[instr.x]];
      state_.ptrs[machine_.cf] =
          (state_.regs[src] > 0 && rng_.coin()) ? 1 : 0;
      ++state_.ptrs[machine_.ip];
      break;
    }
    case Instr::Kind::kAssign: {
      const auto mapped = instr.map(state_.ptrs[instr.source]);
      if (!mapped)
        throw std::logic_error("MachineRunner: assign map not covering");
      if (instr.target == machine_.ip) {
        state_.ptrs[machine_.ip] = *mapped;
      } else {
        if (last) return StepStatus::kHung;
        state_.ptrs[instr.target] = *mapped;
        ++state_.ptrs[machine_.ip];
      }
      break;
    }
  }
  return StepStatus::kOk;
}

MachineRunResult MachineRunner::run(const MachineRunOptions& options) {
  MachineRunResult result;
  bool held_of = output_flag();
  std::uint64_t held_since = 0;
  for (std::uint64_t steps = 0; steps < options.max_steps; ++steps) {
    if (step() == StepStatus::kHung) {
      result.hung = true;
      result.stabilised = true;
      result.output = output_flag();
      result.steps = steps;
      return result;
    }
    if (output_flag() != held_of) {
      held_of = output_flag();
      held_since = steps;
    }
    if (steps - held_since >= options.stable_window) {
      result.stabilised = true;
      result.output = held_of;
      result.steps = steps;
      return result;
    }
  }
  result.steps = options.max_steps;
  return result;
}

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

// Node encoding: [regs..., ptrs...] as u64s.
struct VecHash {
  u64 operator()(const std::vector<u64>& v) const {
    return support::hash_range(v);
  }
};

}  // namespace

MachineDecision decide_machine(const Machine& machine,
                               const std::vector<std::uint64_t>& initial_regs,
                               const MachineExploreLimits& limits) {
  const std::size_t regs_n = machine.num_registers();
  const std::size_t ptrs_n = machine.num_pointers();
  const MachineState start = initial_state(machine, initial_regs);

  std::unordered_map<std::vector<u64>, u32, VecHash> ids;
  std::vector<const std::vector<u64>*> nodes;
  std::vector<std::vector<u32>> successors;

  auto encode = [&](const MachineState& state) {
    std::vector<u64> node;
    node.reserve(regs_n + ptrs_n);
    node.insert(node.end(), state.regs.begin(), state.regs.end());
    for (u32 p : state.ptrs) node.push_back(p);
    return node;
  };
  auto intern = [&](std::vector<u64> node) {
    auto [it, inserted] =
        ids.try_emplace(std::move(node), static_cast<u32>(nodes.size()));
    if (inserted) {
      nodes.push_back(&it->first);
      successors.emplace_back();
    }
    return it->second;
  };

  intern(encode(start));

  MachineDecision result;
  for (u32 id = 0; id < nodes.size(); ++id) {
    if (nodes.size() > limits.max_nodes) {
      result.verdict = MachineDecision::Verdict::kLimit;
      result.explored_nodes = nodes.size();
      return result;
    }
    // Decode (copy: intern may rehash).
    const std::vector<u64> node = *nodes[id];
    auto reg_of = [&](RegId r) { return node[r]; };
    auto ptr_of = [&](PtrId p) { return static_cast<u32>(node[regs_n + p]); };

    const u32 ip = ptr_of(machine.ip);
    const Instr& instr = machine.instrs[ip];
    const bool last = ip + 1 == machine.num_instructions();

    // NB: intern() may reallocate `successors`; never hold a reference to
    // successors[id] across it. Collect locally, then assign.
    std::vector<u32> succs;
    auto push_succ = [&](std::vector<u64> next) {
      succs.push_back(intern(std::move(next)));
    };
    auto hang = [&] { succs.push_back(id); };

    switch (instr.kind) {
      case Instr::Kind::kMove: {
        const RegId src = ptr_of(machine.v_reg[instr.x]);
        const RegId dst = ptr_of(machine.v_reg[instr.y]);
        if (reg_of(src) == 0 || last) {
          hang();
          break;
        }
        std::vector<u64> next = node;
        --next[src];
        ++next[dst];
        ++next[regs_n + machine.ip];
        push_succ(std::move(next));
        break;
      }
      case Instr::Kind::kDetect: {
        if (last) {
          hang();
          break;
        }
        const RegId src = ptr_of(machine.v_reg[instr.x]);
        {
          std::vector<u64> next = node;
          next[regs_n + machine.cf] = 0;
          ++next[regs_n + machine.ip];
          push_succ(std::move(next));
        }
        if (reg_of(src) > 0) {
          std::vector<u64> next = node;
          next[regs_n + machine.cf] = 1;
          ++next[regs_n + machine.ip];
          push_succ(std::move(next));
        }
        break;
      }
      case Instr::Kind::kAssign: {
        const auto mapped = instr.map(ptr_of(instr.source));
        if (!mapped)
          throw std::logic_error("decide_machine: assign map not covering");
        if (instr.target == machine.ip) {
          std::vector<u64> next = node;
          next[regs_n + machine.ip] = *mapped;
          push_succ(std::move(next));
        } else if (last) {
          hang();
        } else {
          std::vector<u64> next = node;
          next[regs_n + instr.target] = *mapped;
          ++next[regs_n + machine.ip];
          push_succ(std::move(next));
        }
        break;
      }
    }
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    successors[id] = std::move(succs);
  }

  const support::SccResult scc = support::tarjan_scc(successors);
  const std::vector<std::uint8_t> is_bottom = scc.bottom(successors);
  std::vector<std::uint8_t> saw_true(scc.scc_count, 0);
  std::vector<std::uint8_t> saw_false(scc.scc_count, 0);
  for (u32 id = 0; id < nodes.size(); ++id) {
    const u32 component = scc.scc_of[id];
    if (!is_bottom[component]) continue;
    const bool of = (*nodes[id])[regs_n + machine.of] != 0;
    (of ? saw_true : saw_false)[component] = 1;
  }
  bool any_true = false, any_false = false, any_mixed = false;
  for (u32 component = 0; component < scc.scc_count; ++component) {
    if (!is_bottom[component]) continue;
    const bool t = saw_true[component];
    const bool f = saw_false[component];
    if (t && f)
      any_mixed = true;
    else if (t)
      any_true = true;
    else if (f)
      any_false = true;
  }

  result.explored_nodes = nodes.size();
  using Verdict = MachineDecision::Verdict;
  if (any_mixed || (any_true && any_false))
    result.verdict = Verdict::kDoesNotStabilise;
  else if (any_true)
    result.verdict = Verdict::kStabilisesTrue;
  else
    result.verdict = Verdict::kStabilisesFalse;
  return result;
}

}  // namespace ppde::machine
