#include "machine/interp.hpp"

#include <stdexcept>

#include "verify/kernel.hpp"

namespace ppde::machine {

MachineState initial_state(const Machine& machine,
                           std::vector<std::uint64_t> regs) {
  if (regs.size() != machine.num_registers())
    throw std::invalid_argument("initial_state: wrong register count");
  MachineState state;
  state.regs = std::move(regs);
  state.ptrs.reserve(machine.num_pointers());
  for (const Pointer& pointer : machine.pointers)
    state.ptrs.push_back(pointer.initial);
  return state;
}

MachineRunner::MachineRunner(const Machine& machine, MachineState state,
                             std::uint64_t seed)
    : machine_(machine), state_(std::move(state)), rng_(seed) {
  if (state_.regs.size() != machine.num_registers() ||
      state_.ptrs.size() != machine.num_pointers())
    throw std::invalid_argument("MachineRunner: malformed state");
}

MachineRunner::StepStatus MachineRunner::step() {
  const std::uint32_t ip = state_.ptrs[machine_.ip];
  const Instr& instr = machine_.instrs[ip];
  const bool last = ip + 1 == machine_.num_instructions();

  switch (instr.kind) {
    case Instr::Kind::kMove: {
      const RegId src = state_.ptrs[machine_.v_reg[instr.x]];
      const RegId dst = state_.ptrs[machine_.v_reg[instr.y]];
      if (state_.regs[src] == 0 || last) return StepStatus::kHung;
      --state_.regs[src];
      ++state_.regs[dst];
      ++state_.ptrs[machine_.ip];
      break;
    }
    case Instr::Kind::kDetect: {
      if (last) return StepStatus::kHung;
      const RegId src = state_.ptrs[machine_.v_reg[instr.x]];
      state_.ptrs[machine_.cf] =
          (state_.regs[src] > 0 && rng_.coin()) ? 1 : 0;
      ++state_.ptrs[machine_.ip];
      break;
    }
    case Instr::Kind::kAssign: {
      const auto mapped = instr.map(state_.ptrs[instr.source]);
      if (!mapped)
        throw std::logic_error("MachineRunner: assign map not covering");
      if (instr.target == machine_.ip) {
        state_.ptrs[machine_.ip] = *mapped;
      } else {
        if (last) return StepStatus::kHung;
        state_.ptrs[instr.target] = *mapped;
        ++state_.ptrs[machine_.ip];
      }
      break;
    }
  }
  return StepStatus::kOk;
}

MachineRunResult MachineRunner::run(const MachineRunOptions& options) {
  MachineRunResult result;
  bool held_of = output_flag();
  std::uint64_t held_since = 0;
  for (std::uint64_t steps = 0; steps < options.max_steps; ++steps) {
    if (step() == StepStatus::kHung) {
      result.hung = true;
      result.stabilised = true;
      result.output = output_flag();
      result.steps = steps;
      return result;
    }
    if (output_flag() != held_of) {
      held_of = output_flag();
      held_since = steps;
    }
    if (steps - held_since >= options.stable_window) {
      result.stabilised = true;
      result.output = held_of;
      result.steps = steps;
      return result;
    }
  }
  result.steps = options.max_steps;
  return result;
}

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

/// Successor generator over machine configurations for the verification
/// kernel. Node encoding: [regs..., ptrs...] as u64s. Hangs (blocked move,
/// running off the last instruction) are self-loops, exactly as in the
/// pre-kernel explorer, so a hung configuration forms a bottom SCC.
class MachineDomain {
 public:
  explicit MachineDomain(const Machine& machine)
      : machine_(machine), regs_n_(machine.num_registers()) {}

  void expand(std::span<const u64> node, verify::Emitter& emit) const {
    const auto reg_of = [&](RegId r) { return node[r]; };
    const auto ptr_of = [&](PtrId p) {
      return static_cast<u32>(node[regs_n_ + p]);
    };

    const u32 ip = ptr_of(machine_.ip);
    const Instr& instr = machine_.instrs[ip];
    const bool last = ip + 1 == machine_.num_instructions();

    std::vector<u64> next;
    const auto fresh = [&] { next.assign(node.begin(), node.end()); };

    switch (instr.kind) {
      case Instr::Kind::kMove: {
        const RegId src = ptr_of(machine_.v_reg[instr.x]);
        const RegId dst = ptr_of(machine_.v_reg[instr.y]);
        if (reg_of(src) == 0 || last) {
          emit.emit_self();
          break;
        }
        fresh();
        --next[src];
        ++next[dst];
        ++next[regs_n_ + machine_.ip];
        emit.emit(next);
        break;
      }
      case Instr::Kind::kDetect: {
        if (last) {
          emit.emit_self();
          break;
        }
        const RegId src = ptr_of(machine_.v_reg[instr.x]);
        fresh();
        next[regs_n_ + machine_.cf] = 0;
        ++next[regs_n_ + machine_.ip];
        emit.emit(next);
        if (reg_of(src) > 0) {
          fresh();
          next[regs_n_ + machine_.cf] = 1;
          ++next[regs_n_ + machine_.ip];
          emit.emit(next);
        }
        break;
      }
      case Instr::Kind::kAssign: {
        const auto mapped = instr.map(ptr_of(instr.source));
        if (!mapped)
          throw std::logic_error("decide_machine: assign map not covering");
        if (instr.target == machine_.ip) {
          fresh();
          next[regs_n_ + machine_.ip] = *mapped;
          emit.emit(next);
        } else if (last) {
          emit.emit_self();
        } else {
          fresh();
          next[regs_n_ + instr.target] = *mapped;
          ++next[regs_n_ + machine_.ip];
          emit.emit(next);
        }
        break;
      }
    }
  }

 private:
  const Machine& machine_;
  std::size_t regs_n_;
};

}  // namespace

MachineDecision decide_machine(const Machine& machine,
                               const std::vector<std::uint64_t>& initial_regs,
                               const MachineExploreLimits& limits) {
  const std::size_t regs_n = machine.num_registers();
  const MachineState start = initial_state(machine, initial_regs);

  std::vector<u64> root;
  root.reserve(regs_n + machine.num_pointers());
  root.insert(root.end(), start.regs.begin(), start.regs.end());
  for (const u32 p : start.ptrs) root.push_back(p);

  verify::KernelOptions options;
  options.max_nodes = limits.max_nodes;
  options.threads = limits.threads;
  const MachineDomain domain(machine);
  verify::Kernel<MachineDomain> kernel(domain, options);
  const std::vector<std::vector<u64>> roots = {std::move(root)};
  const verify::KernelStats& stats = kernel.run(roots);

  MachineDecision result;
  result.explored_nodes = stats.nodes;
  if (!stats.complete) {
    result.verdict = MachineDecision::Verdict::kLimit;
    return result;
  }

  const verify::ConsensusReport report = verify::classify_bottom(
      kernel.analyse(), kernel.num_nodes(), [&](u32 id) {
        const bool of = kernel.state(id)[regs_n + machine.of] != 0;
        return of ? verify::NodeOutput::kTrue : verify::NodeOutput::kFalse;
      });
  using Verdict = MachineDecision::Verdict;
  if (report.any_mixed_bscc ||
      (report.any_true_bscc && report.any_false_bscc))
    result.verdict = Verdict::kDoesNotStabilise;
  else if (report.any_true_bscc)
    result.verdict = Verdict::kStabilisesTrue;
  else
    result.verdict = Verdict::kStabilisesFalse;
  return result;
}

}  // namespace ppde::machine
