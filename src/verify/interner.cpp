#include "verify/interner.hpp"

#include <cstring>

namespace ppde::verify {

namespace {
constexpr std::uint32_t kInitialSlots = 64;  // per shard, power of two
}

Interner::Interner() {
  for (Shard& shard : shards_) shard.slots.assign(kInitialSlots, 0);
}

bool Interner::equals(std::uint32_t id, std::span<const std::uint64_t> words,
                      std::uint64_t hash) const {
  if (hashes_[id] != hash) return false;
  const Node& node = nodes_[id];
  if (node.length != words.size()) return false;
  return std::memcmp(arena_.data() + node.offset, words.data(),
                     words.size() * sizeof(std::uint64_t)) == 0;
}

std::uint32_t Interner::find(std::span<const std::uint64_t> words,
                             std::uint64_t hash) const {
  const Shard& shard = shard_of(hash);
  const std::uint32_t mask =
      static_cast<std::uint32_t>(shard.slots.size()) - 1;
  for (std::uint32_t slot = static_cast<std::uint32_t>(hash) & mask;;
       slot = (slot + 1) & mask) {
    const std::uint32_t entry = shard.slots[slot];
    if (entry == 0) return kNotFound;
    if (equals(entry - 1, words, hash)) return entry - 1;
  }
}

std::pair<std::uint32_t, bool> Interner::intern(
    std::span<const std::uint64_t> words, std::uint64_t hash) {
  Shard& shard = shard_of(hash);
  if ((shard.count + 1) * 4 >= shard.slots.size() * 3) grow(shard);
  const std::uint32_t mask =
      static_cast<std::uint32_t>(shard.slots.size()) - 1;
  std::uint32_t slot = static_cast<std::uint32_t>(hash) & mask;
  for (; shard.slots[slot] != 0; slot = (slot + 1) & mask) {
    const std::uint32_t id = shard.slots[slot] - 1;
    if (equals(id, words, hash)) return {id, false};
  }
  const std::uint32_t id = static_cast<std::uint32_t>(nodes_.size());
  Node node;
  node.offset = arena_.size();
  node.length = static_cast<std::uint32_t>(words.size());
  arena_.insert(arena_.end(), words.begin(), words.end());
  nodes_.push_back(node);
  hashes_.push_back(hash);
  shard.slots[slot] = id + 1;
  ++shard.count;
  return {id, true};
}

void Interner::grow(Shard& shard) {
  std::vector<std::uint32_t> old_slots(shard.slots.size() * 2, 0);
  old_slots.swap(shard.slots);
  const std::uint32_t mask =
      static_cast<std::uint32_t>(shard.slots.size()) - 1;
  for (const std::uint32_t entry : old_slots) {
    if (entry == 0) continue;
    std::uint32_t slot = static_cast<std::uint32_t>(hashes_[entry - 1]) & mask;
    while (shard.slots[slot] != 0) slot = (slot + 1) & mask;
    shard.slots[slot] = entry;
  }
}

std::uint64_t Interner::bytes() const {
  std::uint64_t total = arena_.capacity() * sizeof(std::uint64_t) +
                        nodes_.capacity() * sizeof(Node) +
                        hashes_.capacity() * sizeof(std::uint64_t);
  for (const Shard& shard : shards_)
    total += shard.slots.capacity() * sizeof(std::uint32_t);
  return total;
}

}  // namespace ppde::verify
