// Post-exploration analysis for the verification kernel (S22): one shared
// implementation of the bottom-SCC stabilisation criterion.
//
// A fair infinite run of a finite transition system eventually confines
// itself to a bottom SCC of the reachability graph and visits all of it
// (DESIGN §3 "Fairness, exactly"). Every exact decision procedure in this
// library is therefore: explore the graph, find the SCCs, classify the
// bottom ones by the outputs of their nodes. Layers differ only in
//   * what counts as a node output (consensus output of a configuration,
//     witness-mode acceptance, the program/machine OF flag), and
//   * which nodes are *terminal events* (program-level return/restart):
//     a terminal node's SCC is never a bottom SCC, because reaching the
//     terminal is an event, not stabilisation.
// Both are parameters here; the Tarjan pass and the classification sweep
// are written once.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "support/scc.hpp"

namespace ppde::verify {

/// Terminal tag meaning "not a terminal node". Any other value is an
/// opaque, layer-defined tag (e.g. return-with-value vs restart).
inline constexpr std::uint32_t kNoTerminal = 0xffffffffu;

struct SccAnalysis {
  support::SccResult scc;
  /// Per SCC: no edge leaves it and it contains no terminal node.
  std::vector<std::uint8_t> is_bottom;
};

/// Tarjan + bottom flags. `terminal_tags` may be empty (no terminals) or
/// one tag per node.
SccAnalysis analyse_sccs(
    const std::vector<std::vector<std::uint32_t>>& successors,
    const std::vector<std::uint32_t>& terminal_tags);

/// True iff some bottom SCC exists — at program level this is exactly
/// "⊥ is possible": a fair run can avoid every terminal event forever.
bool any_bottom(const SccAnalysis& analysis);

/// Output of one node for consensus classification. kMixed marks a node
/// whose own output is undefined (it alone spoils a bottom SCC).
enum class NodeOutput : std::uint8_t { kTrue, kFalse, kMixed };

struct ConsensusReport {
  std::uint64_t num_sccs = 0;
  std::uint64_t num_bottom_sccs = 0;
  // Per-SCC classification over bottom SCCs.
  bool any_true_bscc = false;   ///< some bottom SCC is constant-true
  bool any_false_bscc = false;  ///< some bottom SCC is constant-false
  bool any_mixed_bscc = false;  ///< some bottom SCC sees both outputs
  // Aggregate over all bottom-SCC nodes (pp::Verifier's verdict basis:
  // two *disagreeing* constant bottom SCCs also refute stabilisation).
  bool aggregate_true = false;
  bool aggregate_false = false;
  /// First node (in id order) at which the aggregate had seen both
  /// outputs — the counterexample node for "does not stabilise".
  std::optional<std::uint32_t> offending_node;

  bool stabilises() const { return !(aggregate_true && aggregate_false); }
};

/// Sweep all nodes in id order, classifying bottom SCCs by
/// `output(id) -> NodeOutput`. Deterministic: depends only on the graph
/// and the output function, never on thread count.
template <typename OutputFn>
ConsensusReport classify_bottom(const SccAnalysis& analysis,
                                std::uint32_t num_nodes,
                                const OutputFn& output) {
  ConsensusReport report;
  report.num_sccs = analysis.scc.scc_count;
  std::vector<std::uint8_t> seen(analysis.scc.scc_count, 0);
  std::vector<std::uint8_t> saw_true(analysis.scc.scc_count, 0);
  std::vector<std::uint8_t> saw_false(analysis.scc.scc_count, 0);
  for (std::uint32_t id = 0; id < num_nodes; ++id) {
    const std::uint32_t component = analysis.scc.scc_of[id];
    if (!analysis.is_bottom[component]) continue;
    if (!seen[component]) {
      seen[component] = 1;
      ++report.num_bottom_sccs;
    }
    switch (output(id)) {
      case NodeOutput::kTrue:
        saw_true[component] = 1;
        report.aggregate_true = true;
        break;
      case NodeOutput::kFalse:
        saw_false[component] = 1;
        report.aggregate_false = true;
        break;
      case NodeOutput::kMixed:
        saw_true[component] = saw_false[component] = 1;
        report.aggregate_true = report.aggregate_false = true;
        break;
    }
    if (report.aggregate_true && report.aggregate_false &&
        !report.offending_node)
      report.offending_node = id;
  }
  for (std::uint32_t component = 0; component < analysis.scc.scc_count;
       ++component) {
    if (!analysis.is_bottom[component]) continue;
    const bool t = saw_true[component] != 0;
    const bool f = saw_false[component] != 0;
    if (t && f)
      report.any_mixed_bscc = true;
    else if (t)
      report.any_true_bscc = true;
    else if (f)
      report.any_false_bscc = true;
  }
  return report;
}

}  // namespace ppde::verify
