#include "verify/analysis.hpp"

namespace ppde::verify {

SccAnalysis analyse_sccs(
    const std::vector<std::vector<std::uint32_t>>& successors,
    const std::vector<std::uint32_t>& terminal_tags) {
  SccAnalysis analysis;
  analysis.scc = support::tarjan_scc(successors);
  analysis.is_bottom.assign(analysis.scc.scc_count, 1);
  for (std::uint32_t v = 0; v < successors.size(); ++v) {
    if (!terminal_tags.empty() && terminal_tags[v] != kNoTerminal) {
      // Terminal events are not stabilisation: their SCC is never bottom.
      analysis.is_bottom[analysis.scc.scc_of[v]] = 0;
      continue;
    }
    for (const std::uint32_t succ : successors[v])
      if (analysis.scc.scc_of[succ] != analysis.scc.scc_of[v])
        analysis.is_bottom[analysis.scc.scc_of[v]] = 0;
  }
  return analysis;
}

bool any_bottom(const SccAnalysis& analysis) {
  for (const std::uint8_t bottom : analysis.is_bottom)
    if (bottom) return true;
  return false;
}

}  // namespace ppde::verify
