// Arena-backed sharded state interner for the verification kernel (S22).
//
// Every exhaustive explorer in this library maps variable-length encoded
// states (sparse protocol configurations, program nodes, machine nodes —
// all sequences of u64 words) to dense u32 node ids. The previous
// per-layer `unordered_map<vector, u32>` interners paid one heap
// allocation plus ~48 bytes of map-node overhead per state; this interner
// stores all state words back to back in one growing arena and keeps only
// (offset, length, hash) per node, with open-addressing id tables sharded
// by the high hash bits.
//
// Concurrency contract (what the kernel's wave discipline relies on):
//   * intern() must only be called from one thread at a time (the kernel
//     calls it from the sequential merge pass of each wave);
//   * find() and state() are safe to call concurrently with each other
//     and with nothing else — i.e. during the parallel expansion phase,
//     when the interner is immutable. They are NOT safe concurrently
//     with intern().
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/hash.hpp"

namespace ppde::verify {

/// Hash of an encoded state; the seed matches support::hash_range so the
/// same words hash identically regardless of container type.
inline std::uint64_t hash_words(std::span<const std::uint64_t> words) {
  std::uint64_t h = 0x2545f4914f6cdd1dULL;
  for (const std::uint64_t w : words) h = support::hash_combine(h, w);
  return h;
}

class Interner {
 public:
  static constexpr std::uint32_t kNotFound = 0xffffffffu;

  Interner();

  std::uint32_t size() const {
    return static_cast<std::uint32_t>(nodes_.size());
  }

  /// The stored words of node `id`. Spans stay valid until the next
  /// intern() call (the arena may grow).
  std::span<const std::uint64_t> state(std::uint32_t id) const {
    const Node& node = nodes_[id];
    return {arena_.data() + node.offset, node.length};
  }

  /// Id of `words` if already interned, else kNotFound. Read-only.
  std::uint32_t find(std::span<const std::uint64_t> words,
                     std::uint64_t hash) const;

  /// Id of `words`, interning it if new; second = inserted.
  std::pair<std::uint32_t, bool> intern(std::span<const std::uint64_t> words,
                                        std::uint64_t hash);

  /// Approximate heap footprint in bytes (arena + node table + shards).
  std::uint64_t bytes() const;

 private:
  struct Node {
    std::uint64_t offset = 0;
    std::uint32_t length = 0;
  };
  struct Shard {
    /// Open addressing, linear probing; slot holds id + 1, 0 = empty.
    std::vector<std::uint32_t> slots;
    std::uint32_t count = 0;
  };
  static constexpr unsigned kShardBits = 4;
  static constexpr unsigned kNumShards = 1u << kShardBits;

  Shard& shard_of(std::uint64_t hash) {
    return shards_[hash >> (64 - kShardBits)];
  }
  const Shard& shard_of(std::uint64_t hash) const {
    return shards_[hash >> (64 - kShardBits)];
  }
  bool equals(std::uint32_t id, std::span<const std::uint64_t> words,
              std::uint64_t hash) const;
  void grow(Shard& shard);

  std::vector<std::uint64_t> arena_;
  std::vector<Node> nodes_;
  std::vector<std::uint64_t> hashes_;  ///< per node, for probe & resize
  Shard shards_[kNumShards];
};

}  // namespace ppde::verify
