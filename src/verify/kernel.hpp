// The parallel state-space exploration kernel (S22).
//
// One exhaustive-exploration engine for all three exact decision
// procedures in this library (protocol configurations, program nodes,
// machine nodes). A *domain* supplies the state encoding and the successor
// function:
//
//   struct MyDomain {
//     // Must be const and safe to call concurrently from many threads.
//     void expand(std::span<const std::uint64_t> state,
//                 verify::Emitter& emit) const;
//   };
//
// States are arbitrary sequences of u64 words; `expand` reports each
// successor via `emit.emit(words)` (or `emit.emit_self()` for a self-loop)
// and may mark the node as a terminal event with `emit.set_terminal(tag)`.
//
// Determinism scheme (the S21 seed-derivation discipline, transposed to
// search): exploration proceeds in BFS waves. Each wave expands a chunk of
// frontier nodes *in parallel* — expansion only reads the frozen interner
// and writes to a per-node buffer slot, so the buffers' contents are a
// pure function of the node, never of the executing thread. Node ids are
// then assigned by a *sequential* merge pass that walks the wave in node
// order and interns each buffered successor in emission order. The
// resulting id assignment, successor lists, edge counts and budget
// trigger points are bit-identical at every thread count — and identical
// to the classic sequential BFS (expand node 0, intern its successors,
// expand node 1, ...) that the three pre-kernel explorers implemented.
//
// Budgets are explicit (nodes, edges, interner bytes); when one is hit
// the kernel stops expanding and reports a *partial* result — the stats
// carry what was explored and which budget tripped, instead of an empty
// "resource limit" verdict.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include "engine/pool.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "verify/analysis.hpp"
#include "verify/interner.hpp"

namespace ppde::verify {

struct KernelOptions {
  std::uint64_t max_nodes = 2'000'000;
  std::uint64_t max_edges = UINT64_MAX;
  std::uint64_t max_bytes = UINT64_MAX;  ///< interner footprint budget
  /// Worker threads (including the caller); 0 = hardware concurrency.
  unsigned threads = 1;
  /// Frontier nodes expanded per parallel wave.
  std::uint32_t wave_chunk = 4096;
};

enum class LimitKind : std::uint8_t { kNone, kNodes, kEdges, kBytes };

struct KernelStats {
  std::uint64_t nodes = 0;
  std::uint64_t edges = 0;
  std::uint64_t bytes = 0;
  std::uint64_t waves = 0;
  bool complete = false;
  LimitKind limit = LimitKind::kNone;
};

/// Successor sink for one node's expansion. Owned by the kernel; each
/// frontier node of a wave gets its own slot, so domains never share one.
class Emitter {
 public:
  /// Record a successor state. Already-interned states are resolved to
  /// their id immediately (read-only probe of the frozen interner); new
  /// states are buffered for the sequential merge pass.
  void emit(std::span<const std::uint64_t> words) {
    Entry entry;
    entry.hash = hash_words(words);
    const std::uint32_t id = interner_->find(words, entry.hash);
    if (id != Interner::kNotFound) {
      entry.kind = id;
    } else {
      entry.kind = kUnresolved;
      entry.offset = static_cast<std::uint32_t>(words_.size());
      entry.length = static_cast<std::uint32_t>(words.size());
      words_.insert(words_.end(), words.begin(), words.end());
    }
    entries_.push_back(entry);
  }

  /// Record a self-loop on the node being expanded.
  void emit_self() {
    Entry entry;
    entry.kind = kSelf;
    entries_.push_back(entry);
  }

  /// Mark the node a terminal event (excluded from bottom SCCs).
  void set_terminal(std::uint32_t tag) { terminal_ = tag; }

 private:
  template <typename Domain>
  friend class Kernel;

  struct Entry {
    std::uint32_t kind = 0;  ///< node id, kUnresolved, or kSelf
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
    std::uint64_t hash = 0;
  };
  static constexpr std::uint32_t kUnresolved = 0xffffffffu;
  static constexpr std::uint32_t kSelf = 0xfffffffeu;

  void reset(const Interner* interner) {
    interner_ = interner;
    entries_.clear();
    words_.clear();
    terminal_ = kNoTerminal;
  }

  const Interner* interner_ = nullptr;
  std::vector<Entry> entries_;
  std::vector<std::uint64_t> words_;
  std::uint32_t terminal_ = kNoTerminal;
};

template <typename Domain>
class Kernel {
 public:
  Kernel(const Domain& domain, const KernelOptions& options)
      : domain_(domain), options_(options) {}

  /// Explore everything reachable from `roots`. Returns the stats; the
  /// graph accessors below are valid afterwards (partial on budget hit).
  const KernelStats& run(std::span<const std::vector<std::uint64_t>> roots) {
    obs::ObsSpan run_span("kernel_run", "verify");
    for (const std::vector<std::uint64_t>& root : roots)
      interner_.intern(root, hash_words(root));
    successors_.resize(interner_.size());
    terminal_tags_.resize(interner_.size(), kNoTerminal);

    const unsigned threads =
        options_.threads != 0
            ? options_.threads
            : std::max(1u, std::thread::hardware_concurrency());
    engine::WorkerPool pool(threads);
    std::vector<Emitter> buffers(
        std::max<std::uint32_t>(options_.wave_chunk, 1));

    stats_ = KernelStats{};
    // Exploration observability (S24): per-wave spans + live gauges for
    // the progress heartbeat. All updates happen on the sequential
    // control path, once per wave — never per node.
    obs::Registry& registry = obs::Registry::global();
    obs::Gauge& nodes_gauge = registry.gauge("verify.nodes");
    obs::Gauge& edges_gauge = registry.gauge("verify.edges");
    obs::Gauge& frontier_gauge = registry.gauge("verify.frontier");
    obs::Gauge& bytes_gauge = registry.gauge("verify.interner_bytes");
    obs::Histogram& wave_micros = registry.histogram("verify.wave_micros");
    std::uint32_t next = 0;
    std::vector<std::uint32_t> succs;
    while (next < interner_.size() && stats_.limit == LimitKind::kNone) {
      const std::uint32_t wave_start = next;
      const std::uint32_t wave = std::min<std::uint32_t>(
          interner_.size() - wave_start,
          static_cast<std::uint32_t>(buffers.size()));
      obs::ObsSpan wave_span("wave", "verify");
      wave_span.set_value(static_cast<double>(wave));
      const std::uint64_t wave_begin_ns = obs::now_ns();
      // Parallel phase: expand the wave into per-node buffers. The
      // interner is frozen, so concurrent find()/state() are safe.
      {
        obs::ObsSpan expand_span("expand", "verify");
        pool.parallel_for(wave, [&](std::uint64_t i) {
          buffers[i].reset(&interner_);
          domain_.expand(
              interner_.state(wave_start + static_cast<std::uint32_t>(i)),
              buffers[i]);
        });
      }
      // Sequential merge: assign ids in node order, emission order.
      for (std::uint32_t i = 0; i < wave; ++i) {
        const std::uint32_t id = wave_start + i;
        if (interner_.size() > options_.max_nodes) {
          stats_.limit = LimitKind::kNodes;
          break;
        }
        Emitter& buffer = buffers[i];
        terminal_tags_[id] = buffer.terminal_;
        succs.clear();
        for (const Emitter::Entry& entry : buffer.entries_) {
          std::uint32_t succ;
          if (entry.kind == Emitter::kSelf) {
            succ = id;
          } else if (entry.kind == Emitter::kUnresolved) {
            succ = interner_
                       .intern({buffer.words_.data() + entry.offset,
                                entry.length},
                               entry.hash)
                       .first;
          } else {
            succ = entry.kind;
          }
          succs.push_back(succ);
        }
        std::sort(succs.begin(), succs.end());
        succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
        stats_.edges += succs.size();
        successors_[id] = succs;
        if (stats_.edges > options_.max_edges) {
          stats_.limit = LimitKind::kEdges;
          break;
        }
        if (interner_.bytes() > options_.max_bytes) {
          stats_.limit = LimitKind::kBytes;
          break;
        }
        ++next;
      }
      successors_.resize(interner_.size());
      terminal_tags_.resize(interner_.size(), kNoTerminal);
      ++stats_.waves;
      nodes_gauge.set(static_cast<double>(interner_.size()));
      edges_gauge.set(static_cast<double>(stats_.edges));
      frontier_gauge.set(static_cast<double>(interner_.size() - next));
      bytes_gauge.set(static_cast<double>(interner_.bytes()));
      wave_micros.record((obs::now_ns() - wave_begin_ns) / 1000);
      obs::trace_counter("verify.interner_bytes",
                         static_cast<double>(interner_.bytes()));
    }

    stats_.nodes = interner_.size();
    stats_.bytes = interner_.bytes();
    stats_.complete = stats_.limit == LimitKind::kNone;
    return stats_;
  }

  std::uint32_t num_nodes() const { return interner_.size(); }
  std::span<const std::uint64_t> state(std::uint32_t id) const {
    return interner_.state(id);
  }
  const std::vector<std::vector<std::uint32_t>>& successors() const {
    return successors_;
  }
  const std::vector<std::uint32_t>& terminal_tags() const {
    return terminal_tags_;
  }
  std::uint32_t terminal_tag(std::uint32_t id) const {
    return terminal_tags_[id];
  }
  const KernelStats& stats() const { return stats_; }

  /// Tarjan + bottom-SCC flags over the explored graph.
  SccAnalysis analyse() const {
    return analyse_sccs(successors_, terminal_tags_);
  }

 private:
  const Domain& domain_;
  KernelOptions options_;
  Interner interner_;
  std::vector<std::vector<std::uint32_t>> successors_;
  std::vector<std::uint32_t> terminal_tags_;
  KernelStats stats_;
};

}  // namespace ppde::verify
