// The 4-state majority protocol (Draief–Vojnovic style).
//
// Decides phi(x, y) <=> x > y: big agents A/B cancel, survivors convert the
// small agents' opinions, and ties resolve to reject via (a, b -> b, b).
// Included as the canonical worked example of the population protocol model
// (paper Section 1) and as a sanity workload for the simulator/verifier.
#pragma once

#include <cstdint>

#include "pp/config.hpp"
#include "pp/protocol.hpp"

namespace ppde::baselines {

/// States "A", "B", "a", "b"; inputs "A" (x) and "B" (y); accepting {A, a}.
pp::Protocol make_majority();

/// Initial configuration with x agents in "A" and y agents in "B".
pp::Config majority_initial(const pp::Protocol& protocol, std::uint32_t x,
                            std::uint32_t y);

}  // namespace ppde::baselines
