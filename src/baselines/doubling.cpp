#include "baselines/doubling.hpp"

#include <string>
#include <vector>

namespace ppde::baselines {

pp::Protocol make_doubling(std::uint32_t j) {
  pp::Protocol protocol;
  const pp::State sink = protocol.add_state("sink");
  std::vector<pp::State> power(j + 1);
  for (std::uint32_t i = 0; i <= j; ++i)
    power[i] = protocol.add_state("p" + std::to_string(i));
  protocol.mark_input(power[0]);
  protocol.mark_accepting(power[j]);

  // 2^i + 2^i = 2^(i+1); the second agent becomes a zero-value sink.
  for (std::uint32_t i = 0; i + 1 <= j; ++i)
    protocol.add_transition(power[i], power[i], power[i + 1], sink);
  // Acceptance broadcast from the top power.
  protocol.add_transition(power[j], sink, power[j], power[j]);
  for (std::uint32_t i = 0; i < j; ++i)
    protocol.add_transition(power[j], power[i], power[j], power[j]);

  protocol.finalize();
  return protocol;
}

pp::Config doubling_initial(const pp::Protocol& protocol, std::uint32_t x) {
  return pp::Config::single(protocol.num_states(), protocol.state("p0"), x);
}

}  // namespace ppde::baselines
