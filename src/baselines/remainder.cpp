#include "baselines/remainder.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace ppde::baselines {

pp::Protocol make_remainder(std::uint32_t d, std::uint32_t r) {
  if (d == 0) throw std::invalid_argument("remainder: d must be >= 1");
  if (r >= d) throw std::invalid_argument("remainder: r must be < d");
  pp::Protocol protocol;
  std::vector<pp::State> active(d);
  for (std::uint32_t v = 0; v < d; ++v)
    active[v] = protocol.add_state("v" + std::to_string(v));
  const pp::State yes = protocol.add_state("yes");
  const pp::State no = protocol.add_state("no");
  protocol.mark_input(active[1 % d]);
  protocol.mark_accepting(active[r]);
  protocol.mark_accepting(yes);

  for (std::uint32_t u = 0; u < d; ++u) {
    for (std::uint32_t v = 0; v < d; ++v) {
      const std::uint32_t sum = (u + v) % d;
      // Merge; the responder turns passive with the merged verdict.
      protocol.add_transition(active[u], active[v], active[sum],
                              sum == r ? yes : no);
    }
    // The surviving active agent corrects passive opinions.
    protocol.add_transition(active[u], u == r ? no : yes, active[u],
                            u == r ? yes : no);
  }

  protocol.finalize();
  return protocol;
}

pp::Config remainder_initial(const pp::Protocol& protocol, std::uint32_t x) {
  return pp::Config::single(protocol.num_states(), protocol.state("v1"), x);
}

}  // namespace ppde::baselines
