#include "baselines/flock.hpp"

#include <stdexcept>
#include <string>
#include <vector>

namespace ppde::baselines {

pp::Protocol make_flock_of_birds(std::uint64_t k) {
  if (k == 0) throw std::invalid_argument("flock_of_birds: k must be >= 1");
  pp::Protocol protocol;
  std::vector<pp::State> level(k + 1);
  for (std::uint64_t v = 0; v <= k; ++v)
    level[v] = protocol.add_state(std::to_string(v));
  protocol.mark_input(level[1]);
  protocol.mark_accepting(level[k]);

  // Merge partial counts; saturate at k.
  for (std::uint64_t a = 1; a < k; ++a) {
    for (std::uint64_t b = 1; b < k; ++b) {
      if (a + b < k)
        protocol.add_transition(level[a], level[b], level[a + b], level[0]);
      else
        protocol.add_transition(level[a], level[b], level[k], level[k]);
    }
  }
  // An agent at k convinces everyone (1-aware broadcast).
  for (std::uint64_t v = 0; v < k; ++v)
    protocol.add_transition(level[k], level[v], level[k], level[k]);

  protocol.finalize();
  return protocol;
}

pp::Config flock_initial(const pp::Protocol& protocol, std::uint32_t x) {
  return pp::Config::single(protocol.num_states(), protocol.state("1"), x);
}

}  // namespace ppde::baselines
