// Succinct power-of-two threshold protocol ("doubling" protocol).
//
// Decides phi(x) <=> x >= 2^j with j + 2 states: agents hold powers of two,
// two agents with the same power 2^i merge into one agent with 2^(i+1) and
// one zero agent; an agent reaching 2^j broadcasts acceptance. This is the
// textbook O(log k)-state leaderless threshold family — our stand-in for
// the Blondin–Esparza–Jaax O(|phi|) construction in the Table 1 comparison
// (see DESIGN.md §4). Like all prior constructions it is 1-aware and fails
// under a single noise agent placed in the accepting state, which is the
// robustness contrast drawn by the paper's Section 8.
#pragma once

#include <cstdint>

#include "pp/config.hpp"
#include "pp/protocol.hpp"

namespace ppde::baselines {

/// Build the doubling protocol for threshold 2^j, j >= 0.
/// States: "sink", "p0", ..., "pj"; input "p0"; accepting {"pj"}.
pp::Protocol make_doubling(std::uint32_t j);

/// Initial configuration with x agents (all in input state "p0").
pp::Config doubling_initial(const pp::Protocol& protocol, std::uint32_t x);

}  // namespace ppde::baselines
