#include "baselines/majority.hpp"

namespace ppde::baselines {

pp::Protocol make_majority() {
  pp::Protocol protocol;
  const pp::State big_a = protocol.add_state("A");
  const pp::State big_b = protocol.add_state("B");
  const pp::State small_a = protocol.add_state("a");
  const pp::State small_b = protocol.add_state("b");
  protocol.mark_input(big_a);
  protocol.mark_input(big_b);
  protocol.mark_accepting(big_a);
  protocol.mark_accepting(small_a);

  protocol.add_transition(big_a, big_b, small_a, small_b);  // cancellation
  protocol.add_transition(big_a, small_b, big_a, small_a);  // A converts
  protocol.add_transition(big_b, small_a, big_b, small_b);  // B converts
  protocol.add_transition(small_a, small_b, small_b, small_b);  // ties reject

  protocol.finalize();
  return protocol;
}

pp::Config majority_initial(const pp::Protocol& protocol, std::uint32_t x,
                            std::uint32_t y) {
  pp::Config config(protocol.num_states());
  config.add(protocol.state("A"), x);
  config.add(protocol.state("B"), y);
  return config;
}

}  // namespace ppde::baselines
