// The classic "flock of birds" threshold protocol (Angluin et al. 2004).
//
// Decides phi(x) <=> x >= k with Theta(k) states: each agent carries a
// partial count in {0, ..., k}; two agents merge their counts (capping at
// k), and an agent that reaches k broadcasts acceptance. This is the
// O(2^|phi|)-state baseline of Table 1 ("ordinary" column, 2004 row): the
// number of states is exponential in the binary encoding length of k.
//
// The protocol is 1-aware — the first agent to reach count k *knows* the
// threshold has been met — which is exactly the property the paper's
// construction avoids (its conditional lower bound would otherwise apply).
#pragma once

#include <cstdint>

#include "pp/config.hpp"
#include "pp/protocol.hpp"

namespace ppde::baselines {

/// Build the flock-of-birds protocol for threshold k >= 1.
/// States: "0", "1", ..., "k"; input state "1"; accepting state set {"k"}.
pp::Protocol make_flock_of_birds(std::uint64_t k);

/// Initial configuration with x agents (all in input state "1").
pp::Config flock_initial(const pp::Protocol& protocol, std::uint32_t x);

}  // namespace ppde::baselines
