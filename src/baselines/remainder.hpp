// Remainder protocol: decides phi(x) <=> x ≡ r (mod d).
//
// Each agent starts as an active unit; active agents merge their values
// modulo d (one of them turning passive), so exactly one active agent
// survives holding x mod d, and passives copy its verdict. d + 2 states.
// Mentioned in the paper's conclusion as the natural next predicate family;
// included both as a simulator workload and to exercise remainder
// predicates in the presburger module.
#pragma once

#include <cstdint>

#include "pp/config.hpp"
#include "pp/protocol.hpp"

namespace ppde::baselines {

/// Build the remainder protocol for modulus d >= 1 and residue r < d.
/// States "v0"..."v{d-1}" (active), "yes", "no"; input "v1"; accepting
/// {"v{r}", "yes"}.
pp::Protocol make_remainder(std::uint32_t d, std::uint32_t r);

/// Initial configuration with x agents (all active units "v1").
pp::Config remainder_initial(const pp::Protocol& protocol, std::uint32_t x);

}  // namespace ppde::baselines
