// Threaded-code execution of compiled cells (S26).
//
// A Cell's opcode stream is dispatched with computed goto on GCC/Clang
// (one indirect jump per cell, no bounds check, no switch ladder), falling
// back to a plain switch elsewhere. Executors are templated over a policy
// supplying the four primitive writes so the same dispatch core serves the
// per-agent simulator (slot writes), the count engine (count shifts) and
// the verifier's successor generator (config clones).
#pragma once

#include "isa/compiled.hpp"

#if defined(__GNUC__) || defined(__clang__)
#define PPDE_ISA_COMPUTED_GOTO 1
#else
#define PPDE_ISA_COMPUTED_GOTO 0
#endif

namespace ppde::isa {

/// Execute one compiled cell for a meeting of states (q, r).
///
/// Policy requirements (all may be lambdas via make_policy below):
///   policy.write_q(q2)   — rewrite the initiator side to q2
///   policy.write_r(r2)   — rewrite the responder side to r2
///   policy.write_both(q2, r2)
///   policy.swap_qr()     — both sides exchange states (counts invariant)
///   policy.accepting(delta) — apply the fused accepting-counter delta
/// A kNop cell only reaches policy.accepting(0); identity writes never
/// happen, which is what keeps the count engine's shift surgery identical
/// to the interpreter's "skip when from == to" behaviour.
template <typename Policy>
inline void execute_cell(const Cell& cell, Policy&& policy) {
#if PPDE_ISA_COMPUTED_GOTO
  static const void* const kTable[kNumOps] = {
      &&lbl_nop, &&lbl_write_q, &&lbl_write_r, &&lbl_write_both, &&lbl_swap,
  };
  goto* kTable[cell.meta & 0xff];
lbl_nop:
  policy.accepting(cell.accepting_delta());
  return;
lbl_write_q:
  policy.write_q(cell.q2);
  policy.accepting(cell.accepting_delta());
  return;
lbl_write_r:
  policy.write_r(cell.r2);
  policy.accepting(cell.accepting_delta());
  return;
lbl_write_both:
  policy.write_both(cell.q2, cell.r2);
  policy.accepting(cell.accepting_delta());
  return;
lbl_swap:
  policy.swap_qr();
  policy.accepting(cell.accepting_delta());
  return;
#else
  switch (cell.op()) {
    case kNop:
      break;
    case kWriteQ:
      policy.write_q(cell.q2);
      break;
    case kWriteR:
      policy.write_r(cell.r2);
      break;
    case kWriteBoth:
      policy.write_both(cell.q2, cell.r2);
      break;
    case kSwap:
      policy.swap_qr();
      break;
    default:
      break;
  }
  policy.accepting(cell.accepting_delta());
#endif
}

/// Convenience policy built from five callables (lambdas compose well at
/// call sites that only need a couple of ops to do real work).
template <typename WQ, typename WR, typename WB, typename SW, typename AC>
struct CellPolicy {
  WQ wq;
  WR wr;
  WB wb;
  SW sw;
  AC ac;
  void write_q(std::uint32_t q2) { wq(q2); }
  void write_r(std::uint32_t r2) { wr(r2); }
  void write_both(std::uint32_t q2, std::uint32_t r2) { wb(q2, r2); }
  void swap_qr() { sw(); }
  void accepting(std::int32_t delta) { ac(delta); }
};

template <typename WQ, typename WR, typename WB, typename SW, typename AC>
CellPolicy<WQ, WR, WB, SW, AC> make_policy(WQ wq, WR wr, WB wb, SW sw,
                                           AC ac) {
  return {wq, wr, wb, sw, ac};
}

}  // namespace ppde::isa
