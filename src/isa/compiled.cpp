#include "isa/compiled.hpp"

#include <algorithm>
#include <bit>
#include <numeric>
#include <stdexcept>

namespace ppde::isa {

const char* to_string(Dispatch dispatch) {
  return dispatch == Dispatch::kBytecode ? "bytecode" : "interp";
}

Dispatch parse_dispatch(const std::string& text) {
  if (text == "interp") return Dispatch::kInterp;
  if (text == "bytecode") return Dispatch::kBytecode;
  throw std::invalid_argument("unknown dispatch mode '" + text +
                              "' (expected interp or bytecode)");
}

namespace {

constexpr std::uint64_t kEmptyKey = ~std::uint64_t{0};

std::uint64_t pair_key(pp::State q, pp::State r) {
  return (static_cast<std::uint64_t>(q) << 32) | r;
}

std::size_t ph_slot(std::uint64_t key, std::uint32_t d, std::size_t slots) {
  return CompiledProtocol::mix(key ^ (0x9e3779b97f4a7c15ULL * d)) &
         (slots - 1);
}

/// Build the CHD perfect hash over (key, entry) pairs. Greedy
/// hash-and-displace: buckets by first-level hash, largest first, each
/// displaced until its keys land in free slots. Grows the slot table and
/// retries on (astronomically unlikely) failure.
void build_perfect_hash(
    const std::vector<std::pair<std::uint64_t, std::uint32_t>>& entries,
    CompiledProtocol::RawTables& t) {
  const std::size_t n = entries.size();
  const std::size_t buckets =
      std::bit_ceil(std::max<std::size_t>(1, n / 4));
  std::size_t slots = std::bit_ceil(std::max<std::size_t>(2, n + n / 4));
  std::vector<std::vector<std::uint32_t>> bucket_of(buckets);
  for (std::uint32_t i = 0; i < n; ++i)
    bucket_of[CompiledProtocol::mix(entries[i].first) & (buckets - 1)]
        .push_back(i);
  std::vector<std::uint32_t> order(buckets);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
    return bucket_of[a].size() > bucket_of[b].size();
  });
  for (;; slots *= 2) {
    t.ph_disp.assign(buckets, 0);
    t.ph_key.assign(slots, kEmptyKey);
    t.ph_entry.assign(slots, CompiledProtocol::kAbsent);
    bool ok = true;
    std::vector<std::size_t> claimed;
    for (std::uint32_t b : order) {
      const auto& members = bucket_of[b];
      if (members.empty()) break;  // sorted descending: the rest are empty
      std::uint32_t d = 0;
      for (;; ++d) {
        if (d > 1u << 20) {
          ok = false;
          break;
        }
        claimed.clear();
        bool fits = true;
        for (std::uint32_t i : members) {
          const std::size_t slot = ph_slot(entries[i].first, d, slots);
          if (t.ph_key[slot] != kEmptyKey ||
              std::find(claimed.begin(), claimed.end(), slot) !=
                  claimed.end()) {
            fits = false;
            break;
          }
          claimed.push_back(slot);
        }
        if (fits) break;
      }
      if (!ok) break;
      t.ph_disp[b] = d;
      for (std::uint32_t i : members) {
        const std::size_t slot = ph_slot(entries[i].first, d, slots);
        t.ph_key[slot] = entries[i].first;
        t.ph_entry[slot] = entries[i].second;
      }
    }
    if (ok) return;
  }
}

void check(bool condition, const char* what) {
  if (!condition)
    throw std::invalid_argument(std::string("CompiledProtocol: ") + what);
}

/// Monotone CSR offsets covering [0, flat_size] with `rows` rows.
void check_csr(const std::vector<std::uint32_t>& begin, std::size_t rows,
               std::size_t flat_size, const char* what) {
  check(begin.size() == rows + 1, what);
  check(begin.front() == 0 && begin.back() == flat_size, what);
  for (std::size_t i = 0; i + 1 < begin.size(); ++i)
    check(begin[i] <= begin[i + 1], what);
}

void validate(const CompiledProtocol::RawTables& t) {
  const std::size_t n = t.num_states;
  const std::size_t pairs = t.out_flat.size();
  check_csr(t.out_begin, n, pairs, "malformed out CSR");
  check_csr(t.in_begin, n, t.in_flat.size(), "malformed in CSR");
  check(t.in_flat.size() == pairs, "in/out pair-count mismatch");
  check(t.self_active.size() == n, "self_active size");
  check_csr(t.cand_begin, pairs, t.cand_flat.size(), "malformed cand CSR");
  check(t.cells.size() == t.cand_flat.size(), "cells/cand size mismatch");
  for (pp::State q = 0; q < n; ++q) {
    const auto* flat = t.out_flat.data();
    for (std::uint32_t p = t.out_begin[q]; p < t.out_begin[q + 1]; ++p) {
      check(flat[p] < n, "partner out of range");
      check(p == t.out_begin[q] || flat[p - 1] < flat[p],
            "partners not strictly ascending");
      // Every active pair needs at least one (non-silent) candidate.
      check(t.cand_begin[p] < t.cand_begin[p + 1], "active pair without "
                                                   "candidates");
      check((q == flat[p]) == false || t.self_active[q] != 0,
            "self_active inconsistent");
    }
    for (std::uint32_t p = t.in_begin[q]; p < t.in_begin[q + 1]; ++p) {
      check(t.in_flat[p] < n, "initiator out of range");
      check(p == t.in_begin[q] || t.in_flat[p - 1] < t.in_flat[p],
            "initiators not strictly ascending");
    }
  }
  for (std::size_t i = 0; i < t.cand_flat.size(); ++i) {
    check(t.cand_flat[i] < t.num_transitions, "candidate index out of range");
    const Cell& cell = t.cells[i];
    check((cell.meta & 0xff) < kNumOps, "unknown opcode");
    check(cell.q2 < n && cell.r2 < n, "cell post-state out of range");
    const std::int32_t delta = cell.accepting_delta();
    check(delta >= -2 && delta <= 2, "accepting delta out of range");
  }
  // Lookup table: exactly one strategy, covering every pair position once.
  check(t.dense.empty() != t.ph_key.empty(), "need exactly one lookup table");
  std::vector<std::uint8_t> seen(pairs, 0);
  auto see = [&](std::uint32_t entry) {
    if (entry == CompiledProtocol::kSilentOnly) return;
    check(entry < pairs, "lookup entry out of range");
    check(!seen[entry], "duplicate lookup entry");
    seen[entry] = 1;
  };
  if (!t.dense.empty()) {
    check(t.dense.size() == n * n, "dense table size");
    for (std::uint32_t entry : t.dense)
      if (entry != CompiledProtocol::kAbsent) see(entry);
  } else {
    check(std::has_single_bit(t.ph_key.size()) &&
              std::has_single_bit(t.ph_disp.size()),
          "perfect-hash sizes not powers of two");
    check(t.ph_entry.size() == t.ph_key.size(), "perfect-hash table sizes");
    for (std::size_t slot = 0; slot < t.ph_key.size(); ++slot) {
      if (t.ph_key[slot] == kEmptyKey) continue;
      const std::uint64_t key = t.ph_key[slot];
      const pp::State q = static_cast<pp::State>(key >> 32);
      const pp::State r = static_cast<pp::State>(key);
      check(q < n && r < n, "perfect-hash key out of range");
      // The stored slot must be where lookup probes for this key.
      const std::uint32_t d =
          t.ph_disp[CompiledProtocol::mix(key) & (t.ph_disp.size() - 1)];
      check(ph_slot(key, d, t.ph_key.size()) == slot,
            "perfect-hash slot mismatch");
      see(t.ph_entry[slot]);
    }
  }
  for (std::size_t p = 0; p < pairs; ++p)
    check(seen[p], "pair position missing from lookup table");
  // Bitsets: both or neither, correctly sized.
  check(t.active_bits.empty() == t.any_bits.empty(), "bitset pairing");
  if (!t.active_bits.empty()) {
    const std::size_t words = (n * n + 63) / 64;
    check(t.active_bits.size() == words && t.any_bits.size() == words,
          "bitset size");
  }
}

}  // namespace

std::uint32_t CompiledProtocol::pair_pos(pp::State q, pp::State r) const {
  const auto partners = partners_of(q);
  const auto it = std::lower_bound(partners.begin(), partners.end(), r);
  return t_.out_begin[q] + static_cast<std::uint32_t>(it - partners.begin());
}

std::shared_ptr<const CompiledProtocol> CompiledProtocol::compile(
    const pp::Protocol& protocol) {
  RawTables t;
  const std::size_t n = protocol.num_states();
  t.num_states = static_cast<std::uint32_t>(n);
  t.num_transitions = static_cast<std::uint32_t>(protocol.num_transitions());
  const auto& transitions = protocol.transitions();

  // Active adjacency (non-silent candidates) and the any-candidate pair
  // set, silent ones included — the distinction pp::Protocol::finalize()
  // and engine::PairIndex used to maintain separately.
  std::vector<std::vector<pp::State>> out(n);
  std::vector<std::vector<pp::State>> in(n);
  for (const pp::Transition& tr : transitions)
    if (!tr.is_silent()) out[tr.q].push_back(tr.r);
  t.self_active.assign(n, 0);
  t.out_begin.assign(n + 1, 0);
  t.in_begin.assign(n + 1, 0);
  for (pp::State q = 0; q < n; ++q) {
    auto& partners = out[q];
    std::sort(partners.begin(), partners.end());
    partners.erase(std::unique(partners.begin(), partners.end()),
                   partners.end());
    for (pp::State r : partners) {
      if (r == q) t.self_active[q] = 1;
      in[r].push_back(q);
    }
  }
  for (pp::State q = 0; q < n; ++q) {
    t.out_begin[q + 1] =
        t.out_begin[q] + static_cast<std::uint32_t>(out[q].size());
    t.in_begin[q + 1] =
        t.in_begin[q] + static_cast<std::uint32_t>(in[q].size());
  }
  t.out_flat.reserve(t.out_begin[n]);
  t.in_flat.reserve(t.in_begin[n]);
  for (pp::State q = 0; q < n; ++q) {
    t.out_flat.insert(t.out_flat.end(), out[q].begin(), out[q].end());
    t.in_flat.insert(t.in_flat.end(), in[q].begin(), in[q].end());
  }
  const std::size_t pairs = t.out_flat.size();

  // Candidate CSR in pair-position order; candidates of a pair keep
  // transition order — the order Protocol::finalize() recorded them and
  // every candidate pick consumes the RNG by.
  std::vector<std::vector<std::uint32_t>> by_pair(pairs);
  // Pairs whose candidates are all silent still answer entry_of (the
  // count engine's meeting rejection needs them); collect them per key.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> lookup;
  for (std::uint32_t i = 0; i < transitions.size(); ++i) {
    const pp::Transition& tr = transitions[i];
    if (tr.is_silent()) {
      lookup.emplace_back(pair_key(tr.q, tr.r), kSilentOnly);
      continue;
    }
    const auto row = std::span<const pp::State>(
        t.out_flat.data() + t.out_begin[tr.q],
        t.out_flat.data() + t.out_begin[tr.q + 1]);
    const auto it = std::lower_bound(row.begin(), row.end(), tr.r);
    const auto pos =
        t.out_begin[tr.q] + static_cast<std::uint32_t>(it - row.begin());
    by_pair[pos].push_back(i);
  }
  t.cand_begin.assign(pairs + 1, 0);
  for (std::size_t p = 0; p < pairs; ++p)
    t.cand_begin[p + 1] =
        t.cand_begin[p] + static_cast<std::uint32_t>(by_pair[p].size());
  t.cand_flat.reserve(t.cand_begin[pairs]);
  t.cells.reserve(t.cand_begin[pairs]);
  for (std::size_t p = 0; p < pairs; ++p)
    for (std::uint32_t i : by_pair[p]) {
      t.cand_flat.push_back(i);
      const pp::Transition& tr = transitions[i];
      Op op = kNop;
      if (tr.q != tr.q2 && tr.r != tr.r2)
        op = (tr.q2 == tr.r && tr.r2 == tr.q) ? kSwap : kWriteBoth;
      else if (tr.q != tr.q2)
        op = kWriteQ;
      else if (tr.r != tr.r2)
        op = kWriteR;
      std::int32_t delta = 0;
      delta += static_cast<int>(protocol.is_accepting(tr.q2)) -
               static_cast<int>(protocol.is_accepting(tr.q));
      delta += static_cast<int>(protocol.is_accepting(tr.r2)) -
               static_cast<int>(protocol.is_accepting(tr.r));
      t.cells.push_back({Cell::pack_meta(op, delta), tr.q2, tr.r2});
    }

  // Pair-lookup entries: every active pair at its position, plus the
  // silent-only pairs collected above (deduplicated; active wins).
  for (pp::State q = 0; q < n; ++q)
    for (std::uint32_t p = t.out_begin[q]; p < t.out_begin[q + 1]; ++p)
      lookup.emplace_back(pair_key(q, t.out_flat[p]), p);
  std::sort(lookup.begin(), lookup.end(),
            [](const auto& a, const auto& b) {
              if (a.first != b.first) return a.first < b.first;
              return a.second < b.second;  // active position before sentinel
            });
  lookup.erase(std::unique(lookup.begin(), lookup.end(),
                           [](const auto& a, const auto& b) {
                             return a.first == b.first;
                           }),
               lookup.end());

  // Strategy choice: dense 2-D array while the |Q|² table stays small in
  // absolute terms or comparable to the perfect hash; hash-displace
  // beyond. The converted Czerner protocols (hundreds to tens of
  // thousands of states, sparse pairs) take the perfect hash.
  const std::size_t dense_bytes = n * n * sizeof(std::uint32_t);
  if (dense_bytes <= (std::size_t{256} << 10) ||
      dense_bytes <= lookup.size() * 64) {
    t.dense.assign(n * n, kAbsent);
    for (const auto& [key, entry] : lookup)
      t.dense[static_cast<std::size_t>(key >> 32) * n +
              static_cast<std::uint32_t>(key)] = entry;
  } else {
    build_perfect_hash(lookup, t);
  }

  if (n <= kBitsetStates) {
    const std::size_t words = (n * n + 63) / 64;
    t.active_bits.assign(words, 0);
    t.any_bits.assign(words, 0);
    for (pp::State q = 0; q < n; ++q)
      for (std::uint32_t p = t.out_begin[q]; p < t.out_begin[q + 1]; ++p) {
        const std::size_t bit =
            static_cast<std::size_t>(q) * n + t.out_flat[p];
        t.active_bits[bit >> 6] |= std::uint64_t{1} << (bit & 63);
      }
    for (const pp::Transition& tr : transitions) {
      const std::size_t bit = static_cast<std::size_t>(tr.q) * n + tr.r;
      t.any_bits[bit >> 6] |= std::uint64_t{1} << (bit & 63);
    }
  }
  return adopt(std::move(t));
}

std::shared_ptr<const CompiledProtocol> CompiledProtocol::adopt(
    RawTables tables) {
  validate(tables);
  return std::shared_ptr<const CompiledProtocol>(
      new CompiledProtocol(std::move(tables)));
}

}  // namespace ppde::isa
