// Compiled protocol IR: flat bytecode for table-driven dispatch (S26).
//
// A finalized pp::Protocol is lowered once into a CompiledProtocol — a set
// of flat, immutable tables that every execution layer (per-agent
// simulation, count-based simulation, exhaustive verification) consumes as
// the single source of truth for transition semantics:
//
//   * Pair lookup: ordered state pair (q, r) -> entry. Protocols with few
//     states get a dense 2-D array (one u32 load); sparse protocols with
//     many states (the converted Czerner constructions: O(n) states, a
//     handful of live pairs per state) get a CHD-style perfect hash with
//     stored keys, so a miss is detected with one probe and no chains. The
//     strategy is chosen at compile time from |Q| and the live-pair count.
//   * Active pairs — pairs with at least one non-silent candidate — carry
//     dense *pair positions* 0..P-1 in (q asc, r asc) order, keying a
//     candidate CSR (verbatim transition indices, in transition order) and
//     a parallel opcode-cell stream.
//   * Each candidate is one fixed-size Cell: an opcode (identity-skip /
//     write-initiator / write-responder / write-both / swap), the two
//     post-states, and the fused accepting-counter delta, so firing a
//     candidate needs no Transition load and no per-state accepting probes.
//     isa/exec.hpp executes cells with computed-goto threaded dispatch.
//   * Adjacency CSRs (partners_of / initiators_meeting), self-pair flags
//     and the |Q|² active/any bitsets previously rebuilt per layer by
//     engine::PairIndex now live here; PairIndex is a thin view.
//
// Lowering is pure table construction: candidate order equals
// Protocol::finalize()'s transition order, so a simulator picking
// candidates through the compiled tables consumes its RNG identically to
// one walking the legacy map — the bit-identicality contract (DESIGN.md S26).
//
// The tables can be exported (raw()) and re-adopted (adopt()); adopt()
// validates every invariant and throws std::invalid_argument on malformed
// tables, which is also how compile() output is checked.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "pp/protocol.hpp"

namespace ppde::isa {

/// Which execution core a simulator/verifier runs: the legacy interpreter
/// (kept in-tree as the differential oracle) or the compiled-bytecode
/// dispatch core. Both produce bit-identical trajectories, node IDs and
/// certificate digests; bytecode is the default everywhere.
enum class Dispatch : std::uint8_t { kInterp = 0, kBytecode = 1 };

const char* to_string(Dispatch dispatch);
/// Parses "interp" / "bytecode"; throws std::invalid_argument otherwise.
Dispatch parse_dispatch(const std::string& text);

/// Opcodes of a candidate cell. The opcode classifies which side(s) of the
/// pair a firing rewrites, so an executor touches only the slots that
/// change.
enum Op : std::uint8_t {
  kNop = 0,        ///< silent candidate: no state changes
  kWriteQ = 1,     ///< initiator rewritten, responder unchanged
  kWriteR = 2,     ///< responder rewritten, initiator unchanged
  kWriteBoth = 3,  ///< both rewritten
  kSwap = 4,       ///< both rewritten, q2 == r and r2 == q (counts invariant)
  kNumOps = 5,
};

/// One candidate transition, compiled. 12 bytes, trivially copyable.
struct Cell {
  /// Bits 0-7: Op. Bits 8-15: accepting-agents delta as a sign-extended
  /// int8 (in [-2, 2]) — the fused counter delta of firing this candidate.
  std::uint32_t meta = 0;
  std::uint32_t q2 = 0;  ///< post-state of the initiator (== q for kWriteR)
  std::uint32_t r2 = 0;  ///< post-state of the responder (== r for kWriteQ)

  Op op() const { return static_cast<Op>(meta & 0xff); }
  std::int32_t accepting_delta() const {
    return static_cast<std::int8_t>((meta >> 8) & 0xff);
  }
  static std::uint32_t pack_meta(Op op, std::int32_t accepting_delta) {
    return static_cast<std::uint32_t>(op) |
           ((static_cast<std::uint32_t>(accepting_delta) & 0xff) << 8);
  }

  friend bool operator==(const Cell&, const Cell&) = default;
};

class CompiledProtocol {
 public:
  /// entry_of result for a pair with no candidate transitions at all.
  static constexpr std::uint32_t kAbsent = 0xffffffffu;
  /// entry_of result for a pair whose candidates are all silent: it has
  /// "any" candidates (pp::Protocol records the meeting) but no active
  /// position — firing it cannot change the configuration.
  static constexpr std::uint32_t kSilentOnly = 0xfffffffeu;

  /// Largest |Q| for which the |Q|²-bit active/any bitsets are built
  /// (8 MB each at the cap) — same threshold the legacy PairIndex used.
  static constexpr std::size_t kBitsetStates = 8192;

  /// The flat tables; see the member comments for invariants. Exported by
  /// raw() and re-imported by adopt() (which validates everything).
  struct RawTables {
    std::uint32_t num_states = 0;
    std::uint32_t num_transitions = 0;
    /// Pair-lookup strategy: dense 2-D array iff non-empty.
    std::vector<std::uint32_t> dense;  ///< |Q|² entries, row-major by q
    /// CHD perfect hash (used iff dense is empty): displacement per bucket,
    /// then open slots holding (key, entry) with key == ~0 for empty.
    std::vector<std::uint32_t> ph_disp;         ///< power-of-two size
    std::vector<std::uint64_t> ph_key;          ///< power-of-two size
    std::vector<std::uint32_t> ph_entry;        ///< parallel to ph_key
    /// Active-pair adjacency, (q asc, r asc): pair position p covers
    /// (q, out_flat[p]) for p in [out_begin[q], out_begin[q+1]).
    std::vector<std::uint32_t> out_begin;  ///< size |Q|+1
    std::vector<std::uint32_t> out_flat;   ///< ascending within each row
    std::vector<std::uint32_t> in_begin;   ///< size |Q|+1
    std::vector<std::uint32_t> in_flat;    ///< ascending within each row
    std::vector<std::uint8_t> self_active;  ///< size |Q|
    /// Candidate CSR by pair position: transition indices in transition
    /// order (identical to the legacy Protocol::transitions_for spans).
    std::vector<std::uint32_t> cand_begin;  ///< size P+1
    std::vector<std::uint32_t> cand_flat;
    std::vector<Cell> cells;  ///< parallel to cand_flat
    /// |Q|² bitsets (built iff |Q| <= kBitsetStates): pair has an active /
    /// any candidate.
    std::vector<std::uint64_t> active_bits;
    std::vector<std::uint64_t> any_bits;
  };

  /// Lower a finalized (or mid-finalize) protocol. Validates the result.
  static std::shared_ptr<const CompiledProtocol> compile(
      const pp::Protocol& protocol);

  /// Adopt externally produced tables. Throws std::invalid_argument when
  /// any structural invariant is violated (sizes, CSR monotonicity,
  /// out-of-range indices, unsorted adjacency, inconsistent cells or
  /// lookup tables).
  static std::shared_ptr<const CompiledProtocol> adopt(RawTables tables);

  /// Copy of the flat tables (for round-trip/golden tests and tooling).
  const RawTables& raw() const { return t_; }

  std::size_t num_states() const { return t_.num_states; }
  std::size_t num_active_pairs() const { return t_.out_flat.size(); }
  bool dense_lookup() const { return !t_.dense.empty(); }

  /// Pair position of (q, r) in [0, num_active_pairs()), or kSilentOnly /
  /// kAbsent. One load for dense protocols, one displaced probe for
  /// perfect-hashed ones.
  std::uint32_t entry_of(pp::State q, pp::State r) const {
    const std::uint64_t key =
        (static_cast<std::uint64_t>(q) << 32) | r;
    if (!t_.dense.empty())
      return t_.dense[static_cast<std::size_t>(q) * t_.num_states + r];
    const std::uint32_t d =
        t_.ph_disp[mix(key) & (t_.ph_disp.size() - 1)];
    const std::size_t slot =
        mix(key ^ (0x9e3779b97f4a7c15ULL * d)) & (t_.ph_key.size() - 1);
    return t_.ph_key[slot] == key ? t_.ph_entry[slot] : kAbsent;
  }

  /// Candidate transition indices of active pair position `pos` —
  /// identical indices in identical order to the legacy
  /// Protocol::transitions_for span.
  std::span<const std::uint32_t> candidates(std::uint32_t pos) const {
    return {t_.cand_flat.data() + t_.cand_begin[pos],
            t_.cand_flat.data() + t_.cand_begin[pos + 1]};
  }
  /// The pair's compiled cells, parallel to candidates(pos).
  std::span<const Cell> cells(std::uint32_t pos) const {
    return {t_.cells.data() + t_.cand_begin[pos],
            t_.cells.data() + t_.cand_begin[pos + 1]};
  }

  /// States r such that (q, r) is active, q as the initiator; ascending.
  std::span<const pp::State> partners_of(pp::State q) const {
    return {t_.out_flat.data() + t_.out_begin[q],
            t_.out_flat.data() + t_.out_begin[q + 1]};
  }
  /// First pair position of initiator q's row.
  std::uint32_t pair_offset(pp::State q) const { return t_.out_begin[q]; }
  /// Pair position of an active (q, r); r must be a partner of q.
  std::uint32_t pair_pos(pp::State q, pp::State r) const;
  /// States q such that (q, r) is active, r as the responder; ascending.
  std::span<const pp::State> initiators_meeting(pp::State r) const {
    return {t_.in_flat.data() + t_.in_begin[r],
            t_.in_flat.data() + t_.in_begin[r + 1]};
  }
  /// True iff (q, q) is active.
  bool self_active(pp::State q) const { return t_.self_active[q] != 0; }

  /// True iff (q, r) has a non-silent candidate. O(1) via the bitset when
  /// built, O(log out-degree) binary search beyond kBitsetStates.
  bool pair_active(pp::State q, pp::State r) const {
    if (!t_.active_bits.empty()) {
      const std::size_t bit =
          static_cast<std::size_t>(q) * t_.num_states + r;
      return (t_.active_bits[bit >> 6] >> (bit & 63)) & 1;
    }
    const auto partners = partners_of(q);
    return std::binary_search(partners.begin(), partners.end(), r);
  }
  /// True iff (q, r) has *any* candidate, silent ones included. Only
  /// usable when has_any_bits(); otherwise probe entry_of directly.
  bool pair_any(pp::State q, pp::State r) const {
    const std::size_t bit = static_cast<std::size_t>(q) * t_.num_states + r;
    return (t_.any_bits[bit >> 6] >> (bit & 63)) & 1;
  }
  bool has_any_bits() const { return !t_.any_bits.empty(); }

  /// splitmix64 finalizer — the hash behind both perfect-hash levels.
  static std::uint64_t mix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

 private:
  explicit CompiledProtocol(RawTables tables) : t_(std::move(tables)) {}

  RawTables t_;
};

}  // namespace ppde::isa
