#include "engine/executor.hpp"

namespace ppde::engine {

TrialExecutor::TrialExecutor(const pp::Protocol& protocol, EngineKind kind,
                             isa::Dispatch dispatch,
                             const sched::Scenario& scenario, unsigned workers,
                             std::uint32_t batch)
    : protocol_(protocol),
      dispatch_(dispatch),
      scenario_(scenario),
      per_agent_(kind == EngineKind::kPerAgent || !scenario.is_default()),
      sims_(workers),
      batches_(workers) {
  if (!per_agent_) {
    // One shared activity index for all count-based trials; read-only
    // after construction, so safe across the pool.
    index_.emplace(protocol);
    sim_options_.null_skip = kind == EngineKind::kCountNullSkip;
    sim_options_.dispatch = dispatch;
    // The lockstep batch core (S28) drives the null-skip engine only; the
    // plain count engine and the per-agent fallback keep scalar trials.
    if (sim_options_.null_skip && batch != 1)
      batch_width_ = BatchSimulator::resolve_width(batch);
  }
}

TrialResult TrialExecutor::run(unsigned worker, const pp::Config& initial,
                               std::uint64_t seed,
                               const pp::SimulationOptions& options) {
  TrialResult trial;
  trial.seed = seed;
  if (per_agent_) {
    pp::Simulator simulator(protocol_, initial, scenario_, seed, dispatch_);
    trial.sim = simulator.run_until_stable(options);
    trial.metrics = simulator.metrics();
  } else {
    // One reusable simulator per worker: reset() rewinds counts, weights
    // and RNG without reallocating; a reset simulator behaves identically
    // to a fresh one, so results stay pure functions of (initial, seed).
    std::unique_ptr<CountSimulator>& sim = sims_[worker];
    if (!sim)
      sim = std::make_unique<CountSimulator>(protocol_, *index_, initial,
                                             seed, sim_options_);
    else
      sim->reset(initial, seed);
    trial.sim = sim->run_until_stable(options);
    trial.metrics = sim->metrics();
  }
  return trial;
}

void TrialExecutor::run_range(unsigned worker, const pp::Config& initial,
                              std::uint64_t master_seed,
                              std::uint64_t first_trial, std::size_t count,
                              const pp::SimulationOptions& options,
                              TrialResult* out) {
  if (batch_width_ > 1) {
    std::unique_ptr<BatchSimulator>& batch = batches_[worker];
    if (!batch)
      batch = std::make_unique<BatchSimulator>(protocol_, *index_,
                                               sim_options_, batch_width_);
    batch->run_range(initial, options, master_seed, first_trial, count, out);
    return;
  }
  for (std::size_t i = 0; i < count; ++i)
    out[i] = run(worker, initial,
                 derive_trial_seed(master_seed, first_trial + i), options);
}

}  // namespace ppde::engine
