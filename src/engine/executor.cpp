#include "engine/executor.hpp"

namespace ppde::engine {

TrialExecutor::TrialExecutor(const pp::Protocol& protocol, EngineKind kind,
                             isa::Dispatch dispatch,
                             const sched::Scenario& scenario, unsigned workers)
    : protocol_(protocol),
      dispatch_(dispatch),
      scenario_(scenario),
      per_agent_(kind == EngineKind::kPerAgent || !scenario.is_default()),
      sims_(workers) {
  if (!per_agent_) {
    // One shared activity index for all count-based trials; read-only
    // after construction, so safe across the pool.
    index_.emplace(protocol);
    sim_options_.null_skip = kind == EngineKind::kCountNullSkip;
    sim_options_.dispatch = dispatch;
  }
}

TrialResult TrialExecutor::run(unsigned worker, const pp::Config& initial,
                               std::uint64_t seed,
                               const pp::SimulationOptions& options) {
  TrialResult trial;
  trial.seed = seed;
  if (per_agent_) {
    pp::Simulator simulator(protocol_, initial, scenario_, seed, dispatch_);
    trial.sim = simulator.run_until_stable(options);
    trial.metrics = simulator.metrics();
  } else {
    // One reusable simulator per worker: reset() rewinds counts, weights
    // and RNG without reallocating; a reset simulator behaves identically
    // to a fresh one, so results stay pure functions of (initial, seed).
    std::unique_ptr<CountSimulator>& sim = sims_[worker];
    if (!sim)
      sim = std::make_unique<CountSimulator>(protocol_, *index_, initial,
                                             seed, sim_options_);
    else
      sim->reset(initial, seed);
    trial.sim = sim->run_until_stable(options);
    trial.metrics = sim->metrics();
  }
  return trial;
}

}  // namespace ppde::engine
