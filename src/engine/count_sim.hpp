// Count-based simulation of population protocols (DESIGN.md S21).
//
// pp::Simulator stores one array slot per agent and spends one RNG draw per
// meeting — almost all of which are no-ops on the converted Czerner
// protocols, where a handful of pointer agents do all the work while the
// counted register agents idle. CountSimulator steps directly on the
// configuration's count vector in O(|Q|) memory and, optionally, skips
// whole runs of null meetings in closed form:
//
//   * A meeting of an ordered state pair (q, r) is drawn with the exact
//     hypergeometric weight C(q)·(C(r) − [q=r]) / (m·(m−1)) — the
//     probability that a uniform ordered pair of distinct agents has the
//     initiator in q and the responder in r.
//   * Call (q, r) *active* if some transition for (q, r) changes a state.
//     With W = Σ_active C(q)·(C(r) − [q=r]) and T = m·(m−1), each meeting
//     is active with probability p = W/T independently, so the number of
//     null meetings before the next active one is Geometric(p):
//     k = ⌊ln U / ln(1−p)⌋ for U uniform on (0, 1]. The engine advances k
//     meetings with a single RNG draw, then samples one active pair with
//     weight proportional to C(q)·(C(r) − [q=r]) restricted to active
//     pairs, and fires a uniformly chosen candidate transition — exactly
//     the per-agent scheduler's law marginalised over the null meetings.
//
// The sequence of *configurations* (and hence every verdict and every
// firing statistic) is distributed identically to pp::Simulator's; only
// the interaction indices between firings are resampled, from the same
// geometric law (evaluated in double precision — the one approximation in
// the engine, and it never touches the state evolution).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "engine/metrics.hpp"
#include "pp/config.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"
#include "support/rng.hpp"

namespace ppde::engine {

/// Precomputed activity structure of a finalized protocol: which ordered
/// state pairs (q, r) have at least one non-silent transition. Immutable
/// after construction and safe to share across threads — ensemble runs
/// build one PairIndex and hand it to every trial's CountSimulator.
class PairIndex {
 public:
  explicit PairIndex(const pp::Protocol& protocol);

  /// States r such that (q, r) is active, q as the initiator.
  std::span<const pp::State> partners_of(pp::State q) const {
    return {out_flat_.data() + out_begin_[q],
            out_flat_.data() + out_begin_[q + 1]};
  }
  /// States q such that (q, r) is active, r as the responder.
  std::span<const pp::State> initiators_meeting(pp::State r) const {
    return {in_flat_.data() + in_begin_[r],
            in_flat_.data() + in_begin_[r + 1]};
  }
  /// True iff (q, q) is active.
  bool self_active(pp::State q) const { return self_active_[q] != 0; }

  std::size_t num_states() const { return self_active_.size(); }
  std::size_t num_active_pairs() const { return out_flat_.size(); }

 private:
  std::vector<std::uint32_t> out_begin_;  ///< CSR offsets, size |Q|+1
  std::vector<pp::State> out_flat_;
  std::vector<std::uint32_t> in_begin_;
  std::vector<pp::State> in_flat_;
  std::vector<std::uint8_t> self_active_;
};

struct CountSimOptions {
  /// Batch-skip runs of null meetings in closed form (see file comment).
  /// When false, every meeting costs one pair sample — still O(|Q|) memory,
  /// useful as the middle rung of the engine-comparison benchmarks.
  bool null_skip = true;
};

/// Drop-in counterpart of pp::Simulator that never materialises agents.
/// The protocol (and the PairIndex, if supplied) must outlive the
/// simulator.
class CountSimulator {
 public:
  CountSimulator(const pp::Protocol& protocol, const pp::Config& initial,
                 std::uint64_t seed = 1, CountSimOptions options = {});
  /// Shares a prebuilt PairIndex (one per protocol, reused across trials).
  CountSimulator(const pp::Protocol& protocol, const PairIndex& index,
                 const pp::Config& initial, std::uint64_t seed = 1,
                 CountSimOptions options = {});

  /// Advance to the next meeting and execute it. With null_skip this first
  /// jumps past the (geometrically many) null meetings, so one call can
  /// advance interactions() by far more than 1. Returns true if a
  /// transition fired. If the simulation is frozen() the call advances a
  /// single (null) meeting and returns false — check frozen() in unbounded
  /// loops.
  bool step();

  /// Same stopping rule as pp::Simulator::run_until_stable: consensus must
  /// persist for options.stable_window meetings within
  /// options.max_interactions (options.seed is ignored; seeding happens at
  /// construction). Null runs are truncated exactly at the window/budget
  /// boundary, so the reported interaction indices agree with the
  /// per-agent semantics.
  pp::SimulationResult run_until_stable(const pp::SimulationOptions& options);

  std::uint64_t accepting_agents() const { return accepting_; }
  std::uint64_t population() const { return counts_.total(); }
  std::uint64_t interactions() const { return interactions_; }

  /// True iff all agents agree on an output right now.
  std::optional<bool> consensus() const;

  /// True iff no meeting can ever change the configuration again (the
  /// total active-pair weight is zero). A frozen run's consensus — or lack
  /// of one — is permanent.
  bool frozen() const;

  /// Current configuration — O(1), unlike pp::Simulator::config().
  const pp::Config& config() const { return counts_; }

  /// Remove one uniformly random agent among those whose state satisfies
  /// `eligible` (default: any agent); mirrors
  /// pp::Simulator::remove_random_agent.
  std::optional<pp::State> remove_random_agent(
      const std::function<bool(pp::State)>& eligible = nullptr);

  const RunMetrics& metrics() const { return metrics_; }

 private:
  CountSimulator(std::unique_ptr<const PairIndex> owned,
                 const pp::Protocol& protocol, const pp::Config& initial,
                 std::uint64_t seed, CountSimOptions options);

  /// Recompute the total active weight W, filling weight_by_state_.
  std::uint64_t active_weight();
  /// Geometric number of null meetings before the next active one.
  std::uint64_t sample_null_run(std::uint64_t active);
  /// Account `count` meetings skipped without individual RNG draws.
  void advance_nulls(std::uint64_t count);
  /// Sample an active (q, r) by weight and fire a candidate. `active` must
  /// be the current active_weight() (> 0).
  void apply_active_meeting(std::uint64_t active);
  /// One plain meeting: hypergeometric pair sample, fire if enabled.
  bool step_meeting();
  void change_count(pp::State state, std::int64_t delta);
  void fire(pp::State q, pp::State r);

  const pp::Protocol* protocol_;
  std::unique_ptr<const PairIndex> owned_index_;
  const PairIndex* index_;
  CountSimOptions options_;
  pp::Config counts_;
  /// rout_[q] = Σ_{r : (q,r) active} C(r), maintained incrementally.
  std::vector<std::uint64_t> rout_;
  /// States with non-zero count, unordered; keeps every per-firing scan
  /// O(#populated states) instead of O(|Q|) — on the converted Czerner
  /// protocols only a few dozen of the ~1.8k states are ever occupied.
  std::vector<pp::State> populated_;
  std::vector<std::uint32_t> position_;  ///< state -> index in populated_
  std::vector<std::uint64_t> weights_;   ///< scratch parallel to populated_
  std::uint64_t accepting_ = 0;
  std::uint64_t interactions_ = 0;
  RunMetrics metrics_;
  support::Rng rng_;

  static constexpr std::uint32_t kNoPosition = 0xffffffffu;
};

}  // namespace ppde::engine
