// Count-based simulation of population protocols (DESIGN.md S21).
//
// pp::Simulator stores one array slot per agent and spends one RNG draw per
// meeting — almost all of which are no-ops on the converted Czerner
// protocols, where a handful of pointer agents do all the work while the
// counted register agents idle. CountSimulator steps directly on the
// configuration's count vector in O(|Q|) memory and, optionally, skips
// whole runs of null meetings in closed form:
//
//   * A meeting of an ordered state pair (q, r) is drawn with the exact
//     hypergeometric weight C(q)·(C(r) − [q=r]) / (m·(m−1)) — the
//     probability that a uniform ordered pair of distinct agents has the
//     initiator in q and the responder in r.
//   * Call (q, r) *active* if some transition for (q, r) changes a state.
//     With W = Σ_active C(q)·(C(r) − [q=r]) and T = m·(m−1), each meeting
//     is active with probability p = W/T independently, so the number of
//     null meetings before the next active one is Geometric(p):
//     k = ⌊ln U / ln(1−p)⌋ for U uniform on (0, 1]. The engine advances k
//     meetings with a single RNG draw, then samples one active pair with
//     weight proportional to C(q)·(C(r) − [q=r]) restricted to active
//     pairs, and fires a uniformly chosen candidate transition — exactly
//     the per-agent scheduler's law marginalised over the null meetings.
//
// The weights are maintained *incrementally*: each populated state q
// carries its partner sum A(q) = Σ_{r : (q,r) active} C(r) − [(q,q)
// active], and the per-slot weight C(q)·A(q) lives in a Fenwick tree
// (engine/weight_tree.hpp), so a firing — which changes at most four
// counts, each touching only the populated states adjacent to it — costs
// O(#populated · log #populated) instead of a full rescan plus an
// O(in-degree) adjacency walk per count change. Sampling both meeting
// partners is an O(log #populated) tree descent engineered to pick the
// identical slot the seed engine's linear prefix scan picked, so the
// sequence of *configurations*, firings and consensus times for a given
// seed is bit-identical to the pre-Fenwick engine — and distributed
// identically to pp::Simulator's; only the interaction indices between
// firings are resampled, from the same geometric law (evaluated in double
// precision — the one approximation in the engine, and it never touches
// the state evolution).
//
// Populations of size < 2 have no ordered pairs: every meeting is vacuously
// null, the simulator reports frozen() immediately, and run_until_stable
// settles the (vacuous or single-agent) consensus in closed form.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "engine/metrics.hpp"
#include "engine/weight_tree.hpp"
#include "isa/compiled.hpp"
#include "pp/config.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"
#include "support/rng.hpp"

namespace ppde::engine {

/// Activity structure of a finalized protocol: which ordered state pairs
/// (q, r) have at least one non-silent transition. Since S26 this is a
/// thin view over the protocol's isa::CompiledProtocol — the engine no
/// longer builds its own adjacency/candidate/bitset copies. Immutable,
/// O(1) to construct, and safe to share across threads; it keeps the
/// compiled tables alive via shared ownership.
class PairIndex {
 public:
  explicit PairIndex(const pp::Protocol& protocol)
      : compiled_(protocol.compiled_ptr()) {
    if (!compiled_)
      throw std::logic_error("PairIndex: protocol not finalized");
  }

  /// The compiled IR behind this view.
  const isa::CompiledProtocol& compiled() const { return *compiled_; }

  /// States r such that (q, r) is active, q as the initiator; ascending.
  std::span<const pp::State> partners_of(pp::State q) const {
    return compiled_->partners_of(q);
  }

  /// Active pairs carry a dense *pair position*: pair (q, partners_of(q)[k])
  /// sits at pair_offset(q) + k, in [0, num_active_pairs()). The position
  /// keys the compiled candidate CSR (identical indices in identical order
  /// to Protocol::transitions_for) and the parallel opcode-cell stream, so
  /// firing an active pair needs no hash lookup.
  std::uint32_t pair_offset(pp::State q) const {
    return compiled_->pair_offset(q);
  }
  /// Pair position of an active (q, r); r must be a partner of q.
  std::uint32_t pair_pos(pp::State q, pp::State r) const {
    return compiled_->pair_pos(q, r);
  }
  /// The pair's candidate transitions, == Protocol::transitions_for on it.
  std::span<const std::uint32_t> pair_candidates(std::uint32_t pos) const {
    return compiled_->candidates(pos);
  }
  /// The pair's compiled cells, parallel to pair_candidates(pos).
  std::span<const isa::Cell> pair_cells(std::uint32_t pos) const {
    return compiled_->cells(pos);
  }
  /// States q such that (q, r) is active, r as the responder.
  std::span<const pp::State> initiators_meeting(pp::State r) const {
    return compiled_->initiators_meeting(r);
  }
  /// True iff (q, q) is active.
  bool self_active(pp::State q) const { return compiled_->self_active(q); }

  /// True iff (q, r) is active. O(1) via a dense pair bitset for protocols
  /// up to kBitsetStates states (97 KB at the converted Czerner n = 1's
  /// 880 states), O(log out-degree) binary search beyond that.
  bool pair_active(pp::State q, pp::State r) const {
    return compiled_->pair_active(q, r);
  }

  /// True iff (q, r) has *any* candidate transition, silent ones included
  /// — i.e. whether Protocol::transitions_for(q, r) is non-empty. Only
  /// usable when the dense bitsets are built (num_states() <=
  /// kBitsetStates); has_any_bits() says so.
  bool pair_any(pp::State q, pp::State r) const {
    return compiled_->pair_any(q, r);
  }
  bool has_any_bits() const { return compiled_->has_any_bits(); }

  std::size_t num_states() const { return compiled_->num_states(); }
  std::size_t num_active_pairs() const {
    return compiled_->num_active_pairs();
  }

  /// Largest state count for which the dense pair bitsets are built (8 MB
  /// each).
  static constexpr std::size_t kBitsetStates =
      isa::CompiledProtocol::kBitsetStates;

 private:
  std::shared_ptr<const isa::CompiledProtocol> compiled_;
};

struct CountSimOptions {
  /// Batch-skip runs of null meetings in closed form (see file comment).
  /// When false, every meeting costs one pair sample — still O(|Q|) memory,
  /// useful as the middle rung of the engine-comparison benchmarks.
  bool null_skip = true;
  /// Execution core (S26). kBytecode fires through the compiled opcode
  /// cells with computed-goto dispatch and keeps the per-slot active
  /// weights in a flat array with a running total — selection uses the
  /// seed engine's linear prefix scan at every size, which WeightTree::
  /// find() is defined to agree with slot-for-slot, so trajectories,
  /// consensus times and RunMetrics are bit-identical to kInterp (the
  /// differential oracle) for every seed.
  isa::Dispatch dispatch = isa::Dispatch::kBytecode;
};

/// The geometric skip count from ln(U) and the memoised ln(1−p): the
/// closed-form null-run length ⌊ln U / ln(1−p)⌋ with the engine's exact
/// underflow/overflow clamps. Shared verbatim by the scalar sampler and
/// the lockstep batch core (engine/batch_sim.cpp) so the two cannot
/// drift — bit-identical trajectories are a hard contract (S28).
inline std::uint64_t geom_skip_count(double log_u, double log1p_neg_p) {
  const double k = std::floor(log_u / log1p_neg_p);
  if (!(k >= 0.0)) return 0;
  if (k >= 1.8e19) return std::numeric_limits<std::uint64_t>::max() / 2;
  return static_cast<std::uint64_t>(k);
}

/// Drop-in counterpart of pp::Simulator that never materialises agents.
/// The protocol (and the PairIndex, if supplied) must outlive the
/// simulator.
class CountSimulator {
 public:
  CountSimulator(const pp::Protocol& protocol, const pp::Config& initial,
                 std::uint64_t seed = 1, CountSimOptions options = {});
  /// Shares a prebuilt PairIndex (one per protocol, reused across trials).
  CountSimulator(const pp::Protocol& protocol, const PairIndex& index,
                 const pp::Config& initial, std::uint64_t seed = 1,
                 CountSimOptions options = {});

  /// Rewind to `initial` with a fresh `seed`, keeping the protocol, index,
  /// options and every allocation. A reset simulator is indistinguishable
  /// from a freshly constructed one — trial fleets reuse one simulator per
  /// worker instead of reallocating O(|Q|) state every trial.
  void reset(const pp::Config& initial, std::uint64_t seed);

  /// Advance to the next meeting and execute it. With null_skip this first
  /// jumps past the (geometrically many) null meetings, so one call can
  /// advance interactions() by far more than 1. Returns true if a
  /// transition fired. If the simulation is frozen() the call advances a
  /// single (null) meeting and returns false — check frozen() in unbounded
  /// loops.
  bool step();

  /// Same stopping rule as pp::Simulator::run_until_stable: consensus must
  /// persist for options.stable_window meetings within
  /// options.max_interactions (options.seed is ignored; seeding happens at
  /// construction). Null runs are truncated exactly at the window/budget
  /// boundary, so the reported interaction indices agree with the
  /// per-agent semantics.
  pp::SimulationResult run_until_stable(const pp::SimulationOptions& options);

  std::uint64_t accepting_agents() const { return accepting_; }
  std::uint64_t population() const { return counts_.total(); }
  std::uint64_t interactions() const { return interactions_; }

  /// True iff all agents agree on an output right now (vacuously true for
  /// an empty population).
  std::optional<bool> consensus() const;

  /// True iff no meeting can ever change the configuration again (the
  /// total active-pair weight is zero — O(1), the weight is maintained
  /// incrementally). A frozen run's consensus — or lack of one — is
  /// permanent. Populations of size < 2 are always frozen.
  bool frozen() const;

  /// Current configuration — O(1), unlike pp::Simulator::config().
  const pp::Config& config() const { return counts_; }

  /// Remove one uniformly random agent among those whose state satisfies
  /// `eligible` (default: any agent); mirrors
  /// pp::Simulator::remove_random_agent.
  std::optional<pp::State> remove_random_agent(
      const std::function<bool(pp::State)>& eligible = nullptr);

  const RunMetrics& metrics() const { return metrics_; }

  // --- Lockstep driver API (DESIGN.md S28) -------------------------------
  //
  // run_until_stable's null-skip loop, split at its one RNG-draw point so
  // an external driver can advance many independent simulators one firing
  // per sweep and batch the draws (engine/batch_sim.{hpp,cpp}). The scalar
  // run_until_stable is itself implemented on these primitives, so the two
  // paths execute the same statements in the same order and cannot drift.
  //
  // Protocol per firing:
  //   1. ls_wants_draw(ls)  — settles frozen/budget endings in closed form
  //      and memoises the geometric law. Returns true iff exactly one raw
  //      64-bit draw is needed; false with !ls.done means p >= 1 (every
  //      meeting is active — fire with skip 0).
  //   2. If a draw is needed: skip = ls_geom_skip(raw) where raw is the
  //      *next output of this simulator's own rng()* — the driver may
  //      produce it via the batched stepper, which is bit-identical.
  //   3. ls_fire(ls, skip) — truncates the null run at the window/budget
  //      boundary, fires one active meeting (any further draws it needs
  //      come scalar from the same rng(), preserving per-trial draw
  //      order), and updates the consensus window.
  // Repeat until ls.done; ls_finish fills the run summary. Only the
  // null-skip engine is drivable this way (CountSimOptions::null_skip);
  // per-agent and plain count engines keep the per-trial scalar path.
  struct Lockstep {
    pp::SimulationResult result;
    std::uint64_t max_interactions = 0;
    std::uint64_t stable_window = 0;
    std::uint64_t consensus_start = 0;
    std::optional<bool> held;
    bool done = false;
  };
  void ls_begin(Lockstep& ls, const pp::SimulationOptions& options);
  bool ls_wants_draw(Lockstep& ls);
  /// The memoised ln(1−p) for the draw ls_wants_draw just requested.
  double ls_log1p() const { return cached_log1p_; }
  /// Geometric skip from one raw draw, against the memoised law.
  std::uint64_t ls_geom_skip(std::uint64_t raw) const {
    return geom_skip_count(std::log(support::to_unit_open(raw)),
                           cached_log1p_);
  }
  void ls_fire(Lockstep& ls, std::uint64_t skip);
  void ls_finish(Lockstep& ls);
  /// This simulator's own RNG — the batch driver steps it in SIMD sweeps.
  support::Rng& rng() { return rng_; }

 private:
  CountSimulator(std::unique_ptr<const PairIndex> owned,
                 const pp::Protocol& protocol, const pp::Config& initial,
                 std::uint64_t seed, CountSimOptions options);

  /// Load `initial` into an empty simulator: counts, populated list,
  /// partner sums and both weight trees.
  void load(const pp::Config& initial);
  /// A(q) = Σ_{r populated, (q,r) active} C(r) − [(q,q) active], computed
  /// from scratch over the cheaper of partners_of(q) / the populated list.
  std::uint64_t fresh_partner_sum(pp::State q) const;
  /// Push slot's weight C(q)·A(q) into the active tree.
  void refresh_weight(std::uint32_t slot);
  /// Memoise p = W/(m·(m−1)) and log1p(−p) for the current (W, m);
  /// returns true iff p < 1, i.e. a geometric draw is actually needed.
  bool geom_prepare(std::uint64_t active);
  /// Geometric number of null meetings before the next active one.
  std::uint64_t sample_null_run(std::uint64_t active);
  /// Account `count` meetings skipped without individual RNG draws.
  void advance_nulls(std::uint64_t count);
  /// Sample an active (q, r) by weight and fire a candidate. `active` must
  /// be the current active_.total() (> 0).
  void apply_active_meeting(std::uint64_t active);
  /// One plain meeting: hypergeometric pair sample, fire if enabled.
  bool step_meeting();
  void change_count(pp::State state, std::int64_t delta);
  /// Move one agent from `from` to `to` (`from` != `to`). Equivalent to
  /// change_count(from, -1); change_count(to, +1) — with a fused fast path
  /// for the dominant firing shape, where both states stay populated.
  void shift_pair(pp::State from, pp::State to);
  void sorted_insert(pp::State state);
  void sorted_erase(pp::State state);
  /// Build matrix row `slot` (activity codes with pair positions) and
  /// return A(populated_[slot]) — one walk computes both. The slot must
  /// already be in the populated list; counts must be current. `ranked`
  /// says whether the slot's own state is already in the sorted list (true
  /// from load): only then may its self-pair rank bit enter srow_mask_ —
  /// on a live append the bit arrives via sorted_insert instead.
  std::uint64_t build_matrix_row(std::uint32_t slot, bool ranked);
  void fire(pp::State q, pp::State r);
  void fire_candidates(pp::State q, pp::State r,
                       std::span<const std::uint32_t> candidates);
  /// Bytecode firing: pick a candidate of active pair `pos` (same RNG law
  /// as fire_candidates) and execute its compiled cell.
  void fire_cells(pp::State q, pp::State r, std::uint32_t pos);

  /// Per-slot active weight C(q)·A(q) accessors, dispatch-split: the
  /// bytecode core keeps a flat array + running total, the interpreter the
  /// Fenwick tree. Values and update points are identical; the branch is
  /// fixed for the simulator's lifetime and predicted perfectly.
  std::uint64_t weight_total() const {
    return bc_ ? flat_total_ : active_.total();
  }
  std::uint64_t weight_get(std::size_t slot) const {
    return bc_ ? flat_weight_[slot] : active_.get(slot);
  }
  void weight_set(std::size_t slot, std::uint64_t w) {
    if (bc_) {
      flat_total_ += w - flat_weight_[slot];
      flat_weight_[slot] = w;
    } else {
      active_.set(slot, w);
    }
  }
  void weight_push(std::uint64_t w) {
    if (bc_) {
      flat_weight_.push_back(w);
      flat_total_ += w;
    } else {
      active_.push_back(w);
    }
  }
  void weight_pop() {
    if (bc_) {
      flat_total_ -= flat_weight_.back();
      flat_weight_.pop_back();
    } else {
      active_.pop_back();
    }
  }

  static constexpr std::uint32_t kNoPosition = 0xffffffffu;
  /// Populated-list capacity of the activity matrix; must stay <= 64 so a
  /// matrix column fits one col_mask_ word.
  static constexpr std::uint32_t kMatrixSlots = 64;
  /// Populated-list size below which step_meeting's pair sampling uses the
  /// seed engine's linear prefix scans instead of the count tree.
  static constexpr std::size_t kLinearSlots = 32;

  const pp::Protocol* protocol_;
  std::unique_ptr<const PairIndex> owned_index_;
  const PairIndex* index_;
  CountSimOptions options_;
  pp::Config counts_;
  /// States with non-zero count, unordered; keeps all incremental
  /// bookkeeping O(#populated states) instead of O(|Q|) or O(degree) — on
  /// the converted Czerner protocols only a handful of the ~1.8k states
  /// are ever occupied while adjacency degrees reach |Q|.
  std::vector<pp::State> populated_;
  std::vector<std::uint32_t> position_;  ///< state -> index in populated_
  /// partner_sum_[slot] = A(populated_[slot]); parallel to populated_.
  std::vector<std::uint64_t> partner_sum_;
  /// Per-slot active weights C(q)·A(q); total() is W. Interp dispatch
  /// only — the bytecode core uses flat_weight_/flat_total_ instead.
  WeightTree active_;
  /// Per-slot counts for step_meeting's pair sampling; only maintained
  /// when null_skip is off (the null-skip path never samples by count)
  /// and dispatch is interp (the bytecode core samples straight off
  /// counts_ with the seed engine's linear scans at every size).
  WeightTree pair_counts_;
  /// Bytecode dispatch: flat per-slot active weights, parallel to
  /// populated_, with the running total W. Same values at the same update
  /// points as the interp tree; selection is a linear prefix scan, which
  /// WeightTree::find() is defined to agree with slot-for-slot.
  std::vector<std::uint64_t> flat_weight_;
  std::uint64_t flat_total_ = 0;
  bool bc_ = false;  ///< options_.dispatch == kBytecode, cached
  /// The populated states in ascending state order — the responder-walk
  /// order. Maintained incrementally (O(#populated) on populate/depopulate,
  /// both rare) so sampling never sorts.
  std::vector<pp::State> sorted_populated_;
  /// Slot-by-slot activity matrix over the populated list. Cell
  /// act_[i * kMatrixSlots + j] describes (populated_[i], populated_[j]):
  /// 0 — inactive; 1 — active, pair position not yet resolved; c >= 2 —
  /// active at PairIndex pair position c − 2, giving the firing path its
  /// candidate transitions without a hash lookup. 16 KB and L1-resident,
  /// it replaces the |Q|²-bit PairIndex probes on every hot-path walk;
  /// PairIndex is consulted only when a state enters the populated list.
  /// Maintained while the populated list fits in kMatrixSlots slots
  /// (matrix_ok_); beyond that the simulator falls back to
  /// PairIndex::pair_active until the next reset.
  std::vector<std::uint32_t> act_;
  /// col_mask_[j]: bit i set iff (populated_[i], populated_[j]) is active —
  /// the initiator slots watching populated_[j], as a 64-bit set mirroring
  /// matrix column j. A count change walks only the set bits, and the
  /// fused pair shift walks the XOR of two columns — empty whenever both
  /// states are watched by the same initiators, the typical firing.
  std::array<std::uint64_t, kMatrixSlots> col_mask_{};
  /// srow_mask_[i]: bit k set iff (populated_[i], sorted_populated_[k]) is
  /// active — slot i's matrix row re-indexed by *sorted rank*, so the
  /// responder walk visits exactly the active populated partners in
  /// ascending state order by iterating set bits. sorted_insert /
  /// sorted_erase shift the rank bits of every live mask in lockstep with
  /// the list.
  std::array<std::uint64_t, kMatrixSlots> srow_mask_{};
  /// rank_[i]: sorted rank of populated_[i] — the bit position slot i's
  /// state occupies in every srow_mask_. Maintained by sorted_insert /
  /// sorted_erase in the same loop that shifts the masks, so
  /// build_matrix_row can emit rank bits straight from its partner walk.
  std::array<std::uint8_t, kMatrixSlots> rank_{};
  bool matrix_ok_ = false;
  /// Memoised geometric-law parameters for sample_null_run: log1p(−p) for
  /// the current (W, m). The dominant firing moves one agent between two
  /// register states watched by the same initiators, which leaves W — and
  /// hence p — unchanged, so the transcendental is evaluated once per
  /// distinct weight instead of once per firing. Pure memoisation: the
  /// cached value is bit-identical to recomputing it.
  std::uint64_t cached_active_ = 0;
  std::uint64_t cached_m_ = 0;
  double cached_p_ = 0.0;
  double cached_log1p_ = 0.0;
  std::uint64_t accepting_ = 0;
  std::uint64_t interactions_ = 0;
  RunMetrics metrics_;
  support::Rng rng_;
};

// --- Inline hot-path definitions (S28) ---------------------------------
//
// The lockstep primitives live in the header so the batch driver
// (engine/batch_sim.cpp) compiles them straight into its sweep loop,
// exactly as run_until_stable does inside count_sim.cpp — out-of-line
// they cost the batch path several cross-TU calls per firing that the
// scalar path never pays.

inline std::optional<bool> CountSimulator::consensus() const {
  if (accepting_ == counts_.total()) return true;
  if (accepting_ == 0) return false;
  return std::nullopt;
}

inline bool CountSimulator::frozen() const { return weight_total() == 0; }

inline bool CountSimulator::geom_prepare(std::uint64_t active) {
  // active > 0 implies m >= 2 (an active pair needs two distinct agents,
  // or C(q) >= 2 on a self-pair), so m·(m−1) never vanishes here.
  if (active != cached_active_ || counts_.total() != cached_m_) {
    cached_active_ = active;
    cached_m_ = counts_.total();
    const double m = static_cast<double>(cached_m_);
    cached_p_ = static_cast<double>(active) / (m * (m - 1.0));
    cached_log1p_ = cached_p_ < 1.0 ? std::log1p(-cached_p_) : 0.0;
  }
  return cached_p_ < 1.0;
}

inline void CountSimulator::advance_nulls(std::uint64_t count) {
  if (count == 0) return;
  interactions_ += count;
  metrics_.meetings += count;
  metrics_.skipped_meetings += count;
  ++metrics_.null_skip_batches;
}

inline void CountSimulator::ls_begin(Lockstep& ls,
                                     const pp::SimulationOptions& options) {
  ls.result = pp::SimulationResult{};
  ls.max_interactions = options.max_interactions;
  ls.stable_window = options.stable_window;
  ls.consensus_start = interactions_;
  ls.held = consensus();
  ls.done = false;
}

inline bool CountSimulator::ls_wants_draw(Lockstep& ls) {
  if (interactions_ >= ls.max_interactions) {
    ls.done = true;
    return false;
  }
  const std::uint64_t active = weight_total();
  if (active == 0) {
    // Frozen (including any population of size < 2): every future meeting
    // is null, so the current consensus (or its absence) is permanent.
    // Realise just enough nulls to hit the window or the budget.
    const std::uint64_t stable_at = ls.consensus_start + ls.stable_window;
    if (ls.held.has_value() && stable_at <= ls.max_interactions) {
      advance_nulls(stable_at - interactions_);
      ls.result.stabilised = true;
      ls.result.output = *ls.held;
      ls.result.consensus_since = ls.consensus_start;
    } else {
      advance_nulls(ls.max_interactions - interactions_);
    }
    ls.done = true;
    return false;
  }
  return geom_prepare(active);
}

inline void CountSimulator::ls_fire(Lockstep& ls, std::uint64_t skip) {
  const std::uint64_t active = weight_total();
  const std::uint64_t stable_at = ls.consensus_start + ls.stable_window;
  if (ls.held.has_value() && stable_at <= interactions_ + skip) {
    // The window completes during the null run, before the next firing.
    advance_nulls(stable_at - interactions_);
    ls.result.stabilised = true;
    ls.result.output = *ls.held;
    ls.result.consensus_since = ls.consensus_start;
    ls.done = true;
    return;
  }
  if (interactions_ + skip >= ls.max_interactions) {
    advance_nulls(ls.max_interactions - interactions_);
    ls.done = true;
    return;
  }
  advance_nulls(skip);
  ++interactions_;
  ++metrics_.meetings;
  apply_active_meeting(active);
  const std::optional<bool> now = consensus();
  if (now != ls.held) {
    ls.held = now;
    ls.consensus_start = interactions_;
    ++metrics_.consensus_flips;
  }
  if (ls.held.has_value() &&
      interactions_ - ls.consensus_start >= ls.stable_window) {
    ls.result.stabilised = true;
    ls.result.output = *ls.held;
    ls.result.consensus_since = ls.consensus_start;
    ls.done = true;
  }
}

inline void CountSimulator::ls_finish(Lockstep& ls) {
  ls.result.interactions = interactions_;
  ls.result.parallel_time =
      population() != 0
          ? static_cast<double>(interactions_) /
                static_cast<double>(population())
          : 0.0;
}

}  // namespace ppde::engine
