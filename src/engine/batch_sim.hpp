// Lockstep trial batching (DESIGN.md S28).
//
// One worker thread advances B independent trials ("lanes") one firing
// per sweep instead of running them to completion one after another. Each
// lane is a complete CountSimulator — counts, weights, activity matrix,
// its own xoshiro256** stream seeded by derive_trial_seed — driven
// through the Lockstep API that the scalar run_until_stable itself runs
// on. What batching buys is the per-sweep draw: every live lane needs
// exactly one raw 64-bit geometric draw per firing, and those draws are
// produced by one SIMD pass over the transposed lane RNG states
// (engine/simd.hpp) followed by shared loops for the u-conversion, the
// (scalar-libm) log, and the vectorisable divide/floor of the geometric
// inversion. Firing itself — weight descent, responder walk, candidate
// pick, list surgery — stays scalar per lane: it is irregular,
// data-dependent work, but eight independent lanes of it give the
// out-of-order core real instruction-level parallelism where the scalar
// path exposes one serial dependency chain.
//
// Bit-identicality law: a lane's trajectory is a pure function of
// (initial, seed), byte for byte equal to the scalar TrialExecutor path —
// the batched stepper reproduces Rng::operator() exactly (integer SIMD),
// the geometric chain reuses the very helpers the scalar sampler calls,
// and all further draws a firing makes (Lemire rejections included) come
// scalar from the lane's own generator in unchanged order. The one
// reported quantity that differs is RunMetrics::wall_seconds: a lane's
// wall clock covers its residency in the batch, during which B−1 other
// lanes share the core — sums over overlapping lanes exceed elapsed
// time. wall_seconds is documented as non-deterministic everywhere it
// appears; every differential test compares metrics excluding it.
//
// Lane-refill law: when a lane's trial finishes (stabilises or exhausts
// its budget) the lane retires its TrialResult and is immediately
// reseeded with the next unstarted trial of the range — so ragged trial
// lengths keep all lanes busy until the range drains, and the *set* of
// (trial, seed) pairs executed is independent of how lengths interleave.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "engine/count_sim.hpp"
#include "engine/ensemble.hpp"

namespace ppde::engine {

class BatchSimulator {
 public:
  /// Lanes are indexed by bits of 64-bit scratch masks downstream and each
  /// lane owns O(|Q|) state; 64 is already far past the useful width.
  static constexpr unsigned kMaxWidth = 64;

  /// Resolve a requested width: 0 (auto) → simd::preferred_width(),
  /// otherwise clamped to [1, kMaxWidth]. Width 1 is a valid degenerate
  /// batch (one lane — useful in differential tests), though callers
  /// normally route width 1 to the plain scalar path.
  static unsigned resolve_width(std::uint32_t requested);

  /// `protocol` and `index` must outlive the simulator. Lanes are created
  /// lazily on first use and reused (CountSimulator::reset) across trials
  /// and across run_range calls.
  BatchSimulator(const pp::Protocol& protocol, const PairIndex& index,
                 CountSimOptions options, unsigned width);

  /// Run trials [first_trial, first_trial + count) from `initial`, each
  /// with its global seed derive_trial_seed(master_seed, first_trial + i),
  /// writing results to out[0..count). Requires options.null_skip (the
  /// lockstep protocol only drives the null-skip engine). Not
  /// thread-safe; fleets keep one BatchSimulator per worker.
  void run_range(const pp::Config& initial,
                 const pp::SimulationOptions& options,
                 std::uint64_t master_seed, std::uint64_t first_trial,
                 std::size_t count, TrialResult* out);

  unsigned width() const { return static_cast<unsigned>(lanes_.size()); }

 private:
  struct Lane {
    std::unique_ptr<CountSimulator> sim;
    CountSimulator::Lockstep ls;
    std::size_t offset = 0;  ///< index into the current range's out[]
    std::uint64_t seed = 0;
    bool live = false;
    std::chrono::steady_clock::time_point started;
  };

  const pp::Protocol* protocol_;
  const PairIndex* index_;
  CountSimOptions options_;
  std::vector<Lane> lanes_;
  // Per-sweep SoA scratch, indexed by *draw slot* (compacted over the
  // lanes that want a draw this sweep), sized to the lane count once.
  std::vector<support::Rng*> rngs_;
  std::vector<std::uint32_t> draw_lane_;
  std::vector<std::uint32_t> zero_lane_;
  std::vector<double> log1p_;
  std::vector<double> log_u_;
  std::vector<std::uint64_t> raw_;
  std::vector<std::uint64_t> skip_;
};

}  // namespace ppde::engine
