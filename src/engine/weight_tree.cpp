#include "engine/weight_tree.hpp"

#include <algorithm>

namespace ppde::engine {

void WeightTree::reset(std::size_t capacity) {
  tree_.assign(capacity + 1, 0);
  value_.assign(capacity, 0);
  total_ = 0;
  size_ = 0;
}

void WeightTree::clear() {
  // Only nodes 1..size_ are logically live (anything above is rebuilt by
  // push_back), so an O(size) wipe suffices.
  std::fill(tree_.begin(), tree_.begin() + size_ + 1, 0);
  std::fill(value_.begin(), value_.begin() + size_, 0);
  total_ = 0;
  size_ = 0;
}

void WeightTree::push_back(std::uint64_t value) {
  const std::size_t i = ++size_;  // 1-based index of the new node
  value_[i - 1] = value;
  total_ += value;
  // tree_[i] covers values [i − lowbit(i), i): fold the sibling nodes
  // whose ranges tile [i − lowbit(i), i − 1) onto the new value.
  const std::size_t low = i - (i & (0 - i));
  std::uint64_t node = value;
  for (std::size_t j = i - 1; j > low; j &= j - 1) node += tree_[j];
  tree_[i] = node;
}

void WeightTree::pop_back() {
  total_ -= value_[size_ - 1];
  value_[size_ - 1] = 0;
  --size_;
}

}  // namespace ppde::engine
