#include "engine/pool.hpp"

#include <algorithm>

namespace ppde::engine {

WorkerPool::WorkerPool(unsigned threads) {
  workers_ = threads != 0
                 ? threads
                 : std::max(1u, std::thread::hardware_concurrency());
  threads_.reserve(workers_ - 1);
  for (unsigned i = 0; i + 1 < workers_; ++i)
    threads_.emplace_back([this, worker = i + 1] { worker_loop(worker); });
}

WorkerPool::~WorkerPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& thread : threads_) thread.join();
}

void WorkerPool::run_indices(unsigned worker) {
  for (std::uint64_t i;
       (i = next_.fetch_add(1, std::memory_order_relaxed)) < count_;) {
    try {
      if (body_ != nullptr)
        (*body_)(i);
      else
        (*worker_body_)(worker, i);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (!first_error_) first_error_ = std::current_exception();
    }
  }
}

void WorkerPool::worker_loop(unsigned worker) {
  std::uint64_t seen_generation = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    work_cv_.wait(lock, [&] {
      return stop_ || generation_ != seen_generation;
    });
    if (stop_) return;
    seen_generation = generation_;
    lock.unlock();
    run_indices(worker);
    lock.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void WorkerPool::dispatch(std::uint64_t count) {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    count_ = count;
    first_error_ = nullptr;
    pending_ = workers_ - 1;
    next_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  if (workers_ > 1) work_cv_.notify_all();
  run_indices(0);  // the calling thread participates as worker 0
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return pending_ == 0; });
  body_ = nullptr;
  worker_body_ = nullptr;
  if (first_error_) {
    const std::exception_ptr error = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(error);
  }
}

void WorkerPool::parallel_for(
    std::uint64_t count, const std::function<void(std::uint64_t)>& body) {
  if (count == 0) return;
  body_ = &body;
  dispatch(count);
}

void WorkerPool::parallel_for_workers(
    std::uint64_t count,
    const std::function<void(unsigned, std::uint64_t)>& body) {
  if (count == 0) return;
  worker_body_ = &body;
  dispatch(count);
}

}  // namespace ppde::engine
