// One trial body for every execution layer (S27).
//
// Before this class, four near-identical trial bodies lived in
// engine::run_ensemble, smc::certify's TrialRunner, the serve worker's
// ensemble batch and the analysis sweeps: pick per-agent or count
// simulator, reuse one count simulator per worker, run until stable.
// TrialExecutor is that body, written once — and the single place where
// the S27 scenario fallback rule lives: the count-based engines keep
// their flat-weight/Fenwick fast paths for the default scenario, while
// any non-default scenario (graph topology, biased weighting, faults —
// all of which need agent identity) falls back to the per-agent
// pp::Simulator, under either dispatch core.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "engine/count_sim.hpp"
#include "engine/ensemble.hpp"
#include "sched/scenario.hpp"

namespace ppde::engine {

class TrialExecutor {
 public:
  /// `protocol` must outlive the executor. `workers` is the fleet's worker
  /// count (fleet_workers) — one reusable CountSimulator slot each.
  TrialExecutor(const pp::Protocol& protocol, EngineKind kind,
                isa::Dispatch dispatch, const sched::Scenario& scenario,
                unsigned workers);

  /// Run one trial from `initial` with `seed`. Safe to call concurrently
  /// from different workers; the result is a pure function of
  /// (initial, seed) — the worker index only selects per-worker scratch.
  TrialResult run(unsigned worker, const pp::Config& initial,
                  std::uint64_t seed, const pp::SimulationOptions& options);

  /// True when trials execute on the per-agent simulator — either because
  /// the per-agent engine was requested or because a non-default scenario
  /// forced the fallback.
  bool per_agent() const { return per_agent_; }

 private:
  const pp::Protocol& protocol_;
  isa::Dispatch dispatch_;
  sched::Scenario scenario_;
  bool per_agent_;
  std::optional<PairIndex> index_;
  CountSimOptions sim_options_;
  std::vector<std::unique_ptr<CountSimulator>> sims_;
};

}  // namespace ppde::engine
