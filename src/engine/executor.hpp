// One trial body for every execution layer (S27).
//
// Before this class, four near-identical trial bodies lived in
// engine::run_ensemble, smc::certify's TrialRunner, the serve worker's
// ensemble batch and the analysis sweeps: pick per-agent or count
// simulator, reuse one count simulator per worker, run until stable.
// TrialExecutor is that body, written once — and the single place where
// the S27 scenario fallback rule lives: the count-based engines keep
// their flat-weight/Fenwick fast paths for the default scenario, while
// any non-default scenario (graph topology, biased weighting, faults —
// all of which need agent identity) falls back to the per-agent
// pp::Simulator, under either dispatch core.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "engine/batch_sim.hpp"
#include "engine/count_sim.hpp"
#include "engine/ensemble.hpp"
#include "sched/scenario.hpp"

namespace ppde::engine {

class TrialExecutor {
 public:
  /// `protocol` must outlive the executor. `workers` is the fleet's worker
  /// count (fleet_workers) — one reusable CountSimulator slot each.
  /// `batch` is the S28 lockstep width request: 0 = auto, 1 = off, N = N
  /// lanes; it only takes effect where the lockstep core applies (count
  /// engine with null-skip, default scenario) — everything else keeps the
  /// scalar per-trial path, and batch_width() reports 1.
  TrialExecutor(const pp::Protocol& protocol, EngineKind kind,
                isa::Dispatch dispatch, const sched::Scenario& scenario,
                unsigned workers, std::uint32_t batch = 0);

  /// Run one trial from `initial` with `seed`. Safe to call concurrently
  /// from different workers; the result is a pure function of
  /// (initial, seed) — the worker index only selects per-worker scratch.
  TrialResult run(unsigned worker, const pp::Config& initial,
                  std::uint64_t seed, const pp::SimulationOptions& options);

  /// Run trials [first_trial, first_trial + count), each with its global
  /// seed derive_trial_seed(master_seed, first_trial + i), into
  /// out[0..count). With batch_width() > 1 the range runs on the worker's
  /// lockstep BatchSimulator — per-trial results bit-identical to `count`
  /// run() calls (wall_seconds excepted; see batch_sim.hpp) — otherwise
  /// it is exactly that scalar loop. Concurrency contract matches run().
  void run_range(unsigned worker, const pp::Config& initial,
                 std::uint64_t master_seed, std::uint64_t first_trial,
                 std::size_t count, const pp::SimulationOptions& options,
                 TrialResult* out);

  /// Lanes run_range advances in lockstep per worker; 1 means scalar.
  unsigned batch_width() const { return batch_width_; }

  /// True when trials execute on the per-agent simulator — either because
  /// the per-agent engine was requested or because a non-default scenario
  /// forced the fallback.
  bool per_agent() const { return per_agent_; }

 private:
  const pp::Protocol& protocol_;
  isa::Dispatch dispatch_;
  sched::Scenario scenario_;
  bool per_agent_;
  unsigned batch_width_ = 1;
  std::optional<PairIndex> index_;
  CountSimOptions sim_options_;
  std::vector<std::unique_ptr<CountSimulator>> sims_;
  std::vector<std::unique_ptr<BatchSimulator>> batches_;
};

}  // namespace ppde::engine
