#include "engine/batch_sim.hpp"

#include <algorithm>
#include <cmath>

#include "engine/simd.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ppde::engine {

unsigned BatchSimulator::resolve_width(std::uint32_t requested) {
  if (requested == 0) return simd::preferred_width();
  return static_cast<unsigned>(
      std::min<std::uint32_t>(std::max<std::uint32_t>(requested, 1),
                              kMaxWidth));
}

BatchSimulator::BatchSimulator(const pp::Protocol& protocol,
                               const PairIndex& index, CountSimOptions options,
                               unsigned width)
    : protocol_(&protocol),
      index_(&index),
      options_(options),
      lanes_(std::max(width, 1u)) {
  const std::size_t w = lanes_.size();
  rngs_.resize(w);
  draw_lane_.resize(w);
  zero_lane_.resize(w);
  log1p_.resize(w);
  log_u_.resize(w);
  raw_.resize(w);
  skip_.resize(w);
}

void BatchSimulator::run_range(const pp::Config& initial,
                               const pp::SimulationOptions& options,
                               std::uint64_t master_seed,
                               std::uint64_t first_trial, std::size_t count,
                               TrialResult* out) {
  if (count == 0) return;
  // Batch-level observability (S24/S28): occupancy gauge plus a refill
  // counter, both updated only at retire/refill events — never per sweep.
  static obs::Gauge& occupancy =
      obs::Registry::global().gauge("engine.batch_lanes");
  static obs::Counter& refills =
      obs::Registry::global().counter("engine.lane_refills");
  obs::ObsSpan span("batch_range", "engine");
  span.set_value(static_cast<double>(count));

  std::size_t next = 0;  // next unstarted trial offset in [0, count)
  unsigned live = 0;
  const auto start_lane = [&](Lane& lane) {
    const std::uint64_t seed =
        support::derive_trial_seed(master_seed, first_trial + next);
    if (!lane.sim)
      lane.sim = std::make_unique<CountSimulator>(*protocol_, *index_,
                                                  initial, seed, options_);
    else
      lane.sim->reset(initial, seed);
    lane.sim->ls_begin(lane.ls, options);
    lane.offset = next;
    lane.seed = seed;
    lane.live = true;
    lane.started = std::chrono::steady_clock::now();
    ++next;
    ++live;
  };
  for (Lane& lane : lanes_) {
    if (next >= count) break;
    start_lane(lane);
  }
  occupancy.set(static_cast<double>(live));

  while (live > 0) {
    // Phase 1 — classify: which live lanes consume a geometric draw this
    // sweep. Frozen/budget endings settle inside ls_wants_draw; a lane at
    // p >= 1 fires with skip 0 and no draw.
    std::size_t n_draw = 0;
    std::size_t n_zero = 0;
    for (std::uint32_t i = 0; i < lanes_.size(); ++i) {
      Lane& lane = lanes_[i];
      if (!lane.live) continue;
      if (lane.sim->ls_wants_draw(lane.ls)) {
        draw_lane_[n_draw] = i;
        log1p_[n_draw] = lane.sim->ls_log1p();
        rngs_[n_draw] = &lane.sim->rng();
        ++n_draw;
      } else if (!lane.ls.done) {
        zero_lane_[n_zero++] = i;
      }
    }

    // Phase 2 — one SIMD pass steps every drawing lane's xoshiro state
    // (bit-identical to per-lane operator(), engine/simd.hpp).
    simd::rng_next_batch(rngs_.data(), n_draw, raw_.data());

    // Phase 3 — the geometric inversion, batched. The log loop stays on
    // scalar libm calls (the bit-identicality note in simd.hpp); the
    // u-conversion and the divide/floor/clamp reuse the exact helpers the
    // scalar sampler runs, so autovectorising them is value-preserving
    // (correctly-rounded IEEE ops only).
    for (std::size_t i = 0; i < n_draw; ++i)
      log_u_[i] = std::log(support::to_unit_open(raw_[i]));
    for (std::size_t i = 0; i < n_draw; ++i)
      skip_[i] = geom_skip_count(log_u_[i], log1p_[i]);

    // Phase 4 — fire. Any further draws a firing needs (weight target,
    // Lemire rejections, candidate picks) come scalar from the lane's own
    // generator, preserving per-trial draw order exactly.
    for (std::size_t i = 0; i < n_draw; ++i) {
      Lane& lane = lanes_[draw_lane_[i]];
      lane.sim->ls_fire(lane.ls, skip_[i]);
    }
    for (std::size_t i = 0; i < n_zero; ++i) {
      Lane& lane = lanes_[zero_lane_[i]];
      lane.sim->ls_fire(lane.ls, 0);
    }

    // Phase 5 — retire finished lanes and refill from the range.
    bool changed = false;
    for (Lane& lane : lanes_) {
      if (!lane.live || !lane.ls.done) continue;
      lane.sim->ls_finish(lane.ls);
      TrialResult& trial = out[lane.offset];
      trial.sim = lane.ls.result;
      trial.metrics = lane.sim->metrics();
      // A lane's wall clock is its residency in the batch; B lanes share
      // the core, so sums over trials exceed elapsed time (wall_seconds
      // is non-deterministic by contract everywhere it appears).
      trial.metrics.wall_seconds +=
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        lane.started)
              .count();
      trial.seed = lane.seed;
      lane.live = false;
      --live;
      changed = true;
      if (next < count) {
        start_lane(lane);
        refills.add(1);
      }
    }
    if (changed) occupancy.set(static_cast<double>(live));
  }
}

}  // namespace ppde::engine
