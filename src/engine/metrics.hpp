// Per-run simulation counters (engine subsystem, DESIGN.md S21).
//
// Both simulators — the per-agent pp::Simulator and the count-based
// engine::CountSimulator — fill one RunMetrics per run, so experiment
// harnesses can report *effective* throughput (meetings advanced per
// wall-second, counting the meetings a null-skip batch jumped over) next
// to raw firing counts. This header is dependency-free on purpose: it is
// included from pp/simulator.hpp even though the engine layer otherwise
// sits above pp.
#pragma once

#include <cstdint>
#include <string>

namespace ppde::engine {

struct RunMetrics {
  /// Scheduler meetings advanced, including every meeting jumped over by a
  /// null-skip batch. Always equals the simulator's interaction count.
  std::uint64_t meetings = 0;
  /// Meetings for which an enabled transition was applied (a silent
  /// transition drawn from a mixed candidate set still counts as a firing,
  /// matching pp::Simulator::step()'s return value).
  std::uint64_t firings = 0;
  /// Closed-form geometric null-skip batches taken (CountSimulator only).
  std::uint64_t null_skip_batches = 0;
  /// Meetings advanced inside those batches without an RNG draw each.
  std::uint64_t skipped_meetings = 0;
  /// Times the population's consensus value changed during run_until_stable
  /// (entering, leaving, or flipping a consensus each count once).
  std::uint64_t consensus_flips = 0;
  /// Incremental per-slot weight refreshes pushed into the Fenwick layer
  /// (CountSimulator only; excludes initial-configuration loading).
  std::uint64_t weight_updates = 0;
  /// Fenwick-tree descents performed to sample a meeting partner
  /// (CountSimulator only): one per active-pair draw under null-skip, two
  /// per plain meeting (initiator + responder).
  std::uint64_t tree_descents = 0;
  /// Wall-clock seconds spent inside run_until_stable.
  double wall_seconds = 0.0;

  /// Accumulate `other` into this record (wall times add up).
  void merge(const RunMetrics& other);

  /// Meetings per wall-second; 0 if no time was recorded.
  double effective_meetings_per_second() const;

  std::string to_string() const;
};

}  // namespace ppde::engine
