// Fenwick (binary indexed) tree over per-slot sampling weights (S21).
//
// CountSimulator keeps one weight per *populated-list slot* — the active
// pair weight C(q)·A(q) for null-skip sampling, or the plain count C(q)
// for per-meeting pair sampling — and needs four operations on the
// vector: point assignment, the running total, "find the slot containing
// prefix position t", and growing/shrinking in lockstep with the
// populated list's swap-remove surgery. The seed engine answered the find
// with a linear prefix scan; this tree answers everything in
// O(log size()) / O(1).
//
// The tree's *logical size* tracks the number of populated slots, not the
// protocol's state count: on the converted Czerner protocols a handful of
// the ~1.8k states are ever occupied, and a climb bounded by the logical
// size costs 2–3 hops instead of log |Q| ≈ 10. push_back() rebuilds the
// one new internal node from O(log) existing nodes (the classic online
// Fenwick construction); pop_back() just retires the last slot — internal
// nodes above the logical size are recomputed by the next push_back, so
// they may go stale freely.
//
// find() is written to select *exactly* the slot the linear scan
//
//   for (slot = 0;; ++slot) { if (t < w[slot]) break; t -= w[slot]; }
//
// selects for the same target t < total(): the mask descent settles on the
// unique slot with prefix_excl(slot) <= t < prefix_excl(slot) + w[slot],
// and leaves `remaining` = t − prefix_excl(slot) — the same residual the
// scan holds when it breaks. A zero-weight slot can never be returned,
// because the boundary inequality requires w[slot] > remaining >= 0. This
// slot-for-slot agreement is what keeps same-seed trajectories
// bit-identical to the pre-Fenwick engine (DESIGN.md S21).
//
// Values are unsigned 64-bit; set() propagates two's-complement deltas, so
// any transient sequence of assignments is fine as long as each stored
// value and the running total stay below 2^64 (the simulator's weights are
// bounded by m·(m−1) < 2^64 for 32-bit counts).
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace ppde::engine {

class WeightTree {
 public:
  WeightTree() = default;
  /// Fixed slot capacity; starts empty (size() == 0).
  explicit WeightTree(std::size_t capacity) { reset(capacity); }

  /// Re-dimension to `capacity` slots, empty.
  void reset(std::size_t capacity);
  /// Drop every slot, keeping the capacity.
  void clear();

  std::size_t capacity() const { return value_.size(); }
  std::size_t size() const { return size_; }
  std::uint64_t total() const { return total_; }
  std::uint64_t get(std::size_t slot) const { return value_[slot]; }

  /// Append a slot holding `value` (O(log size)). size() < capacity().
  void push_back(std::uint64_t value);
  /// Retire the last slot (O(1)); its weight leaves the total.
  void pop_back();

  /// Assign weight `value` to `slot` < size() (point update, O(log size)).
  /// Inline — it sits on the engine's per-firing hot path.
  void set(std::size_t slot, std::uint64_t value) {
    const std::uint64_t delta = value - value_[slot];  // two's complement
    if (delta == 0) return;
    value_[slot] = value;
    total_ += delta;
    for (std::size_t i = slot + 1; i <= size_; i += i & (0 - i))
      tree_[i] += delta;
  }

  /// For target < total(): the unique slot with
  /// prefix_excl(slot) <= target < prefix_excl(slot) + get(slot), i.e. the
  /// slot the linear prefix scan selects. Stores target − prefix_excl(slot)
  /// into *remaining (the scan's leftover offset within the slot; always
  /// < get(slot), so never lands on a zero-weight slot).
  std::size_t find(std::uint64_t target, std::uint64_t* remaining) const {
    // Mask descent: grow the 1-based prefix position while its cumulative
    // sum stays <= target. `pos` ends as the count of slots wholly below
    // the target, i.e. the selected 0-based slot index.
    std::size_t pos = 0;
    for (std::size_t mask = std::bit_floor(size_); mask != 0; mask >>= 1) {
      const std::size_t next = pos + mask;
      if (next <= size_ && tree_[next] <= target) {
        target -= tree_[next];
        pos = next;
      }
    }
    *remaining = target;
    return pos;
  }

 private:
  std::vector<std::uint64_t> tree_;   ///< 1-based Fenwick array
  std::vector<std::uint64_t> value_;  ///< current weight per slot
  std::uint64_t total_ = 0;
  std::size_t size_ = 0;  ///< logical slot count; nodes above may be stale
};

}  // namespace ppde::engine
