// A persistent fixed-size worker pool with a fork-join parallel_for.
//
// Both concurrent components of the library sit on this pool: the ensemble
// trial fleets (S21) dispatch one task per trial, and the verification
// kernel (S22) dispatches one task per frontier node of each exploration
// wave. Work items are claimed from a shared atomic counter, so the pool
// imposes no assignment of items to threads — callers that need
// determinism (both of the above) must make every item's *result* a pure
// function of its index, never of the executing thread.
//
// The calling thread participates in the loop, so a pool of size 1 spawns
// no threads at all and parallel_for degenerates to a plain loop.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ppde::engine {

class WorkerPool {
 public:
  /// `threads` = total workers including the caller; 0 means
  /// std::thread::hardware_concurrency(). Spawns `threads - 1` threads.
  explicit WorkerPool(unsigned threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers (spawned threads + the calling thread).
  unsigned workers() const { return workers_; }

  /// Run body(i) for every i in [0, count), distributing indices over all
  /// workers, and block until every call returned. `body` must be safe to
  /// invoke concurrently from different threads. If any call throws, the
  /// remaining indices still run and the *first* exception (in claim
  /// order of detection) is rethrown here after the join. Not reentrant.
  void parallel_for(std::uint64_t count,
                    const std::function<void(std::uint64_t)>& body);

  /// Same contract, but the body also receives the stable index of the
  /// executing worker (0 = the calling thread, 1..workers()−1 = spawned
  /// threads). Lets callers keep per-worker scratch — e.g. one reusable
  /// CountSimulator per worker — without thread-local storage. Item
  /// *results* must still be pure functions of the item index; the worker
  /// index may only steer reuse of scratch state that is fully reset
  /// between items.
  void parallel_for_workers(
      std::uint64_t count,
      const std::function<void(unsigned worker, std::uint64_t)>& body);

 private:
  void worker_loop(unsigned worker);
  void run_indices(unsigned worker);
  void dispatch(std::uint64_t count);

  unsigned workers_ = 1;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::uint64_t)>* body_ = nullptr;  // guarded
  const std::function<void(unsigned, std::uint64_t)>* worker_body_ =
      nullptr;               // guarded
  std::uint64_t count_ = 0;  // guarded
  std::uint64_t generation_ = 0;                              // guarded
  unsigned pending_ = 0;                                      // guarded
  bool stop_ = false;                                         // guarded
  std::exception_ptr first_error_;                            // guarded
  std::atomic<std::uint64_t> next_{0};
};

}  // namespace ppde::engine
