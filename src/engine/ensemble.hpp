// Multi-threaded trial fleets over independent simulation runs (S21).
//
// Every stochastic experiment in the literature this repository reproduces
// reports *expected* quantities over ensembles of fair random runs. This
// runner executes K independent trials on a fixed-size thread pool and
// aggregates an EnsembleStats record whose every field except the wall
// times is a deterministic function of (protocol, initial, options): trial
// i always runs with seed derive_trial_seed(master_seed, i) regardless of
// which worker picks it up, and aggregation happens in trial order after
// the pool drains. Same master seed + any thread count ⇒ identical stats.
//
// Seed derivation: trial i's seed is the SplitMix64 output function
// applied to master_seed + (i+1)·0x9e3779b97f4a7c15 — i.e. the (i+1)-th
// element of the SplitMix64 stream anchored at the master seed, the same
// generator support::Rng already uses for state expansion. Distinct trials
// get decorrelated 64-bit seeds; a whole ensemble is reproduced from one
// number.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/count_sim.hpp"
#include "engine/metrics.hpp"
#include "pp/config.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"

namespace ppde::engine {

/// The (trial+1)-th element of the SplitMix64 stream anchored at
/// `master_seed`; independent of thread scheduling by construction.
std::uint64_t derive_trial_seed(std::uint64_t master_seed,
                                std::uint64_t trial);

/// Which simulator executes each trial.
enum class EngineKind {
  kPerAgent,        ///< pp::Simulator — one array slot per agent
  kCount,           ///< CountSimulator, one pair sample per meeting
  kCountNullSkip,   ///< CountSimulator with geometric null-skip (default)
};

const char* to_string(EngineKind kind);

struct TrialResult {
  pp::SimulationResult sim;
  RunMetrics metrics;
  std::uint64_t seed = 0;
};

struct Quantiles {
  double p50 = 0.0;
  double p90 = 0.0;
  double max = 0.0;
};

struct EnsembleStats {
  std::uint64_t trials = 0;
  std::uint64_t stabilised = 0;
  std::uint64_t accepted = 0;  ///< among stabilised trials
  /// Over all trials (budget-capped runs report the budget).
  Quantiles interactions;
  Quantiles parallel_time;
  /// Summed per-trial counters. totals.wall_seconds is summed *CPU* time of
  /// the trials and, like wall_seconds below, is not deterministic.
  RunMetrics totals;
  double wall_seconds = 0.0;  ///< end-to-end wall time of the whole fleet
  unsigned threads_used = 0;

  double stabilised_fraction() const {
    return trials ? static_cast<double>(stabilised) / trials : 0.0;
  }
  double accept_fraction() const {
    return stabilised ? static_cast<double>(accepted) / stabilised : 0.0;
  }
};

struct EnsembleOptions {
  std::uint64_t trials = 16;
  /// Worker threads; 0 means std::thread::hardware_concurrency(). The pool
  /// never exceeds the trial count.
  unsigned threads = 0;
  std::uint64_t master_seed = 1;
  EngineKind engine = EngineKind::kCountNullSkip;
  /// Execution core (S26): compiled-bytecode dispatch (default) or the
  /// legacy interpreter. Trajectories and all aggregates are bit-identical
  /// either way; the oracle tests pin that.
  isa::Dispatch dispatch = isa::Dispatch::kBytecode;
  /// Stress scenario (S27). The default (uniform scheduler, no faults)
  /// keeps the count engines' fast paths and their exact pre-S27 RNG
  /// streams; any other scenario falls back to the per-agent simulator
  /// regardless of `engine` (graph topologies, biased weighting and fault
  /// plans all need agent identity).
  sched::Scenario scenario;
  /// Lockstep batch width (S28): lanes each worker advances in lockstep.
  /// 0 = auto (simd::preferred_width — currently the scalar path, which
  /// measures faster; see EXPERIMENTS.md S28), 1 = off (scalar per-trial
  /// path), N = exactly N lanes. Only the count+null-skip
  /// engine under the default scenario batches; every other configuration
  /// ignores this and runs scalar. Per-trial results and all aggregates
  /// are bit-identical at every width (wall times excepted) — the
  /// differential tests pin it.
  std::uint32_t batch = 0;
  /// Per-trial stopping rule; sim.seed is ignored (per-trial seeds are
  /// derived from master_seed).
  pp::SimulationOptions sim;
};

/// Workers a fleet of `trials` trials actually uses: `threads` (0 ⇒
/// hardware concurrency) capped at the trial count, at least 1.
unsigned fleet_workers(std::uint64_t trials, unsigned threads);

/// Run `body(trial, derive_trial_seed(master_seed, trial))` for every
/// trial in [0, trials) on a fixed pool of `threads` workers (0 ⇒ hardware
/// concurrency). Results are indexed by trial. If any body throws, the
/// pool drains and a std::runtime_error naming the lowest failing trial
/// index (with the original what()) is thrown — never a silent partial
/// result. `body` must be safe to call concurrently from different
/// threads.
std::vector<TrialResult> run_trial_fleet(
    std::uint64_t trials, unsigned threads, std::uint64_t master_seed,
    const std::function<TrialResult(std::uint64_t trial, std::uint64_t seed)>&
        body);

/// Same contract, but the body also receives the executing worker's index
/// in [0, fleet_workers(trials, threads)), so callers can keep one
/// reusable simulator per worker (CountSimulator::reset) instead of
/// reconstructing per trial. Each trial's result must remain a pure
/// function of (trial, seed) — reuse scratch through the worker index,
/// never results.
std::vector<TrialResult> run_trial_fleet(
    std::uint64_t trials, unsigned threads, std::uint64_t master_seed,
    const std::function<TrialResult(unsigned worker, std::uint64_t trial,
                                    std::uint64_t seed)>& body);

/// Shard variant for the serve daemon (S25): run trials [first_trial,
/// first_trial + trials), each with its *global* derived seed
/// derive_trial_seed(master_seed, first_trial + i), results indexed by
/// offset i. Any partition of the trial index space into ranges therefore
/// reproduces exactly the per-trial results of one run_trial_fleet over
/// the union — regardless of which process runs which range. Exceptions
/// are wrapped with the failing global trial index and rethrown.
std::vector<TrialResult> run_trial_range(
    std::uint64_t first_trial, std::uint64_t trials, unsigned threads,
    std::uint64_t master_seed,
    const std::function<TrialResult(unsigned worker, std::uint64_t trial,
                                    std::uint64_t seed)>& body);

/// Chunked fleet for the lockstep batch core (S28): partition
/// [first_trial, first_trial + trials) into contiguous chunks of `chunk`
/// trials and hand each chunk to one body call on a worker — the body
/// (typically TrialExecutor::run_range) fills out[0..count) with the
/// trials' results, each a pure function of its global (trial, seed), so
/// any chunk size yields the per-trial results of the unchunked fleet.
/// Results indexed by offset; per-trial registry metrics and trace
/// markers are published as each chunk completes; a throwing body
/// surfaces as a std::runtime_error naming the chunk's first trial.
std::vector<TrialResult> run_trial_range_chunked(
    std::uint64_t first_trial, std::uint64_t trials, unsigned threads,
    std::uint64_t chunk,
    const std::function<void(unsigned worker, std::uint64_t first,
                             std::uint64_t count, TrialResult* out)>& body);

/// Deterministic aggregation of per-trial results (in index order).
EnsembleStats aggregate(const std::vector<TrialResult>& results);

/// K independent run_until_stable trials from `initial`, aggregated.
EnsembleStats run_ensemble(const pp::Protocol& protocol,
                           const pp::Config& initial,
                           const EnsembleOptions& options);

/// Render the stats as a short multi-line report (used by the CLI).
std::string describe(const EnsembleStats& stats);

}  // namespace ppde::engine
