#include "engine/ensemble.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>

#include "engine/executor.hpp"
#include "engine/pool.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"

namespace ppde::engine {

namespace {

/// Fleet-level observability (S24): per-trial spans in the trace, live
/// counters/gauges in the registry for the progress heartbeat. Registry
/// updates are one relaxed atomic add per *trial* (a whole simulation
/// run) — never per meeting.
struct FleetMetrics {
  obs::Counter& trials_done =
      obs::Registry::global().counter("engine.trials_done");
  obs::Counter& meetings = obs::Registry::global().counter("engine.meetings");
  obs::Counter& firings = obs::Registry::global().counter("engine.firings");
  obs::Histogram& trial_micros =
      obs::Registry::global().histogram("engine.trial_micros");

  static FleetMetrics& get() {
    static FleetMetrics instance;
    return instance;
  }

  void publish(const RunMetrics& metrics) {
    trials_done.add(1);
    meetings.add(metrics.meetings);
    firings.add(metrics.firings);
    trial_micros.record(
        static_cast<std::uint64_t>(metrics.wall_seconds * 1e6));
  }
};

}  // namespace

std::uint64_t derive_trial_seed(std::uint64_t master_seed,
                                std::uint64_t trial) {
  // Hoisted to support::derive_trial_seed (S27) so the sched streams use
  // the same derivation; this alias stays for the engine's callers.
  return support::derive_trial_seed(master_seed, trial);
}

const char* to_string(EngineKind kind) {
  switch (kind) {
    case EngineKind::kPerAgent: return "per-agent";
    case EngineKind::kCount: return "count";
    case EngineKind::kCountNullSkip: return "count+null-skip";
  }
  return "?";
}

unsigned fleet_workers(std::uint64_t trials, unsigned threads) {
  const unsigned requested =
      threads != 0 ? threads
                   : std::max(1u, std::thread::hardware_concurrency());
  return static_cast<unsigned>(
      std::min<std::uint64_t>(requested, std::max<std::uint64_t>(trials, 1)));
}

std::vector<TrialResult> run_trial_fleet(
    std::uint64_t trials, unsigned threads, std::uint64_t master_seed,
    const std::function<TrialResult(std::uint64_t, std::uint64_t)>& body) {
  return run_trial_fleet(
      trials, threads, master_seed,
      [&body](unsigned, std::uint64_t trial, std::uint64_t seed) {
        return body(trial, seed);
      });
}

std::vector<TrialResult> run_trial_fleet(
    std::uint64_t trials, unsigned threads, std::uint64_t master_seed,
    const std::function<TrialResult(unsigned, std::uint64_t, std::uint64_t)>&
        body) {
  return run_trial_range(0, trials, threads, master_seed, body);
}

std::vector<TrialResult> run_trial_range(
    std::uint64_t first_trial, std::uint64_t trials, unsigned threads,
    std::uint64_t master_seed,
    const std::function<TrialResult(unsigned, std::uint64_t, std::uint64_t)>&
        body) {
  std::vector<TrialResult> results(trials);
  if (trials == 0) return results;

  // The shared worker pool (engine/pool.hpp) preserves this function's
  // contract: results indexed by offset, exceptions surfaced after all
  // workers drain, never more workers than trials. The pool rethrows the
  // *first recorded* exception; the wrapper below instead names the lowest
  // failing trial index so the error is deterministic and actionable
  // ("which (trial, seed) reproduces this?") rather than a bare what()
  // from whichever worker lost the race.
  WorkerPool pool(fleet_workers(trials, threads));
  FleetMetrics& fleet_metrics = FleetMetrics::get();
  std::mutex failure_mutex;
  bool failed = false;
  std::uint64_t failed_trial = 0;
  std::string failed_what;
  const auto note_failure = [&](std::uint64_t trial, const char* what) {
    const std::lock_guard<std::mutex> lock(failure_mutex);
    if (!failed || trial < failed_trial) {
      failed = true;
      failed_trial = trial;
      failed_what = what;
    }
  };
  try {
    pool.parallel_for_workers(trials, [&](unsigned worker, std::uint64_t i) {
      const std::uint64_t trial = first_trial + i;
      obs::ObsSpan span("trial", "engine");
      span.set_value(static_cast<double>(trial));
      try {
        results[i] =
            body(worker, trial, derive_trial_seed(master_seed, trial));
      } catch (const std::exception& error) {
        note_failure(trial, error.what());
        throw;
      } catch (...) {
        note_failure(trial, "unknown exception");
        throw;
      }
      fleet_metrics.publish(results[i].metrics);
    });
  } catch (...) {
    if (failed)
      throw std::runtime_error("run_trial_fleet: trial " +
                               std::to_string(failed_trial) +
                               " failed: " + failed_what);
    throw;
  }
  return results;
}

std::vector<TrialResult> run_trial_range_chunked(
    std::uint64_t first_trial, std::uint64_t trials, unsigned threads,
    std::uint64_t chunk,
    const std::function<void(unsigned worker, std::uint64_t first,
                             std::uint64_t count, TrialResult* out)>& body) {
  std::vector<TrialResult> results(trials);
  if (trials == 0) return results;
  chunk = std::max<std::uint64_t>(chunk, 1);
  const std::uint64_t num_chunks = (trials + chunk - 1) / chunk;

  WorkerPool pool(fleet_workers(num_chunks, threads));
  FleetMetrics& fleet_metrics = FleetMetrics::get();
  std::mutex failure_mutex;
  bool failed = false;
  std::uint64_t failed_trial = 0;
  std::string failed_what;
  const auto note_failure = [&](std::uint64_t trial, const char* what) {
    const std::lock_guard<std::mutex> lock(failure_mutex);
    if (!failed || trial < failed_trial) {
      failed = true;
      failed_trial = trial;
      failed_what = what;
    }
  };
  try {
    pool.parallel_for_workers(num_chunks, [&](unsigned worker,
                                              std::uint64_t c) {
      const std::uint64_t offset = c * chunk;
      const std::uint64_t count = std::min(chunk, trials - offset);
      const std::uint64_t first = first_trial + offset;
      obs::ObsSpan span("trial_chunk", "engine");
      span.set_value(static_cast<double>(first));
      try {
        body(worker, first, count, results.data() + offset);
      } catch (const std::exception& error) {
        note_failure(first, error.what());
        throw;
      } catch (...) {
        note_failure(first, "unknown exception");
        throw;
      }
      // Per-trial bookkeeping at chunk granularity: the registry counters
      // and a retire-marker "trial" span per trial (the trace contract
      // every ensemble consumer greps for; in batch mode it marks the
      // trial's completion rather than bracketing its execution).
      for (std::uint64_t i = 0; i < count; ++i) {
        obs::ObsSpan trial_span("trial", "engine");
        trial_span.set_value(static_cast<double>(first + i));
        fleet_metrics.publish(results[offset + i].metrics);
      }
    });
  } catch (...) {
    if (failed)
      throw std::runtime_error("run_trial_fleet: trial " +
                               std::to_string(failed_trial) +
                               " failed: " + failed_what);
    throw;
  }
  return results;
}

namespace {

Quantiles quantiles_of(std::vector<double> values) {
  Quantiles q;
  if (values.empty()) return q;
  std::sort(values.begin(), values.end());
  const auto at = [&](double fraction) {
    const auto index = static_cast<std::size_t>(
        fraction * static_cast<double>(values.size() - 1) + 0.5);
    return values[std::min(index, values.size() - 1)];
  };
  q.p50 = at(0.5);
  q.p90 = at(0.9);
  q.max = values.back();
  return q;
}

}  // namespace

EnsembleStats aggregate(const std::vector<TrialResult>& results) {
  EnsembleStats stats;
  stats.trials = results.size();
  std::vector<double> interactions;
  std::vector<double> parallel_time;
  interactions.reserve(results.size());
  parallel_time.reserve(results.size());
  for (const TrialResult& trial : results) {
    if (trial.sim.stabilised) {
      ++stats.stabilised;
      if (trial.sim.output) ++stats.accepted;
    }
    interactions.push_back(static_cast<double>(trial.sim.interactions));
    parallel_time.push_back(trial.sim.parallel_time);
    stats.totals.merge(trial.metrics);
  }
  stats.interactions = quantiles_of(std::move(interactions));
  stats.parallel_time = quantiles_of(std::move(parallel_time));
  return stats;
}

EnsembleStats run_ensemble(const pp::Protocol& protocol,
                           const pp::Config& initial,
                           const EnsembleOptions& options) {
  obs::ObsSpan span("run_ensemble", "engine");
  span.set_value(static_cast<double>(options.trials));
  // The heartbeat's ETA denominator: how many trials this fleet will run.
  static obs::Gauge& trials_total =
      obs::Registry::global().gauge("engine.trials_total");
  trials_total.set(static_cast<double>(options.trials));
  const auto start_time = std::chrono::steady_clock::now();
  // One shared activity index for all count-based trials; read-only after
  // construction, so safe across the pool.
  // The shared trial body (S27): engine/dispatch/scenario selection and
  // per-worker simulator reuse live in TrialExecutor, the same body
  // smc::certify and the serve workers run.
  unsigned workers = fleet_workers(options.trials, options.threads);
  TrialExecutor executor(protocol, options.engine, options.dispatch,
                         options.scenario, workers, options.batch);

  std::vector<TrialResult> results;
  if (executor.batch_width() > 1) {
    // Lockstep core (S28): contiguous chunks of a few batch-fills each —
    // big enough to amortise lane refills, small enough that multi-worker
    // fleets still load-balance across the pool.
    const std::uint64_t chunk = std::uint64_t{4} * executor.batch_width();
    const std::uint64_t num_chunks = (options.trials + chunk - 1) / chunk;
    workers = fleet_workers(num_chunks, options.threads);
    results = run_trial_range_chunked(
        0, options.trials, options.threads, chunk,
        [&](unsigned worker, std::uint64_t first, std::uint64_t count,
            TrialResult* out) {
          executor.run_range(worker, initial, options.master_seed, first,
                             count, options.sim, out);
        });
  } else {
    results = run_trial_fleet(
        options.trials, options.threads, options.master_seed,
        [&](unsigned worker, std::uint64_t, std::uint64_t seed) {
          return executor.run(worker, initial, seed, options.sim);
        });
  }
  EnsembleStats stats = aggregate(results);
  // Report what the fleet actually ran with: the pool never spawns more
  // workers than there are trials (or chunks, under the batch core).
  stats.threads_used = workers;
  stats.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return stats;
}

std::string describe(const EnsembleStats& stats) {
  // Guard the effective rate against a wall time that rounds to (or near)
  // zero: meetings/wall can overflow to inf on a fast fleet; report 0
  // instead of printing "inf".
  double effective = stats.wall_seconds > 0.0
                         ? static_cast<double>(stats.totals.meetings) /
                               stats.wall_seconds
                         : 0.0;
  if (!std::isfinite(effective)) effective = 0.0;
  char buffer[640];
  std::snprintf(
      buffer, sizeof buffer,
      "trials ............ %llu (%u threads)\n"
      "stabilised ........ %.3f  (accept fraction %.3f)\n"
      "interactions ...... p50 %.3g  p90 %.3g  max %.3g\n"
      "parallel time ..... p50 %.3g  p90 %.3g  max %.3g\n"
      "meetings/sec ...... %.3g effective (%llu firings, %llu skip batches)\n"
      "incremental ....... %llu weight updates, %llu tree descents\n"
      "wall .............. %.3fs\n",
      static_cast<unsigned long long>(stats.trials), stats.threads_used,
      stats.stabilised_fraction(), stats.accept_fraction(),
      stats.interactions.p50, stats.interactions.p90, stats.interactions.max,
      stats.parallel_time.p50, stats.parallel_time.p90,
      stats.parallel_time.max, effective,
      static_cast<unsigned long long>(stats.totals.firings),
      static_cast<unsigned long long>(stats.totals.null_skip_batches),
      static_cast<unsigned long long>(stats.totals.weight_updates),
      static_cast<unsigned long long>(stats.totals.tree_descents),
      stats.wall_seconds);
  return buffer;
}

}  // namespace ppde::engine
