#include "engine/count_sim.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "isa/exec.hpp"
#include "obs/trace.hpp"

namespace ppde::engine {

CountSimulator::CountSimulator(const pp::Protocol& protocol,
                               const pp::Config& initial, std::uint64_t seed,
                               CountSimOptions options)
    : CountSimulator(std::make_unique<PairIndex>(protocol), protocol, initial,
                     seed, options) {}

CountSimulator::CountSimulator(std::unique_ptr<const PairIndex> owned,
                               const pp::Protocol& protocol,
                               const pp::Config& initial, std::uint64_t seed,
                               CountSimOptions options)
    : CountSimulator(protocol, *owned, initial, seed, options) {
  owned_index_ = std::move(owned);
}

CountSimulator::CountSimulator(const pp::Protocol& protocol,
                               const PairIndex& index,
                               const pp::Config& initial, std::uint64_t seed,
                               CountSimOptions options)
    : protocol_(&protocol),
      index_(&index),
      options_(options),
      counts_(protocol.num_states()),
      position_(protocol.num_states(), kNoPosition),
      active_(options.dispatch == isa::Dispatch::kBytecode
                  ? 0
                  : protocol.num_states()),
      pair_counts_(options.null_skip ||
                           options.dispatch == isa::Dispatch::kBytecode
                       ? 0
                       : protocol.num_states()),
      rng_(seed) {
  if (!protocol.finalized())
    throw std::logic_error("CountSimulator: protocol not finalized");
  if (index.num_states() != protocol.num_states())
    throw std::invalid_argument("CountSimulator: index/protocol mismatch");
  bc_ = options.dispatch == isa::Dispatch::kBytecode;
  load(initial);
}

void CountSimulator::load(const pp::Config& initial) {
  if (initial.num_states() > protocol_->num_states())
    throw std::invalid_argument("CountSimulator: config has unknown states");
  for (pp::State q = 0; q < initial.num_states(); ++q)
    if (initial[q] != 0) counts_.add(q, initial[q]);
  for (pp::State q = 0; q < counts_.num_states(); ++q) {
    if (counts_[q] == 0) continue;
    if (protocol_->is_accepting(q)) accepting_ += counts_[q];
    position_[q] = static_cast<std::uint32_t>(populated_.size());
    populated_.push_back(q);
  }
  sorted_populated_ = populated_;  // built in ascending state order above
  const auto filled = static_cast<std::uint32_t>(populated_.size());
  matrix_ok_ = filled <= kMatrixSlots;
  if (matrix_ok_) {
    if (act_.empty()) act_.assign(kMatrixSlots * kMatrixSlots, 0);
    col_mask_.fill(0);
    // Populated list is ascending here, so slot index == sorted rank.
    for (std::uint32_t i = 0; i < filled; ++i)
      rank_[i] = static_cast<std::uint8_t>(i);
  }
  partner_sum_.resize(filled);
  for (std::uint32_t slot = 0; slot < filled; ++slot) {
    const pp::State q = populated_[slot];
    partner_sum_[slot] = matrix_ok_ ? build_matrix_row(slot, /*ranked=*/true)
                                    : fresh_partner_sum(q);
    weight_push(counts_[q] * partner_sum_[slot]);
    if (!options_.null_skip && !bc_) pair_counts_.push_back(counts_[q]);
  }
}

void CountSimulator::reset(const pp::Config& initial, std::uint64_t seed) {
  for (const pp::State q : populated_) {
    counts_.remove(q, counts_[q]);
    position_[q] = kNoPosition;
  }
  populated_.clear();
  partner_sum_.clear();
  if (bc_) {
    flat_weight_.clear();
    flat_total_ = 0;
  } else {
    active_.clear();
    if (!options_.null_skip) pair_counts_.clear();
  }
  sorted_populated_.clear();
  cached_active_ = 0;  // sample_null_run never sees W == 0; forces recompute
  accepting_ = 0;
  interactions_ = 0;
  metrics_ = RunMetrics{};
  rng_.reseed(seed);
  load(initial);
}

std::uint64_t CountSimulator::fresh_partner_sum(pp::State q) const {
  // Zero-count partners contribute nothing, so the sum may run over either
  // the partner list or the populated list — whichever is shorter.
  std::uint64_t sum = index_->self_active(q) ? ~std::uint64_t{0} : 0;  // −1
  const auto partners = index_->partners_of(q);
  if (partners.size() <= populated_.size()) {
    for (pp::State r : partners) sum += counts_[r];
  } else {
    for (pp::State r : populated_)
      if (index_->pair_active(q, r)) sum += counts_[r];
  }
  return sum;
}

void CountSimulator::refresh_weight(std::uint32_t slot) {
  // A(q) >= 0 whenever C(q) >= 1 (a populated self-active state counts
  // itself); the only transiently "negative" A belongs to a slot whose
  // count just hit zero, where the product is zero anyway.
  ++metrics_.weight_updates;
  weight_set(slot, counts_[populated_[slot]] * partner_sum_[slot]);
}

std::uint64_t CountSimulator::sample_null_run(std::uint64_t active) {
  // U uniform on (0, 1]; 53-bit mantissa draw, shifted off zero. The
  // expression chain (to_unit_open → log → geom_skip_count) is the one
  // the batch core replays lane by lane — bit-identical by construction.
  if (!geom_prepare(active)) return 0;
  return ls_geom_skip(rng_());
}

std::uint64_t CountSimulator::build_matrix_row(std::uint32_t slot,
                                               bool ranked) {
  const pp::State q = populated_[slot];
  const auto filled = static_cast<std::uint32_t>(populated_.size());
  std::uint32_t* row = act_.data() + slot * kMatrixSlots;
  // No row wipe: cells at inactive positions may hold stale codes from the
  // slot's previous occupant, but every act_ read is gated by a mask bit
  // (srow_mask_ in the responder walk, col_mask_ in the update walks), so
  // stale cells are unreachable. Likewise bit `slot` cannot yet be set in
  // any watcher mask — the list surgery strips bits at or above the live
  // size — so no clearing pass is needed either.
  const std::uint64_t bit = std::uint64_t{1} << slot;
  std::uint64_t sum = index_->self_active(q) ? ~std::uint64_t{0} : 0;  // −1
  std::uint64_t srow = 0;
  const auto partners = index_->partners_of(q);
  if (partners.size() <= std::size_t{16} * filled) {
    // One walk over q's partner row fills the codes (pair positions come
    // for free: row index k), the mask bits, and A(q); non-populated
    // partners have count zero and contribute nothing.
    const std::uint32_t base = index_->pair_offset(q);
    for (std::uint32_t k = 0; k < partners.size(); ++k) {
      const std::uint32_t j = position_[partners[k]];
      if (j == kNoPosition) continue;
      row[j] = base + k + 2;
      col_mask_[j] |= bit;
      if (j != slot || ranked) srow |= std::uint64_t{1} << rank_[j];
      sum += counts_[partners[k]];
    }
  } else {
    // Huge out-degree: probe per populated state instead.
    for (std::uint32_t j = 0; j < filled; ++j) {
      const pp::State r = populated_[j];
      if (!index_->pair_active(q, r)) continue;
      row[j] = index_->pair_pos(q, r) + 2;
      col_mask_[j] |= bit;
      if (j != slot || ranked) srow |= std::uint64_t{1} << rank_[j];
      sum += counts_[r];
    }
  }
  srow_mask_[slot] = srow;
  return sum;
}

void CountSimulator::sorted_insert(pp::State state) {
  const auto it = std::lower_bound(sorted_populated_.begin(),
                                   sorted_populated_.end(), state);
  const auto rank =
      static_cast<std::uint32_t>(it - sorted_populated_.begin());
  sorted_populated_.insert(it, state);
  if (!matrix_ok_) return;
  // Open rank `rank` in every live sorted-row mask (the new bit comes
  // from the state's watcher column) and bump the ranks it displaced.
  const std::uint64_t low = (std::uint64_t{1} << rank) - 1;
  const std::uint64_t watchers = col_mask_[position_[state]];
  const auto filled = static_cast<std::uint32_t>(populated_.size());
  for (std::uint32_t i = 0; i < filled; ++i) {
    const std::uint64_t m = srow_mask_[i];
    srow_mask_[i] = (m & low) | ((m & ~low) << 1) |
                    (((watchers >> i) & 1) << rank);
    rank_[i] += rank_[i] >= rank ? 1 : 0;
  }
  rank_[position_[state]] = static_cast<std::uint8_t>(rank);
}

void CountSimulator::sorted_erase(pp::State state) {
  const auto it = std::lower_bound(sorted_populated_.begin(),
                                   sorted_populated_.end(), state);
  const auto rank =
      static_cast<std::uint32_t>(it - sorted_populated_.begin());
  sorted_populated_.erase(it);
  if (!matrix_ok_) return;
  const std::uint64_t low = (std::uint64_t{1} << rank) - 1;
  const auto filled = static_cast<std::uint32_t>(populated_.size());
  for (std::uint32_t i = 0; i < filled; ++i) {
    const std::uint64_t m = srow_mask_[i];
    srow_mask_[i] = (m & low) | ((m >> 1) & ~low);
    rank_[i] -= rank_[i] > rank ? 1 : 0;
  }
}

void CountSimulator::change_count(pp::State state, std::int64_t delta) {
  if (delta > 0)
    counts_.add(state, static_cast<std::uint32_t>(delta));
  else
    counts_.remove(state, static_cast<std::uint32_t>(-delta));
  const auto shift = static_cast<std::uint64_t>(delta);  // two's complement
  if (protocol_->is_accepting(state)) accepting_ += shift;

  const auto filled = static_cast<std::uint32_t>(populated_.size());
  const bool appearing = position_[state] == kNoPosition;  // delta > 0 then
  if (matrix_ok_ && appearing && filled >= kMatrixSlots)
    matrix_ok_ = false;  // populated list outgrew the matrix; until reset

  // Every populated initiator q with (q, state) active sees its partner
  // sum move by delta.
  if (matrix_ok_) {
    // Walk the set bits of state's watcher mask. A state entering the
    // populated list gets its column built here, at the slot the append
    // below will assign (the A-loop must run while the slot list still
    // excludes `state` — its own partner sum comes fresh).
    std::uint32_t col = position_[state];
    if (appearing) {
      col = filled;
      std::uint64_t built = 0;
      // Activity is static, so the new column is just state's in-partner
      // list restricted to populated slots. Only active cells are written
      // (stale inactive cells are unreachable behind the masks); walk
      // whichever side is shorter.
      if (const auto initiators = index_->initiators_meeting(state);
          initiators.size() <= filled) {
        for (pp::State p : initiators) {
          const std::uint32_t i = position_[p];
          if (i == kNoPosition) continue;
          act_[i * kMatrixSlots + col] = 1;  // pair position resolved lazily
          built |= std::uint64_t{1} << i;
        }
      } else {
        for (std::uint32_t i = 0; i < filled; ++i)
          if (index_->pair_active(populated_[i], state)) {
            act_[i * kMatrixSlots + col] = 1;
            built |= std::uint64_t{1} << i;
          }
      }
      col_mask_[col] = built;
    }
    for (std::uint64_t mask = col_mask_[col]; mask != 0; mask &= mask - 1) {
      const auto i = static_cast<std::uint32_t>(std::countr_zero(mask));
      partner_sum_[i] += shift;
      refresh_weight(i);
    }
  } else if (const auto initiators = index_->initiators_meeting(state);
             initiators.size() <= populated_.size()) {
    // Matrix-less fallback: walk whichever side is shorter — the
    // in-partner list of `state` or the populated list — the updated
    // slots are the same.
    for (pp::State p : initiators) {
      const std::uint32_t slot = position_[p];
      if (slot == kNoPosition) continue;
      partner_sum_[slot] += shift;
      refresh_weight(slot);
    }
  } else {
    for (std::uint32_t slot = 0; slot < filled; ++slot) {
      if (!index_->pair_active(populated_[slot], state)) continue;
      partner_sum_[slot] += shift;
      refresh_weight(slot);
    }
  }

  if (counts_[state] == 0) {
    // Swap-remove from the populated list (same list surgery as the seed
    // engine, so slot order — and with it every sampled index — evolves
    // identically); the moved slot's tree entries travel with it.
    const std::uint32_t hole = position_[state];
    const auto last = static_cast<std::uint32_t>(populated_.size() - 1);
    const pp::State moved = populated_[last];
    populated_[hole] = moved;
    position_[moved] = hole;
    populated_.pop_back();
    position_[state] = kNoPosition;
    if (hole != last) {
      partner_sum_[hole] = partner_sum_[last];
      weight_set(hole, weight_get(last));
      if (!options_.null_skip && !bc_)
        pair_counts_.set(hole, pair_counts_.get(last));
      if (matrix_ok_) {
        // The moved slot's matrix row and column travel with it (codes are
        // slot-independent); the diagonal corner is saved first because
        // both loops write through the (hole, hole) cell. Cells at index
        // `last` go stale, which is fine — the next append rebuilds them.
        const std::uint32_t corner = act_[last * kMatrixSlots + last];
        for (std::uint32_t j = 0; j < last; ++j)
          act_[hole * kMatrixSlots + j] = act_[last * kMatrixSlots + j];
        for (std::uint32_t i = 0; i < last; ++i)
          act_[i * kMatrixSlots + hole] = act_[i * kMatrixSlots + last];
        act_[hole * kMatrixSlots + hole] = corner;
        // Relabel the watcher masks the same way: drop the removed slot's
        // bit (`hole`), move bit `last` down to `hole`, and move column
        // `last` to `hole`. Masks carry no bits at or above the new size.
        const std::uint64_t keep =
            ~((std::uint64_t{1} << hole) | (std::uint64_t{1} << last));
        const auto relabel = [&](std::uint64_t m) {
          return (m & keep) | (((m >> last) & 1) << hole);
        };
        col_mask_[hole] = relabel(col_mask_[last]);
        for (std::uint32_t j = 0; j < last; ++j)
          if (j != hole) col_mask_[j] = relabel(col_mask_[j]);
        // Sorted-row masks are rank-indexed, so their *contents* survive
        // the slot swap untouched — only the moved slot's mask changes
        // home. The removed state's rank bit is dropped by sorted_erase.
        srow_mask_[hole] = srow_mask_[last];
        rank_[hole] = rank_[last];
      }
    } else if (matrix_ok_) {
      // Removed the final slot: just drop its watcher bit everywhere.
      const std::uint64_t keep = ~(std::uint64_t{1} << last);
      for (std::uint32_t j = 0; j < last; ++j) col_mask_[j] &= keep;
    }
    partner_sum_.pop_back();
    weight_pop();
    if (!options_.null_skip && !bc_) pair_counts_.pop_back();
    sorted_erase(state);
  } else if (appearing) {
    const auto slot = static_cast<std::uint32_t>(populated_.size());
    position_[state] = slot;
    populated_.push_back(state);
    // Column `slot` was built before the A-loop; one fused walk builds the
    // row (diagonal included) and the fresh partner sum.
    partner_sum_.push_back(matrix_ok_ ? build_matrix_row(slot, /*ranked=*/false)
                                      : fresh_partner_sum(state));
    ++metrics_.weight_updates;
    weight_push(counts_[state] * partner_sum_[slot]);
    if (!options_.null_skip && !bc_) pair_counts_.push_back(counts_[state]);
    sorted_insert(state);
  } else {
    refresh_weight(position_[state]);
    if (!options_.null_skip && !bc_)
      pair_counts_.set(position_[state], counts_[state]);
  }
}

void CountSimulator::shift_pair(pp::State from, pp::State to) {
  // Fused fast path for the dominant firing shape on the converted
  // protocols: one agent moves between two already-populated states and
  // both stay populated, so no list or matrix surgery can occur. Beyond
  // halving the fixed bookkeeping, the fusion makes the typical firing
  // nearly update-free: an initiator active towards both `from` and `to`
  // sees the two partner-sum shifts cancel exactly, leaving only the two
  // moved slots' own weights to refresh — and a register state with no
  // partners of its own keeps weight 0, a no-op tree update.
  if (matrix_ok_ && counts_[from] > 1 && position_[to] != kNoPosition) {
    counts_.remove(from, 1);
    counts_.add(to, 1);
    if (protocol_->is_accepting(from)) --accepting_;
    if (protocol_->is_accepting(to)) ++accepting_;
    const std::uint32_t slot_from = position_[from];
    const std::uint32_t slot_to = position_[to];
    // Slots watching exactly one of the two states are the XOR of the two
    // watcher masks — empty for the typical firing, where the same
    // initiators watch both registers.
    const std::uint64_t gained = col_mask_[slot_to];
    std::uint64_t changed = col_mask_[slot_from] ^ gained;
    for (; changed != 0; changed &= changed - 1) {
      const auto i = static_cast<std::uint32_t>(std::countr_zero(changed));
      partner_sum_[i] += (gained >> i) & 1 ? std::uint64_t{1}
                                           : ~std::uint64_t{0};  // ±1
      refresh_weight(i);
    }
    refresh_weight(slot_from);
    refresh_weight(slot_to);
    if (!options_.null_skip && !bc_) {
      pair_counts_.set(slot_from, counts_[from]);
      pair_counts_.set(slot_to, counts_[to]);
    }
    return;
  }
  change_count(from, -1);
  change_count(to, +1);
}

void CountSimulator::fire(pp::State q, pp::State r) {
  fire_candidates(q, r, protocol_->transitions_for(q, r));
}

void CountSimulator::fire_candidates(pp::State /*q*/, pp::State /*r*/,
                                     std::span<const std::uint32_t> candidates) {
  ++metrics_.firings;
  if (candidates.empty()) {
    // All-silent pair admitted by the any-candidate probe: consume the
    // candidate draw the pick below would have and change nothing.
    (void)rng_.below(0);
    return;
  }
  const std::uint32_t pick =
      candidates.size() == 1 ? candidates[0]
                             : candidates[rng_.below(candidates.size())];
  const pp::Transition& t = protocol_->transitions()[pick];
  if (t.is_silent()) return;
  if (t.q != t.q2) shift_pair(t.q, t.q2);
  if (t.r != t.r2) shift_pair(t.r, t.r2);
}

void CountSimulator::fire_cells(pp::State q, pp::State r, std::uint32_t pos) {
  ++metrics_.firings;
  const auto cells = index_->pair_cells(pos);
  const isa::Cell& cell =
      cells.size() == 1 ? cells[0] : cells[rng_.below(cells.size())];
  // change_count/shift_pair maintain accepting_ themselves, so the cell's
  // fused accepting delta is ignored here (the per-agent simulator is the
  // consumer that needs it).
  isa::execute_cell(
      cell,
      isa::make_policy([&](std::uint32_t q2) { shift_pair(q, q2); },
                       [&](std::uint32_t r2) { shift_pair(r, r2); },
                       [&](std::uint32_t q2, std::uint32_t r2) {
                         shift_pair(q, q2);
                         shift_pair(r, r2);
                       },
                       [&] {
                         // Same two shifts the interpreter issues for a
                         // swap, preserving the list surgery order.
                         shift_pair(q, r);
                         shift_pair(r, q);
                       },
                       [](std::int32_t) {}));
}

void CountSimulator::apply_active_meeting(std::uint64_t active) {
  const std::uint64_t target = rng_.below(active);
  ++metrics_.tree_descents;
  std::uint64_t remaining = 0;
  std::size_t slot = 0;
  if (bc_ || populated_.size() <= 32) {
    // Few slots (or bytecode dispatch, which scans flat weights at every
    // size): the seed's linear prefix scan beats the tree descent's
    // serial chain of dependent loads. Same slot either way (the tree's
    // find() is defined as this scan's fixpoint).
    remaining = target;
    while (remaining >= weight_get(slot)) remaining -= weight_get(slot++);
  } else {
    slot = active_.find(target, &remaining);
  }
  const pp::State q = populated_[slot];
  const std::uint64_t cq = counts_[q];
  pp::State r = q;  // overwritten below; a walk must find a partner
  if (matrix_ok_) {
    // The seed engine's responder walk — q's partners in ascending state
    // order, each absorbing its pair weight — restricted to the populated
    // states: a zero-count partner carries zero weight and can never
    // absorb the remainder, so the selected responder is identical. The
    // sorted-rank mask makes the walk visit *only* the active populated
    // partners (typically one or two set bits) in ascending state order;
    // the selected cell's code hands the firing its candidate transitions
    // (resolved on first use; the walk always selects, since
    // remaining < the slot's total pair weight).
    std::uint32_t* row = act_.data() + slot * kMatrixSlots;
    std::uint32_t code = 0;
    for (std::uint64_t mask = srow_mask_[slot]; mask != 0; mask &= mask - 1) {
      const pp::State partner =
          sorted_populated_[static_cast<std::uint32_t>(std::countr_zero(mask))];
      const std::uint64_t weight =
          cq * (counts_[partner] - (partner == q ? 1 : 0));
      if (remaining < weight) {
        r = partner;
        const std::uint32_t j = position_[partner];
        const std::uint32_t cell = row[j];
        code = cell != 1 ? cell : (row[j] = index_->pair_pos(q, r) + 2);
        break;
      }
      remaining -= weight;
    }
    if (bc_)
      fire_cells(q, r, code - 2);
    else
      fire_candidates(q, r, index_->pair_candidates(code - 2));
    return;
  }
  if (const auto partners = index_->partners_of(q);
             partners.size() <= populated_.size()) {
    for (pp::State partner : partners) {
      const std::uint64_t weight =
          cq * (counts_[partner] - (partner == q ? 1 : 0));
      if (remaining < weight) {
        r = partner;
        break;
      }
      remaining -= weight;
    }
  } else {
    for (pp::State partner : sorted_populated_) {
      if (!index_->pair_active(q, partner)) continue;
      const std::uint64_t weight =
          cq * (counts_[partner] - (partner == q ? 1 : 0));
      if (remaining < weight) {
        r = partner;
        break;
      }
      remaining -= weight;
    }
  }
  if (bc_)
    fire_cells(q, r, index_->compiled().entry_of(q, r));  // (q, r) is active
  else
    fire(q, r);
}

bool CountSimulator::step() {
  if (!options_.null_skip) return step_meeting();
  const std::uint64_t active = weight_total();
  if (active == 0) {
    ++interactions_;
    ++metrics_.meetings;
    return false;
  }
  // One fused update for the null run plus the firing meeting itself.
  const std::uint64_t skip = sample_null_run(active);
  interactions_ += skip + 1;
  metrics_.meetings += skip + 1;
  if (skip != 0) {
    metrics_.skipped_meetings += skip;
    ++metrics_.null_skip_batches;
  }
  apply_active_meeting(active);
  return true;
}

bool CountSimulator::step_meeting() {
  ++interactions_;
  ++metrics_.meetings;
  const std::uint64_t m = counts_.total();
  // Fewer than two agents: there is no ordered pair to meet, so every
  // meeting is null by definition (and below(m−1) would be below(0)).
  if (m < 2) return false;
  // Initiator uniform over agents, responder uniform over the rest — the
  // same ordered-distinct-pair law as pp::Simulator, on counts. With few
  // populated slots the seed engine's linear prefix scans beat the tree's
  // exclusion dance (two point updates bracketing the second descent);
  // both select the identical slots, so the trajectory does not depend on
  // which branch runs.
  pp::State q;
  pp::State r;
  if (bc_ || populated_.size() <= kLinearSlots) {
    // Descent parity with the interp tree path: the bytecode core scans
    // at every size, but reports the same selection events.
    if (bc_ && populated_.size() > kLinearSlots) metrics_.tree_descents += 2;
    std::uint64_t i = rng_.below(m);
    std::uint32_t slot = 0;
    while (i >= counts_[populated_[slot]]) i -= counts_[populated_[slot++]];
    q = populated_[slot];
    std::uint64_t j = rng_.below(m - 1);
    std::uint32_t responder_slot = 0;
    for (;; ++responder_slot) {
      const std::uint64_t weight = counts_[populated_[responder_slot]] -
                                   (responder_slot == slot ? 1 : 0);
      if (j < weight) break;
      j -= weight;
    }
    r = populated_[responder_slot];
  } else {
    const std::uint64_t i = rng_.below(m);
    ++metrics_.tree_descents;
    std::uint64_t remaining = 0;
    const std::size_t slot = pair_counts_.find(i, &remaining);
    q = populated_[slot];
    const std::uint64_t j = rng_.below(m - 1);
    // Exclude the initiator by descending with q's slot count lowered by
    // one — exactly the (candidate == q ? 1 : 0) correction the linear
    // scan applied, so the selected responder slot is identical.
    pair_counts_.set(slot, counts_[q] - 1);
    ++metrics_.tree_descents;
    const std::size_t responder_slot = pair_counts_.find(j, &remaining);
    pair_counts_.set(slot, counts_[q]);
    r = populated_[responder_slot];
  }
  // Most meetings are null; reject them with a bitset probe instead of a
  // transition-table hash when the index carries the any-candidate bits.
  if (bc_) {
    const std::uint32_t entry = index_->compiled().entry_of(q, r);
    if (entry == isa::CompiledProtocol::kAbsent) return false;
    if (entry == isa::CompiledProtocol::kSilentOnly) {
      // Interp semantics, both branches: without any-bits the empty
      // candidate span rejects the meeting as null; with any-bits the
      // pair is admitted and fire consumes the candidate draw without
      // changing anything.
      if (!index_->has_any_bits()) return false;
      ++metrics_.firings;
      (void)rng_.below(0);
      return true;
    }
    fire_cells(q, r, entry);
    return true;
  }
  if (index_->has_any_bits()) {
    if (!index_->pair_any(q, r)) return false;
  } else if (protocol_->transitions_for(q, r).empty()) {
    return false;
  }
  fire(q, r);
  return true;
}

pp::SimulationResult CountSimulator::run_until_stable(
    const pp::SimulationOptions& options) {
  // One span per run (S24); the meeting loop itself carries zero
  // instrumentation — the hot path stays untouched.
  obs::ObsSpan span("run_until_stable", "sim");
  const auto start_time = std::chrono::steady_clock::now();
  pp::SimulationResult result;
  if (options_.null_skip) {
    // The scalar engine *is* the lockstep protocol driven by one lane:
    // the batch core (engine/batch_sim.cpp) runs these same calls with
    // the raw draw produced by the SIMD stepper, so the two paths share
    // every statement that touches simulation state.
    Lockstep ls;
    ls_begin(ls, options);
    while (!ls.done) {
      const std::uint64_t skip = ls_wants_draw(ls) ? ls_geom_skip(rng_()) : 0;
      if (!ls.done) ls_fire(ls, skip);
    }
    ls_finish(ls);
    result = ls.result;
  } else {
    std::uint64_t consensus_start = interactions_;
    std::optional<bool> held = consensus();
    while (interactions_ < options.max_interactions) {
      step_meeting();
      const std::optional<bool> now = consensus();
      if (now != held) {
        held = now;
        consensus_start = interactions_;
        ++metrics_.consensus_flips;
      }
      if (held.has_value() &&
          interactions_ - consensus_start >= options.stable_window) {
        result.stabilised = true;
        result.output = *held;
        result.consensus_since = consensus_start;
        break;
      }
    }
    result.interactions = interactions_;
    result.parallel_time =
        population() != 0
            ? static_cast<double>(interactions_) /
                  static_cast<double>(population())
            : 0.0;
  }
  metrics_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return result;
}

std::optional<pp::State> CountSimulator::remove_random_agent(
    const std::function<bool(pp::State)>& eligible) {
  if (counts_.total() <= 2) return std::nullopt;
  std::uint64_t eligible_total = 0;
  for (pp::State q = 0; q < counts_.num_states(); ++q)
    if (counts_[q] != 0 && (!eligible || eligible(q)))
      eligible_total += counts_[q];
  if (eligible_total == 0) return std::nullopt;
  std::uint64_t target = rng_.below(eligible_total);
  for (pp::State q = 0; q < counts_.num_states(); ++q) {
    if (counts_[q] == 0 || (eligible && !eligible(q))) continue;
    if (target < counts_[q]) {
      change_count(q, -1);
      return q;
    }
    target -= counts_[q];
  }
  return std::nullopt;  // unreachable
}

}  // namespace ppde::engine
