#include "engine/count_sim.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ppde::engine {

PairIndex::PairIndex(const pp::Protocol& protocol) {
  if (!protocol.finalized())
    throw std::logic_error("PairIndex: protocol not finalized");
  const std::size_t n = protocol.num_states();
  // Mark ordered pairs with at least one non-silent candidate. A pair whose
  // candidates are all silent cannot change the configuration: meeting it
  // is a null meeting exactly like a pair with no candidates at all.
  std::vector<std::vector<pp::State>> out(n);
  for (const pp::Transition& t : protocol.transitions())
    if (!t.is_silent()) out[t.q].push_back(t.r);
  self_active_.assign(n, 0);
  out_begin_.assign(n + 1, 0);
  in_begin_.assign(n + 1, 0);
  std::vector<std::vector<pp::State>> in(n);
  for (pp::State q = 0; q < n; ++q) {
    auto& partners = out[q];
    std::sort(partners.begin(), partners.end());
    partners.erase(std::unique(partners.begin(), partners.end()),
                   partners.end());
    for (pp::State r : partners) {
      if (r == q) self_active_[q] = 1;
      in[r].push_back(q);
    }
  }
  for (pp::State q = 0; q < n; ++q) {
    out_begin_[q + 1] = out_begin_[q] + out[q].size();
    in_begin_[q + 1] = in_begin_[q] + in[q].size();
  }
  out_flat_.reserve(out_begin_[n]);
  in_flat_.reserve(in_begin_[n]);
  for (pp::State q = 0; q < n; ++q) {
    out_flat_.insert(out_flat_.end(), out[q].begin(), out[q].end());
    in_flat_.insert(in_flat_.end(), in[q].begin(), in[q].end());
  }
}

CountSimulator::CountSimulator(const pp::Protocol& protocol,
                               const pp::Config& initial, std::uint64_t seed,
                               CountSimOptions options)
    : CountSimulator(std::make_unique<PairIndex>(protocol), protocol, initial,
                     seed, options) {}

CountSimulator::CountSimulator(std::unique_ptr<const PairIndex> owned,
                               const pp::Protocol& protocol,
                               const pp::Config& initial, std::uint64_t seed,
                               CountSimOptions options)
    : CountSimulator(protocol, *owned, initial, seed, options) {
  owned_index_ = std::move(owned);
}

CountSimulator::CountSimulator(const pp::Protocol& protocol,
                               const PairIndex& index,
                               const pp::Config& initial, std::uint64_t seed,
                               CountSimOptions options)
    : protocol_(&protocol),
      index_(&index),
      options_(options),
      counts_(protocol.num_states()),
      rout_(protocol.num_states(), 0),
      position_(protocol.num_states(), kNoPosition),
      rng_(seed) {
  if (!protocol.finalized())
    throw std::logic_error("CountSimulator: protocol not finalized");
  if (index.num_states() != protocol.num_states())
    throw std::invalid_argument("CountSimulator: index/protocol mismatch");
  if (initial.total() < 2)
    throw std::invalid_argument("CountSimulator: need at least two agents");
  if (initial.num_states() > protocol.num_states())
    throw std::invalid_argument("CountSimulator: config has unknown states");
  for (pp::State q = 0; q < initial.num_states(); ++q)
    if (initial[q] != 0) counts_.add(q, initial[q]);
  for (pp::State q = 0; q < counts_.num_states(); ++q) {
    if (counts_[q] == 0) continue;
    if (protocol.is_accepting(q)) accepting_ += counts_[q];
    for (pp::State p : index_->initiators_meeting(q)) rout_[p] += counts_[q];
    position_[q] = static_cast<std::uint32_t>(populated_.size());
    populated_.push_back(q);
  }
  weights_.resize(populated_.size());
}

std::uint64_t CountSimulator::active_weight() {
  std::uint64_t total = 0;
  weights_.resize(populated_.size());
  for (std::size_t i = 0; i < populated_.size(); ++i) {
    const pp::State q = populated_[i];
    // Ordered pairs with initiator q: Σ_{r active} C(q)·(C(r) − [r=q]) =
    // C(q)·(rout_[q] − [(q,q) active]).
    const std::uint64_t weight =
        counts_[q] * (rout_[q] - (index_->self_active(q) ? 1 : 0));
    weights_[i] = weight;
    total += weight;
  }
  return total;
}

std::uint64_t CountSimulator::sample_null_run(std::uint64_t active) {
  const double m = static_cast<double>(counts_.total());
  const double p = static_cast<double>(active) / (m * (m - 1.0));
  if (p >= 1.0) return 0;
  // U uniform on (0, 1]; 53-bit mantissa draw, shifted off zero.
  const double u = (static_cast<double>(rng_() >> 11) + 1.0) * 0x1.0p-53;
  const double k = std::floor(std::log(u) / std::log1p(-p));
  if (!(k >= 0.0)) return 0;
  if (k >= 1.8e19) return std::numeric_limits<std::uint64_t>::max() / 2;
  return static_cast<std::uint64_t>(k);
}

void CountSimulator::advance_nulls(std::uint64_t count) {
  if (count == 0) return;
  interactions_ += count;
  metrics_.meetings += count;
  metrics_.skipped_meetings += count;
  ++metrics_.null_skip_batches;
}

void CountSimulator::change_count(pp::State state, std::int64_t delta) {
  if (delta > 0)
    counts_.add(state, static_cast<std::uint32_t>(delta));
  else
    counts_.remove(state, static_cast<std::uint32_t>(-delta));
  const auto shift = static_cast<std::uint64_t>(delta);  // two's complement
  if (protocol_->is_accepting(state)) accepting_ += shift;
  for (pp::State p : index_->initiators_meeting(state)) rout_[p] += shift;
  if (counts_[state] == 0) {
    // Swap-remove from the populated list.
    const std::uint32_t hole = position_[state];
    const pp::State moved = populated_.back();
    populated_[hole] = moved;
    position_[moved] = hole;
    populated_.pop_back();
    position_[state] = kNoPosition;
  } else if (position_[state] == kNoPosition) {
    position_[state] = static_cast<std::uint32_t>(populated_.size());
    populated_.push_back(state);
  }
}

void CountSimulator::fire(pp::State q, pp::State r) {
  const auto candidates = protocol_->transitions_for(q, r);
  ++metrics_.firings;
  const std::uint32_t pick =
      candidates.size() == 1 ? candidates[0]
                             : candidates[rng_.below(candidates.size())];
  const pp::Transition& t = protocol_->transitions()[pick];
  if (t.is_silent()) return;
  if (t.q != t.q2) {
    change_count(t.q, -1);
    change_count(t.q2, +1);
  }
  if (t.r != t.r2) {
    change_count(t.r, -1);
    change_count(t.r2, +1);
  }
}

void CountSimulator::apply_active_meeting(std::uint64_t active) {
  std::uint64_t target = rng_.below(active);
  std::size_t slot = 0;
  for (;; ++slot) {
    if (target < weights_[slot]) break;
    target -= weights_[slot];
  }
  const pp::State q = populated_[slot];
  const std::uint64_t cq = counts_[q];
  pp::State r = q;  // overwritten below; the loop must find a partner
  for (pp::State partner : index_->partners_of(q)) {
    const std::uint64_t weight =
        cq * (counts_[partner] - (partner == q ? 1 : 0));
    if (target < weight) {
      r = partner;
      break;
    }
    target -= weight;
  }
  fire(q, r);
}

bool CountSimulator::step() {
  if (!options_.null_skip) return step_meeting();
  const std::uint64_t active = active_weight();
  if (active == 0) {
    ++interactions_;
    ++metrics_.meetings;
    return false;
  }
  advance_nulls(sample_null_run(active));
  ++interactions_;
  ++metrics_.meetings;
  apply_active_meeting(active);
  return true;
}

bool CountSimulator::step_meeting() {
  ++interactions_;
  ++metrics_.meetings;
  const std::uint64_t m = counts_.total();
  // Initiator uniform over agents, responder uniform over the rest — the
  // same ordered-distinct-pair law as pp::Simulator, on counts.
  std::uint64_t i = rng_.below(m);
  std::size_t slot = 0;
  while (i >= counts_[populated_[slot]]) i -= counts_[populated_[slot++]];
  const pp::State q = populated_[slot];
  std::uint64_t j = rng_.below(m - 1);
  pp::State r = 0;
  for (slot = 0;; ++slot) {
    const pp::State candidate = populated_[slot];
    const std::uint64_t c = counts_[candidate] - (candidate == q ? 1 : 0);
    if (j < c) {
      r = candidate;
      break;
    }
    j -= c;
  }
  const auto candidates = protocol_->transitions_for(q, r);
  if (candidates.empty()) return false;
  fire(q, r);
  return true;
}

std::optional<bool> CountSimulator::consensus() const {
  if (accepting_ == counts_.total()) return true;
  if (accepting_ == 0) return false;
  return std::nullopt;
}

bool CountSimulator::frozen() const {
  for (const pp::State q : populated_)
    if (counts_[q] * (rout_[q] - (index_->self_active(q) ? 1 : 0)) != 0)
      return false;
  return true;
}

pp::SimulationResult CountSimulator::run_until_stable(
    const pp::SimulationOptions& options) {
  const auto start_time = std::chrono::steady_clock::now();
  pp::SimulationResult result;
  std::uint64_t consensus_start = interactions_;
  std::optional<bool> held = consensus();

  while (interactions_ < options.max_interactions) {
    if (options_.null_skip) {
      const std::uint64_t active = active_weight();
      const std::uint64_t stable_at = consensus_start + options.stable_window;
      if (active == 0) {
        // Frozen: every future meeting is null, so the current consensus
        // (or its absence) is permanent. Realise just enough nulls to hit
        // the window or the budget.
        if (held.has_value() && stable_at <= options.max_interactions) {
          advance_nulls(stable_at - interactions_);
          result.stabilised = true;
          result.output = *held;
          result.consensus_since = consensus_start;
        } else {
          advance_nulls(options.max_interactions - interactions_);
        }
        break;
      }
      const std::uint64_t skip = sample_null_run(active);
      if (held.has_value() && stable_at <= interactions_ + skip) {
        // The window completes during the null run, before the next firing.
        advance_nulls(stable_at - interactions_);
        result.stabilised = true;
        result.output = *held;
        result.consensus_since = consensus_start;
        break;
      }
      if (interactions_ + skip >= options.max_interactions) {
        advance_nulls(options.max_interactions - interactions_);
        break;
      }
      advance_nulls(skip);
      ++interactions_;
      ++metrics_.meetings;
      apply_active_meeting(active);
    } else {
      step_meeting();
    }
    const std::optional<bool> now = consensus();
    if (now != held) {
      held = now;
      consensus_start = interactions_;
      ++metrics_.consensus_flips;
    }
    if (held.has_value() &&
        interactions_ - consensus_start >= options.stable_window) {
      result.stabilised = true;
      result.output = *held;
      result.consensus_since = consensus_start;
      break;
    }
  }
  result.interactions = interactions_;
  result.parallel_time =
      static_cast<double>(interactions_) / static_cast<double>(population());
  metrics_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return result;
}

std::optional<pp::State> CountSimulator::remove_random_agent(
    const std::function<bool(pp::State)>& eligible) {
  if (counts_.total() <= 2) return std::nullopt;
  std::uint64_t eligible_total = 0;
  for (pp::State q = 0; q < counts_.num_states(); ++q)
    if (counts_[q] != 0 && (!eligible || eligible(q)))
      eligible_total += counts_[q];
  if (eligible_total == 0) return std::nullopt;
  std::uint64_t target = rng_.below(eligible_total);
  for (pp::State q = 0; q < counts_.num_states(); ++q) {
    if (counts_[q] == 0 || (eligible && !eligible(q))) continue;
    if (target < counts_[q]) {
      change_count(q, -1);
      return q;
    }
    target -= counts_[q];
  }
  return std::nullopt;  // unreachable
}

}  // namespace ppde::engine
