#include "engine/metrics.hpp"

#include <cstdio>

namespace ppde::engine {

void RunMetrics::merge(const RunMetrics& other) {
  meetings += other.meetings;
  firings += other.firings;
  null_skip_batches += other.null_skip_batches;
  skipped_meetings += other.skipped_meetings;
  consensus_flips += other.consensus_flips;
  wall_seconds += other.wall_seconds;
}

double RunMetrics::effective_meetings_per_second() const {
  if (wall_seconds <= 0.0) return 0.0;
  return static_cast<double>(meetings) / wall_seconds;
}

std::string RunMetrics::to_string() const {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "meetings=%llu firings=%llu null_skip_batches=%llu "
                "skipped=%llu flips=%llu wall=%.3fs",
                static_cast<unsigned long long>(meetings),
                static_cast<unsigned long long>(firings),
                static_cast<unsigned long long>(null_skip_batches),
                static_cast<unsigned long long>(skipped_meetings),
                static_cast<unsigned long long>(consensus_flips),
                wall_seconds);
  return buffer;
}

}  // namespace ppde::engine
