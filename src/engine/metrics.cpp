#include "engine/metrics.hpp"

#include <cmath>
#include <cstdio>

namespace ppde::engine {

void RunMetrics::merge(const RunMetrics& other) {
  meetings += other.meetings;
  firings += other.firings;
  null_skip_batches += other.null_skip_batches;
  skipped_meetings += other.skipped_meetings;
  consensus_flips += other.consensus_flips;
  weight_updates += other.weight_updates;
  tree_descents += other.tree_descents;
  wall_seconds += other.wall_seconds;
}

double RunMetrics::effective_meetings_per_second() const {
  if (wall_seconds <= 0.0) return 0.0;
  // A fast run against a wall time that rounds to a denormal sliver can
  // overflow the division; report 0 rather than inf.
  const double rate = static_cast<double>(meetings) / wall_seconds;
  return std::isfinite(rate) ? rate : 0.0;
}

std::string RunMetrics::to_string() const {
  char buffer[256];
  std::snprintf(buffer, sizeof buffer,
                "meetings=%llu firings=%llu null_skip_batches=%llu "
                "skipped=%llu flips=%llu weight_updates=%llu "
                "tree_descents=%llu wall=%.3fs",
                static_cast<unsigned long long>(meetings),
                static_cast<unsigned long long>(firings),
                static_cast<unsigned long long>(null_skip_batches),
                static_cast<unsigned long long>(skipped_meetings),
                static_cast<unsigned long long>(consensus_flips),
                static_cast<unsigned long long>(weight_updates),
                static_cast<unsigned long long>(tree_descents),
                wall_seconds);
  return buffer;
}

}  // namespace ppde::engine
