// Batched RNG stepping for the lockstep trial core (DESIGN.md S28).
//
// The batch simulator advances B independent trials one firing per sweep;
// each sweep consumes exactly one geometric draw per live lane. The draw
// itself is pure integer work — one xoshiro256** step per lane — and the
// lane states are independent, so a sweep's draws vectorise perfectly:
// transpose four lanes' state words into SoA vectors, run the xoshiro
// update on all four at once, transpose back. Integer SIMD is exact, so
// the produced stream is *bit-identical* to calling Rng::operator() on
// each lane in turn — the property every differential test pins.
//
// Dispatch is resolved at runtime (`__builtin_cpu_supports("avx2")`), not
// at compile time: the AVX2 body carries a target attribute so the one
// binary runs on any x86-64 and lights up the vector path where the CPU
// has it. aarch64 gets a NEON 2-lane path; everything else the scalar
// loop, which is also the reference the unit tests compare against.
//
// Floating-point note, because it decides what does NOT live here: of the
// geometric-skip chain u = to_unit_open(raw); k = floor(log(u)/log1p(-p)),
// the division and floor are correctly-rounded IEEE operations (VDIVPD /
// VROUNDPD) and could vectorise bit-identically — but std::log is libm,
// and vector log implementations (libmvec and friends) do not promise the
// same last bit. So the log stays a scalar loop per lane
// (engine/batch_sim.cpp) and this header batches only the integer RNG
// step, where the win is anyway: the xoshiro dependency chain no longer
// serialises lane after lane.
#pragma once

#include <cstddef>
#include <cstdint>

#include "support/rng.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define PPDE_SIMD_X86 1
#elif defined(__aarch64__)
#include <arm_neon.h>
#define PPDE_SIMD_NEON 1
#endif

namespace ppde::engine::simd {

/// Scalar reference: one xoshiro step per lane, in lane order. Exactly
/// `out[i] = (*rngs[i])()`.
inline void rng_next_scalar(support::Rng* const* rngs, std::size_t n,
                            std::uint64_t* out) {
  for (std::size_t i = 0; i < n; ++i) out[i] = (*rngs[i])();
}

#if defined(PPDE_SIMD_X86)

__attribute__((target("avx2"))) inline __m256i avx2_rotl(__m256i x, int k) {
  return _mm256_or_si256(_mm256_slli_epi64(x, k),
                         _mm256_srli_epi64(x, 64 - k));
}

/// Four lanes per iteration: load each lane's four state words, transpose
/// to SoA (vector Sk holds word k of all four lanes), run the xoshiro256**
/// update once on the vectors, transpose back, store. The multiplications
/// by 5 and 9 are shift-adds (AVX2 has no 64-bit multiply, and none is
/// needed). Remainder lanes fall through to the scalar reference.
__attribute__((target("avx2"))) inline void rng_next_avx2(
    support::Rng* const* rngs, std::size_t n, std::uint64_t* out) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const auto* p0 =
        reinterpret_cast<const __m256i*>(rngs[i + 0]->state_words());
    const auto* p1 =
        reinterpret_cast<const __m256i*>(rngs[i + 1]->state_words());
    const auto* p2 =
        reinterpret_cast<const __m256i*>(rngs[i + 2]->state_words());
    const auto* p3 =
        reinterpret_cast<const __m256i*>(rngs[i + 3]->state_words());
    const __m256i r0 = _mm256_loadu_si256(p0);
    const __m256i r1 = _mm256_loadu_si256(p1);
    const __m256i r2 = _mm256_loadu_si256(p2);
    const __m256i r3 = _mm256_loadu_si256(p3);
    // 4x4 u64 transpose (rows = lanes, columns = state words). The
    // unpack/permute network is an involution, so the same four
    // instructions transpose back after the update.
    __m256i t0 = _mm256_unpacklo_epi64(r0, r1);
    __m256i t1 = _mm256_unpackhi_epi64(r0, r1);
    __m256i t2 = _mm256_unpacklo_epi64(r2, r3);
    __m256i t3 = _mm256_unpackhi_epi64(r2, r3);
    __m256i s0 = _mm256_permute2x128_si256(t0, t2, 0x20);
    __m256i s1 = _mm256_permute2x128_si256(t1, t3, 0x20);
    __m256i s2 = _mm256_permute2x128_si256(t0, t2, 0x31);
    __m256i s3 = _mm256_permute2x128_si256(t1, t3, 0x31);
    // result = rotl(s1 * 5, 7) * 9, from the pre-update s1.
    const __m256i mul5 = _mm256_add_epi64(s1, _mm256_slli_epi64(s1, 2));
    const __m256i rot = avx2_rotl(mul5, 7);
    const __m256i result = _mm256_add_epi64(rot, _mm256_slli_epi64(rot, 3));
    // State update.
    const __m256i t = _mm256_slli_epi64(s1, 17);
    s2 = _mm256_xor_si256(s2, s0);
    s3 = _mm256_xor_si256(s3, s1);
    s1 = _mm256_xor_si256(s1, s2);
    s0 = _mm256_xor_si256(s0, s3);
    s2 = _mm256_xor_si256(s2, t);
    s3 = avx2_rotl(s3, 45);
    // Transpose back and store each lane's updated words.
    t0 = _mm256_unpacklo_epi64(s0, s1);
    t1 = _mm256_unpackhi_epi64(s0, s1);
    t2 = _mm256_unpacklo_epi64(s2, s3);
    t3 = _mm256_unpackhi_epi64(s2, s3);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rngs[i + 0]->state_words()),
                        _mm256_permute2x128_si256(t0, t2, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rngs[i + 1]->state_words()),
                        _mm256_permute2x128_si256(t1, t3, 0x20));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rngs[i + 2]->state_words()),
                        _mm256_permute2x128_si256(t0, t2, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(rngs[i + 3]->state_words()),
                        _mm256_permute2x128_si256(t1, t3, 0x31));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), result);
  }
  rng_next_scalar(rngs + i, n - i, out + i);
}

#elif defined(PPDE_SIMD_NEON)

inline uint64x2_t neon_rotl(uint64x2_t x, int k) {
  return vorrq_u64(vshlq_u64(x, vdupq_n_s64(k)),
                   vshlq_u64(x, vdupq_n_s64(k - 64)));
}

/// Two lanes per iteration; same SoA scheme as the AVX2 path with 2x2
/// transposes (vtrn1q/vtrn2q on u64 pairs).
inline void rng_next_neon(support::Rng* const* rngs, std::size_t n,
                          std::uint64_t* out) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const std::uint64_t* a = rngs[i + 0]->state_words();
    const std::uint64_t* b = rngs[i + 1]->state_words();
    const uint64x2_t a_lo = vld1q_u64(a);      // [a0, a1]
    const uint64x2_t a_hi = vld1q_u64(a + 2);  // [a2, a3]
    const uint64x2_t b_lo = vld1q_u64(b);
    const uint64x2_t b_hi = vld1q_u64(b + 2);
    uint64x2_t s0 = vtrn1q_u64(a_lo, b_lo);  // [a0, b0]
    uint64x2_t s1 = vtrn2q_u64(a_lo, b_lo);  // [a1, b1]
    uint64x2_t s2 = vtrn1q_u64(a_hi, b_hi);
    uint64x2_t s3 = vtrn2q_u64(a_hi, b_hi);
    const uint64x2_t mul5 =
        vaddq_u64(s1, vshlq_n_u64(s1, 2));
    const uint64x2_t rot = neon_rotl(mul5, 7);
    const uint64x2_t result = vaddq_u64(rot, vshlq_n_u64(rot, 3));
    const uint64x2_t t = vshlq_n_u64(s1, 17);
    s2 = veorq_u64(s2, s0);
    s3 = veorq_u64(s3, s1);
    s1 = veorq_u64(s1, s2);
    s0 = veorq_u64(s0, s3);
    s2 = veorq_u64(s2, t);
    s3 = neon_rotl(s3, 45);
    vst1q_u64(rngs[i + 0]->state_words(), vtrn1q_u64(s0, s1));
    vst1q_u64(rngs[i + 0]->state_words() + 2, vtrn1q_u64(s2, s3));
    vst1q_u64(rngs[i + 1]->state_words(), vtrn2q_u64(s0, s1));
    vst1q_u64(rngs[i + 1]->state_words() + 2, vtrn2q_u64(s2, s3));
    vst1q_u64(out + i, result);
  }
  rng_next_scalar(rngs + i, n - i, out + i);
}

#endif

/// Name of the stepper the host resolved to — surfaced by benches and
/// `ppde describe`-style diagnostics.
inline const char* isa_name() {
#if defined(PPDE_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) return "avx2";
  return "scalar";
#elif defined(PPDE_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// Advance each of `rngs[0..n)` by exactly one xoshiro256** output, into
/// `out[0..n)` — bit-identical to `out[i] = (*rngs[i])()` in lane order,
/// via the widest integer path the host supports. Lane pointers must be
/// distinct generators.
inline void rng_next_batch(support::Rng* const* rngs, std::size_t n,
                           std::uint64_t* out) {
#if defined(PPDE_SIMD_X86)
  static const bool kAvx2 = __builtin_cpu_supports("avx2");
  if (kAvx2) {
    rng_next_avx2(rngs, n, out);
    return;
  }
  rng_next_scalar(rngs, n, out);
#elif defined(PPDE_SIMD_NEON)
  rng_next_neon(rngs, n, out);
#else
  rng_next_scalar(rngs, n, out);
#endif
}

/// Lane count the auto policy (batch = 0) resolves to. One — i.e. the
/// scalar path — because the lockstep core measures *slower* than scalar
/// on the reference container (EXPERIMENTS.md S28: batch-8 runs at 0.88x
/// scalar at m ≈ 100k). The batched xoshiro stepper costs 1.58 ns/draw
/// against 1.37 scalar (the 4x4 state transpose through memory outweighs
/// xoshiro's ALU work), ln(U) must stay scalar libm for bit-identical
/// trajectories, and interleaving B trials dilutes the L1 residency of
/// each lane's count/weight state — so the batch has nothing left to
/// amortise. Explicit widths (--batch=N) still engage the lockstep core,
/// bit-identical by construction, and the BENCH_engine.json `batch` rows
/// re-measure the tradeoff on every host so this default stays honest.
inline unsigned preferred_width() { return 1; }

}  // namespace ppde::engine::simd
