#include "compile/lower.hpp"

#include <algorithm>
#include <stdexcept>
#include <functional>
#include <string>
#include <unordered_map>

namespace ppde::compile {

namespace {

using machine::Instr;
using machine::Machine;
using machine::Pointer;
using machine::PtrId;
using machine::RegId;
using progmodel::BlockId;
using progmodel::Cond;
using progmodel::kNoBlock;
using progmodel::ProcId;
using progmodel::Program;
using progmodel::Reg;
using progmodel::Stmt;
using progmodel::StmtId;

constexpr std::uint32_t kPatch = 0xffffffffu;

class Lowering {
 public:
  explicit Lowering(const Program& program) : program_(program) {
    program.validate();
  }

  LoweredMachine lower() {
    build_registers_and_map_pointers();
    build_procedure_pointers();

    // Prologue (Appendix B.2): call Main, then loop forever.
    emit_call(program_.main_proc);
    const std::uint32_t loop = emit_jump(kPatch);
    patch_jump(loop, loop);

    for (ProcId proc = 0; proc < program_.procedures.size(); ++proc) {
      current_proc_ = proc;
      out_.proc_entry[proc] = next_ip();
      lower_block(program_.procedures[proc].body);
      emit_return(proc, /*value=*/std::nullopt);  // implicit void return
    }
    if (needs_restart_helper_) emit_restart_helper();

    apply_fixups();
    out_.machine.validate();
    return std::move(out_);
  }

 private:
  Machine& m() { return out_.machine; }

  std::uint32_t next_ip() const {
    return static_cast<std::uint32_t>(out_.machine.instrs.size());
  }

  std::uint32_t emit(Instr instr) {
    out_.machine.instrs.push_back(std::move(instr));
    return next_ip() - 1;
  }

  // -- pointer setup ----------------------------------------------------------

  void build_registers_and_map_pointers() {
    Machine& machine = m();
    machine.registers = program_.registers;
    out_.proc_entry.assign(program_.procedures.size(), 0);
    out_.proc_pointer.assign(program_.procedures.size(), 0);

    auto add_pointer = [&machine](std::string name,
                                  std::vector<std::uint32_t> domain,
                                  std::uint32_t initial) {
      machine.pointers.push_back(
          {std::move(name), std::move(domain), initial});
      return static_cast<PtrId>(machine.pointers.size() - 1);
    };

    machine.of = add_pointer("OF", {0, 1}, 0);
    machine.cf = add_pointer("CF", {0, 1}, 0);
    // IP's domain {0..L-1} is only known after emission; apply_fixups fills
    // it in. The placeholder keeps the pointer id stable.
    machine.ip = add_pointer("IP", {0}, 0);
    machine.pointers[machine.ip].holds_addresses = true;

    // Swap-closure components determine the register-map domains
    // (Appendix B.2: F_{V_x} pruned to the necessary elements).
    std::vector<Reg> component(program_.registers.size());
    for (Reg r = 0; r < component.size(); ++r) component[r] = r;
    std::function<Reg(Reg)> find = [&](Reg r) {
      while (component[r] != r) r = component[r] = component[component[r]];
      return r;
    };
    for (const Stmt& stmt : program_.stmts) {
      if (stmt.kind == Stmt::Kind::kSwap)
        component[find(stmt.from)] = find(stmt.to);
      if (stmt.kind == Stmt::Kind::kRestart) needs_restart_helper_ = true;
    }
    std::vector<std::vector<std::uint32_t>> domain_of_component(
        program_.registers.size());
    for (Reg r = 0; r < component.size(); ++r)
      domain_of_component[find(r)].push_back(r);

    machine.v_reg.clear();
    std::vector<std::uint32_t> square_domain;
    for (Reg r = 0; r < program_.registers.size(); ++r) {
      std::vector<std::uint32_t> domain = domain_of_component[find(r)];
      if (domain.size() > 1) {
        // Swapped registers share V_square as scratch.
        for (std::uint32_t value : domain)
          if (std::find(square_domain.begin(), square_domain.end(), value) ==
              square_domain.end())
            square_domain.push_back(value);
      }
      machine.v_reg.push_back(add_pointer(
          "V[" + program_.registers[r] + "]", std::move(domain), r));
    }
    if (square_domain.empty())
      square_domain.push_back(0);  // unused scratch still needs a domain
    std::sort(square_domain.begin(), square_domain.end());
    const std::uint32_t square_initial = square_domain.front();
    machine.v_square =
        add_pointer("V[#]", std::move(square_domain), square_initial);
  }

  void build_procedure_pointers() {
    Machine& machine = m();
    for (ProcId proc = 0; proc < program_.procedures.size(); ++proc) {
      Pointer pointer;
      pointer.name = "P[" + program_.procedures[proc].name + "]";
      pointer.holds_addresses = true;
      machine.pointers.push_back(std::move(pointer));
      out_.proc_pointer[proc] =
          static_cast<PtrId>(machine.pointers.size() - 1);
    }
  }

  // -- instruction emission helpers --------------------------------------------

  /// X := c via a constant map over the source's (final) domain. The mapping
  /// is materialised in apply_fixups once all domains are known.
  std::uint32_t emit_const_assign(PtrId target, PtrId source,
                                  std::uint32_t value) {
    Instr instr;
    instr.kind = Instr::Kind::kAssign;
    instr.target = target;
    instr.source = source;
    const std::uint32_t at = emit(std::move(instr));
    const_assigns_.push_back({at, value});
    return at;
  }

  /// IP := target (unconditional jump); CF serves as the dummy source.
  std::uint32_t emit_jump(std::uint32_t target) {
    return emit_const_assign(m().ip, m().cf, target);
  }

  void patch_jump(std::uint32_t at, std::uint32_t target) {
    for (auto& [index, value] : const_assigns_)
      if (index == at) value = target;
  }

  /// IP := f(CF): true -> true_target, false -> false_target.
  std::uint32_t emit_branch(std::uint32_t true_target,
                            std::uint32_t false_target) {
    Instr instr;
    instr.kind = Instr::Kind::kAssign;
    instr.target = m().ip;
    instr.source = m().cf;
    instr.mapping = {{0, false_target}, {1, true_target}};
    return emit(std::move(instr));
  }

  void patch_branch(std::uint32_t at, bool which, std::uint32_t target) {
    for (auto& [from, to] : m().instrs[at].mapping)
      if (from == (which ? 1u : 0u)) to = target;
  }

  void emit_call(ProcId proc) {
    // P := return address; IP := entry(P). Entry patched in apply_fixups.
    const std::uint32_t ret = next_ip() + 2;
    emit_const_assign(out_.proc_pointer[proc], m().cf, ret);
    return_addresses_[proc].push_back(ret);
    const std::uint32_t jump = emit_jump(kPatch);
    call_sites_.push_back({jump, proc});
  }

  void emit_return(ProcId proc, std::optional<bool> value) {
    if (value.has_value())
      emit_const_assign(m().cf, m().cf, *value ? 1 : 0);
    // IP := f(P), f = identity over the return-address domain.
    Instr instr;
    instr.kind = Instr::Kind::kAssign;
    instr.target = m().ip;
    instr.source = out_.proc_pointer[proc];
    const std::uint32_t at = emit(std::move(instr));
    identity_assigns_.push_back(at);
  }

  // -- condition lowering (falls through with CF = value) ----------------------

  void lower_cond(progmodel::CondId id) {
    const Cond& cond = program_.conds[id];
    switch (cond.kind) {
      case Cond::Kind::kConst:
        emit_const_assign(m().cf, m().cf, cond.value ? 1 : 0);
        break;
      case Cond::Kind::kDetect: {
        Instr instr;
        instr.kind = Instr::Kind::kDetect;
        instr.x = cond.reg;
        emit(std::move(instr));
        break;
      }
      case Cond::Kind::kCall:
        emit_call(cond.proc);
        break;
      case Cond::Kind::kNot: {
        lower_cond(cond.lhs);
        Instr instr;
        instr.kind = Instr::Kind::kAssign;
        instr.target = m().cf;
        instr.source = m().cf;
        instr.mapping = {{0, 1}, {1, 0}};
        emit(std::move(instr));
        break;
      }
      case Cond::Kind::kAnd: {
        lower_cond(cond.lhs);
        const std::uint32_t branch = emit_branch(kPatch, kPatch);
        patch_branch(branch, true, next_ip());
        lower_cond(cond.rhs);
        patch_branch(branch, false, next_ip());
        break;
      }
      case Cond::Kind::kOr: {
        lower_cond(cond.lhs);
        const std::uint32_t branch = emit_branch(kPatch, kPatch);
        patch_branch(branch, false, next_ip());
        lower_cond(cond.rhs);
        patch_branch(branch, true, next_ip());
        break;
      }
    }
  }

  // -- statement lowering -------------------------------------------------------

  void lower_block(BlockId block) {
    if (block == kNoBlock) return;
    for (StmtId id : program_.blocks[block]) lower_stmt(program_.stmts[id]);
  }

  void lower_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kMove: {
        Instr instr;
        instr.kind = Instr::Kind::kMove;
        instr.x = stmt.from;
        instr.y = stmt.to;
        emit(std::move(instr));
        break;
      }
      case Stmt::Kind::kSwap: {
        // Figure 3: V_square := V_x; V_x := V_y; V_y := V_square.
        emit_identity_assign(m().v_square, m().v_reg[stmt.from]);
        emit_identity_assign(m().v_reg[stmt.from], m().v_reg[stmt.to]);
        emit_identity_assign(m().v_reg[stmt.to], m().v_square);
        break;
      }
      case Stmt::Kind::kSetOF:
        emit_const_assign(m().of, m().of, stmt.value ? 1 : 0);
        break;
      case Stmt::Kind::kRestart:
        restart_jumps_.push_back(emit_jump(kPatch));
        break;
      case Stmt::Kind::kCall:
        emit_call(stmt.proc);
        break;
      case Stmt::Kind::kIf: {
        lower_cond(stmt.cond);
        const std::uint32_t branch = emit_branch(kPatch, kPatch);
        patch_branch(branch, true, next_ip());
        lower_block(stmt.then_block);
        if (stmt.else_block == kNoBlock) {
          patch_branch(branch, false, next_ip());
        } else {
          const std::uint32_t jump_end = emit_jump(kPatch);
          patch_branch(branch, false, next_ip());
          lower_block(stmt.else_block);
          patch_jump(jump_end, next_ip());
        }
        break;
      }
      case Stmt::Kind::kWhile: {
        const std::uint32_t head = next_ip();
        lower_cond(stmt.cond);
        const std::uint32_t branch = emit_branch(kPatch, kPatch);
        patch_branch(branch, true, next_ip());
        lower_block(stmt.then_block);
        patch_jump(emit_jump(kPatch), head);
        patch_branch(branch, false, next_ip());
        break;
      }
      case Stmt::Kind::kReturn: {
        const ProcId proc = current_proc_;
        if (!stmt.has_cond) {
          emit_return(proc, std::nullopt);
        } else if (program_.conds[stmt.cond].kind == Cond::Kind::kConst) {
          emit_return(proc, program_.conds[stmt.cond].value);
        } else {
          lower_cond(stmt.cond);
          emit_return(proc, std::nullopt);  // CF already holds the value
        }
        break;
      }
    }
  }

  void emit_identity_assign(PtrId target, PtrId source) {
    Instr instr;
    instr.kind = Instr::Kind::kAssign;
    instr.target = target;
    instr.source = source;
    const std::uint32_t at = emit(std::move(instr));
    identity_assigns_.push_back(at);
  }

  // -- restart helper (Figure 7) -------------------------------------------------

  void emit_restart_helper() {
    out_.restart_helper_entry = next_ip();
    const Reg hub = 0;
    auto shuffle = [this](Reg from, Reg to) {
      if (from == to) return;
      // while detect from > 0 do from -> to
      const std::uint32_t head = next_ip();
      Instr detect;
      detect.kind = Instr::Kind::kDetect;
      detect.x = from;
      emit(std::move(detect));
      const std::uint32_t branch = emit_branch(kPatch, kPatch);
      patch_branch(branch, true, next_ip());
      Instr move;
      move.kind = Instr::Kind::kMove;
      move.x = from;
      move.y = to;
      emit(std::move(move));
      patch_jump(emit_jump(kPatch), head);
      patch_branch(branch, false, next_ip());
    };
    for (Reg from = 0; from < program_.registers.size(); ++from)
      shuffle(from, hub);  // gather into the hub
    for (Reg to = 0; to < program_.registers.size(); ++to)
      shuffle(hub, to);  // redistribute
    patch_jump(emit_jump(kPatch), 0);  // restart: IP := 1 (index 0)
  }

  // -- fixups ----------------------------------------------------------------------

  void apply_fixups() {
    Machine& machine = m();
    const std::uint32_t length = next_ip();

    // IP pointer: domain {0..L-1}, created last so ip id is stable.
    std::vector<std::uint32_t> ip_domain(length);
    for (std::uint32_t i = 0; i < length; ++i) ip_domain[i] = i;
    machine.pointers[machine.ip].domain = std::move(ip_domain);
    machine.pointers[machine.ip].initial = 0;

    // Procedure pointer domains: the recorded return addresses.
    for (ProcId proc = 0; proc < program_.procedures.size(); ++proc) {
      Pointer& pointer = machine.pointers[out_.proc_pointer[proc]];
      std::vector<std::uint32_t> domain = return_addresses_[proc];
      if (domain.empty()) domain.push_back(1);  // uncalled: dummy address
      std::sort(domain.begin(), domain.end());
      domain.erase(std::unique(domain.begin(), domain.end()), domain.end());
      pointer.domain = std::move(domain);
      pointer.initial = pointer.domain.front();
    }

    // Call-site jumps to procedure entries.
    for (const auto& [at, proc] : call_sites_)
      patch_jump(at, out_.proc_entry[proc]);

    // Restart statements jump to the shuffle helper.
    for (std::uint32_t at : restart_jumps_) {
      if (!out_.restart_helper_entry)
        throw std::logic_error("lower: restart without helper");
      patch_jump(at, *out_.restart_helper_entry);
    }

    // Materialise constant assignments over the (now final) source domains.
    for (const auto& [at, value] : const_assigns_) {
      Instr& instr = machine.instrs[at];
      instr.mapping.clear();
      for (std::uint32_t v : machine.pointers[instr.source].domain)
        instr.mapping.emplace_back(v, value);
    }
    // Materialise identity assignments. Definition 6 requires f to be total
    // on the *source* domain with image inside the *target* domain. The
    // scratch pointer V_square is shared across swap components, so its
    // domain can exceed a target V_x's; values outside the target's
    // component are never present at runtime (V_square is always written
    // from the same component immediately before), and are mapped to the
    // target's default to keep f well-typed.
    for (std::uint32_t at : identity_assigns_) {
      Instr& instr = machine.instrs[at];
      const Pointer& target = machine.pointers[instr.target];
      instr.mapping.clear();
      for (std::uint32_t v : machine.pointers[instr.source].domain)
        instr.mapping.emplace_back(
            v, target.in_domain(v) ? v : target.domain.front());
    }
  }

  const Program& program_;
  LoweredMachine out_;
  bool needs_restart_helper_ = false;
  ProcId current_proc_ = 0;

  std::vector<std::pair<std::uint32_t, std::uint32_t>> const_assigns_;
  std::vector<std::uint32_t> identity_assigns_;
  std::vector<std::pair<std::uint32_t, ProcId>> call_sites_;
  std::vector<std::uint32_t> restart_jumps_;
  std::unordered_map<ProcId, std::vector<std::uint32_t>> return_addresses_;
};

}  // namespace

LoweredMachine lower_program(const Program& program) {
  return Lowering(program).lower();
}

}  // namespace ppde::compile
