// Converting population machines into population protocols (paper Section
// 7.3 / Appendix B.3, Proposition 16 — completing Theorem 5).
//
// Agents come in two kinds: *register agents* (one agent = one unit of one
// register, states Q) and *pointer agents* (a unique agent per pointer,
// states X^v_s holding the pointer's value v plus a gadget stage s):
//   S_IP    = {none, wait, half}
//   S_{V_x} = {none, done, emit, take, test, true, false}
//   S_X     = {none, done}                        otherwise
// plus one state X_map^i per ordinary assign instruction.
//
// The ⟨elect⟩ transitions bootstrap a unique agent per pointer from an
// arbitrary number of agents in the initial state X_1 (Lemma 15); the
// ⟨move⟩/⟨test⟩/⟨pointer⟩ gadgets execute instructions (Definition 13) by
// letting the IP agent recruit the affected pointer agent; a final output
// broadcast (a ±opinion bit on every state, copied whenever an agent meets
// the OF pointer agent) turns the output flag into a stable consensus.
//
// Because |F| agents end up storing pointers, the protocol decides
// phi'(x) <=> x >= |F| ∧ phi(x - |F|) (Theorem 5's shift).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "machine/interp.hpp"
#include "machine/machine.hpp"
#include "pp/config.hpp"
#include "pp/protocol.hpp"

namespace ppde::compile {

/// Gadget stages. Values index into the per-pointer state blocks; which
/// stages exist depends on the pointer kind (see S_X above).
enum class Stage : std::uint32_t {
  kNone = 0,
  kDone = 1,
  kEmit = 2,
  kTake = 3,
  kTest = 4,
  kTrue = 5,
  kFalse = 6,
  kWait = 1,  // IP only (aliases kDone's slot; IP has its own stage set)
  kHalf = 2,  // IP only
};

struct ConversionOptions {
  /// Apply the output-broadcast wrapper (opinion bit on every state). When
  /// false, the protocol has the bare Q* states and acceptance is witnessed
  /// by the OF pointer agent alone (states OF=true/<stage>): verify with
  /// VerifierOptions::witness_mode. Exact verification of accepting runs is
  /// only tractable in this mode — stale-opinion subsets otherwise blow up
  /// the configuration space exponentially in the population size.
  bool with_broadcast = true;
};

struct ProtocolConversion {
  pp::Protocol protocol;
  std::uint32_t num_pointers = 0;  ///< |F| — Theorem 5's input shift
  bool with_broadcast = true;

  // -- state accessors (valid after conversion) ------------------------------
  pp::State reg_state(machine::RegId reg, bool opinion) const;
  pp::State pointer_state(machine::PtrId pointer, std::uint32_t raw_value,
                          Stage stage, bool opinion) const;
  pp::State map_state(std::uint32_t instr_index, bool opinion) const;
  /// The unique input state (X_1 at its initial value, stage none, opinion
  /// false).
  pp::State input_state() const;

  /// Initial configuration: m agents in the input state.
  pp::Config initial_config(std::uint64_t m) const;

  /// π(C) of Appendix B.3: one agent per pointer at its current value
  /// (stage none) and C(x) agents per register x; all opinions set to
  /// `opinion`.
  pp::Config pi(const machine::MachineState& state, bool opinion) const;

  // -- internals shared with the converter -----------------------------------
  std::uint32_t num_base_states = 0;
  std::vector<std::uint32_t> ptr_offset;       ///< base index per pointer
  std::vector<std::uint32_t> ptr_stage_count;  ///< stages per pointer
  std::vector<std::uint32_t> map_base;         ///< per instr (or kNoMap)
  const machine::Machine* machine = nullptr;   ///< not owned

  static constexpr std::uint32_t kNoMap = 0xffffffffu;
};

/// Convert a validated machine. The `machine` reference must outlive the
/// returned conversion (it is retained for the π helper).
ProtocolConversion machine_to_protocol(const machine::Machine& machine,
                                       const ConversionOptions& options = {});

/// Number of protocol states the conversion produces, computed without
/// materialising transitions — used by the growth benches for sizes where
/// the full transition relation would be wastefully large:
/// 2 * (|Q| + 3L + 7 * sum |F_V| + 2 * sum |F_other| + #ordinary-assigns).
std::uint64_t conversion_state_count(const machine::Machine& machine);

}  // namespace ppde::compile
