// Lowering population programs to population machines (paper Section 7.2 /
// Appendix B.2, Proposition 14).
//
// The translation is the paper's, construct by construct:
//   * while / if: evaluate the condition into CF (detects write CF directly,
//     boolean operators become short-circuit control flow), then a
//     conditional jump IP := f(CF) — Figure 5,
//   * procedure calls: a return pointer P per procedure whose domain holds
//     exactly the return addresses of its call sites; calling sets P and
//     jumps, returning stores the value in CF and jumps to IP := f(P) —
//     Figure 6,
//   * swap x, y: rotate the register map through the scratch pointer:
//     V_□ := V_x; V_x := V_y; V_y := V_□ — Figure 3. Register-map domains
//     are the swap-closure components, so sum |F_{V_x}| equals the
//     program's swap-size,
//   * restart: replaced by a call to a synthesized shuffle helper that
//     nondeterministically redistributes all agents through a hub register
//     and then jumps to instruction 1 — Figure 7,
//   * prologue: instruction 1 calls Main; a self-loop follows in case Main
//     returns — Appendix B.2.
//
// The resulting machine size is O(program size) (Proposition 14).
#pragma once

#include <cstdint>
#include <vector>

#include "machine/machine.hpp"
#include "progmodel/ast.hpp"

namespace ppde::compile {

struct LoweredMachine {
  machine::Machine machine;

  /// Entry instruction (0-based) of each source procedure.
  std::vector<std::uint32_t> proc_entry;
  /// Return pointer of each source procedure.
  std::vector<machine::PtrId> proc_pointer;
  /// Entry of the synthesized restart helper, if the program restarts.
  std::optional<std::uint32_t> restart_helper_entry;
};

/// Lower a validated population program. Throws std::logic_error on
/// malformed input (via Program::validate).
LoweredMachine lower_program(const progmodel::Program& program);

}  // namespace ppde::compile
