#include "compile/to_protocol.hpp"

#include <stdexcept>
#include <unordered_map>

namespace ppde::compile {

namespace {

using machine::Instr;
using machine::Machine;
using machine::PtrId;
using machine::RegId;

constexpr std::uint32_t kStagesIp = 3;
constexpr std::uint32_t kStagesV = 7;
constexpr std::uint32_t kStagesPlain = 2;

const char* stage_name(std::uint32_t stage, bool is_ip) {
  static const char* kV[] = {"none", "done", "emit", "take",
                             "test", "true", "false"};
  static const char* kIp[] = {"none", "wait", "half"};
  return is_ip ? kIp[stage] : kV[stage];
}

class Converter {
 public:
  Converter(const Machine& machine, const ConversionOptions& options)
      : m_(machine), broadcast_(options.with_broadcast) {
    machine.validate();
  }

  ProtocolConversion convert() {
    layout_states();
    create_states();
    emit_elect();
    emit_stage_transitions();
    for (std::uint32_t i = 0; i < m_.instrs.size(); ++i) emit_instruction(i);
    if (broadcast_) {
      emit_of_broadcast();
      out_.protocol.mark_input(input_state_base() * 2 + 0);
      for (std::uint32_t base = 0; base < out_.num_base_states; ++base)
        out_.protocol.mark_accepting(static_cast<pp::State>(base * 2 + 1));
    } else {
      out_.protocol.mark_input(input_state_base());
      // Witness acceptance: the OF pointer agent holding value true.
      for (std::uint32_t stage = 0; stage < kStagesPlain; ++stage)
        out_.protocol.mark_accepting(ptr_base(m_.of, 1, stage));
    }
    out_.protocol.finalize();
    out_.num_pointers = static_cast<std::uint32_t>(m_.num_pointers());
    out_.with_broadcast = broadcast_;
    out_.machine = &m_;
    return std::move(out_);
  }

 private:
  // -- layout -----------------------------------------------------------------

  bool is_v_pointer(PtrId p) const {
    if (p == m_.v_square) return true;
    for (PtrId v : m_.v_reg)
      if (v == p) return true;
    return false;
  }

  std::uint32_t stages_of(PtrId p) const {
    if (p == m_.ip) return kStagesIp;
    return is_v_pointer(p) ? kStagesV : kStagesPlain;
  }

  void layout_states() {
    std::uint32_t next = static_cast<std::uint32_t>(m_.num_registers());
    out_.ptr_offset.resize(m_.num_pointers());
    out_.ptr_stage_count.resize(m_.num_pointers());
    value_index_.resize(m_.num_pointers());
    for (PtrId p = 0; p < m_.num_pointers(); ++p) {
      out_.ptr_offset[p] = next;
      out_.ptr_stage_count[p] = stages_of(p);
      const auto& domain = m_.pointers[p].domain;
      for (std::uint32_t i = 0; i < domain.size(); ++i)
        value_index_[p][domain[i]] = i;
      next += static_cast<std::uint32_t>(domain.size()) * stages_of(p);
    }
    out_.map_base.assign(m_.instrs.size(), ProtocolConversion::kNoMap);
    for (std::uint32_t i = 0; i < m_.instrs.size(); ++i) {
      const Instr& instr = m_.instrs[i];
      if (instr.kind == Instr::Kind::kAssign && instr.target != m_.ip &&
          instr.target != instr.source) {
        out_.map_base[i] = next++;
      }
    }
    out_.num_base_states = next;

    // Election order: all pointers, IP last (Appendix B.3 requires
    // X_{|F|} = IP).
    for (PtrId p = 0; p < m_.num_pointers(); ++p)
      if (p != m_.ip) elect_order_.push_back(p);
    elect_order_.push_back(m_.ip);
  }

  std::uint32_t ptr_base(PtrId p, std::uint32_t raw_value,
                         std::uint32_t stage) const {
    return out_.ptr_offset[p] +
           value_index_[p].at(raw_value) * out_.ptr_stage_count[p] + stage;
  }

  std::uint32_t input_state_base() const {
    const PtrId first = elect_order_.front();
    return ptr_base(first, m_.pointers[first].initial, 0);
  }

  /// Is `base` a pointer state of `p`? If so, return its value index.
  bool pointer_value_of(std::uint32_t base, PtrId p,
                        std::uint32_t* value_index) const {
    const std::uint32_t offset = out_.ptr_offset[p];
    const std::uint32_t span =
        static_cast<std::uint32_t>(m_.pointers[p].domain.size()) *
        out_.ptr_stage_count[p];
    if (base < offset || base >= offset + span) return false;
    *value_index = (base - offset) / out_.ptr_stage_count[p];
    return true;
  }

  // -- state creation -----------------------------------------------------------

  void create_states() {
    // With broadcast, realized state id = 2 * base + opinion; without, the
    // realized id equals the base id. add_state order guarantees both.
    auto add_both = [this](const std::string& name) {
      if (!broadcast_) {
        out_.protocol.add_state(name);
        return;
      }
      out_.protocol.add_state(name + "|-");
      out_.protocol.add_state(name + "|+");
    };
    for (const std::string& reg : m_.registers) add_both(reg);
    for (PtrId p = 0; p < m_.num_pointers(); ++p) {
      const auto& pointer = m_.pointers[p];
      for (std::uint32_t value : pointer.domain)
        for (std::uint32_t stage = 0; stage < out_.ptr_stage_count[p];
             ++stage)
          add_both(pointer.name + "=" + std::to_string(value) + "/" +
                   stage_name(stage, p == m_.ip));
    }
    for (std::uint32_t i = 0; i < m_.instrs.size(); ++i)
      if (out_.map_base[i] != ProtocolConversion::kNoMap)
        add_both(m_.pointers[m_.instrs[i].target].name + "_map@" +
                 std::to_string(i + 1));
  }

  // -- transition emission with the output-broadcast wrapper ---------------------

  /// Emit the base transition (q1, q2 -> q1', q2') wrapped per Appendix
  /// B.3: if a result state belongs to the OF pointer, both agents adopt
  /// its value as their opinion; otherwise opinions are preserved.
  void emit(std::uint32_t q1, std::uint32_t q2, std::uint32_t q1p,
            std::uint32_t q2p) {
    if (!broadcast_) {
      if (q1 != q1p || q2 != q2p)
        out_.protocol.add_transition(q1, q2, q1p, q2p);
      return;
    }
    std::optional<bool> broadcast;
    std::uint32_t value_index = 0;
    if (pointer_value_of(q1p, m_.of, &value_index))
      broadcast = m_.pointers[m_.of].domain[value_index] != 0;
    else if (pointer_value_of(q2p, m_.of, &value_index))
      broadcast = m_.pointers[m_.of].domain[value_index] != 0;

    for (std::uint32_t o1 = 0; o1 < 2; ++o1) {
      for (std::uint32_t o2 = 0; o2 < 2; ++o2) {
        const std::uint32_t b1 = broadcast ? (*broadcast ? 1 : 0) : o1;
        const std::uint32_t b2 = broadcast ? (*broadcast ? 1 : 0) : o2;
        const pp::State s1 = q1 * 2 + o1, s2 = q2 * 2 + o2;
        const pp::State t1 = q1p * 2 + b1, t2 = q2p * 2 + b2;
        if (s1 == t1 && s2 == t2) continue;  // silent
        out_.protocol.add_transition(s1, s2, t1, t2);
      }
    }
  }

  // -- ⟨elect⟩ --------------------------------------------------------------------

  void emit_elect() {
    const std::uint32_t reg0 = 0;  // the fixed register x of Appendix B.3
    for (std::size_t i = 0; i < elect_order_.size(); ++i) {
      const PtrId p = elect_order_[i];
      const auto& pointer = m_.pointers[p];
      // All states of this pointer (any value, any stage).
      std::vector<std::uint32_t> states;
      for (std::uint32_t value : pointer.domain)
        for (std::uint32_t stage = 0; stage < out_.ptr_stage_count[p];
             ++stage)
          states.push_back(ptr_base(p, value, stage));

      std::uint32_t r1, r2;
      if (i + 1 < elect_order_.size()) {
        const PtrId next = elect_order_[i + 1];
        r1 = ptr_base(p, pointer.initial, 0);
        r2 = ptr_base(next, m_.pointers[next].initial, 0);
      } else {
        // IP pair: one agent restarts the cascade, the other becomes a
        // register agent.
        const PtrId first = elect_order_.front();
        r1 = ptr_base(first, m_.pointers[first].initial, 0);
        r2 = reg0;
      }
      // One orientation per unordered pair suffices (the random scheduler
      // tries both orders; reachability is unaffected).
      for (std::size_t a = 0; a < states.size(); ++a)
        for (std::size_t b = a; b < states.size(); ++b)
          emit(states[a], states[b], r1, r2);
    }
  }

  // -- shared per-(V_x, v) stage gadget transitions ---------------------------------

  void emit_stage_transitions() {
    const std::uint32_t park = 0;  // the fixed register z of Appendix B.3
    for (PtrId p = 0; p < m_.num_pointers(); ++p) {
      if (!is_v_pointer(p)) continue;
      for (std::uint32_t value : m_.pointers[p].domain) {
        const std::uint32_t none = ptr_base(p, value, 0);
        const std::uint32_t done = ptr_base(p, value, 1);
        const std::uint32_t emit_s = ptr_base(p, value, 2);
        const std::uint32_t take = ptr_base(p, value, 3);
        const std::uint32_t test = ptr_base(p, value, 4);
        const std::uint32_t yes = ptr_base(p, value, 5);
        const std::uint32_t no = ptr_base(p, value, 6);
        (void)none;

        // ⟨move⟩ phase gadgets: park one unit of the mapped register, then
        // hand one parked unit to the target register.
        emit(emit_s, value /* register state */, done, park);
        emit(take, park, done, value);

        // ⟨test⟩: certify occupancy by meeting a register agent of the
        // mapped register — any other agent is evidence of nothing and
        // yields false (this realises detect's nondeterminism).
        emit(test, value, yes, value);
        for (std::uint32_t q = 0; q < out_.num_base_states; ++q)
          if (q != value) emit(test, q, no, q);

        // Write the verdict into CF.
        for (std::uint32_t cf_value : {0u, 1u}) {
          for (std::uint32_t cf_stage = 0; cf_stage < kStagesPlain;
               ++cf_stage) {
            const std::uint32_t cf_state =
                ptr_base(m_.cf, cf_value, cf_stage);
            emit(yes, cf_state, done, ptr_base(m_.cf, 1, 0));
            emit(no, cf_state, done, ptr_base(m_.cf, 0, 0));
          }
        }
      }
    }
  }

  // -- per-instruction gadgets --------------------------------------------------------

  void emit_instruction(std::uint32_t i) {
    const Instr& instr = m_.instrs[i];
    const std::uint32_t ip_none = ptr_base(m_.ip, i, 0);
    const std::uint32_t ip_wait = ptr_base(m_.ip, i, 1);
    const std::uint32_t ip_half = ptr_base(m_.ip, i, 2);
    const bool can_advance = i + 1 < m_.instrs.size();
    const std::uint32_t ip_next =
        can_advance ? ptr_base(m_.ip, i + 1, 0) : 0;

    switch (instr.kind) {
      case Instr::Kind::kMove: {
        const PtrId vx = m_.v_reg[instr.x];
        const PtrId vy = m_.v_reg[instr.y];
        // Recruit V_x to emit a unit into the parking register.
        for (std::uint32_t v : m_.pointers[vx].domain) {
          for (std::uint32_t stage = 0; stage < kStagesV; ++stage)
            emit(ip_none, ptr_base(vx, v, stage), ip_wait,
                 ptr_base(vx, v, 2 /*emit*/));
          emit(ip_wait, ptr_base(vx, v, 1 /*done*/), ip_half,
               ptr_base(vx, v, 0 /*none*/));
        }
        // Then recruit V_y to take it.
        for (std::uint32_t w : m_.pointers[vy].domain) {
          for (std::uint32_t stage = 0; stage < kStagesV; ++stage)
            emit(ip_half, ptr_base(vy, w, stage), ip_wait,
                 ptr_base(vy, w, 3 /*take*/));
          if (can_advance)
            emit(ip_wait, ptr_base(vy, w, 1 /*done*/), ip_next,
                 ptr_base(vy, w, 0 /*none*/));
        }
        break;
      }
      case Instr::Kind::kDetect: {
        const PtrId vx = m_.v_reg[instr.x];
        for (std::uint32_t v : m_.pointers[vx].domain) {
          for (std::uint32_t stage = 0; stage < kStagesV; ++stage)
            emit(ip_none, ptr_base(vx, v, stage), ip_wait,
                 ptr_base(vx, v, 4 /*test*/));
          if (can_advance)
            emit(ip_wait, ptr_base(vx, v, 1 /*done*/), ip_next,
                 ptr_base(vx, v, 0 /*none*/));
        }
        break;
      }
      case Instr::Kind::kAssign: {
        if (instr.target == m_.ip) {
          // IP := f(Y): a single two-agent exchange.
          if (instr.source == m_.ip)
            throw std::logic_error("to_protocol: IP := f(IP) unsupported");
          for (std::uint32_t v : m_.pointers[instr.source].domain) {
            const std::uint32_t target_ip =
                ptr_base(m_.ip, *instr.map(v), 0);
            for (std::uint32_t stage = 0;
                 stage < out_.ptr_stage_count[instr.source]; ++stage)
              emit(ip_none, ptr_base(instr.source, v, stage), target_ip,
                   ptr_base(instr.source, v, 0));
          }
        } else if (instr.target == instr.source) {
          // X := f(X), X != IP: also a single exchange.
          if (!can_advance) break;
          const PtrId y = instr.source;
          for (std::uint32_t v : m_.pointers[y].domain)
            for (std::uint32_t stage = 0; stage < out_.ptr_stage_count[y];
                 ++stage)
              emit(ip_none, ptr_base(y, v, stage), ip_next,
                   ptr_base(y, *instr.map(v), 0));
        } else {
          // Ordinary case via the map state X_map^i.
          if (instr.source == m_.ip)
            throw std::logic_error("to_protocol: X := f(IP) unsupported");
          const std::uint32_t map = out_.map_base[i];
          for (std::uint32_t v : m_.pointers[instr.target].domain)
            for (std::uint32_t stage = 0;
                 stage < out_.ptr_stage_count[instr.target]; ++stage)
              emit(ip_none, ptr_base(instr.target, v, stage), ip_wait, map);
          for (std::uint32_t v : m_.pointers[instr.source].domain)
            for (std::uint32_t stage = 0;
                 stage < out_.ptr_stage_count[instr.source]; ++stage)
              emit(map, ptr_base(instr.source, v, stage),
                   ptr_base(instr.target, *instr.map(v), 1 /*done*/),
                   ptr_base(instr.source, v, 0));
          if (can_advance)
            for (std::uint32_t v : m_.pointers[instr.target].domain)
              emit(ip_wait, ptr_base(instr.target, v, 1 /*done*/), ip_next,
                   ptr_base(instr.target, v, 0));
        }
        break;
      }
    }
  }

  // -- opinion broadcast on identity meetings --------------------------------------

  void emit_of_broadcast() {
    for (std::uint32_t value : m_.pointers[m_.of].domain) {
      const bool b = value != 0;
      for (std::uint32_t stage = 0; stage < kStagesPlain; ++stage) {
        const std::uint32_t of_state = ptr_base(m_.of, value, stage);
        for (std::uint32_t q = 0; q < out_.num_base_states; ++q) {
          // (q, OF^b) -> (q, OF^b) with both opinions set to b.
          for (std::uint32_t o1 = 0; o1 < 2; ++o1)
            for (std::uint32_t o2 = 0; o2 < 2; ++o2) {
              const std::uint32_t bb = b ? 1 : 0;
              if (o1 == bb && o2 == bb) continue;  // silent
              out_.protocol.add_transition(q * 2 + o1, of_state * 2 + o2,
                                           q * 2 + bb, of_state * 2 + bb);
            }
        }
      }
    }
  }

  const Machine& m_;
  bool broadcast_;
  ProtocolConversion out_;
  std::vector<std::unordered_map<std::uint32_t, std::uint32_t>> value_index_;
  std::vector<PtrId> elect_order_;
};

}  // namespace

pp::State ProtocolConversion::reg_state(machine::RegId reg,
                                        bool opinion) const {
  if (!with_broadcast) return static_cast<pp::State>(reg);
  return static_cast<pp::State>(reg * 2 + (opinion ? 1 : 0));
}

pp::State ProtocolConversion::pointer_state(machine::PtrId pointer,
                                            std::uint32_t raw_value,
                                            Stage stage, bool opinion) const {
  const auto& domain = machine->pointers[pointer].domain;
  std::uint32_t index = 0;
  while (index < domain.size() && domain[index] != raw_value) ++index;
  if (index == domain.size())
    throw std::out_of_range("pointer_state: value not in domain");
  const std::uint32_t base =
      ptr_offset[pointer] + index * ptr_stage_count[pointer] +
      static_cast<std::uint32_t>(stage);
  if (!with_broadcast) return static_cast<pp::State>(base);
  return static_cast<pp::State>(base * 2 + (opinion ? 1 : 0));
}

pp::State ProtocolConversion::map_state(std::uint32_t instr_index,
                                        bool opinion) const {
  if (map_base[instr_index] == kNoMap)
    throw std::out_of_range("map_state: instruction has no map state");
  if (!with_broadcast) return static_cast<pp::State>(map_base[instr_index]);
  return static_cast<pp::State>(map_base[instr_index] * 2 + (opinion ? 1 : 0));
}

pp::State ProtocolConversion::input_state() const {
  return protocol.input_states().front();
}

pp::Config ProtocolConversion::initial_config(std::uint64_t m) const {
  pp::Config config(protocol.num_states());
  config.add(input_state(), static_cast<std::uint32_t>(m));
  return config;
}

pp::Config ProtocolConversion::pi(const machine::MachineState& state,
                                  bool opinion) const {
  pp::Config config(protocol.num_states());
  for (machine::RegId r = 0; r < state.regs.size(); ++r)
    config.add(reg_state(r, opinion),
               static_cast<std::uint32_t>(state.regs[r]));
  for (machine::PtrId p = 0; p < state.ptrs.size(); ++p)
    config.add(pointer_state(p, state.ptrs[p], Stage::kNone, opinion));
  return config;
}

ProtocolConversion machine_to_protocol(const machine::Machine& machine,
                                       const ConversionOptions& options) {
  return Converter(machine, options).convert();
}

std::uint64_t conversion_state_count(const machine::Machine& machine) {
  std::uint64_t base = machine.num_registers();
  for (machine::PtrId p = 0; p < machine.num_pointers(); ++p) {
    std::uint32_t stages = kStagesPlain;
    if (p == machine.ip) {
      stages = kStagesIp;
    } else if (p == machine.v_square) {
      stages = kStagesV;
    } else {
      for (machine::PtrId v : machine.v_reg)
        if (v == p) {
          stages = kStagesV;
          break;
        }
    }
    base += machine.pointers[p].domain.size() * stages;
  }
  for (const machine::Instr& instr : machine.instrs)
    if (instr.kind == machine::Instr::Kind::kAssign &&
        instr.target != machine.ip && instr.target != instr.source)
      ++base;
  return 2 * base;
}

}  // namespace ppde::compile
