// Configurations: multisets of agents over the protocol's states.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "pp/protocol.hpp"

namespace ppde::pp {

/// A configuration C ∈ N^Q, stored densely. Counts are uint32 — the
/// experiments never simulate more than 2^32 agents.
class Config {
 public:
  Config() = default;
  explicit Config(std::size_t num_states) : counts_(num_states, 0) {}

  /// All `count` agents in a single state.
  static Config single(std::size_t num_states, State q, std::uint32_t count);

  std::size_t num_states() const { return counts_.size(); }

  std::uint32_t operator[](State q) const { return counts_[q]; }

  void add(State q, std::uint32_t count = 1) {
    counts_[q] += count;
    total_ += count;
  }

  void remove(State q, std::uint32_t count = 1) {
    if (counts_[q] < count)
      throw std::underflow_error("Config: removing more agents than present");
    counts_[q] -= count;
    total_ -= count;
  }

  /// Total number of agents |C|.
  std::uint64_t total() const { return total_; }

  /// Number of agents currently in accepting states of `protocol`.
  std::uint64_t accepting_count(const Protocol& protocol) const;

  /// Output per Section 3: true iff every agent is accepting, false iff no
  /// agent is accepting, undefined otherwise.
  enum class Output { kTrue, kFalse, kUndefined };
  Output output(const Protocol& protocol) const;

  /// Apply transition t (requires enough agents in t.q / t.r).
  void apply(const Transition& t);

  /// True if transition t is enabled (t.q==t.r needs two agents).
  bool enabled(const Transition& t) const {
    if (t.q == t.r) return counts_[t.q] >= 2;
    return counts_[t.q] >= 1 && counts_[t.r] >= 1;
  }

  std::uint64_t hash() const;

  friend bool operator==(const Config&, const Config&) = default;

  const std::vector<std::uint32_t>& counts() const { return counts_; }

  /// Render as {2*a, 1*b} using names from `protocol`; omits zero states.
  std::string to_string(const Protocol& protocol) const;

 private:
  std::vector<std::uint32_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace ppde::pp
