#include "pp/verifier.hpp"

#include <stdexcept>

#include "analysis/reachability.hpp"
#include "isa/exec.hpp"
#include "verify/kernel.hpp"

namespace ppde::pp {

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

// Sparse configuration encoding for the kernel: one word per occupied
// state, (state << 32) | count, sorted by state. Much smaller than the
// dense count vector for compiler-produced protocols, where only ~|F| + a
// few register states are occupied out of hundreds.
constexpr u64 encode(State q, u32 count) {
  return (static_cast<u64>(q) << 32) | count;
}
constexpr State state_of(u64 word) { return static_cast<State>(word >> 32); }
constexpr u32 count_of(u64 word) { return static_cast<u32>(word); }

std::vector<u64> to_sparse(const Config& config) {
  std::vector<u64> sparse;
  for (State q = 0; q < config.num_states(); ++q)
    if (config[q] != 0) sparse.push_back(encode(q, config[q]));
  return sparse;
}

Config to_dense(std::span<const u64> sparse, std::size_t num_states) {
  Config config(num_states);
  for (const u64 word : sparse) config.add(state_of(word), count_of(word));
  return config;
}

/// Successor generator over sparse configurations: iterate over ordered
/// pairs of *present* states and apply each enabled transition. The pair
/// (q, q) needs at least two agents in q.
class ConfigDomain {
 public:
  ConfigDomain(const Protocol& protocol, isa::Dispatch dispatch)
      : protocol_(protocol),
        compiled_(dispatch == isa::Dispatch::kBytecode ? &protocol.compiled()
                                                       : nullptr) {}

  void expand(std::span<const u64> sparse, verify::Emitter& emit) const {
    std::vector<u64> scratch;
    for (const u64 word_q : sparse) {
      const State q = state_of(word_q);
      for (const u64 word_r : sparse) {
        const State r = state_of(word_r);
        if (q == r && count_of(word_q) < 2) continue;
        if (compiled_ != nullptr) {
          // Bytecode core: one pair-table probe, then the opcode cells in
          // candidate order — the successor multiset and emission order
          // (hence every node ID) are identical to the interp walk below.
          const u32 entry = compiled_->entry_of(q, r);
          if (entry >= isa::CompiledProtocol::kSilentOnly) continue;
          for (const isa::Cell& cell : compiled_->cells(entry)) {
            scratch.assign(sparse.begin(), sparse.end());
            isa::execute_cell(
                cell,
                isa::make_policy(
                    [&](u32 q2) {
                      adjust(scratch, q, -1);
                      adjust(scratch, q2, +1);
                    },
                    [&](u32 r2) {
                      adjust(scratch, r, -1);
                      adjust(scratch, r2, +1);
                    },
                    [&](u32 q2, u32 r2) {
                      adjust(scratch, q, -1);
                      adjust(scratch, r, -1);
                      adjust(scratch, q2, +1);
                      adjust(scratch, r2, +1);
                    },
                    [] { /* swap leaves the counts unchanged: self-loop */ },
                    [](std::int32_t) {}));
            emit.emit(scratch);
          }
          continue;
        }
        for (const u32 index : protocol_.transitions_for(q, r)) {
          const Transition& t = protocol_.transitions()[index];
          scratch.assign(sparse.begin(), sparse.end());
          adjust(scratch, t.q, -1);
          adjust(scratch, t.r, -1);
          adjust(scratch, t.q2, +1);
          adjust(scratch, t.r2, +1);
          emit.emit(scratch);
        }
      }
    }
  }

 private:
  static void adjust(std::vector<u64>& sparse, State q, std::int32_t delta) {
    const auto it = std::lower_bound(
        sparse.begin(), sparse.end(), q,
        [](u64 word, State state) { return state_of(word) < state; });
    if (it != sparse.end() && state_of(*it) == q) {
      const u32 count = static_cast<u32>(
          static_cast<std::int64_t>(count_of(*it)) + delta);
      if (count == 0)
        sparse.erase(it);
      else
        *it = encode(q, count);
    } else {
      sparse.insert(it, encode(q, static_cast<u32>(delta)));
    }
  }

  const Protocol& protocol_;
  const isa::CompiledProtocol* compiled_;  ///< set iff bytecode dispatch
};

/// Outputs of a sparse configuration, mirroring Config::output; in witness
/// mode the output is simply "some accepting agent present".
verify::NodeOutput sparse_output(const Protocol& protocol,
                                 std::span<const u64> sparse,
                                 bool witness_mode) {
  bool any_accepting = false;
  bool any_rejecting = false;
  for (const u64 word : sparse) {
    (protocol.is_accepting(state_of(word)) ? any_accepting : any_rejecting) =
        true;
    if (!witness_mode && any_accepting && any_rejecting)
      return verify::NodeOutput::kMixed;
  }
  return any_accepting ? verify::NodeOutput::kTrue
                       : verify::NodeOutput::kFalse;
}

VerificationResult verify_on(const Protocol& protocol, const Config& initial,
                             const VerifierOptions& options) {
  verify::KernelOptions kernel_options;
  kernel_options.max_nodes = options.max_configs;
  kernel_options.max_edges = options.max_edges;
  kernel_options.max_bytes = options.max_bytes;
  kernel_options.threads = options.threads;

  const ConfigDomain domain(protocol, options.dispatch);
  verify::Kernel<ConfigDomain> kernel(domain, kernel_options);
  const std::vector<std::vector<u64>> roots = {to_sparse(initial)};
  const verify::KernelStats& stats = kernel.run(roots);

  VerificationResult result;
  result.explored_configs = stats.nodes;
  result.explored_edges = stats.edges;
  if (!stats.complete) {
    result.verdict = VerificationResult::Verdict::kResourceLimit;
    return result;
  }

  const verify::SccAnalysis analysis = kernel.analyse();
  const verify::ConsensusReport report = verify::classify_bottom(
      analysis, kernel.num_nodes(), [&](u32 id) {
        return sparse_output(protocol, kernel.state(id),
                             options.witness_mode);
      });
  result.num_sccs = report.num_sccs;
  result.num_bottom_sccs = report.num_bottom_sccs;

  using Verdict = VerificationResult::Verdict;
  if (report.aggregate_true && report.aggregate_false) {
    result.verdict = Verdict::kDoesNotStabilise;
    result.counterexample =
        to_dense(kernel.state(*report.offending_node), protocol.num_states());
  } else if (report.aggregate_true) {
    result.verdict = Verdict::kStabilisesTrue;
  } else {
    result.verdict = Verdict::kStabilisesFalse;
  }
  return result;
}

}  // namespace

Verifier::Verifier(const Protocol& protocol) : protocol_(protocol) {
  if (!protocol.finalized())
    throw std::logic_error("Verifier: protocol not finalized");
}

VerificationResult Verifier::verify(const Config& initial,
                                    const VerifierOptions& options) const {
  if (!options.prune) return verify_on(protocol_, initial, options);

  // Explore the pruned state space directly: states no run can occupy are
  // dropped up front (with every transition touching one), so expansions
  // scan a smaller transition relation. The reachable configuration graph
  // is isomorphic to the unpruned one — every state occupied by a
  // reachable configuration is occupiable by definition — so the verdict
  // and all statistics are unchanged; only a counterexample needs mapping
  // back into the original state space.
  const analysis::PrunedProtocol pruned =
      analysis::prune_protocol(protocol_, initial);
  VerificationResult result = verify_on(pruned.protocol, pruned.initial,
                                        options);
  if (result.counterexample) {
    Config original(protocol_.num_states());
    const Config& reduced = *result.counterexample;
    for (State q = 0; q < reduced.num_states(); ++q)
      if (reduced[q] != 0)
        original.add(protocol_.state(pruned.protocol.name(q)), reduced[q]);
    result.counterexample = std::move(original);
  }
  return result;
}

std::string to_string(VerificationResult::Verdict verdict) {
  using Verdict = VerificationResult::Verdict;
  switch (verdict) {
    case Verdict::kStabilisesTrue:
      return "stabilises to true";
    case Verdict::kStabilisesFalse:
      return "stabilises to false";
    case Verdict::kDoesNotStabilise:
      return "does not stabilise";
    case Verdict::kResourceLimit:
      return "resource limit reached";
  }
  return "?";
}

}  // namespace ppde::pp
