#include "pp/verifier.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "support/hash.hpp"
#include "support/scc.hpp"

namespace ppde::pp {

namespace {

/// Sparse configuration: sorted (state, count) pairs. Much smaller than the
/// dense vector for compiler-produced protocols, where only ~|F| + a few
/// register states are occupied out of hundreds.
using Sparse = std::vector<std::pair<State, std::uint32_t>>;

Sparse to_sparse(const Config& config) {
  Sparse sparse;
  for (State q = 0; q < config.num_states(); ++q)
    if (config[q] != 0) sparse.emplace_back(q, config[q]);
  return sparse;
}

Config to_dense(const Sparse& sparse, std::size_t num_states) {
  Config config(num_states);
  for (const auto& [q, count] : sparse) config.add(q, count);
  return config;
}

struct SparseHash {
  std::uint64_t operator()(const Sparse& sparse) const {
    std::uint64_t h = 0x51ed270b4d2f9c11ULL;
    for (const auto& [q, count] : sparse) {
      h = support::hash_combine(h, q);
      h = support::hash_combine(h, count);
    }
    return h;
  }
};

/// Outputs of a sparse configuration, mirroring Config::output; in witness
/// mode the output is simply "some accepting agent present".
Config::Output sparse_output(const Protocol& protocol, const Sparse& sparse,
                             bool witness_mode) {
  bool any_accepting = false;
  bool any_rejecting = false;
  for (const auto& [q, count] : sparse) {
    (void)count;
    (protocol.is_accepting(q) ? any_accepting : any_rejecting) = true;
    if (!witness_mode && any_accepting && any_rejecting)
      return Config::Output::kUndefined;
  }
  return any_accepting ? Config::Output::kTrue : Config::Output::kFalse;
}

class Exploration {
 public:
  Exploration(const Protocol& protocol, const VerifierOptions& options)
      : protocol_(protocol), options_(options) {}

  /// Enumerate all configurations reachable from `initial`; returns false if
  /// the resource limit was hit.
  bool explore(const Config& initial) {
    intern(to_sparse(initial));
    for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
      if (nodes_.size() > options_.max_configs) return false;
      expand(id);
    }
    return true;
  }

  VerificationResult analyse() {
    VerificationResult result;
    result.explored_configs = nodes_.size();
    result.explored_edges = edge_count_;
    const support::SccResult scc = support::tarjan_scc(successors_);
    const std::vector<std::uint32_t>& scc_of_ = scc.scc_of;
    const std::uint32_t scc_count_ = scc.scc_count;
    result.num_sccs = scc_count_;
    const std::vector<std::uint8_t> is_bottom = scc.bottom(successors_);

    // Verdict: all bottom SCCs must be output-constant and agree.
    bool seen_true = false;
    bool seen_false = false;
    std::optional<std::uint32_t> offending;
    std::vector<std::uint8_t> scc_seen(scc_count_, 0);
    for (std::uint32_t id = 0; id < nodes_.size(); ++id) {
      const std::uint32_t scc = scc_of_[id];
      if (!is_bottom[scc]) continue;
      if (!scc_seen[scc]) {
        scc_seen[scc] = 1;
        ++result.num_bottom_sccs;
      }
      switch (sparse_output(protocol_, *nodes_[id], options_.witness_mode)) {
        case Config::Output::kTrue:
          seen_true = true;
          break;
        case Config::Output::kFalse:
          seen_false = true;
          break;
        case Config::Output::kUndefined:
          seen_true = seen_false = true;  // BSCC not output-constant
          break;
      }
      if (seen_true && seen_false && !offending) offending = id;
    }

    using Verdict = VerificationResult::Verdict;
    if (seen_true && seen_false) {
      result.verdict = Verdict::kDoesNotStabilise;
      result.counterexample =
          to_dense(*nodes_[*offending], protocol_.num_states());
    } else if (seen_true) {
      result.verdict = Verdict::kStabilisesTrue;
    } else {
      result.verdict = Verdict::kStabilisesFalse;
    }
    return result;
  }

 private:
  std::uint32_t intern(Sparse sparse) {
    auto [it, inserted] =
        ids_.try_emplace(std::move(sparse), static_cast<std::uint32_t>(
                                                nodes_.size()));
    if (inserted) {
      nodes_.push_back(&it->first);
      successors_.emplace_back();
    }
    return it->second;
  }

  void expand(std::uint32_t id) {
    // Iterate over ordered pairs of *present* states; apply each enabled
    // transition. The pair (q, q) needs at least two agents in q.
    const Sparse& sparse = *nodes_[id];
    std::vector<std::uint32_t> succs;
    for (const auto& [q, count_q] : sparse) {
      for (const auto& [r, count_r] : sparse) {
        if (q == r && count_q < 2) continue;
        (void)count_r;
        for (std::uint32_t index : protocol_.transitions_for(q, r)) {
          const Transition& t = protocol_.transitions()[index];
          succs.push_back(intern(apply_sparse(sparse, t)));
        }
      }
    }
    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    edge_count_ += succs.size();
    successors_[id] = std::move(succs);
  }

  static Sparse apply_sparse(const Sparse& sparse, const Transition& t) {
    // Small fixed-size delta over a sorted sparse vector.
    Sparse result = sparse;
    auto adjust = [&result](State q, std::int32_t delta) {
      auto it = std::lower_bound(
          result.begin(), result.end(), q,
          [](const auto& entry, State state) { return entry.first < state; });
      if (it != result.end() && it->first == q) {
        it->second = static_cast<std::uint32_t>(
            static_cast<std::int64_t>(it->second) + delta);
        if (it->second == 0) result.erase(it);
      } else {
        result.insert(it, {q, static_cast<std::uint32_t>(delta)});
      }
    };
    adjust(t.q, -1);
    adjust(t.r, -1);
    adjust(t.q2, +1);
    adjust(t.r2, +1);
    return result;
  }

  const Protocol& protocol_;
  const VerifierOptions& options_;
  std::unordered_map<Sparse, std::uint32_t, SparseHash> ids_;
  std::vector<const Sparse*> nodes_;
  std::vector<std::vector<std::uint32_t>> successors_;
  std::uint64_t edge_count_ = 0;
};

}  // namespace

Verifier::Verifier(const Protocol& protocol) : protocol_(protocol) {
  if (!protocol.finalized())
    throw std::logic_error("Verifier: protocol not finalized");
}

VerificationResult Verifier::verify(const Config& initial,
                                    const VerifierOptions& options) const {
  Exploration exploration(protocol_, options);
  if (!exploration.explore(initial)) {
    VerificationResult result;
    result.verdict = VerificationResult::Verdict::kResourceLimit;
    return result;
  }
  return exploration.analyse();
}

std::string to_string(VerificationResult::Verdict verdict) {
  using Verdict = VerificationResult::Verdict;
  switch (verdict) {
    case Verdict::kStabilisesTrue:
      return "stabilises to true";
    case Verdict::kStabilisesFalse:
      return "stabilises to false";
    case Verdict::kDoesNotStabilise:
      return "does not stabilise";
    case Verdict::kResourceLimit:
      return "resource limit reached";
  }
  return "?";
}

}  // namespace ppde::pp
