#include "pp/config.hpp"

#include <sstream>
#include <stdexcept>

#include "support/hash.hpp"

namespace ppde::pp {

Config Config::single(std::size_t num_states, State q, std::uint32_t count) {
  Config config(num_states);
  config.add(q, count);
  return config;
}

std::uint64_t Config::accepting_count(const Protocol& protocol) const {
  std::uint64_t count = 0;
  for (State q = 0; q < counts_.size(); ++q)
    if (protocol.is_accepting(q)) count += counts_[q];
  return count;
}

Config::Output Config::output(const Protocol& protocol) const {
  const std::uint64_t accepting = accepting_count(protocol);
  if (accepting == total_) return Output::kTrue;
  if (accepting == 0) return Output::kFalse;
  return Output::kUndefined;
}

void Config::apply(const Transition& t) {
  remove(t.q);
  remove(t.r);
  add(t.q2);
  add(t.r2);
}

std::uint64_t Config::hash() const { return support::hash_range(counts_); }

std::string Config::to_string(const Protocol& protocol) const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (State q = 0; q < counts_.size(); ++q) {
    if (counts_[q] == 0) continue;
    if (!first) os << ", ";
    first = false;
    os << counts_[q] << "*" << protocol.name(q);
  }
  os << "}";
  return os.str();
}

}  // namespace ppde::pp
