#include "pp/simulator.hpp"

#include <chrono>
#include <stdexcept>

#include "isa/exec.hpp"
#include "obs/trace.hpp"

namespace ppde::pp {

Simulator::Simulator(const Protocol& protocol, const Config& initial,
                     std::uint64_t seed, isa::Dispatch dispatch)
    : protocol_(protocol), rng_(seed) {
  if (!protocol.finalized())
    throw std::logic_error("Simulator: protocol not finalized");
  if (initial.total() < 2)
    throw std::invalid_argument("Simulator: need at least two agents");
  if (dispatch == isa::Dispatch::kBytecode)
    compiled_ = &protocol.compiled();
  agents_.reserve(initial.total());
  for (State q = 0; q < initial.num_states(); ++q)
    for (std::uint32_t i = 0; i < initial[q]; ++i) agents_.push_back(q);
  for (State q : agents_)
    if (protocol.is_accepting(q)) ++accepting_agents_;
}

Simulator::Simulator(const Protocol& protocol, const Config& initial,
                     const sched::Scenario& scenario, std::uint64_t seed,
                     isa::Dispatch dispatch)
    : Simulator(protocol, initial, seed, dispatch) {
  if (scenario.is_default()) return;
  topo_rng_.reseed(
      support::derive_trial_seed(seed, sched::kTopologyStream));
  scheduler_ = sched::make_scheduler(scenario.scheduler);
  if (scheduler_) {
    accepting_fn_ = [this](std::uint64_t slot) {
      return protocol_.is_accepting(agents_[slot]);
    };
    scheduler_->on_population(agents_.size(), topo_rng_);
  }
  fault_ = sched::make_fault_plan(
      scenario.fault,
      support::derive_trial_seed(seed, sched::kFaultStream), agents_.size());
}

/// FaultOps bound to a Simulator's agent array; keeps accepting_agents_
/// coherent through every mutation and records whether the population
/// count changed (which forces a scheduler topology rebuild).
class AgentFaultOps final : public sched::FaultOps {
 public:
  explicit AgentFaultOps(Simulator& sim) : sim_(sim) {}

  std::uint64_t population() const override { return sim_.agents_.size(); }
  std::uint32_t num_states() const override {
    return static_cast<std::uint32_t>(sim_.protocol_.num_states());
  }

  void set_agent(std::uint64_t slot, std::uint32_t to) override {
    const State from = sim_.agents_[slot];
    if (sim_.protocol_.is_accepting(from)) --sim_.accepting_agents_;
    if (sim_.protocol_.is_accepting(to)) ++sim_.accepting_agents_;
    sim_.agents_[slot] = to;
  }

  void add_agent(std::uint32_t q) override {
    sim_.agents_.push_back(q);
    if (sim_.protocol_.is_accepting(q)) ++sim_.accepting_agents_;
    population_changed_ = true;
  }

  void remove_agent(std::uint64_t slot) override {
    if (sim_.protocol_.is_accepting(sim_.agents_[slot]))
      --sim_.accepting_agents_;
    sim_.agents_[slot] = sim_.agents_.back();
    sim_.agents_.pop_back();
    population_changed_ = true;
  }

  std::uint32_t random_input_state(support::Rng& rng) override {
    const auto& inputs = sim_.protocol_.input_states();
    return inputs[rng.below(inputs.size())];
  }

  bool population_changed() const { return population_changed_; }

 private:
  Simulator& sim_;
  bool population_changed_ = false;
};

void Simulator::run_due_faults() {
  AgentFaultOps ops(*this);
  while (fault_->next_due() <= interactions_) fault_->fire(interactions_, ops);
  if (ops.population_changed() && scheduler_)
    scheduler_->on_population(agents_.size(), topo_rng_);
}

bool Simulator::step() {
  if (fault_ && fault_->next_due() <= interactions_) run_due_faults();
  ++interactions_;
  ++metrics_.meetings;
  const std::uint64_t m = agents_.size();
  std::uint64_t i, j;
  if (scheduler_) {
    sched::PickContext ctx{rng_, m, &accepting_fn_};
    if (!scheduler_->pick(ctx, &i, &j)) return false;  // null meeting
    scheduler_->on_meeting(i, j);
  } else {
    i = rng_.below(m);
    j = rng_.below(m - 1);
    if (j >= i) ++j;  // ordered pair of *distinct* agents, uniform
  }

  const State q = agents_[i];
  const State r = agents_[j];
  if (compiled_ != nullptr) {
    // Bytecode core: one pair-table probe instead of the hash lookup, and
    // the picked cell's opcode writes only the slots that change, with
    // the fused accepting delta replacing four is_accepting probes. The
    // candidate pick consumes the RNG exactly like the interp path (no
    // draw for empty/singleton candidate sets).
    const std::uint32_t entry = compiled_->entry_of(q, r);
    if (entry >= isa::CompiledProtocol::kSilentOnly) return false;
    ++metrics_.firings;
    const auto cells = compiled_->cells(entry);
    const isa::Cell& cell =
        cells.size() == 1 ? cells[0] : cells[rng_.below(cells.size())];
    isa::execute_cell(
        cell,
        isa::make_policy([&](std::uint32_t q2) { agents_[i] = q2; },
                         [&](std::uint32_t r2) { agents_[j] = r2; },
                         [&](std::uint32_t q2, std::uint32_t r2) {
                           agents_[i] = q2;
                           agents_[j] = r2;
                         },
                         [&] {
                           agents_[i] = r;
                           agents_[j] = q;
                         },
                         [&](std::int32_t delta) {
                           accepting_agents_ +=
                               static_cast<std::uint64_t>(
                                   static_cast<std::int64_t>(delta));
                         }));
    return true;
  }
  const auto candidates = protocol_.transitions_for(q, r);
  if (candidates.empty()) return false;
  ++metrics_.firings;
  const std::uint32_t pick =
      candidates.size() == 1
          ? candidates[0]
          : candidates[rng_.below(candidates.size())];
  const Transition& t = protocol_.transitions()[pick];

  auto retag = [&](std::uint64_t index, State to) {
    const State from = agents_[index];
    if (protocol_.is_accepting(from)) --accepting_agents_;
    if (protocol_.is_accepting(to)) ++accepting_agents_;
    agents_[index] = to;
  };
  retag(i, t.q2);
  retag(j, t.r2);
  return true;
}

std::optional<bool> Simulator::consensus() const {
  if (accepting_agents_ == agents_.size()) return true;
  if (accepting_agents_ == 0) return false;
  return std::nullopt;
}

SimulationResult Simulator::run_until_stable(const SimulationOptions& options) {
  // One span per run (S24); the meeting loop itself carries zero
  // instrumentation — the hot path stays untouched.
  obs::ObsSpan span("run_until_stable", "sim");
  const auto start_time = std::chrono::steady_clock::now();
  SimulationResult result;
  // The window starts at the current interaction count, so calling
  // run_until_stable after manual step()s does not count the warm-up
  // interactions towards the stability window.
  std::uint64_t consensus_start = interactions_;
  std::optional<bool> held = consensus();

  while (interactions_ < options.max_interactions) {
    step();
    const std::optional<bool> now = consensus();
    if (now != held) {
      held = now;
      consensus_start = interactions_;
      ++metrics_.consensus_flips;
    }
    if (held.has_value() &&
        interactions_ - consensus_start >= options.stable_window) {
      result.stabilised = true;
      result.output = *held;
      result.consensus_since = consensus_start;
      break;
    }
  }
  result.interactions = interactions_;
  result.parallel_time =
      static_cast<double>(interactions_) / static_cast<double>(population());
  metrics_.wall_seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return result;
}

std::optional<State> Simulator::remove_random_agent(
    const std::function<bool(State)>& eligible) {
  if (agents_.size() <= 2) return std::nullopt;
  std::vector<std::uint64_t> candidates;
  for (std::uint64_t i = 0; i < agents_.size(); ++i)
    if (!eligible || eligible(agents_[i])) candidates.push_back(i);
  if (candidates.empty()) return std::nullopt;
  const std::uint64_t index = candidates[rng_.below(candidates.size())];
  const State removed = agents_[index];
  if (protocol_.is_accepting(removed)) --accepting_agents_;
  agents_[index] = agents_.back();
  agents_.pop_back();
  if (scheduler_) scheduler_->on_population(agents_.size(), topo_rng_);
  return removed;
}

Config Simulator::config() const {
  Config config(protocol_.num_states());
  for (State q : agents_) config.add(q);
  return config;
}

}  // namespace ppde::pp
