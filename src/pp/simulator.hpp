// Random-scheduler simulation of population protocols.
//
// The scheduler picks an ordered pair of distinct agents uniformly at random
// each step and applies an enabled transition for their states (chosen
// uniformly if several apply), or does nothing — exactly the stochastic
// scheduler of the paper's introduction, which produces a fair run with
// probability 1.
//
// Stabilisation cannot be *observed* with certainty from a finite prefix, so
// run_until_stable uses the standard heuristic: stop once the population has
// held a consensus opinion for a configurable window of interactions. The
// exact verifier (pp/verifier.hpp) provides ground truth for small systems.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "engine/metrics.hpp"  // dependency-free counters shared with S21
#include "isa/compiled.hpp"
#include "pp/config.hpp"
#include "pp/protocol.hpp"
#include "sched/fault.hpp"
#include "sched/scenario.hpp"
#include "sched/scheduler.hpp"
#include "support/rng.hpp"

namespace ppde::pp {

struct SimulationOptions {
  std::uint64_t max_interactions = 100'000'000;
  /// Consensus must persist this many interactions to be declared stable.
  std::uint64_t stable_window = 1'000'000;
  std::uint64_t seed = 1;
};

struct SimulationResult {
  /// Sentinel for consensus_since: the run never stabilised. (0 cannot
  /// serve as the sentinel — a run that is in consensus from its first
  /// interaction legitimately reports consensus_since == 0.)
  static constexpr std::uint64_t kNeverStabilised = ~std::uint64_t{0};

  bool stabilised = false;
  bool output = false;  ///< Valid only if stabilised.
  std::uint64_t interactions = 0;
  /// Interaction index after which the final consensus held, measured from
  /// the start of the run (0 = consensus held from the very beginning);
  /// kNeverStabilised iff !stabilised.
  std::uint64_t consensus_since = kNeverStabilised;
  /// interactions / population size — "parallel time" in the literature.
  double parallel_time = 0.0;
};

class Simulator {
 public:
  /// `protocol` must be finalized and outlive the simulator; `initial` must
  /// contain at least two agents. `dispatch` picks the execution core
  /// (S26): bytecode steps through the compiled pair-lookup table and
  /// opcode cells, interp through the legacy transition picks — both
  /// produce bit-identical trajectories for every seed.
  Simulator(const Protocol& protocol, const Config& initial,
            std::uint64_t seed = 1,
            isa::Dispatch dispatch = isa::Dispatch::kBytecode);

  /// Scenario-aware overload (S27): run under the given scheduler strategy
  /// and fault plan. A default scenario behaves exactly like the plain
  /// constructor — same RNG stream, same trajectory, bit for bit. The
  /// non-uniform strategies draw meetings through the strategy object; the
  /// topology and fault streams are split off `seed` with the fixed stream
  /// tags in sched/scenario.hpp, so faults never perturb the meeting draws.
  Simulator(const Protocol& protocol, const Config& initial,
            const sched::Scenario& scenario, std::uint64_t seed = 1,
            isa::Dispatch dispatch = isa::Dispatch::kBytecode);

  /// Perform one scheduler step. Returns true if a transition fired.
  bool step();

  /// Run until consensus holds for options.stable_window interactions or
  /// options.max_interactions elapse.
  SimulationResult run_until_stable(const SimulationOptions& options);

  /// Number of agents currently in accepting states.
  std::uint64_t accepting_agents() const { return accepting_agents_; }
  std::uint64_t population() const { return agents_.size(); }
  std::uint64_t interactions() const { return interactions_; }

  /// True iff all agents agree on an output right now.
  std::optional<bool> consensus() const;

  /// Snapshot of the current configuration.
  Config config() const;

  /// Remove one uniformly random agent among those whose state satisfies
  /// `eligible` (default: any agent). Returns the removed agent's state, or
  /// nullopt if no agent qualifies or only two agents remain. Used by the
  /// agent-removal experiments (the paper's closing open question: what
  /// guarantees survive the *disappearance* of agents mid-run?).
  std::optional<State> remove_random_agent(
      const std::function<bool(State)>& eligible = nullptr);

  /// Per-run counters (meetings, firings, consensus flips, wall time spent
  /// in run_until_stable) — same record the count-based engine fills.
  const engine::RunMetrics& metrics() const { return metrics_; }

  /// What the trial's fault plan actually did (nullptr when the scenario
  /// has no faults). Diagnostics only — never folded into certificates.
  const sched::FaultStats* fault_stats() const {
    return fault_ ? &fault_->stats() : nullptr;
  }

 private:
  friend class AgentFaultOps;

  /// Fire every fault event due at the current meeting index, then rebuild
  /// scheduler topology if the population changed.
  void run_due_faults();

  const Protocol& protocol_;
  const isa::CompiledProtocol* compiled_ = nullptr;  ///< set iff bytecode
  std::vector<State> agents_;
  std::uint64_t accepting_agents_ = 0;
  std::uint64_t interactions_ = 0;
  engine::RunMetrics metrics_;
  support::Rng rng_;
  // S27 scenario machinery; all null/unused for the default scenario (the
  // legacy uniform path does not even null-check the scheduler).
  std::unique_ptr<sched::Scheduler> scheduler_;
  std::unique_ptr<sched::FaultPlan> fault_;
  support::Rng topo_rng_{0};
  std::function<bool(std::uint64_t)> accepting_fn_;
};

}  // namespace ppde::pp
