// The population protocol model (paper Section 3).
//
// A population protocol is a tuple PP = (Q, delta, I, O): finite states Q,
// pairwise transitions delta ⊆ Q^4 written (q, r -> q', r'), input states I
// and accepting states O. A configuration is a multiset over Q; C -> C' if
// C = C' or some transition applies. A fair run stabilises to b if from some
// point on every configuration has output b (output true = all agents in O,
// output false = no agent in O).
//
// States are dense uint32 indices with a parallel name table, so protocols
// produced by the compiler (hundreds of states, many thousands of
// transitions) stay cheap to simulate and hash.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

namespace ppde::isa {
class CompiledProtocol;
}  // namespace ppde::isa

namespace ppde::pp {

using State = std::uint32_t;

/// A pairwise transition (q, r -> q2, r2). The pair is ordered: q is the
/// initiator, r the responder, matching the paper's convention.
struct Transition {
  State q = 0;
  State r = 0;
  State q2 = 0;
  State r2 = 0;

  friend bool operator==(const Transition&, const Transition&) = default;

  /// True if the transition does not change any state.
  bool is_silent() const { return q == q2 && r == r2; }
};

/// A population protocol. Build with add_state/add_transition/...; call
/// finalize() before simulation or verification (it builds the pair index).
class Protocol {
 public:
  /// Create a state with a (unique) diagnostic name; returns its index.
  State add_state(std::string name);

  /// Look up a state by name; throws std::out_of_range if absent.
  State state(const std::string& name) const;

  /// Returns the state named `name` if present.
  std::optional<State> find_state(const std::string& name) const;

  void add_transition(State q, State r, State q2, State r2);

  void mark_input(State q);
  void mark_accepting(State q);

  std::size_t num_states() const { return names_.size(); }
  std::size_t num_transitions() const { return transitions_.size(); }
  const std::string& name(State q) const { return names_[q]; }
  const std::vector<State>& input_states() const { return input_states_; }
  bool is_accepting(State q) const { return accepting_[q] != 0; }
  const std::vector<Transition>& transitions() const { return transitions_; }

  /// Lower the protocol into its compiled bytecode tables (isa::
  /// CompiledProtocol) and validate all indices. Must be called once after
  /// construction; add_* calls afterwards throw.
  void finalize();
  bool finalized() const { return finalized_; }

  /// The compiled IR — the single source of truth for pair lookup,
  /// candidate spans and opcode cells. Requires finalize().
  const isa::CompiledProtocol& compiled() const { return *compiled_; }
  std::shared_ptr<const isa::CompiledProtocol> compiled_ptr() const {
    return compiled_;
  }

  /// Indices into transitions() applicable to the ordered pair (q, r).
  /// Requires finalize(). Thin view over compiled()'s candidate CSR.
  std::span<const std::uint32_t> transitions_for(State q, State r) const;

  /// Human-readable dump (for goldens and debugging).
  std::string describe() const;

  /// Graphviz rendering: states as nodes (accepting = doubled border,
  /// input = bold), transitions as labelled edges q -> q2 ("with r -> r2").
  /// Intended for small protocols; emits at most `max_transitions` edges.
  std::string to_dot(std::size_t max_transitions = 500) const;

  /// Stable structural hash of (|Q|, delta, I, O) — state *indices*, not
  /// names, so two protocols built the same way hash equal regardless of
  /// diagnostic labels. SMC certificates (S23) embed it so a certificate
  /// can be matched against the protocol it talks about.
  std::uint64_t fingerprint() const;

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, State> index_by_name_;
  std::vector<Transition> transitions_;
  std::vector<State> input_states_;
  std::vector<std::uint8_t> accepting_;
  std::shared_ptr<const isa::CompiledProtocol> compiled_;
  bool finalized_ = false;
};

}  // namespace ppde::pp
