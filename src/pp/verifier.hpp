// Exact verification of stable computation (paper Section 3).
//
// A fair run of a finite transition system eventually confines itself to a
// bottom SCC of the reachability graph and visits all of it. Hence a
// population protocol stabilises to output b from configuration C0 — i.e.
// *every* fair run from C0 stabilises to b — iff every bottom SCC reachable
// from C0 consists solely of configurations with output b. This module
// enumerates the reachable configuration graph (configurations of a fixed
// population size form a finite set) on the shared verification kernel
// (src/verify, DESIGN.md S22) — optionally in parallel, with results
// independent of the thread count — and checks exactly that criterion.
// Unlike simulation it certifies the universally-quantified fair-run
// property, which is what the paper's lemmas and theorems claim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "isa/compiled.hpp"
#include "pp/config.hpp"
#include "pp/protocol.hpp"

namespace ppde::pp {

struct VerifierOptions {
  /// Abort with kResourceLimit once this many configurations are reached.
  std::uint64_t max_configs = 2'000'000;
  /// Witness semantics: a configuration's output is `accepting_count > 0`
  /// (always defined) instead of the all-or-none consensus output. Used to
  /// verify pre-broadcast conversions, where acceptance is witnessed by the
  /// OF pointer agent alone.
  bool witness_mode = false;
  /// Abort with kResourceLimit once this many edges are recorded.
  std::uint64_t max_edges = UINT64_MAX;
  /// Abort with kResourceLimit once the configuration store exceeds this
  /// many bytes.
  std::uint64_t max_bytes = UINT64_MAX;
  /// Worker threads for frontier expansion (0 = hardware concurrency).
  /// Results are identical at every thread count.
  unsigned threads = 1;
  /// Drop states no run can occupy (analysis::prune_protocol) before
  /// exploring. The verdict and all graph statistics are unchanged — the
  /// reachable configuration graphs are isomorphic — but each expansion
  /// scans a smaller transition relation.
  bool prune = false;
  /// Execution core for the successor generator (S26). kBytecode expands
  /// meetings through the compiled pair table and opcode cells (touching
  /// only the rewritten side of each pair); successor emission order — and
  /// with it every node ID, SCC and counterexample — is identical to the
  /// interp walk at every thread count.
  isa::Dispatch dispatch = isa::Dispatch::kBytecode;
};

struct VerificationResult {
  enum class Verdict {
    kStabilisesTrue,   ///< every fair run stabilises to true
    kStabilisesFalse,  ///< every fair run stabilises to false
    kDoesNotStabilise, ///< some fair run does not stabilise (or runs disagree)
    kResourceLimit,    ///< exploration exceeded the configured limit
  };

  Verdict verdict = Verdict::kResourceLimit;
  /// Explored counts. Populated also on kResourceLimit (partial result):
  /// how far exploration got before the budget tripped.
  std::uint64_t explored_configs = 0;
  std::uint64_t explored_edges = 0;
  std::uint64_t num_sccs = 0;
  std::uint64_t num_bottom_sccs = 0;
  /// For kDoesNotStabilise: a configuration inside an offending bottom SCC.
  std::optional<Config> counterexample;

  bool stabilises() const {
    return verdict == Verdict::kStabilisesTrue ||
           verdict == Verdict::kStabilisesFalse;
  }
  bool output() const { return verdict == Verdict::kStabilisesTrue; }
};

class Verifier {
 public:
  /// `protocol` must be finalized and outlive the verifier.
  explicit Verifier(const Protocol& protocol);

  VerificationResult verify(const Config& initial,
                            const VerifierOptions& options = {}) const;

 private:
  const Protocol& protocol_;
};

/// Convenience: render a verdict for logs and test failure messages.
std::string to_string(VerificationResult::Verdict verdict);

}  // namespace ppde::pp
