// Exact verification of stable computation (paper Section 3).
//
// A fair run of a finite transition system eventually confines itself to a
// bottom SCC of the reachability graph and visits all of it. Hence a
// population protocol stabilises to output b from configuration C0 — i.e.
// *every* fair run from C0 stabilises to b — iff every bottom SCC reachable
// from C0 consists solely of configurations with output b. This module
// enumerates the reachable configuration graph (configurations of a fixed
// population size form a finite set), runs Tarjan's SCC algorithm, and
// checks exactly that criterion. Unlike simulation it certifies the
// universally-quantified fair-run property, which is what the paper's
// lemmas and theorems claim.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "pp/config.hpp"
#include "pp/protocol.hpp"

namespace ppde::pp {

struct VerifierOptions {
  /// Abort with kResourceLimit once this many configurations are reached.
  std::uint64_t max_configs = 2'000'000;
  /// Witness semantics: a configuration's output is `accepting_count > 0`
  /// (always defined) instead of the all-or-none consensus output. Used to
  /// verify pre-broadcast conversions, where acceptance is witnessed by the
  /// OF pointer agent alone.
  bool witness_mode = false;
};

struct VerificationResult {
  enum class Verdict {
    kStabilisesTrue,   ///< every fair run stabilises to true
    kStabilisesFalse,  ///< every fair run stabilises to false
    kDoesNotStabilise, ///< some fair run does not stabilise (or runs disagree)
    kResourceLimit,    ///< exploration exceeded the configured limit
  };

  Verdict verdict = Verdict::kResourceLimit;
  std::uint64_t explored_configs = 0;
  std::uint64_t explored_edges = 0;
  std::uint64_t num_sccs = 0;
  std::uint64_t num_bottom_sccs = 0;
  /// For kDoesNotStabilise: a configuration inside an offending bottom SCC.
  std::optional<Config> counterexample;

  bool stabilises() const {
    return verdict == Verdict::kStabilisesTrue ||
           verdict == Verdict::kStabilisesFalse;
  }
  bool output() const { return verdict == Verdict::kStabilisesTrue; }
};

class Verifier {
 public:
  /// `protocol` must be finalized and outlive the verifier.
  explicit Verifier(const Protocol& protocol);

  VerificationResult verify(const Config& initial,
                            const VerifierOptions& options = {}) const;

 private:
  const Protocol& protocol_;
};

/// Convenience: render a verdict for logs and test failure messages.
std::string to_string(VerificationResult::Verdict verdict);

}  // namespace ppde::pp
