#include "pp/protocol.hpp"

#include <sstream>
#include <stdexcept>

#include "isa/compiled.hpp"
#include "support/hash.hpp"

namespace ppde::pp {

State Protocol::add_state(std::string name) {
  if (finalized_) throw std::logic_error("Protocol: add_state after finalize");
  auto [it, inserted] =
      index_by_name_.try_emplace(name, static_cast<State>(names_.size()));
  if (!inserted)
    throw std::invalid_argument("Protocol: duplicate state name " + name);
  names_.push_back(std::move(name));
  accepting_.push_back(0);
  return it->second;
}

State Protocol::state(const std::string& name) const {
  auto it = index_by_name_.find(name);
  if (it == index_by_name_.end())
    throw std::out_of_range("Protocol: unknown state " + name);
  return it->second;
}

std::optional<State> Protocol::find_state(const std::string& name) const {
  auto it = index_by_name_.find(name);
  if (it == index_by_name_.end()) return std::nullopt;
  return it->second;
}

void Protocol::add_transition(State q, State r, State q2, State r2) {
  if (finalized_)
    throw std::logic_error("Protocol: add_transition after finalize");
  const auto n = static_cast<State>(names_.size());
  if (q >= n || r >= n || q2 >= n || r2 >= n)
    throw std::out_of_range("Protocol: transition uses unknown state");
  transitions_.push_back({q, r, q2, r2});
}

void Protocol::mark_input(State q) {
  if (finalized_) throw std::logic_error("Protocol: mark_input after finalize");
  input_states_.push_back(q);
}

void Protocol::mark_accepting(State q) {
  if (finalized_)
    throw std::logic_error("Protocol: mark_accepting after finalize");
  accepting_.at(q) = 1;
}

void Protocol::finalize() {
  if (finalized_) throw std::logic_error("Protocol: finalize twice");
  compiled_ = isa::CompiledProtocol::compile(*this);
  finalized_ = true;
}

std::uint64_t Protocol::fingerprint() const {
  std::uint64_t h = support::hash_combine(0x5323u /* "S23" */, names_.size());
  for (const Transition& t : transitions_) {
    h = support::hash_combine(h, (static_cast<std::uint64_t>(t.q) << 32) |
                                     t.r);
    h = support::hash_combine(h, (static_cast<std::uint64_t>(t.q2) << 32) |
                                     t.r2);
  }
  for (State q : input_states_) h = support::hash_combine(h, q);
  for (std::size_t q = 0; q < accepting_.size(); ++q)
    if (accepting_[q]) h = support::hash_combine(h, q);
  return h;
}

std::span<const std::uint32_t> Protocol::transitions_for(State q,
                                                         State r) const {
  const std::uint32_t entry = compiled_->entry_of(q, r);
  if (entry >= isa::CompiledProtocol::kSilentOnly) return {};
  return compiled_->candidates(entry);
}

std::string Protocol::describe() const {
  std::ostringstream os;
  os << "states: " << num_states() << ", transitions: " << num_transitions()
     << "\n";
  os << "input:";
  for (State q : input_states_) os << " " << names_[q];
  os << "\naccepting:";
  for (State q = 0; q < accepting_.size(); ++q)
    if (accepting_[q]) os << " " << names_[q];
  os << "\n";
  for (const Transition& t : transitions_)
    os << "  " << names_[t.q] << ", " << names_[t.r] << " -> " << names_[t.q2]
       << ", " << names_[t.r2] << "\n";
  return os.str();
}

std::string Protocol::to_dot(std::size_t max_transitions) const {
  std::ostringstream os;
  os << "digraph protocol {\n  rankdir=LR;\n  node [shape=ellipse];\n";
  std::vector<bool> is_input(names_.size(), false);
  for (State q : input_states_) is_input[q] = true;
  for (State q = 0; q < names_.size(); ++q) {
    os << "  q" << q << " [label=\"" << names_[q] << "\"";
    if (accepting_[q]) os << ", peripheries=2";
    if (is_input[q]) os << ", style=bold";
    os << "];\n";
  }
  std::size_t emitted = 0;
  for (const Transition& t : transitions_) {
    if (emitted++ >= max_transitions) {
      os << "  // ... " << (transitions_.size() - max_transitions)
         << " more transitions elided\n";
      break;
    }
    os << "  q" << t.q << " -> q" << t.q2 << " [label=\"with "
       << names_[t.r] << " -> " << names_[t.r2] << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ppde::pp
