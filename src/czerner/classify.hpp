// Configuration types of the construction (paper Figure 2 / Appendix A).
//
// For C ∈ N^Q and i ∈ {1..n}:
//   i-proper:        C(x_j) = C(y_j) = 0 and C(~x_j) = C(~y_j) = N_j for j <= i
//   weakly i-proper: (i-1)-proper and C(x) + C(~x) = N_i for x ∈ {x_i, y_i}
//   i-low:  (i-1)-proper, not i-proper, C(x) = 0 and C(~x) <= N_i for both x
//   i-high: (i-1)-proper, not i-proper, C(x) + C(~x) >= N_i for both x
//   i-empty: C(z) = 0 for all z of level >= i
//
// These drive the lemma tests (post-set checks per configuration type), the
// Figure-2 bench, and the good-configuration builders used by Theorem 3.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "czerner/construction.hpp"

namespace ppde::czerner {

using RegValues = std::vector<std::uint64_t>;

/// All classifications below require n <= 6 (constants must fit u64).

bool is_i_proper(const Construction& c, const RegValues& regs, int i);
bool is_weakly_i_proper(const Construction& c, const RegValues& regs, int i);
bool is_i_low(const Construction& c, const RegValues& regs, int i);
bool is_i_high(const Construction& c, const RegValues& regs, int i);
bool is_i_empty(const Construction& c, const RegValues& regs, int i);

/// Full classification for reporting: returns labels like "2-proper",
/// "1-low", "3-high", "4-empty" that apply to `regs`.
std::vector<std::string> classify(const Construction& c, const RegValues& regs);

/// The canonical n-proper configuration with `extra` agents in R.
RegValues proper_config(const Construction& c, std::uint64_t extra_in_r);

/// The "good" configuration C_m from the proof of Theorem 3: n-proper with
/// surplus in R if m >= k; otherwise j-low and (j+1)-empty for the maximal
/// j with 2 * sum_{i<j} N_i <= m. Total of the result is exactly m.
RegValues good_config(const Construction& c, std::uint64_t m);

/// Sum of all registers.
std::uint64_t total_agents(const RegValues& regs);

}  // namespace ppde::czerner
