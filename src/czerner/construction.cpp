#include "czerner/construction.hpp"

#include <map>
#include <stdexcept>

#include "progmodel/builder.hpp"

namespace ppde::czerner {

using progmodel::BlockBuilder;
using progmodel::ProcRef;
using progmodel::ProgramBuilder;
using progmodel::Reg;

namespace {

/// Generates the construction's procedures on demand (memoised by name), so
/// exactly the instantiations reachable from Main exist — a constant number
/// per level, keeping the program size Theta(n).
class Generator {
 public:
  Generator(int n, bool equality) : n_(n), equality_(equality) {
    if (n < 1) throw std::invalid_argument("construction: n must be >= 1");
    for (int i = 1; i <= n; ++i) {
      const std::string level = std::to_string(i);
      regs_.push_back(builder_.reg("x" + level));
      regs_.push_back(builder_.reg("~x" + level));
      regs_.push_back(builder_.reg("y" + level));
      regs_.push_back(builder_.reg("~y" + level));
    }
    regs_.push_back(builder_.reg("R"));
  }

  progmodel::Program generate() && {
    const ProcRef main = main_proc();
    return std::move(builder_).build(main);
  }

 private:
  Reg x(int i) const { return regs_[4 * (i - 1) + 0]; }
  Reg xb(int i) const { return regs_[4 * (i - 1) + 1]; }
  Reg y(int i) const { return regs_[4 * (i - 1) + 2]; }
  Reg yb(int i) const { return regs_[4 * (i - 1) + 3]; }
  Reg R() const { return regs_[4 * n_]; }

  Reg bar(Reg reg) const {
    return (reg % 2 == 0) ? reg + 1 : reg - 1;  // x<->~x, y<->~y pairing
  }
  int level_of(Reg reg) const { return static_cast<int>(reg / 4) + 1; }

  /// Memoised declare-then-define, tolerant of recursive instantiation
  /// requests (the call graph is acyclic, but generation interleaves).
  ProcRef memoised(const std::string& name, bool returns_value,
                   const std::function<void(BlockBuilder&)>& body) {
    auto it = procs_.find(name);
    if (it != procs_.end()) return it->second;
    const ProcRef ref = builder_.declare_proc(name, returns_value);
    procs_.emplace(name, ref);
    builder_.define(ref, body);
    return ref;
  }

  std::string name_of(Reg reg) const {
    static const char* kSuffix[4] = {"x", "~x", "y", "~y"};
    if (reg == regs_[4 * n_]) return "R";
    const int i = static_cast<int>(reg / 4) + 1;
    return std::string(kSuffix[reg % 4]) + std::to_string(i);
  }

  // -- AssertEmpty(i): restart unless levels i..n+1 are empty ---------------
  ProcRef assert_empty(int i) {
    const std::string name = "AssertEmpty(" + std::to_string(i) + ")";
    return memoised(name, /*returns_value=*/false, [this, i](BlockBuilder& s) {
      if (i == n_ + 1) {
        s.if_(s.detect(R()), [](BlockBuilder& t) { t.restart(); });
        return;
      }
      s.call(assert_empty(i + 1));
      for (Reg reg : {x(i), xb(i), y(i), yb(i)})
        s.if_(s.detect(reg), [](BlockBuilder& t) { t.restart(); });
    });
  }

  // -- AssertProper(i): restart unless 1..i proper or i-low ----------------
  // AssertProper(0) has no effect and is omitted at call sites.
  ProcRef assert_proper(int i) {
    const std::string name = "AssertProper(" + std::to_string(i) + ")";
    return memoised(name, /*returns_value=*/false, [this, i](BlockBuilder& s) {
      if (i >= 2) s.call(assert_proper(i - 1));
      for (Reg reg : {x(i), y(i)}) {
        s.if_(s.detect(reg), [](BlockBuilder& t) { t.restart(); });
        s.call(large(bar(reg)));  // swaps any surplus of ~reg into reg
        s.if_(s.detect(reg), [](BlockBuilder& t) { t.restart(); });
      }
    });
  }

  // -- Zero(x): deterministic zero-check (needs weak i-properness) ----------
  ProcRef zero(Reg reg) {
    const std::string name = "Zero(" + name_of(reg) + ")";
    const int i = level_of(reg);
    return memoised(name, /*returns_value=*/true,
                    [this, reg, i](BlockBuilder& s) {
      s.while_(s.constant(true), [&](BlockBuilder& loop) {
        if (i >= 2) loop.call(assert_proper(i - 1));
        loop.if_(loop.detect(reg),
                 [](BlockBuilder& t) { t.return_(false); });
        loop.if_(loop.call_cond(large(bar(reg))),
                 [](BlockBuilder& t) { t.return_(true); });
      });
    });
  }

  // -- IncrPair(x, y): ctr_{x,y} += 1 (mod N_{i+1}) --------------------------
  ProcRef incr_pair(Reg reg_x, Reg reg_y) {
    const std::string name =
        "IncrPair(" + name_of(reg_x) + "," + name_of(reg_y) + ")";
    return memoised(name, /*returns_value=*/false,
                    [this, reg_x, reg_y](BlockBuilder& s) {
      const Reg bx = bar(reg_x);
      const Reg by = bar(reg_y);
      // Increment the low digit y; on overflow wrap it and carry into x.
      s.if_(
          s.call_cond(zero(by)),
          [&](BlockBuilder& t) {
            t.swap(reg_y, by);  // y was N_i: wrap to 0
            t.if_(
                t.call_cond(zero(bx)),
                [&](BlockBuilder& u) { u.swap(reg_x, bx); },  // carry wraps
                [&](BlockBuilder& u) { u.move(bx, reg_x); }); // carry
          },
          [&](BlockBuilder& t) { t.move(by, reg_y); });  // y += 1
    });
  }

  // -- Large(x): nondeterministically certify x >= N_i ----------------------
  ProcRef large(Reg reg) {
    const std::string name = "Large(" + name_of(reg) + ")";
    const int i = level_of(reg);
    return memoised(name, /*returns_value=*/true,
                    [this, reg, i](BlockBuilder& s) {
      const Reg rb = bar(reg);
      if (i == 1) {
        // N_1 = 1: x >= 1 is a plain detect; the move+swap realises the
        // specified effect x' = ~x + N_1, ~x' = x - N_1.
        s.if_(
            s.detect(reg),
            [&](BlockBuilder& t) {
              t.move(reg, rb);
              t.swap(reg, rb);
              t.return_(true);
            },
            [&](BlockBuilder& t) { t.return_(false); });
        return;
      }
      // Level-(i-1) registers must simulate a zeroed counter.
      s.if_(s.or_(s.not_(s.call_cond(zero(x(i - 1)))),
                  s.not_(s.call_cond(zero(y(i - 1))))),
            [](BlockBuilder& t) { t.restart(); });
      s.while_(s.constant(true), [&](BlockBuilder& loop) {
        if (i >= 3) loop.call(assert_proper(i - 2));
        loop.if_(
            loop.detect(reg),
            [&](BlockBuilder& t) {
              // Walk up: move a unit and increment the counter.
              t.move(reg, rb);
              t.call(incr_pair(x(i - 1), y(i - 1)));
              t.if_(t.and_(t.call_cond(zero(x(i - 1))),
                           t.call_cond(zero(y(i - 1)))),
                    [&](BlockBuilder& u) {
                      // Counter overflowed: N_i units moved. Success.
                      u.swap(reg, rb);
                      u.return_(true);
                    });
            },
            [&](BlockBuilder& t) {
              t.if_(t.and_(t.call_cond(zero(x(i - 1))),
                           t.call_cond(zero(y(i - 1)))),
                    [&](BlockBuilder& u) { u.return_(false); });
              t.if_(t.detect(rb), [&](BlockBuilder& u) {
                // Walk down: undo one step.
                u.move(rb, reg);
                u.call(incr_pair(xb(i - 1), yb(i - 1)));
              });
            });
      });
    });
  }

  // -- Main ------------------------------------------------------------------
  ProcRef main_proc() {
    return memoised("Main", /*returns_value=*/false, [this](BlockBuilder& s) {
      s.set_of(false);
      for (int i = 1; i <= n_; ++i) {
        s.while_(s.or_(s.not_(s.call_cond(large(xb(i)))),
                       s.not_(s.call_cond(large(yb(i))))),
                 [&](BlockBuilder& loop) {
                   loop.call(assert_proper(i));
                   loop.call(assert_empty(i + 1));
                 });
      }
      s.set_of(true);
      s.while_(s.constant(true), [&](BlockBuilder& loop) {
        loop.call(assert_proper(n_));
        if (equality_) {
          // Equality variant: a surplus agent in R proves m > k. Once
          // detected the output flips to false for good — R is never
          // touched between restarts, so on the m = k good configuration
          // the branch can never fire.
          loop.if_(loop.detect(R()),
                   [](BlockBuilder& t) { t.set_of(false); });
        }
      });
    });
  }

  int n_;
  bool equality_;
  ProgramBuilder builder_;
  std::vector<Reg> regs_;
  std::map<std::string, ProcRef> procs_;
};

}  // namespace

Construction build_construction(int n) {
  Construction result;
  result.n = n;
  result.program = Generator(n, /*equality=*/false).generate();
  return result;
}

Construction build_equality_construction(int n) {
  Construction result;
  result.n = n;
  result.program = Generator(n, /*equality=*/true).generate();
  return result;
}

progmodel::Reg Construction::reg_index(int i, int offset) const {
  if (i < 1 || i > n) throw std::out_of_range("construction: bad level");
  return static_cast<progmodel::Reg>(4 * (i - 1) + offset);
}

progmodel::Reg Construction::bar(progmodel::Reg reg) const {
  if (reg >= 4 * static_cast<progmodel::Reg>(n))
    throw std::out_of_range("construction: R has no bar");
  return (reg % 2 == 0) ? reg + 1 : reg - 1;
}

int Construction::level(progmodel::Reg reg) const {
  if (reg == R()) return n + 1;
  return static_cast<int>(reg / 4) + 1;
}

progmodel::ProcId Construction::proc(const std::string& name) const {
  for (progmodel::ProcId id = 0; id < program.procedures.size(); ++id)
    if (program.procedures[id].name == name) return id;
  throw std::out_of_range("construction: no procedure named " + name);
}

bignum::Nat Construction::level_constant(int i) {
  if (i < 1) throw std::invalid_argument("level_constant: i must be >= 1");
  bignum::Nat value{1};  // N_1
  for (int j = 1; j < i; ++j) {
    const bignum::Nat step = value + bignum::Nat{1};
    value = step * step;  // N_{j+1} = (N_j + 1)^2
  }
  return value;
}

bignum::Nat Construction::threshold(int n) {
  bignum::Nat sum;
  bignum::Nat value{1};
  for (int i = 1; i <= n; ++i) {
    sum += value;
    const bignum::Nat step = value + bignum::Nat{1};
    value = step * step;
  }
  return sum + sum;  // k = 2 * sum N_i
}

std::uint64_t Construction::level_constant_u64(int i) {
  return level_constant(i).to_u64();
}

std::uint64_t Construction::threshold_u64(int n) {
  return threshold(n).to_u64();
}

}  // namespace ppde::czerner
