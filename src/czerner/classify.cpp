#include "czerner/classify.hpp"

#include <numeric>
#include <stdexcept>

namespace ppde::czerner {

namespace {

void check(const Construction& c, const RegValues& regs) {
  if (regs.size() != c.num_registers())
    throw std::invalid_argument("classify: wrong number of registers");
}

}  // namespace

bool is_i_proper(const Construction& c, const RegValues& regs, int i) {
  check(c, regs);
  for (int j = 1; j <= i; ++j) {
    const std::uint64_t nj = Construction::level_constant_u64(j);
    if (regs[c.x(j)] != 0 || regs[c.y(j)] != 0) return false;
    if (regs[c.xb(j)] != nj || regs[c.yb(j)] != nj) return false;
  }
  return true;
}

bool is_weakly_i_proper(const Construction& c, const RegValues& regs, int i) {
  check(c, regs);
  if (!is_i_proper(c, regs, i - 1)) return false;
  const std::uint64_t ni = Construction::level_constant_u64(i);
  return regs[c.x(i)] + regs[c.xb(i)] == ni &&
         regs[c.y(i)] + regs[c.yb(i)] == ni;
}

bool is_i_low(const Construction& c, const RegValues& regs, int i) {
  check(c, regs);
  if (!is_i_proper(c, regs, i - 1) || is_i_proper(c, regs, i)) return false;
  const std::uint64_t ni = Construction::level_constant_u64(i);
  return regs[c.x(i)] == 0 && regs[c.xb(i)] <= ni && regs[c.y(i)] == 0 &&
         regs[c.yb(i)] <= ni;
}

bool is_i_high(const Construction& c, const RegValues& regs, int i) {
  check(c, regs);
  if (!is_i_proper(c, regs, i - 1) || is_i_proper(c, regs, i)) return false;
  const std::uint64_t ni = Construction::level_constant_u64(i);
  return regs[c.x(i)] + regs[c.xb(i)] >= ni &&
         regs[c.y(i)] + regs[c.yb(i)] >= ni;
}

bool is_i_empty(const Construction& c, const RegValues& regs, int i) {
  check(c, regs);
  for (int j = i; j <= c.n; ++j)
    if (regs[c.x(j)] != 0 || regs[c.xb(j)] != 0 || regs[c.y(j)] != 0 ||
        regs[c.yb(j)] != 0)
      return false;
  return i <= c.n + 1 ? regs[c.R()] == 0 : true;
}

std::vector<std::string> classify(const Construction& c,
                                  const RegValues& regs) {
  std::vector<std::string> labels;
  for (int i = 1; i <= c.n; ++i) {
    const std::string level = std::to_string(i);
    if (is_i_proper(c, regs, i)) labels.push_back(level + "-proper");
    if (is_weakly_i_proper(c, regs, i))
      labels.push_back("weakly " + level + "-proper");
    if (is_i_low(c, regs, i)) labels.push_back(level + "-low");
    if (is_i_high(c, regs, i)) labels.push_back(level + "-high");
  }
  for (int i = 1; i <= c.n + 1; ++i)
    if (is_i_empty(c, regs, i))
      labels.push_back(std::to_string(i) + "-empty");
  return labels;
}

RegValues proper_config(const Construction& c, std::uint64_t extra_in_r) {
  RegValues regs(c.num_registers(), 0);
  for (int i = 1; i <= c.n; ++i) {
    const std::uint64_t ni = Construction::level_constant_u64(i);
    regs[c.xb(i)] = ni;
    regs[c.yb(i)] = ni;
  }
  regs[c.R()] = extra_in_r;
  return regs;
}

RegValues good_config(const Construction& c, std::uint64_t m) {
  const std::uint64_t k = Construction::threshold_u64(c.n);
  if (m >= k) return proper_config(c, m - k);

  // Maximal j with 2 * sum_{i<j} N_i <= m; fill levels < j properly and
  // spread the remainder over ~x_j, ~y_j (each gets at most N_j, so the
  // result is j-low and (j+1)-empty).
  RegValues regs(c.num_registers(), 0);
  std::uint64_t used = 0;
  int j = 1;
  while (j < c.n) {
    const std::uint64_t nj = Construction::level_constant_u64(j);
    if (used + 2 * nj > m) break;
    regs[c.xb(j)] = nj;
    regs[c.yb(j)] = nj;
    used += 2 * nj;
    ++j;
  }
  const std::uint64_t rest = m - used;
  const std::uint64_t nj = Construction::level_constant_u64(j);
  regs[c.xb(j)] = std::min(rest, nj);
  regs[c.yb(j)] = rest - regs[c.xb(j)];
  return regs;
}

std::uint64_t total_agents(const RegValues& regs) {
  return std::accumulate(regs.begin(), regs.end(), std::uint64_t{0});
}

}  // namespace ppde::czerner
