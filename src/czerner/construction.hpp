// The succinct population program of Section 6.
//
// For a level count n >= 1 the construction uses registers
//   Q = Q_1 ∪ ... ∪ Q_n ∪ {R},  Q_i = {x_i, ~x_i, y_i, ~y_i},
// and per-level constants N_1 = 1, N_{i+1} = (N_i + 1)^2. The intended
// invariant is x_i + ~x_i = y_i + ~y_i = N_i; a pair (x, ~x) satisfying it
// simulates an N_i-bounded register with a deterministic zero-check
// (Lipton's trick: x = 0 iff ~x >= N_i, and the latter is certifiable).
//
// Procedures (paper Section 6):
//   Main             — decides phi(m) <=> m >= k with k = 2 * sum_i N_i,
//   AssertEmpty(i)   — restart unless levels i..n+1 are all empty,
//   AssertProper(i)  — restart unless levels 1..i are proper or i-low,
//   Zero(x)          — deterministic zero-check of a level-i register,
//   IncrPair(x, y)   — increment the simulated two-digit base-(N_i + 1)
//                      counter ctr = x * (N_i+1) + y (mod N_{i+1}),
//   Large(x)         — nondeterministically certify x >= N_i via a random
//                      walk on the level-(i-1) counter.
//
// Only the instantiations actually reachable from Main are generated, so
// the program size is Theta(n) (Theorem 3: size O(n), k >= 2^(2^(n-1))).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "bignum/nat.hpp"
#include "progmodel/ast.hpp"

namespace ppde::czerner {

/// The construction's registers and program for a given n.
struct Construction {
  int n = 1;
  progmodel::Program program;

  // -- register handles (levels are 1-based, as in the paper) --------------
  progmodel::Reg x(int i) const { return reg_index(i, 0); }
  progmodel::Reg xb(int i) const { return reg_index(i, 1); }  ///< ~x_i
  progmodel::Reg y(int i) const { return reg_index(i, 2); }
  progmodel::Reg yb(int i) const { return reg_index(i, 3); }  ///< ~y_i
  progmodel::Reg R() const { return static_cast<progmodel::Reg>(4 * n); }
  std::size_t num_registers() const { return 4 * n + 1; }

  /// The register paired with `reg` by the bar involution (x <-> ~x).
  progmodel::Reg bar(progmodel::Reg reg) const;

  /// Level of a register: 1..n for Q_i members, n+1 for R.
  int level(progmodel::Reg reg) const;

  /// Look up a generated procedure by display name, e.g. "Zero(~x2)",
  /// "Large(~y1)", "AssertProper(2)", "Main". Throws if not generated.
  progmodel::ProcId proc(const std::string& name) const;

  // -- constants ------------------------------------------------------------
  /// N_i (exact).
  static bignum::Nat level_constant(int i);
  /// k(n) = 2 * sum_{i=1..n} N_i — the threshold Main decides (exact).
  static bignum::Nat threshold(int n);
  /// Convenience u64 variants; throw std::overflow_error if too large
  /// (N_i fits u64 up to i = 6).
  static std::uint64_t level_constant_u64(int i);
  static std::uint64_t threshold_u64(int n);

 private:
  progmodel::Reg reg_index(int i, int offset) const;
};

/// Build the construction for n >= 1 levels.
Construction build_construction(int n);

/// The equality variant mentioned in the paper's conclusion: the same
/// machinery decides phi(x) <=> x = k with O(n) states. Main additionally
/// watches the surplus register R after reaching the accepting loop: any
/// agent in R proves m > k and flips the output to false (for m > k the
/// good configuration is n-proper with the surplus in R; detecting R is
/// then guaranteed by fairness, while for m = k it is impossible).
Construction build_equality_construction(int n);

}  // namespace ppde::czerner
