// Quantifier-free Presburger predicates.
//
// Population protocols decide exactly the Presburger-definable predicates
// (Angluin et al. 2007). The paper measures *space complexity* against the
// length |phi| of the predicate written as a quantifier-free Presburger
// formula with coefficients in binary; e.g. phi_n(x) <=> x >= 2^n has
// |phi_n| in Theta(n). This module provides the predicate representation,
// evaluation, and that size measure, so the state-complexity experiments
// (Table 1, Theorem 1) can report states as a function of |phi|.
//
// Grammar:
//   phi ::= true | false | atom | !phi | phi && phi | phi || phi
//   atom ::= sum >= c | sum ≡ r (mod m)        (sum = Σ a_i · x_i, a_i ∈ Z)
//
// Values are arbitrary-precision naturals (inputs to population protocols
// are multisets, i.e. vectors of naturals); coefficients are machine
// integers, constants are Nat so thresholds like 2^(2^n) are exact.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "bignum/nat.hpp"

namespace ppde::presburger {

/// A linear combination Σ a_i · x_i over input variables.
struct LinearSum {
  struct Term {
    std::size_t variable = 0;
    std::int64_t coefficient = 1;
  };
  std::vector<Term> terms;

  /// Evaluate; returns (positive part, negative part) so callers can
  /// compare without signed big integers.
  struct Split {
    bignum::Nat positive;
    bignum::Nat negative;
  };
  Split evaluate(const std::vector<bignum::Nat>& assignment) const;

  /// Encoding length of the coefficients in binary (paper's |phi| measure).
  std::uint64_t encoding_size() const;

  std::string to_string() const;
};

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

/// Immutable predicate AST node. Build via the factory functions below.
class Predicate {
 public:
  enum class Kind { kTrue, kFalse, kThreshold, kRemainder, kNot, kAnd, kOr };

  Kind kind() const { return kind_; }

  /// Evaluate on an assignment of the input variables.
  bool evaluate(const std::vector<bignum::Nat>& assignment) const;

  /// Convenience for unary predicates phi(x).
  bool evaluate_unary(const bignum::Nat& x) const { return evaluate({x}); }

  /// The paper's size measure |phi|: formula length with binary coefficients.
  std::uint64_t size() const;

  std::string to_string() const;

  // -- Factories ------------------------------------------------------------
  static PredicatePtr constant(bool value);
  /// sum >= threshold
  static PredicatePtr threshold(LinearSum sum, bignum::Nat threshold);
  /// Unary x >= k.
  static PredicatePtr unary_threshold(bignum::Nat k);
  /// sum ≡ residue (mod modulus); modulus > 0.
  static PredicatePtr remainder(LinearSum sum, std::uint64_t modulus,
                                std::uint64_t residue);
  static PredicatePtr negation(PredicatePtr operand);
  static PredicatePtr conjunction(PredicatePtr lhs, PredicatePtr rhs);
  static PredicatePtr disjunction(PredicatePtr lhs, PredicatePtr rhs);

  // Accessors (valid only for the matching kind; checked).
  const LinearSum& sum() const;
  const bignum::Nat& threshold_constant() const;
  std::uint64_t modulus() const;
  std::uint64_t residue() const;
  const PredicatePtr& lhs() const;
  const PredicatePtr& rhs() const;

 private:
  explicit Predicate(Kind kind) : kind_(kind) {}

  Kind kind_;
  LinearSum sum_;
  bignum::Nat constant_;
  std::uint64_t modulus_ = 0;
  std::uint64_t residue_ = 0;
  PredicatePtr lhs_;
  PredicatePtr rhs_;
};

}  // namespace ppde::presburger
