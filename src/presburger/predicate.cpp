#include "presburger/predicate.hpp"

#include <cassert>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace ppde::presburger {

namespace {

using bignum::Nat;

std::uint64_t bits(std::uint64_t v) {
  std::uint64_t n = 1;  // even 0 takes one digit
  while (v > 1) {
    v >>= 1;
    ++n;
  }
  return n;
}

}  // namespace

LinearSum::Split LinearSum::evaluate(
    const std::vector<Nat>& assignment) const {
  Split split;
  for (const Term& term : terms) {
    if (term.variable >= assignment.size())
      throw std::out_of_range("LinearSum: variable index out of range");
    const Nat magnitude =
        assignment[term.variable] *
        Nat{static_cast<std::uint64_t>(std::llabs(term.coefficient))};
    if (term.coefficient >= 0)
      split.positive += magnitude;
    else
      split.negative += magnitude;
  }
  return split;
}

std::uint64_t LinearSum::encoding_size() const {
  std::uint64_t size = 0;
  for (const Term& term : terms)
    size += bits(static_cast<std::uint64_t>(std::llabs(term.coefficient))) + 1;
  return size;
}

std::string LinearSum::to_string() const {
  std::ostringstream os;
  bool first = true;
  for (const Term& term : terms) {
    if (!first) os << (term.coefficient >= 0 ? " + " : " - ");
    if (first && term.coefficient < 0) os << "-";
    first = false;
    const auto magnitude =
        static_cast<std::uint64_t>(std::llabs(term.coefficient));
    if (magnitude != 1) os << magnitude << "*";
    os << "x" << term.variable;
  }
  if (first) os << "0";
  return os.str();
}

bool Predicate::evaluate(const std::vector<Nat>& assignment) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kThreshold: {
      // Σ a_i x_i >= c  <=>  positive >= negative + c.
      const auto split = sum_.evaluate(assignment);
      return split.positive >= split.negative + constant_;
    }
    case Kind::kRemainder: {
      const auto split = sum_.evaluate(assignment);
      const Nat mod{modulus_};
      const std::uint64_t pos = (split.positive % mod).to_u64();
      const std::uint64_t neg = (split.negative % mod).to_u64();
      return (pos + modulus_ - neg) % modulus_ == residue_ % modulus_;
    }
    case Kind::kNot:
      return !lhs_->evaluate(assignment);
    case Kind::kAnd:
      return lhs_->evaluate(assignment) && rhs_->evaluate(assignment);
    case Kind::kOr:
      return lhs_->evaluate(assignment) || rhs_->evaluate(assignment);
  }
  return false;  // unreachable
}

std::uint64_t Predicate::size() const {
  switch (kind_) {
    case Kind::kTrue:
    case Kind::kFalse:
      return 1;
    case Kind::kThreshold:
      return sum_.encoding_size() + constant_.bit_length() + 1;
    case Kind::kRemainder:
      return sum_.encoding_size() + bits(modulus_) + bits(residue_) + 1;
    case Kind::kNot:
      return lhs_->size() + 1;
    case Kind::kAnd:
    case Kind::kOr:
      return lhs_->size() + rhs_->size() + 1;
  }
  return 0;  // unreachable
}

std::string Predicate::to_string() const {
  switch (kind_) {
    case Kind::kTrue:
      return "true";
    case Kind::kFalse:
      return "false";
    case Kind::kThreshold:
      return sum_.to_string() + " >= " + constant_.to_decimal();
    case Kind::kRemainder: {
      std::ostringstream os;
      os << sum_.to_string() << " == " << residue_ << " (mod " << modulus_
         << ")";
      return os.str();
    }
    case Kind::kNot:
      return "!(" + lhs_->to_string() + ")";
    case Kind::kAnd:
      return "(" + lhs_->to_string() + " && " + rhs_->to_string() + ")";
    case Kind::kOr:
      return "(" + lhs_->to_string() + " || " + rhs_->to_string() + ")";
  }
  return {};  // unreachable
}

PredicatePtr Predicate::constant(bool value) {
  return PredicatePtr{
      new Predicate{value ? Kind::kTrue : Kind::kFalse}};
}

PredicatePtr Predicate::threshold(LinearSum sum, Nat threshold) {
  auto node = new Predicate{Kind::kThreshold};
  node->sum_ = std::move(sum);
  node->constant_ = std::move(threshold);
  return PredicatePtr{node};
}

PredicatePtr Predicate::unary_threshold(Nat k) {
  LinearSum sum;
  sum.terms.push_back({.variable = 0, .coefficient = 1});
  return threshold(std::move(sum), std::move(k));
}

PredicatePtr Predicate::remainder(LinearSum sum, std::uint64_t modulus,
                                  std::uint64_t residue) {
  if (modulus == 0) throw std::invalid_argument("Predicate: modulus == 0");
  auto node = new Predicate{Kind::kRemainder};
  node->sum_ = std::move(sum);
  node->modulus_ = modulus;
  node->residue_ = residue;
  return PredicatePtr{node};
}

PredicatePtr Predicate::negation(PredicatePtr operand) {
  auto node = new Predicate{Kind::kNot};
  node->lhs_ = std::move(operand);
  return PredicatePtr{node};
}

PredicatePtr Predicate::conjunction(PredicatePtr lhs, PredicatePtr rhs) {
  auto node = new Predicate{Kind::kAnd};
  node->lhs_ = std::move(lhs);
  node->rhs_ = std::move(rhs);
  return PredicatePtr{node};
}

PredicatePtr Predicate::disjunction(PredicatePtr lhs, PredicatePtr rhs) {
  auto node = new Predicate{Kind::kOr};
  node->lhs_ = std::move(lhs);
  node->rhs_ = std::move(rhs);
  return PredicatePtr{node};
}

const LinearSum& Predicate::sum() const {
  assert(kind_ == Kind::kThreshold || kind_ == Kind::kRemainder);
  return sum_;
}

const bignum::Nat& Predicate::threshold_constant() const {
  assert(kind_ == Kind::kThreshold);
  return constant_;
}

std::uint64_t Predicate::modulus() const {
  assert(kind_ == Kind::kRemainder);
  return modulus_;
}

std::uint64_t Predicate::residue() const {
  assert(kind_ == Kind::kRemainder);
  return residue_;
}

const PredicatePtr& Predicate::lhs() const {
  assert(lhs_ != nullptr);
  return lhs_;
}

const PredicatePtr& Predicate::rhs() const {
  assert(rhs_ != nullptr);
  return rhs_;
}

}  // namespace ppde::presburger
