// Parser for quantifier-free Presburger predicates.
//
// Grammar (whitespace-insensitive, C-style precedence ! > && > ||):
//
//   phi    ::= or
//   or     ::= and ('||' and)*
//   and    ::= unary ('&&' unary)*
//   unary  ::= '!' unary | '(' phi ')' | atom | 'true' | 'false'
//   atom   ::= sum cmp number
//            | sum '%' number '==' number        (remainder)
//   cmp    ::= '>=' | '<=' | '>' | '<' | '==' | '!='
//   sum    ::= term (('+'|'-') term)*
//   term   ::= [number '*'] var | number
//   var    ::= 'x' digits                         (x0, x1, ...)
//
// All comparisons normalise to the library's >= / remainder atoms, e.g.
// "x0 < 7" becomes !(x0 >= 7) and "x0 == 5" becomes x0 >= 5 && !(x0 >= 6).
// Threshold constants may be arbitrarily large (bignum); coefficients and
// moduli are machine integers.
//
// Example: parse_predicate("x0 >= 4 && !(x0 >= 7)") — the Figure-1 window.
#pragma once

#include <string_view>

#include "presburger/predicate.hpp"

namespace ppde::presburger {

/// Parse a predicate; throws std::invalid_argument with a position-tagged
/// message on malformed input.
PredicatePtr parse_predicate(std::string_view text);

}  // namespace ppde::presburger
