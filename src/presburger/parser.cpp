#include "presburger/parser.hpp"

#include <cctype>
#include <limits>
#include <stdexcept>
#include <string>

#include "bignum/nat.hpp"

namespace ppde::presburger {

namespace {

using bignum::Nat;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  PredicatePtr parse() {
    PredicatePtr result = parse_or();
    skip_space();
    if (pos_ != text_.size()) fail("trailing input");
    return result;
  }

 private:
  [[noreturn]] void fail(const std::string& message) const {
    throw std::invalid_argument("parse_predicate: " + message +
                                " at position " + std::to_string(pos_));
  }

  void skip_space() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  bool eat(std::string_view token) {
    skip_space();
    if (text_.substr(pos_, token.size()) != token) return false;
    // Keywords must not swallow identifier prefixes ("true" vs "truex").
    if (std::isalpha(static_cast<unsigned char>(token.front()))) {
      const std::size_t end = pos_ + token.size();
      if (end < text_.size() &&
          std::isalnum(static_cast<unsigned char>(text_[end])))
        return false;
    }
    pos_ += token.size();
    return true;
  }

  char peek() {
    skip_space();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  PredicatePtr parse_or() {
    PredicatePtr lhs = parse_and();
    while (eat("||")) lhs = Predicate::disjunction(lhs, parse_and());
    return lhs;
  }

  PredicatePtr parse_and() {
    PredicatePtr lhs = parse_unary();
    while (eat("&&")) lhs = Predicate::conjunction(lhs, parse_unary());
    return lhs;
  }

  PredicatePtr parse_unary() {
    if (eat("!")) return Predicate::negation(parse_unary());
    if (eat("true")) return Predicate::constant(true);
    if (eat("false")) return Predicate::constant(false);
    if (eat("(")) {
      PredicatePtr inner = parse_or();
      if (!eat(")")) fail("expected ')'");
      return inner;
    }
    return parse_atom();
  }

  std::string parse_digits() {
    skip_space();
    std::string digits;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_])))
      digits.push_back(text_[pos_++]);
    if (digits.empty()) fail("expected a number");
    return digits;
  }

  std::uint64_t parse_u64() {
    const Nat value = Nat::from_decimal(parse_digits());
    if (!value.fits_u64()) fail("number too large here");
    return value.to_u64();
  }

  /// term ::= [number '*'] var | number; returns true if a variable term
  /// was appended, false if a constant (added into *constant).
  bool parse_term(LinearSum* sum, std::int64_t sign, Nat* positive_constant,
                  Nat* negative_constant) {
    skip_space();
    std::int64_t coefficient = 1;
    if (std::isdigit(static_cast<unsigned char>(peek()))) {
      const std::uint64_t magnitude = parse_u64();
      if (eat("*")) {
        if (magnitude >
            static_cast<std::uint64_t>(
                std::numeric_limits<std::int64_t>::max()))
          fail("coefficient too large");
        coefficient = static_cast<std::int64_t>(magnitude);
      } else {
        // Pure constant term: fold it into the comparison constant.
        Nat value{magnitude};
        (sign > 0 ? *positive_constant : *negative_constant) += value;
        return false;
      }
    }
    // Variables are 'x' immediately followed by digits; parsed directly
    // because eat()'s keyword guard would refuse the alnum continuation.
    skip_space();
    if (pos_ >= text_.size() || text_[pos_] != 'x')
      fail("expected a variable like x0");
    ++pos_;
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_])))
      fail("expected a variable index");
    const std::uint64_t index = parse_u64();
    sum->terms.push_back({.variable = static_cast<std::size_t>(index),
                          .coefficient = sign * coefficient});
    return true;
  }

  /// sum ::= term (('+'|'-') term)*. Constant terms accumulate separately.
  void parse_sum(LinearSum* sum, Nat* positive_constant,
                 Nat* negative_constant) {
    std::int64_t sign = 1;
    if (eat("-")) sign = -1;
    parse_term(sum, sign, positive_constant, negative_constant);
    while (true) {
      if (eat("+"))
        sign = 1;
      else if (eat("-"))
        sign = -1;
      else
        break;
      parse_term(sum, sign, positive_constant, negative_constant);
    }
  }

  /// Builds `sum + lhs_pos - lhs_neg >= c` normalised to threshold atoms:
  /// with b = c + lhs_neg - lhs_pos, either `sum >= b` (b >= 0) or, for a
  /// negative bound -d, the equivalent `!(-sum >= d + 1)`.
  static PredicatePtr threshold_atom(LinearSum sum, const Nat& c,
                                     const Nat& lhs_pos, const Nat& lhs_neg) {
    const Nat rhs = c + lhs_neg;
    if (rhs >= lhs_pos)
      return Predicate::threshold(std::move(sum), rhs - lhs_pos);
    // Negative bound: sum >= -(d) <=> !(−sum >= d + 1).
    const Nat d = lhs_pos - rhs;
    LinearSum negated = sum;
    for (auto& term : negated.terms) term.coefficient = -term.coefficient;
    return Predicate::negation(
        Predicate::threshold(std::move(negated), d + Nat{1}));
  }

  PredicatePtr parse_atom() {
    LinearSum sum;
    Nat lhs_pos, lhs_neg;
    parse_sum(&sum, &lhs_pos, &lhs_neg);

    if (eat("%")) {
      const std::uint64_t modulus = parse_u64();
      if (modulus == 0) fail("modulus must be positive");
      if (!eat("==")) fail("expected '==' after modulus");
      const std::uint64_t residue = parse_u64();
      if (!lhs_pos.is_zero() || !lhs_neg.is_zero())
        fail("constant terms are not supported in remainder atoms");
      return Predicate::remainder(std::move(sum), modulus, residue);
    }

    enum class Cmp { kGe, kLe, kGt, kLt, kEq, kNe };
    Cmp cmp;
    if (eat(">="))
      cmp = Cmp::kGe;
    else if (eat("<="))
      cmp = Cmp::kLe;
    else if (eat("=="))
      cmp = Cmp::kEq;
    else if (eat("!="))
      cmp = Cmp::kNe;
    else if (eat(">"))
      cmp = Cmp::kGt;
    else if (eat("<"))
      cmp = Cmp::kLt;
    else
      fail("expected a comparison operator");

    const Nat c = Nat::from_decimal(parse_digits());

    // Normalise to >= atoms. For sum s and constant c:
    //   s >= c : direct           s > c : s >= c+1
    //   s <  c : !(s >= c)        s <= c : !(s >= c+1)
    //   s == c : s >= c && !(s >= c+1)
    //   s != c : !(==)
    auto ge = [&](const Nat& bound) {
      return threshold_atom(sum, bound, lhs_pos, lhs_neg);
    };
    switch (cmp) {
      case Cmp::kGe:
        return ge(c);
      case Cmp::kGt:
        return ge(c + Nat{1});
      case Cmp::kLt:
        return Predicate::negation(ge(c));
      case Cmp::kLe:
        return Predicate::negation(ge(c + Nat{1}));
      case Cmp::kEq:
        return Predicate::conjunction(ge(c),
                                      Predicate::negation(ge(c + Nat{1})));
      case Cmp::kNe:
        return Predicate::negation(Predicate::conjunction(
            ge(c), Predicate::negation(ge(c + Nat{1}))));
    }
    fail("unreachable");
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

PredicatePtr parse_predicate(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace ppde::presburger
