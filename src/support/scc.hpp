// Strongly connected components over explicit successor lists.
//
// All exact verifiers in this library reduce fair-run stabilisation to a
// property of *bottom* SCCs of a finite reachability graph (a fair run's
// infinitely-often set is strongly connected and closed under the step
// relation). This is the shared Tarjan pass.
#pragma once

#include <cstdint>
#include <vector>

namespace ppde::support {

struct SccResult {
  /// scc_of[v] = dense SCC index of node v (indices are in reverse
  /// topological order of the condensation, as produced by Tarjan).
  std::vector<std::uint32_t> scc_of;
  std::uint32_t scc_count = 0;

  /// For each SCC: true iff it has no edge into a different SCC.
  std::vector<std::uint8_t> bottom(
      const std::vector<std::vector<std::uint32_t>>& successors) const;
};

/// Iterative Tarjan over `successors` (nodes are 0..successors.size()-1).
SccResult tarjan_scc(const std::vector<std::vector<std::uint32_t>>& successors);

}  // namespace ppde::support
