#include "support/rng.hpp"

namespace ppde::support {

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& limb : s_) limb = splitmix64(x);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

}  // namespace ppde::support
