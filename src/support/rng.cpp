#include "support/rng.hpp"

namespace ppde::support {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& limb : s_) limb = splitmix64(x);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

}  // namespace ppde::support
