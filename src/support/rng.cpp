#include "support/rng.hpp"

namespace ppde::support {

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& limb : s_) limb = splitmix64(x);
  // xoshiro must not start in the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

void Rng::jump() {
  // Canonical xoshiro256** jump constants: the characteristic polynomial
  // raised to 2^128, from the reference implementation by Blackman/Vigna.
  static constexpr std::uint64_t kJump[4] = {
      0x180ec6d33cfd0abaULL, 0xd5a61266f0c9392cULL, 0xa9582618e03fc9aaULL,
      0x39abdc4529b1661cULL};
  std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
  for (const std::uint64_t word : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (word & (1ULL << b)) {
        s0 ^= s_[0];
        s1 ^= s_[1];
        s2 ^= s_[2];
        s3 ^= s_[3];
      }
      operator()();
    }
  }
  s_[0] = s0;
  s_[1] = s1;
  s_[2] = s2;
  s_[3] = s3;
}

}  // namespace ppde::support
