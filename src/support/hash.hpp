// Hash combinators for configuration hashing in the exhaustive verifiers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ppde::support {

/// 64-bit mix (from MurmurHash3 finaliser).
constexpr std::uint64_t mix64(std::uint64_t h) {
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdULL;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ULL;
  h ^= h >> 33;
  return h;
}

/// Incrementally combine a value into a seed hash.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value) {
  return mix64(seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 6) +
                       (seed >> 2)));
}

/// Hash an entire integral sequence.
template <typename T>
std::uint64_t hash_range(const std::vector<T>& values,
                         std::uint64_t seed = 0x2545f4914f6cdd1dULL) {
  std::uint64_t h = seed;
  for (const T& v : values) h = hash_combine(h, static_cast<std::uint64_t>(v));
  return h;
}

}  // namespace ppde::support
