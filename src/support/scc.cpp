#include "support/scc.hpp"

#include <algorithm>

namespace ppde::support {

SccResult tarjan_scc(
    const std::vector<std::vector<std::uint32_t>>& successors) {
  using u32 = std::uint32_t;
  const u32 n = static_cast<u32>(successors.size());
  constexpr u32 kUnvisited = 0xffffffffu;

  SccResult result;
  result.scc_of.assign(n, kUnvisited);
  std::vector<u32> index(n, kUnvisited);
  std::vector<u32> lowlink(n, 0);
  std::vector<std::uint8_t> on_stack(n, 0);
  std::vector<u32> stack;

  struct Frame {
    u32 node;
    u32 child;
  };
  std::vector<Frame> call_stack;
  u32 next_index = 0;

  for (u32 root = 0; root < n; ++root) {
    if (index[root] != kUnvisited) continue;
    call_stack.push_back({root, 0});
    index[root] = lowlink[root] = next_index++;
    stack.push_back(root);
    on_stack[root] = 1;

    while (!call_stack.empty()) {
      Frame& frame = call_stack.back();
      const auto& succs = successors[frame.node];
      if (frame.child < succs.size()) {
        const u32 next = succs[frame.child++];
        if (index[next] == kUnvisited) {
          index[next] = lowlink[next] = next_index++;
          stack.push_back(next);
          on_stack[next] = 1;
          call_stack.push_back({next, 0});
        } else if (on_stack[next]) {
          lowlink[frame.node] = std::min(lowlink[frame.node], index[next]);
        }
      } else {
        const u32 node = frame.node;
        call_stack.pop_back();
        if (!call_stack.empty()) {
          const u32 parent = call_stack.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[node]);
        }
        if (lowlink[node] == index[node]) {
          while (true) {
            const u32 member = stack.back();
            stack.pop_back();
            on_stack[member] = 0;
            result.scc_of[member] = result.scc_count;
            if (member == node) break;
          }
          ++result.scc_count;
        }
      }
    }
  }
  return result;
}

std::vector<std::uint8_t> SccResult::bottom(
    const std::vector<std::vector<std::uint32_t>>& successors) const {
  std::vector<std::uint8_t> is_bottom(scc_count, 1);
  for (std::uint32_t v = 0; v < successors.size(); ++v)
    for (std::uint32_t succ : successors[v])
      if (scc_of[succ] != scc_of[v]) is_bottom[scc_of[v]] = 0;
  return is_bottom;
}

}  // namespace ppde::support
