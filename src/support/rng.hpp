// Deterministic pseudo-random number generation used across the library.
//
// All stochastic components (schedulers, the randomized interpreters, the
// noise generators) take an explicit Rng so that every experiment is
// reproducible from a seed. We use SplitMix64 for seeding and a
// xoshiro256** core: fast, high quality, and trivially copyable so
// simulations can be forked.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ppde::support {

/// One SplitMix64 step: advances `x` by the golden-ratio increment and
/// returns the mixed output. The seed expander behind Rng::reseed and the
/// per-trial / per-stream seed derivation below — one definition, so the
/// engine, serve and sched layers cannot drift apart.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// The (trial+1)-th element of the SplitMix64 stream anchored at
/// `master_seed`: trial i always gets the same decorrelated 64-bit seed no
/// matter which worker (thread or process) runs it, so every ensemble,
/// certificate and shard layout is reproducible from one number. Also used
/// with fixed stream tags to split one trial seed into independent
/// scheduler/topology/fault RNG streams (sched/scenario.hpp).
inline std::uint64_t derive_trial_seed(std::uint64_t master_seed,
                                       std::uint64_t trial) {
  std::uint64_t x = master_seed + trial * 0x9e3779b97f4a7c15ULL;
  return splitmix64(x);
}

/// xoshiro256** PRNG. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a single 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0. Lemire's debiased
  /// multiply-shift rejection method; inline — it sits on the per-meeting
  /// hot path of every scheduler.
  std::uint64_t below(std::uint64_t bound) {
    std::uint64_t x = operator()();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (low < threshold) {
        x = operator()();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli draw with probability num/den. Requires den > 0.
  bool chance(std::uint64_t num, std::uint64_t den) {
    return below(den) < num;
  }

  /// Fair coin flip.
  bool coin() { return (operator()() >> 63) != 0; }

  /// Fill `out[0..count)` with consecutive outputs, exactly as `count`
  /// calls of operator() would. Bulk API for callers that consume draws
  /// in blocks (batch lanes, noise tables); kept trivially loop-shaped so
  /// the stream contract is self-evident.
  void fill(std::uint64_t* out, std::size_t count) {
    for (std::size_t i = 0; i < count; ++i) out[i] = operator()();
  }

  /// Advance the state by 2^128 outputs (the canonical xoshiro256** jump
  /// polynomial). Gives non-overlapping substreams from one seed when a
  /// caller wants many generators without per-stream reseeding. The
  /// engine's trial seeding stays on derive_trial_seed — jump() serves
  /// callers that need provably disjoint streams from a *shared* state.
  void jump();

  /// Raw xoshiro state words s0..s3, in update order. The lockstep batch
  /// stepper (engine/simd.hpp) advances many generators in one SIMD sweep
  /// by transposing these; the sequence it produces is bit-identical to
  /// repeated operator() calls. Layout is part of the contract:
  /// 4 contiguous u64, no padding.
  std::uint64_t* state_words() { return s_; }
  const std::uint64_t* state_words() const { return s_; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

static_assert(sizeof(Rng) == 4 * sizeof(std::uint64_t),
              "batch stepper loads Rng state as 4 contiguous u64 words");

/// Map a raw 64-bit draw onto the open-below unit interval (0, 1]:
/// 53-bit mantissa shifted off zero so log(u) is finite. This is the
/// engine's geometric null-skip draw — the exact expression matters for
/// bit-identicality, so it lives here once instead of being re-derived
/// per call site.
inline double to_unit_open(std::uint64_t raw) {
  return (static_cast<double>(raw >> 11) + 1.0) * 0x1.0p-53;
}

/// Map a raw 64-bit draw onto [0, 1): the sched layer's uniform01.
inline double to_unit(std::uint64_t raw) {
  return static_cast<double>(raw >> 11) * 0x1.0p-53;
}

}  // namespace ppde::support
