// Client side of the serve protocol (S25): connect + one-shot RPC.
#pragma once

#include <string>

namespace ppde::serve {

/// Connect a TCP socket to `host:port` (numeric or resolvable host; the
/// port is the text after the *last* ':'). Returns the fd, or -1 with
/// *error describing the failure.
int connect_hostport(const std::string& hostport, std::string* error);

/// One-shot RPC: connect, send one request frame, read one response
/// frame into *response. Returns false (with *error set) on any failure.
bool rpc(const std::string& hostport, const std::string& request,
         std::string* response, std::string* error);

}  // namespace ppde::serve
