#include "serve/supervisor.hpp"

#include <csignal>
#include <cstdio>
#include <stdexcept>

#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/proto.hpp"
#include "serve/wire.hpp"
#include "serve/worker.hpp"

namespace ppde::serve {

Supervisor::Supervisor(const SupervisorOptions& options) {
  for (unsigned i = 0; i < options.local_workers; ++i) {
    int pair[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
      std::perror("ppde serve: socketpair");
      continue;
    }
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("ppde serve: fork");
      ::close(pair[0]);
      ::close(pair[1]);
      continue;
    }
    if (pid == 0) {
      ::close(pair[0]);
      // Any tracer inherited from the daemon is unusable in the child
      // (shared FILE*, no collector thread): forget it so the worker can
      // install its own capture-mode tracer for stitched queries (S29).
      obs::Tracer::reset_after_fork();
      int status = 0;
      try {
        worker_main(pair[1]);
      } catch (...) {
        status = 1;
      }
      ::close(pair[1]);
      ::_exit(status);
    }
    ::close(pair[1]);
    slots_.push_back(Slot{pair[0], pid, /*busy=*/false, /*alive=*/true});
  }
  for (const std::string& endpoint : options.remote_workers) {
    std::string error;
    const int fd = connect_hostport(endpoint, &error);
    if (fd < 0) {
      std::fprintf(stderr, "ppde serve: remote worker %s unavailable: %s\n",
                   endpoint.c_str(), error.c_str());
      continue;
    }
    slots_.push_back(Slot{fd, /*pid=*/-1, /*busy=*/false, /*alive=*/true});
  }
  if (slots_.empty())
    throw std::runtime_error("ppde serve: no workers could be started");
}

Supervisor::~Supervisor() {
  for (Slot& slot : slots_) {
    if (!slot.alive) continue;
    try {
      write_frame(slot.fd, encode_exit());
    } catch (...) {
      // Already dead; reaped below.
    }
    ::close(slot.fd);
    slot.fd = -1;
  }
  for (Slot& slot : slots_) {
    if (!slot.alive || slot.pid < 0) continue;
    // The exit frame (or the closed socket) terminates the child promptly;
    // give it a short grace period, then force it.
    int status = 0;
    for (int spin = 0; spin < 200; ++spin) {
      const pid_t reaped = ::waitpid(slot.pid, &status, WNOHANG);
      if (reaped == slot.pid || reaped < 0) {
        slot.pid = -1;
        break;
      }
      ::usleep(10'000);
    }
    if (slot.pid >= 0) {
      ::kill(slot.pid, SIGKILL);
      ::waitpid(slot.pid, &status, 0);
    }
    slot.alive = false;
  }
}

int Supervisor::try_acquire() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alive && !slots_[i].busy) {
      slots_[i].busy = true;
      return static_cast<int>(i);
    }
  }
  return -1;
}

void Supervisor::release(int worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  slots_[static_cast<std::size_t>(worker)].busy = false;
}

void Supervisor::report_dead(int worker) {
  std::lock_guard<std::mutex> lock(mutex_);
  Slot& slot = slots_[static_cast<std::size_t>(worker)];
  if (!slot.alive) return;
  slot.alive = false;
  slot.busy = false;
  if (slot.fd >= 0) {
    ::close(slot.fd);
    slot.fd = -1;
  }
  if (slot.pid >= 0) {
    int status = 0;
    ::waitpid(slot.pid, &status, WNOHANG);
    slot.pid = -1;
  }
}

int Supervisor::fd(int worker) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return slots_[static_cast<std::size_t>(worker)].fd;
}

unsigned Supervisor::alive() const {
  std::lock_guard<std::mutex> lock(mutex_);
  unsigned count = 0;
  for (const Slot& slot : slots_)
    if (slot.alive) ++count;
  return count;
}

std::vector<pid_t> Supervisor::live_pids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<pid_t> pids;
  for (const Slot& slot : slots_)
    if (slot.alive && slot.pid >= 0) pids.push_back(slot.pid);
  return pids;
}

bool Supervisor::kill_one() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Slot& slot : slots_) {
    if (slot.alive && slot.pid >= 0) {
      ::kill(slot.pid, SIGKILL);
      // Leave the slot "alive": the next IO attempt fails and the normal
      // report_dead path retires it, which is exactly the code path the
      // serve-smoke killed-worker scenario needs to exercise.
      return true;
    }
  }
  return false;
}

}  // namespace ppde::serve
