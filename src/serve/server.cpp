#include "serve/server.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "bignum/nat.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/ensemble.hpp"
#include "obs/flight.hpp"
#include "obs/prom_http.hpp"
#include "obs/registry.hpp"
#include "obs/rollup.hpp"
#include "obs/trace.hpp"
#include "sched/scenario.hpp"
#include "serve/proto.hpp"
#include "serve/supervisor.hpp"
#include "serve/wire.hpp"
#include "smc/json.hpp"
#include "smc/partial.hpp"

namespace ppde::serve {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Statement fields the daemon computes itself (workers never report them
/// — they are options, not observations): the converted protocol's
/// fingerprint, the initial configuration size, and the ground-truth
/// expected output extra >= k(n). Cached per n; runner threads share it.
struct Statement {
  std::uint64_t fingerprint = 0;
  std::uint32_t num_pointers = 0;
  bignum::Nat threshold;
  compile::ProtocolConversion conversion;
};

const Statement& cached_statement(int n) {
  static std::mutex mutex;
  static std::map<int, std::unique_ptr<Statement>> cache;
  std::lock_guard<std::mutex> lock(mutex);
  std::unique_ptr<Statement>& slot = cache[n];
  if (!slot) {
    const auto lowered =
        compile::lower_program(czerner::build_construction(n).program);
    slot = std::make_unique<Statement>();
    slot->conversion = compile::machine_to_protocol(lowered.machine);
    slot->fingerprint = slot->conversion.protocol.fingerprint();
    slot->num_pointers = slot->conversion.num_pointers;
    slot->threshold = czerner::Construction::threshold(n);
  }
  return *slot;
}

struct Metrics {
  obs::Counter& queries_total;
  obs::Counter& queries_rejected;
  obs::Counter& batches_dispatched;
  obs::Counter& worker_deaths;
  obs::Counter& trials_reassigned;
  obs::Counter& trials_delivered;
  obs::Gauge& active;
  obs::Gauge& queue_depth;
  obs::Histogram& admission_wait;

  static Metrics& get() {
    static Metrics metrics{
        obs::Registry::global().counter("serve.queries_total"),
        obs::Registry::global().counter("serve.queries_rejected"),
        obs::Registry::global().counter("serve.batches_dispatched"),
        obs::Registry::global().counter("serve.worker_deaths"),
        obs::Registry::global().counter("serve.trials_reassigned"),
        obs::Registry::global().counter("serve.trials_delivered"),
        obs::Registry::global().gauge("serve.active_queries"),
        obs::Registry::global().gauge("serve.queue_depth"),
        obs::Registry::global().histogram("serve.admission_wait_micros"),
    };
    return metrics;
  }
};

struct Range {
  std::uint64_t first = 0;
  std::uint64_t count = 0;
};

/// One query's dispatch engine: hand out trial ranges to supervisor
/// workers, collect responses, retire dead workers (their ranges go back
/// on the retry queue — outcomes are pure functions of (trial, seed), so
/// a re-run elsewhere is bit-identical). Shared by certify and ensemble
/// queries; the caller parameterises the stop condition, the dispatch
/// window, and the result sink.
struct Pump {
  Supervisor& supervisor;
  BatchRequest prototype;  ///< first/count overwritten per batch
  std::uint64_t total_trials = 0;
  std::uint64_t shard = 1;
  /// 0 = dispatch everything up front (ensemble: the fleet size is
  /// exact); otherwise cap speculative dispatch at
  /// next_needed() + alive * speculate_factor * shard (certify: the SPRT
  /// usually stops far before max_trials).
  std::uint64_t speculate_factor = 0;
  std::function<std::uint64_t()> next_needed;  ///< used iff speculating
  std::function<bool()> done;
  std::function<void(BatchResult&&)> deliver;
  /// Fired after every successful batch dispatch (the server counts
  /// process-wide dispatches for the kill_worker_after test hook).
  std::function<void()> on_dispatch;
  /// Observability hook (S29): fired for every successfully parsed batch
  /// result, before deliver, with the supervisor slot and the daemon-side
  /// dispatch-to-collect latency. The server stitches worker trace
  /// events, folds metric deltas, and attributes per-worker latency to
  /// the query's flight record here.
  std::function<void(int, const BatchResult&, std::uint64_t)> observe;
  double wall_budget = 0.0;  ///< seconds; <= 0 = unlimited

  // Filled by run() for the flight record.
  std::uint64_t batches_collected = 0;
  std::uint64_t trials_reassigned = 0;

  struct Inflight {
    Range range;
    Clock::time_point sent;
  };

  static std::uint64_t micros_since(Clock::time_point start) {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                              start)
            .count());
  }

  /// "" on success; an error message otherwise.
  std::string run() {
    Metrics& metrics = Metrics::get();
    const Clock::time_point started = Clock::now();
    std::uint64_t frontier = 0;
    std::deque<Range> retry;
    std::map<int, Inflight> inflight;

    const auto retire = [&](int worker, const Range& range, bool reassign) {
      supervisor.report_dead(worker);
      metrics.worker_deaths.add();
      if (reassign) {
        metrics.trials_reassigned.add(range.count);
        trials_reassigned += range.count;
        retry.push_back(range);
      }
    };

    while (!done()) {
      if (wall_budget > 0.0 && seconds_since(started) > wall_budget) {
        drain(inflight);
        return "query wall budget exceeded";
      }
      // Everything the fold can still consume has been folded and nothing
      // is pending: the trial budget is exhausted without a decision.
      if (retry.empty() && inflight.empty() && frontier >= total_trials)
        break;

      // Dispatch: retries first (they block the fold frontier), then
      // fresh ranges up to the speculation window.
      while (true) {
        std::uint64_t window_end = total_trials;
        if (speculate_factor != 0) {
          const std::uint64_t alive =
              std::max<std::uint64_t>(1, supervisor.alive());
          const std::uint64_t base = next_needed();
          window_end =
              std::min(total_trials,
                       base + alive * speculate_factor * shard);
        }
        const bool from_retry = !retry.empty();
        Range range;
        if (from_retry) {
          range = retry.front();
        } else if (frontier < window_end) {
          range.first = frontier;
          range.count = std::min(shard, total_trials - frontier);
        } else {
          break;
        }
        const int worker = supervisor.try_acquire();
        if (worker < 0) break;
        prototype.first = range.first;
        prototype.count = range.count;
        bool sent = false;
        try {
          obs::ObsSpan span("dispatch", "serve");
          span.set_value(static_cast<double>(range.first));
          write_frame(supervisor.fd(worker), encode_batch_request(prototype));
          sent = true;
        } catch (...) {
        }
        if (!sent) {
          // The range was not consumed; just retire the worker.
          retire(worker, range, /*reassign=*/false);
          continue;
        }
        if (from_retry)
          retry.pop_front();
        else
          frontier += range.count;
        inflight.emplace(worker, Inflight{range, Clock::now()});
        metrics.batches_dispatched.add();
        if (on_dispatch) on_dispatch();
      }

      if (inflight.empty()) {
        if (supervisor.alive() == 0) return "all workers died";
        // Work remains but every live worker is serving another query.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        continue;
      }

      // Collect whatever responses are ready.
      std::vector<pollfd> fds;
      std::vector<int> workers;
      fds.reserve(inflight.size());
      for (const auto& [worker, entry] : inflight) {
        fds.push_back(pollfd{supervisor.fd(worker), POLLIN, 0});
        workers.push_back(worker);
      }
      ::poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
      for (std::size_t i = 0; i < fds.size(); ++i) {
        if ((fds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        const int worker = workers[i];
        const Inflight entry = inflight.at(worker);
        inflight.erase(worker);
        std::string payload;
        bool ok = false;
        try {
          ok = read_frame(supervisor.fd(worker), payload);
        } catch (...) {
        }
        if (!ok) {
          retire(worker, entry.range, /*reassign=*/true);
          continue;
        }
        try {
          BatchResult result =
              parse_batch_result(Json::parse(payload), prototype.ensemble);
          ++batches_collected;
          if (observe) observe(worker, result, micros_since(entry.sent));
          deliver(std::move(result));
        } catch (const std::exception&) {
          retire(worker, entry.range, /*reassign=*/true);
          continue;
        }
        supervisor.release(worker);
      }
    }

    drain(inflight);
    return "";
  }

  /// Read (and deliver) every outstanding response so worker sockets hold
  /// no stale frames for the next query. Late results of ranges that were
  /// also re-run elsewhere are exact duplicates; the sinks drop them.
  void drain(std::map<int, Inflight>& inflight) {
    Metrics& metrics = Metrics::get();
    for (const auto& [worker, entry] : inflight) {
      std::string payload;
      bool ok = false;
      try {
        ok = read_frame(supervisor.fd(worker), payload);
      } catch (...) {
      }
      if (!ok) {
        supervisor.report_dead(worker);
        metrics.worker_deaths.add();
        continue;
      }
      try {
        BatchResult result =
            parse_batch_result(Json::parse(payload), prototype.ensemble);
        ++batches_collected;
        if (observe) observe(worker, result, micros_since(entry.sent));
        deliver(std::move(result));
        supervisor.release(worker);
      } catch (const std::exception&) {
        supervisor.report_dead(worker);
        metrics.worker_deaths.add();
      }
    }
    inflight.clear();
  }
};

}  // namespace

struct Server::Impl {
  ServerOptions options;
  Supervisor supervisor;
  int listen_fd = -1;
  std::uint16_t port = 0;
  Clock::time_point started = Clock::now();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> dispatched_total{0};
  std::atomic<bool> kill_fired{false};

  /// One admitted query waiting for a runner.
  struct QueuedJob {
    int fd = -1;
    QueryParams query;
    std::uint64_t seq = 0;  ///< query_seq == trace_id (S29)
    Clock::time_point enqueued;
  };

  std::mutex queue_mutex;
  std::condition_variable queue_cv;
  std::deque<QueuedJob> queue;
  std::vector<std::thread> runners;

  std::atomic<std::uint64_t> next_seq{1};
  obs::FlightRecorder flight;
  std::unique_ptr<obs::PromHttpServer> prom;

  explicit Impl(const ServerOptions& server_options)
      : options(server_options),
        supervisor(SupervisorOptions{server_options.workers,
                                     server_options.remote_workers}),
        flight(server_options.flight_capacity) {
    if (options.prom_port >= 0)
      prom = std::make_unique<obs::PromHttpServer>(
          static_cast<std::uint16_t>(options.prom_port));
    listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0)
      throw std::runtime_error("ppde serve: cannot create socket");
    const int one = 1;
    ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(options.port);
    if (::inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1)
      throw std::runtime_error("ppde serve: bad host '" + options.host + "'");
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
            0 ||
        ::listen(listen_fd, 16) < 0)
      throw std::runtime_error("ppde serve: cannot bind " + options.host +
                               ":" + std::to_string(options.port));
    sockaddr_in bound{};
    socklen_t bound_len = sizeof bound;
    ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound),
                  &bound_len);
    port = ntohs(bound.sin_port);
  }

  ~Impl() {
    if (listen_fd >= 0) ::close(listen_fd);
  }

  // -- query execution ----------------------------------------------------

  /// kill_worker_after test hook: SIGKILL one local worker exactly once,
  /// after the Nth batch dispatched across all queries.
  void note_dispatch() {
    const std::uint64_t count = ++dispatched_total;
    if (options.kill_worker_after != 0 &&
        count == options.kill_worker_after && !kill_fired.exchange(true))
      supervisor.kill_one();
  }

  /// The shared observability tail of a batch result (S29): stitch the
  /// worker's trace events into the daemon's tracer, fold its metric
  /// deltas into `worker.*`, and attribute latency to the flight record.
  void observe_result(int worker, const BatchResult& result,
                      std::uint64_t micros, obs::QueryFlight& record) {
    if (!result.metric_deltas.empty())
      obs::merge_deltas("worker.", result.metric_deltas);
    if (obs::Tracer* tracer = obs::Tracer::active();
        tracer != nullptr && result.worker_pid != 0 &&
        !result.trace.empty()) {
      const std::string group =
          "ppde worker " + std::to_string(result.worker_pid);
      for (const obs::CapturedEvent& event : result.trace)
        tracer->emit_foreign(result.worker_pid, group, event);
    }
    record.trials_executed += result.records.size();
    record.trials_executed += result.ensemble_records.size();
    Metrics::get().trials_delivered.add(result.records.size() +
                                        result.ensemble_records.size());
    for (obs::WorkerLatency& latency : record.workers) {
      if (latency.worker != worker) continue;
      ++latency.batches;
      latency.total_micros += micros;
      latency.max_micros = std::max(latency.max_micros, micros);
      return;
    }
    record.workers.push_back(obs::WorkerLatency{worker, 1, micros, micros});
  }

  std::string run_certify(const QueryParams& query, obs::QueryFlight& record) {
    const Clock::time_point began = Clock::now();
    const Statement& statement = cached_statement(query.n);
    const std::uint64_t m = statement.num_pointers + query.extra;
    const bool expected =
        bignum::Nat(query.extra) >= statement.threshold;
    const smc::CertifyOptions certify_options = certify_options_of(query);
    smc::StreamingMerger merger(certify_options);

    obs::ObsSpan query_span("query", "serve");
    query_span.set_value(static_cast<double>(record.seq));

    Pump pump{
        .supervisor = supervisor,
        .prototype =
            BatchRequest{/*ensemble=*/false, query.n, query.extra, expected,
                         query.seed, 0, 0, query.window, query.budget,
                         query.dispatch, query.scenario, query.batch,
                         /*trace_id=*/obs::Tracer::active() != nullptr
                             ? record.seq
                             : 0},
        .total_trials = certify_options.max_trials,
        .shard = std::max<std::uint64_t>(1, query.shard ? query.shard
                                                        : options.shard),
        .speculate_factor = 2};
    pump.next_needed = [&] { return merger.next_needed(); };
    pump.done = [&] { return merger.decided(); };
    pump.deliver = [&](BatchResult&& result) {
      obs::ObsSpan fold_span("merge_fold", "serve");
      fold_span.set_value(static_cast<double>(result.first));
      merger.absorb(result.first, std::move(result.records));
    };
    pump.on_dispatch = [this] { note_dispatch(); };
    pump.observe = [&](int worker, const BatchResult& result,
                       std::uint64_t micros) {
      observe_result(worker, result, micros, record);
    };
    pump.wall_budget = options.max_query_seconds;
    const std::string error = pump.run();
    record.batches = pump.batches_collected;
    record.reassigned = pump.trials_reassigned;
    if (!error.empty()) return encode_error(error);

    smc::Certificate certificate = merger.finish();
    certificate.protocol_fingerprint = statement.fingerprint;
    certificate.population = statement.conversion.initial_config(m).total();
    certificate.expected_output = expected;
    certificate.wall_seconds = seconds_since(began);
    certificate.threads_used = supervisor.alive();
    record.verdict = smc::to_string(certificate.verdict);
    char digest_hex[20];
    std::snprintf(digest_hex, sizeof digest_hex, "%016llx",
                  static_cast<unsigned long long>(
                      smc::certificate_digest(certificate)));
    record.digest = digest_hex;

    smc::JsonWriter out;
    out.field("ok", true);
    out.field("verdict", std::string_view(smc::to_string(
                             certificate.verdict)));
    out.raw_field("certificate", smc::to_jsonl(certificate));
    return out.finish();
  }

  std::string run_ensemble(const QueryParams& query,
                           obs::QueryFlight& record) {
    const Clock::time_point began = Clock::now();
    const Statement& statement = cached_statement(query.n);
    const std::uint64_t m = statement.num_pointers + query.extra;
    const std::uint64_t total = query.trials;
    if (total == 0) return encode_error("ensemble query with zero trials");

    std::vector<EnsembleRecord> records(total);
    std::vector<char> seen(total, 0);
    std::uint64_t remaining = total;

    obs::ObsSpan query_span("query", "serve");
    query_span.set_value(static_cast<double>(record.seq));

    Pump pump{
        .supervisor = supervisor,
        .prototype =
            BatchRequest{/*ensemble=*/true, query.n, query.extra,
                         /*expected=*/false, query.seed, 0, 0, query.window,
                         query.budget, query.dispatch, query.scenario,
                         query.batch,
                         /*trace_id=*/obs::Tracer::active() != nullptr
                             ? record.seq
                             : 0},
        .total_trials = total,
        .shard = std::max<std::uint64_t>(1, query.shard ? query.shard
                                                        : options.shard),
        .speculate_factor = 0};
    pump.done = [&] { return remaining == 0; };
    pump.deliver = [&](BatchResult&& result) {
      for (const EnsembleRecord& record_entry : result.ensemble_records) {
        if (record_entry.trial >= total || seen[record_entry.trial]) continue;
        seen[record_entry.trial] = 1;
        records[record_entry.trial] = record_entry;
        --remaining;
      }
    };
    pump.on_dispatch = [this] { note_dispatch(); };
    pump.observe = [&](int worker, const BatchResult& result,
                       std::uint64_t micros) {
      observe_result(worker, result, micros, record);
    };
    pump.wall_budget = options.max_query_seconds;
    const std::string error = pump.run();
    record.batches = pump.batches_collected;
    record.reassigned = pump.trials_reassigned;
    if (!error.empty()) return encode_error(error);

    // Reconstruct per-trial results in trial order; aggregation is then
    // exactly engine::run_ensemble's (same records, same order).
    std::vector<engine::TrialResult> results(total);
    for (std::uint64_t i = 0; i < total; ++i) {
      results[i] = to_trial_result(records[i]);
      results[i].seed = engine::derive_trial_seed(query.seed, i);
    }
    engine::EnsembleStats stats = engine::aggregate(results);
    stats.wall_seconds = seconds_since(began);
    stats.threads_used = supervisor.alive();

    smc::JsonWriter out;
    out.field("ok", true);
    // Non-default scenarios run on the per-agent fallback in the workers;
    // report the engine that actually executed.
    out.raw_field("summary",
                  smc::to_jsonl(stats, m, query.seed,
                                query.scenario.empty()
                                    ? engine::EngineKind::kCountNullSkip
                                    : engine::EngineKind::kPerAgent));
    return out.finish();
  }

  std::string run_stats(const QueryParams& query) {
    std::uint64_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      depth = queue.size();
    }
    smc::JsonWriter out;
    out.field("ok", true);
    if (query.format == "prometheus") {
      // The scrape text as one escaped JSON string — for clients that want
      // the exposition without the daemon opening a second port.
      out.field("prometheus",
                std::string_view(obs::Registry::global().to_prometheus()));
      return out.finish();
    }
    if (!query.format.empty())
      return encode_error("unknown stats format '" + query.format + "'");
    out.field("uptime_seconds", seconds_since(started));
    out.field("workers_alive", static_cast<std::uint64_t>(supervisor.alive()));
    out.field("workers_total", static_cast<std::uint64_t>(supervisor.total()));
    out.field("queue_depth", depth);
    out.raw_field("metrics", obs::Registry::global().to_json());
    if (query.recent != 0) {
      // Newest-first flight records, each already a complete JSON object.
      std::string array = "[";
      bool first_record = true;
      for (const obs::QueryFlight& record : flight.recent(query.recent)) {
        if (!first_record) array += ",";
        first_record = false;
        array += obs::FlightRecorder::to_json(record);
      }
      array += "]";
      out.raw_field("recent", array);
    }
    return out.finish();
  }

  // -- connection handling ------------------------------------------------

  static void respond_and_close(int fd, const std::string& payload) {
    try {
      write_frame(fd, payload);
    } catch (...) {
      // The client went away; nothing to clean up beyond the fd.
    }
    ::close(fd);
  }

  /// Record a query rejected at admission in the flight recorder, so
  /// `stats?recent=N` explains refusals, not just completions.
  void record_rejection(const QueryParams& query, const std::string& why) {
    obs::QueryFlight record;
    record.seq = next_seq.fetch_add(1);
    record.req = query.req;
    record.n = query.n < 0 ? 0 : static_cast<std::uint64_t>(query.n);
    record.trials = query.trials;
    record.outcome = "rejected";
    record.detail = why;
    flight.add(std::move(record));
  }

  void handle_connection(int fd) {
    Metrics& metrics = Metrics::get();
    // Bound how long a silent client can stall the accept loop.
    timeval timeout{5, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    std::string payload;
    QueryParams query;
    try {
      if (!read_frame(fd, payload)) {
        ::close(fd);
        return;
      }
      query = parse_query(Json::parse(payload));
    } catch (const std::exception& error) {
      respond_and_close(fd, encode_error(error.what()));
      return;
    }
    metrics.queries_total.add();
    if (query.req == "stats") {
      respond_and_close(fd, run_stats(query));
      return;
    }
    if (query.req == "shutdown") {
      smc::JsonWriter out;
      out.field("ok", true);
      out.field("stopping", true);
      respond_and_close(fd, out.finish());
      request_stop();
      return;
    }
    if (query.req != "certify" && query.req != "ensemble") {
      metrics.queries_rejected.add();
      record_rejection(query, "unknown req '" + query.req + "'");
      respond_and_close(fd, encode_error("unknown req '" + query.req + "'"));
      return;
    }
    if (query.n < 1) {
      metrics.queries_rejected.add();
      record_rejection(query, "n must be >= 1");
      respond_and_close(fd, encode_error("n must be >= 1"));
      return;
    }
    // Reject a malformed scenario descriptor at admission, before the
    // query consumes any worker time.
    if (!query.scenario.empty()) {
      try {
        (void)sched::Scenario::parse(query.scenario);
      } catch (const std::exception& error) {
        metrics.queries_rejected.add();
        record_rejection(query, error.what());
        respond_and_close(fd, encode_error(error.what()));
        return;
      }
    }
    if (query.trials > options.max_trials_cap) {
      metrics.queries_rejected.add();
      record_rejection(query, "trial budget exceeds the daemon cap");
      respond_and_close(
          fd, encode_error("trial budget exceeds the daemon cap of " +
                           std::to_string(options.max_trials_cap)));
      return;
    }
    {
      std::lock_guard<std::mutex> lock(queue_mutex);
      if (queue.size() >= options.queue_limit) {
        metrics.queries_rejected.add();
        record_rejection(query, "queue full");
        respond_and_close(fd, encode_error("queue full", /*busy=*/true));
        return;
      }
      queue.push_back(QueuedJob{fd, std::move(query), next_seq.fetch_add(1),
                                Clock::now()});
      metrics.queue_depth.set(static_cast<double>(queue.size()));
    }
    queue_cv.notify_one();
  }

  void runner_loop() {
    Metrics& metrics = Metrics::get();
    while (true) {
      QueuedJob job;
      {
        std::unique_lock<std::mutex> lock(queue_mutex);
        queue_cv.wait(lock,
                      [&] { return stop.load() || !queue.empty(); });
        if (queue.empty()) return;  // stop requested and drained
        job = std::move(queue.front());
        queue.pop_front();
        metrics.queue_depth.set(static_cast<double>(queue.size()));
      }
      const std::uint64_t waited = Pump::micros_since(job.enqueued);
      metrics.admission_wait.record(waited);
      metrics.active.set(metrics.active.value() + 1.0);

      obs::QueryFlight record;
      record.seq = job.seq;
      record.req = job.query.req;
      record.n = static_cast<std::uint64_t>(job.query.n);
      record.trials = job.query.trials;
      record.outcome = "ok";
      record.queue_wait_micros = waited;
      // A queue_wait instant on the daemon track marks where the query sat
      // before a runner picked it up (the span itself belongs to no thread).
      {
        obs::ObsSpan wait_mark("queue_wait", "serve");
        wait_mark.set_value(static_cast<double>(waited));
      }

      const Clock::time_point began = Clock::now();
      std::string response;
      try {
        response = job.query.req == "ensemble"
                       ? run_ensemble(job.query, record)
                       : run_certify(job.query, record);
      } catch (const std::exception& error) {
        response = encode_error(error.what());
        record.detail = error.what();
      }
      record.wall_seconds = seconds_since(began);
      // An "ok":false frame is an error outcome; capture the message so the
      // flight recorder explains it without the client's copy of the reply.
      if (response.rfind("{\"ok\":false", 0) == 0) {
        record.outcome = "error";
        if (record.detail.empty()) record.detail = response;
      }
      flight.add(std::move(record));
      respond_and_close(job.fd, response);
      metrics.active.set(metrics.active.value() - 1.0);
    }
  }

  void run() {
    std::signal(SIGPIPE, SIG_IGN);
    // Announce every live local worker as a trace track group up front, so
    // a fleet member shows in the stitched trace even before (or without)
    // its first traced batch.
    if (obs::Tracer* tracer = obs::Tracer::active()) {
      for (const pid_t pid : supervisor.live_pids())
        tracer->announce_process(
            static_cast<std::uint64_t>(pid),
            "ppde worker " + std::to_string(pid));
    }
    // The scrape listener's thread starts here — after the constructor's
    // fork()s — never in the constructor.
    if (prom) prom->start();
    for (unsigned i = 0; i < std::max(1u, options.max_active); ++i)
      runners.emplace_back([this] { runner_loop(); });
    while (!stop.load()) {
      pollfd poll_fd{listen_fd, POLLIN, 0};
      const int ready = ::poll(&poll_fd, 1, 200);
      if (ready <= 0) continue;
      const int conn = ::accept(listen_fd, nullptr, nullptr);
      if (conn < 0) continue;
      handle_connection(conn);
    }
    queue_cv.notify_all();
    for (std::thread& runner : runners) runner.join();
    runners.clear();
    if (prom) prom->stop();
    // Reject whatever was still queued (runners exit once the queue is
    // empty; anything left arrived in the stop window).
    std::lock_guard<std::mutex> lock(queue_mutex);
    for (QueuedJob& job : queue)
      respond_and_close(job.fd, encode_error("server shutting down"));
    queue.clear();
  }

  void request_stop() {
    stop.store(true);
    queue_cv.notify_all();
  }
};

Server::Server(const ServerOptions& options)
    : impl_(std::make_unique<Impl>(options)) {}

Server::~Server() = default;

std::uint16_t Server::port() const { return impl_->port; }

std::uint16_t Server::prom_port() const {
  return impl_->prom ? impl_->prom->port() : 0;
}

void Server::run() { impl_->run(); }

void Server::request_stop() { impl_->request_stop(); }

}  // namespace ppde::serve
