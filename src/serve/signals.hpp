// Thread-based SIGINT/SIGTERM watching (S25).
//
// Async signal handlers can safely do almost nothing; flushing the obs
// trace ring, emitting a final progress line or unwinding a daemon all
// take locks and do IO. SignalWatch therefore never runs code in handler
// context: it blocks SIGINT/SIGTERM in the whole process (pthread_sigmask
// before any other thread is spawned, so every later thread inherits the
// mask) and dedicates one thread to sigwait(). When a signal arrives, the
// callback runs on that ordinary thread, free to use any API.
//
// Used by the long-running CLI verbs (certify/ensemble/verify flush the
// trace and print a final heartbeat before exiting, instead of dropping
// buffered spans) and by the serve daemon's graceful-shutdown path.
#pragma once

#include <functional>
#include <thread>

#include <signal.h>

namespace ppde::serve {

class SignalWatch {
 public:
  /// Block SIGINT/SIGTERM process-wide and start the watcher thread;
  /// `callback(signo)` runs at most once, on the watcher thread, when the
  /// first signal arrives. Construct before spawning worker threads so
  /// they inherit the blocked mask.
  explicit SignalWatch(std::function<void(int)> callback);

  /// Stops the watcher (wakes it with a self-directed SIGTERM that is
  /// consumed as the cancel token) and restores the previous signal mask
  /// on this thread. If the callback is currently running, waits for it.
  ~SignalWatch();

  SignalWatch(const SignalWatch&) = delete;
  SignalWatch& operator=(const SignalWatch&) = delete;

 private:
  std::function<void(int)> callback_;
  std::thread watcher_;
  sigset_t old_mask_;
  // Plain bool written before the wake-up signal and read after sigwait
  // returns; the pthread_kill/sigwait pair orders the accesses.
  volatile bool cancelled_ = false;
};

}  // namespace ppde::serve
