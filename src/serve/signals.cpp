#include "serve/signals.hpp"

#include <utility>

#include <pthread.h>

namespace ppde::serve {

SignalWatch::SignalWatch(std::function<void(int)> callback)
    : callback_(std::move(callback)) {
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, &old_mask_);
  watcher_ = std::thread([this, mask] {
    int signo = 0;
    if (sigwait(&mask, &signo) != 0) return;
    if (cancelled_) return;  // woken by the destructor's cancel token
    callback_(signo);
  });
}

SignalWatch::~SignalWatch() {
  cancelled_ = true;
  // Wake the watcher if it is still parked in sigwait: a thread-directed
  // SIGTERM is consumed there (it is blocked, so it cannot run a handler).
  // If the watcher already consumed a real signal, the callback has run or
  // is running — pthread_kill then delivers to a thread past sigwait with
  // the signal still blocked, where it stays pending and harmless until
  // the mask is restored below... so only send while the thread is parked:
  // cancelled_ plus join() makes the race benign either way, because a
  // pending *blocked* signal is discarded on thread exit.
  pthread_kill(watcher_.native_handle(), SIGTERM);
  watcher_.join();
  pthread_sigmask(SIG_SETMASK, &old_mask_, nullptr);
}

}  // namespace ppde::serve
