// Wire framing + JSON decoding for the serve daemon (S25).
//
// Every message on a serve socket — client query, worker batch, response —
// is one *frame*: a 4-byte big-endian payload length followed by that many
// bytes of UTF-8 JSON. Length-prefix framing keeps the stream trivially
// delimitable (no sentinel scanning, no incremental parser state across
// reads) and makes oversized/garbage input rejectable before any parsing.
//
// The repo so far only *emits* JSON (smc::JsonWriter); the daemon must
// also read it. Json below is a deliberately small recursive-descent
// parser for the subset the protocol uses (objects, arrays, strings with
// escapes, numbers, booleans, null), with one property the merge layer
// depends on: number tokens are kept as raw text, so 64-bit integers are
// re-parsed exactly (strtoull on the original token) instead of passing
// through a double. Doubles that must round-trip bit-exactly (llr,
// convergence times) travel as hex strings of their IEEE-754 bit pattern
// and never touch the number path at all.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ppde::serve {

/// Largest accepted frame payload (defensive cap, well above any real
/// batch of trial records).
constexpr std::size_t kMaxFrameBytes = 64u << 20;

/// Write one length-prefixed frame; retries on EINTR / short writes.
/// Throws std::runtime_error on IO failure (e.g. the peer died — the
/// supervisor turns that into worker-death handling).
void write_frame(int fd, std::string_view payload);

/// Read one frame into `payload`. Returns false on clean EOF at a frame
/// boundary (the peer closed); throws std::runtime_error on IO failure,
/// EOF mid-frame, or a length above `max_bytes`.
bool read_frame(int fd, std::string& payload,
                std::size_t max_bytes = kMaxFrameBytes);

/// A parsed JSON value.
class Json {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parse one complete JSON document; throws std::runtime_error (with an
  /// offset) on malformed input or trailing garbage.
  static Json parse(std::string_view text);

  Kind kind() const { return kind_; }

  // -- value accessors (throw std::runtime_error on kind mismatch) -------
  bool as_bool() const;
  /// Number token via strtod.
  double as_double() const;
  /// Number token via strtoull base 10 — exact for any u64 the peer
  /// printed as a decimal integer (no double round-trip).
  std::uint64_t as_u64() const;
  const std::string& as_string() const;
  /// String of hex digits -> u64 (how IEEE-754 bit patterns travel).
  std::uint64_t as_hex_u64() const;
  const std::vector<Json>& items() const;  ///< array elements

  /// Re-serialise this value as compact JSON. Number tokens are emitted
  /// verbatim (the raw-text property above makes this an exact
  /// round-trip); strings are re-escaped. Used by `ppde client --recent`
  /// to print the flight-recorder array as JSONL.
  std::string dump() const;

  // -- object access ------------------------------------------------------
  /// Member lookup; nullptr when absent or not an object.
  const Json* find(std::string_view key) const;
  /// Typed member getters with fallbacks for absent members; a present
  /// member of the wrong kind throws.
  std::uint64_t u64(std::string_view key, std::uint64_t fallback) const;
  double dbl(std::string_view key, double fallback) const;
  bool boolean(std::string_view key, bool fallback) const;
  std::string str(std::string_view key, std::string_view fallback) const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::string text_;  ///< raw number token, or decoded string contents
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace ppde::serve
