// Message schemas of the serve protocol (S25).
//
// Two conversations share the same frame format (serve/wire.hpp):
//
//   client <-> daemon      {"req":"certify"|"ensemble"|"stats"|"shutdown",
//                           ...query parameters...}
//                          -> {"ok":true, ...} | {"ok":false,"error":...}
//   daemon <-> worker      {"op":"batch", kind, n, extra, expected, seed,
//                           first, count, window, budget}
//                          -> {"op":"result","first",...,"records":[...]}
//                          {"op":"exit"}
//
// Trial records travel as compact JSON arrays, with every 64-bit integer
// as a decimal number (exact — the wire parser re-reads the raw token via
// strtoull) and every double as the hex string of its IEEE-754 bit
// pattern, so a record crosses the wire bit-identically and the
// coordinator's canonical fold (smc/partial.hpp) sees exactly what an
// in-process fold would.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/ensemble.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/wire.hpp"
#include "smc/certify.hpp"
#include "smc/partial.hpp"

namespace ppde::serve {

// ---------------------------------------------------------------------------
// Client <-> daemon.

/// One client query. For req == "certify", `trials` is the SPRT trial
/// budget (CertifyOptions::max_trials); for "ensemble" it is the exact
/// fleet size. `shard` (certify/ensemble) overrides the daemon's per-batch
/// dispatch size; 0 keeps the server default. Defaults mirror the CLI
/// `certify` flag defaults so a client request omitting a field means the
/// same thing as the CLI omitting the flag.
struct QueryParams {
  std::string req = "certify";
  int n = 1;
  std::uint32_t extra = 0;
  std::uint64_t trials = 4096;
  std::uint64_t seed = 42;
  double delta = 0.01;
  double indifference = 0.05;
  double alpha = 0.01;
  double beta = 0.01;
  std::uint64_t window = 90'000'000;
  std::uint64_t budget = 2'000'000'000;
  std::uint64_t shard = 0;
  /// Execution core (S26): "bytecode" or "interp". A query omitting the
  /// field means bytecode, like the CLI omitting --dispatch; results are
  /// bit-identical either way.
  std::string dispatch = "bytecode";
  /// Stress scenario descriptor (S27), e.g. "ring+corrupt:0.001". Empty
  /// means the default scenario (uniform scheduler, no faults) and — like
  /// the digest-scoping rule it mirrors — is omitted from the encoded
  /// query, so pre-S27 clients and servers interoperate unchanged. A
  /// malformed descriptor is rejected at admission with an error frame.
  std::string scenario{};
  /// Lockstep batch width (S28): 0 = auto, 1 = off, N = N lanes per
  /// worker. 0 is omitted from the encoded query (pre-S28 interop);
  /// results and digests are bit-identical at every width, so the field
  /// only steers worker-side throughput.
  std::uint32_t batch = 0;
  /// Stats-only (S29): "" = the JSON reply, "prometheus" = wrap the
  /// text exposition in {"ok":true,"prometheus":"..."}. Omitted when
  /// empty (pre-S29 interop).
  std::string format{};
  /// Stats-only (S29): return the newest N flight-recorder records as a
  /// "recent" array. 0 (omitted on the wire) disables.
  std::uint64_t recent = 0;
};

std::string encode_query(const QueryParams& query);
QueryParams parse_query(const Json& json);

/// The CertifyOptions a query denotes (threads/batch are irrelevant
/// server-side — sharding replaces them — and left at defaults; neither
/// is part of the certificate payload).
smc::CertifyOptions certify_options_of(const QueryParams& query);

std::string encode_error(const std::string& message, bool busy = false);

// ---------------------------------------------------------------------------
// Daemon <-> worker.

struct BatchRequest {
  bool ensemble = false;  ///< certify record shape otherwise
  int n = 1;
  std::uint32_t extra = 0;
  bool expected = false;  ///< certify: the output being certified
  std::uint64_t seed = 0;
  std::uint64_t first = 0;
  std::uint64_t count = 0;
  std::uint64_t window = 0;
  std::uint64_t budget = 0;
  std::string dispatch = "bytecode";  ///< execution core, forwarded verbatim
  /// Scenario descriptor, forwarded verbatim ("" = default, field omitted
  /// on the wire — workers predating S27 only ever see default batches).
  std::string scenario{};
  /// Lockstep batch width, forwarded verbatim (0 = auto, omitted on the
  /// wire; a pre-S28 worker ignoring it still ships identical records).
  std::uint32_t batch = 0;
  /// Distributed tracing (S29): the daemon's query_seq for the query
  /// this batch belongs to, 0 (omitted on the wire) when the daemon is
  /// not tracing. A nonzero id asks the worker to run the batch under a
  /// capture-mode tracer and ship the drained span deltas back in the
  /// result; a pre-S29 worker ignores it and ships identical records.
  std::uint64_t trace_id = 0;
};

std::string encode_batch_request(const BatchRequest& request);
/// Throws std::runtime_error unless `json` is a batch op.
BatchRequest parse_batch_request(const Json& json);

std::string encode_exit();
bool is_exit(const Json& json);

/// One ensemble trial's wire record: exactly the TrialResult fields
/// engine::aggregate and the ensemble JSONL summary consume (per-trial
/// wall/CPU time is an execution record, not a statistic, and stays
/// process-local).
struct EnsembleRecord {
  std::uint64_t trial = 0;
  bool stabilised = false;
  bool output = false;
  std::uint64_t interactions = 0;
  std::uint64_t parallel_time_bits = 0;
  std::uint64_t meetings = 0;
  std::uint64_t firings = 0;
  std::uint64_t null_skip_batches = 0;
  std::uint64_t skipped_meetings = 0;
  std::uint64_t consensus_flips = 0;
  std::uint64_t weight_updates = 0;
  std::uint64_t tree_descents = 0;

  bool operator==(const EnsembleRecord&) const = default;
};

EnsembleRecord make_ensemble_record(std::uint64_t trial,
                                    const engine::TrialResult& result);
/// Inverse of make_ensemble_record up to the unshipped fields (seed,
/// consensus_since, wall) — everything aggregate() reads round-trips.
engine::TrialResult to_trial_result(const EnsembleRecord& record);

struct BatchResult {
  std::uint64_t first = 0;
  std::vector<smc::TrialRecord> records;           ///< certify batches
  std::vector<EnsembleRecord> ensemble_records;    ///< ensemble batches
  /// Observability sidecar (S29). None of it feeds the canonical fold:
  /// parse_batch_result round-trips records identically whether these
  /// fields are present, absent, or dropped by an old peer.
  std::uint64_t worker_pid = 0;  ///< producing process, for track groups
  std::vector<obs::CapturedEvent> trace;  ///< drained worker span deltas
  std::vector<obs::MetricSnapshot> metric_deltas;  ///< registry deltas
};

std::string encode_batch_result(const BatchResult& result, bool ensemble);
/// Throws std::runtime_error unless `json` is a result op of the expected
/// shape.
BatchResult parse_batch_result(const Json& json, bool ensemble);

}  // namespace ppde::serve
