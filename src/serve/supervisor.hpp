// Worker-process supervision for the serve daemon (S25).
//
// The supervisor preforks N local workers over AF_UNIX socketpairs and
// connects to any configured remote workers (`ppde worker` processes over
// TCP). Forking happens in the constructor, which the server runs BEFORE
// spawning any thread: fork() from a multithreaded process only
// async-signal-safely reaches exec or _exit, and our children run real
// library code. The same rule means workers are never *re*spawned — a
// dead worker's slot is retired and its in-flight trial range reassigned
// to survivors (serve/server.cpp), which is statistically free because
// trial outcomes are pure functions of (trial, seed).
//
// Death detection is IO-based: a SIGKILLed or crashed local worker closes
// its socketpair end, so the next write fails with EPIPE (SIGPIPE is
// ignored by the server) or the pending read returns EOF; remote workers
// behave identically via TCP. report_dead() retires the slot and reaps
// the child.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include <sys/types.h>

namespace ppde::serve {

struct SupervisorOptions {
  unsigned local_workers = 2;
  /// host:port endpoints of `ppde worker --port=...` processes.
  std::vector<std::string> remote_workers;
};

class Supervisor {
 public:
  /// Fork local workers / connect remote ones. Call before spawning any
  /// thread. Throws std::runtime_error if not a single worker could be
  /// brought up (a partially-connected remote set only warns to stderr).
  explicit Supervisor(const SupervisorOptions& options);

  /// Send exit frames, close fds, reap children (SIGKILL stragglers).
  ~Supervisor();

  /// Index of an idle live worker, marked busy — or -1 if none.
  int try_acquire();
  void release(int worker);
  /// Retire a worker whose socket failed: close the fd, reap the child.
  /// Idempotent.
  void report_dead(int worker);

  int fd(int worker) const;
  unsigned alive() const;
  unsigned total() const { return static_cast<unsigned>(slots_.size()); }

  /// Pids of the live *local* workers (remote slots have none). The
  /// daemon announces these as trace track groups up front, so every
  /// fleet member appears in a stitched trace even before its first
  /// batch (S29).
  std::vector<pid_t> live_pids() const;

  /// Test hook (serve-smoke's killed-worker path): SIGKILL one live local
  /// worker. Returns false if there is none.
  bool kill_one();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

 private:
  struct Slot {
    int fd = -1;
    pid_t pid = -1;  ///< -1 for remote workers
    bool busy = false;
    bool alive = false;
  };

  mutable std::mutex mutex_;
  std::vector<Slot> slots_;
};

}  // namespace ppde::serve
