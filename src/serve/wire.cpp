#include "serve/wire.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include <unistd.h>

namespace ppde::serve {

namespace {

[[noreturn]] void io_error(const char* what) {
  throw std::runtime_error(std::string("serve wire: ") + what + ": " +
                           std::strerror(errno));
}

void write_full(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_error("write");
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

/// Read exactly `size` bytes. Returns false on EOF before the first byte
/// (only meaningful at a frame boundary); throws on error or partial EOF.
bool read_full(int fd, char* data, std::size_t size) {
  std::size_t got = 0;
  while (got < size) {
    const ssize_t n = ::read(fd, data + got, size - got);
    if (n < 0) {
      if (errno == EINTR) continue;
      io_error("read");
    }
    if (n == 0) {
      if (got == 0) return false;
      throw std::runtime_error("serve wire: EOF mid-frame");
    }
    got += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

void write_frame(int fd, std::string_view payload) {
  if (payload.size() > kMaxFrameBytes)
    throw std::runtime_error("serve wire: frame too large to send");
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  char header[4] = {static_cast<char>(size >> 24),
                    static_cast<char>(size >> 16),
                    static_cast<char>(size >> 8), static_cast<char>(size)};
  write_full(fd, header, sizeof header);
  write_full(fd, payload.data(), payload.size());
}

bool read_frame(int fd, std::string& payload, std::size_t max_bytes) {
  unsigned char header[4];
  if (!read_full(fd, reinterpret_cast<char*>(header), sizeof header))
    return false;
  const std::uint32_t size = (std::uint32_t{header[0]} << 24) |
                             (std::uint32_t{header[1]} << 16) |
                             (std::uint32_t{header[2]} << 8) |
                             std::uint32_t{header[3]};
  if (size > max_bytes)
    throw std::runtime_error("serve wire: frame exceeds size limit");
  payload.resize(size);
  if (size > 0 && !read_full(fd, payload.data(), size))
    throw std::runtime_error("serve wire: EOF mid-frame");
  return true;
}

// ---------------------------------------------------------------------------
// JSON parsing.

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Json parse_document() {
    Json value = parse_value();
    skip_spaces();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error("serve json: " + std::string(what) +
                             " at offset " + std::to_string(pos_));
  }

  void skip_spaces() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Json parse_value() {
    skip_spaces();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return make_bool(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return make_bool(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return Json{};
      default: return parse_number();
    }
  }

  static Json make_bool(bool value) {
    Json json;
    json.kind_ = Json::Kind::kBool;
    json.bool_ = value;
    return json;
  }

  Json parse_object() {
    expect('{');
    Json json;
    json.kind_ = Json::Kind::kObject;
    skip_spaces();
    if (peek() == '}') {
      ++pos_;
      return json;
    }
    while (true) {
      skip_spaces();
      Json key = parse_string();
      skip_spaces();
      expect(':');
      json.members_.emplace_back(std::move(key.text_), parse_value());
      skip_spaces();
      const char c = peek();
      ++pos_;
      if (c == '}') return json;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Json parse_array() {
    expect('[');
    Json json;
    json.kind_ = Json::Kind::kArray;
    skip_spaces();
    if (peek() == ']') {
      ++pos_;
      return json;
    }
    while (true) {
      json.items_.push_back(parse_value());
      skip_spaces();
      const char c = peek();
      ++pos_;
      if (c == ']') return json;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned hex_digit(char c) {
    if (c >= '0' && c <= '9') return static_cast<unsigned>(c - '0');
    if (c >= 'a' && c <= 'f') return static_cast<unsigned>(c - 'a' + 10);
    if (c >= 'A' && c <= 'F') return static_cast<unsigned>(c - 'A' + 10);
    fail("bad \\u escape");
  }

  Json parse_string() {
    expect('"');
    Json json;
    json.kind_ = Json::Kind::kString;
    std::string& out = json.text_;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return json;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char escape = text_[pos_++];
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i)
            code = code * 16 + hex_digit(text_[pos_++]);
          // UTF-8 encode the BMP codepoint (surrogate pairs are not used
          // by any peer in this protocol; encode the raw value).
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-')
        ++pos_;
      else
        break;
    }
    if (pos_ == start) fail("expected a value");
    Json json;
    json.kind_ = Json::Kind::kNumber;
    json.text_.assign(text_.substr(start, pos_ - start));
    return json;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Json Json::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

namespace {

[[noreturn]] void kind_error(const char* expected) {
  throw std::runtime_error(std::string("serve json: value is not ") +
                           expected);
}

}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("a boolean");
  return bool_;
}

double Json::as_double() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  return std::strtod(text_.c_str(), nullptr);
}

std::uint64_t Json::as_u64() const {
  if (kind_ != Kind::kNumber) kind_error("a number");
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text_.c_str(), &end, 10);
  if (end == text_.c_str() || *end != '\0')
    throw std::runtime_error("serve json: number is not a u64: " + text_);
  return value;
}

const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) kind_error("a string");
  return text_;
}

std::uint64_t Json::as_hex_u64() const {
  if (kind_ != Kind::kString) kind_error("a hex string");
  char* end = nullptr;
  errno = 0;
  const unsigned long long value = std::strtoull(text_.c_str(), &end, 16);
  if (errno != 0 || end == text_.c_str() || *end != '\0')
    throw std::runtime_error("serve json: bad hex string: " + text_);
  return value;
}

const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) kind_error("an array");
  return items_;
}

namespace {

void dump_string(std::string& out, const std::string& text) {
  out += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

}  // namespace

std::string Json::dump() const {
  std::string out;
  switch (kind_) {
    case Kind::kNull: out = "null"; break;
    case Kind::kBool: out = bool_ ? "true" : "false"; break;
    case Kind::kNumber: out = text_; break;  // raw token: exact round-trip
    case Kind::kString: dump_string(out, text_); break;
    case Kind::kArray: {
      out = "[";
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        out += items_[i].dump();
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out = "{";
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        dump_string(out, members_[i].first);
        out += ':';
        out += members_[i].second.dump();
      }
      out += '}';
      break;
    }
  }
  return out;
}

const Json* Json::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_)
    if (name == key) return &value;
  return nullptr;
}

std::uint64_t Json::u64(std::string_view key, std::uint64_t fallback) const {
  const Json* member = find(key);
  return member != nullptr ? member->as_u64() : fallback;
}

double Json::dbl(std::string_view key, double fallback) const {
  const Json* member = find(key);
  return member != nullptr ? member->as_double() : fallback;
}

bool Json::boolean(std::string_view key, bool fallback) const {
  const Json* member = find(key);
  return member != nullptr ? member->as_bool() : fallback;
}

std::string Json::str(std::string_view key, std::string_view fallback) const {
  const Json* member = find(key);
  return member != nullptr ? member->as_string() : std::string(fallback);
}

}  // namespace ppde::serve
