#include "serve/proto.hpp"

#include <bit>
#include <cstdio>
#include <stdexcept>

#include "smc/json.hpp"

namespace ppde::serve {

namespace {

void append_u64(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  out += buffer;
}

void append_hex_string(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "\"%016llx\"",
                static_cast<unsigned long long>(value));
  out += buffer;
}

std::uint64_t element_u64(const std::vector<Json>& fields, std::size_t i) {
  if (i >= fields.size())
    throw std::runtime_error("serve proto: short record array");
  return fields[i].as_u64();
}

std::uint64_t element_hex(const std::vector<Json>& fields, std::size_t i) {
  if (i >= fields.size())
    throw std::runtime_error("serve proto: short record array");
  return fields[i].as_hex_u64();
}

const std::string& element_str(const std::vector<Json>& fields,
                               std::size_t i) {
  if (i >= fields.size())
    throw std::runtime_error("serve proto: short record array");
  return fields[i].as_string();
}

void append_json_string(std::string& out, std::string_view text) {
  out += '"';
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof buffer, "\\u%04x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buffer;
    } else {
      out += c;
    }
  }
  out += '"';
}

// -- observability sidecar of a batch result (S29) --------------------------
//
// Trace events travel as compact arrays
//   ["name","cat",kind,ts_ns,dur_ns,tid,has_value,"value-bits"]
// with ts/dur as exact decimal u64 and the optional span value as the hex
// of its IEEE-754 bit pattern (the wire's standard double convention).
// Metric deltas are tagged by kind:
//   ["name",0,counter_delta]
//   ["name",1,"gauge-bits"]
//   ["name",2,count,sum,max,[[bucket,delta],...]]   (sparse buckets)

void append_trace_events(std::string& out,
                         const std::vector<obs::CapturedEvent>& events) {
  out += ",\"trace\":[";
  bool first = true;
  for (const obs::CapturedEvent& event : events) {
    if (!first) out += ',';
    first = false;
    out += '[';
    append_json_string(out, event.name);
    out += ',';
    append_json_string(out, event.cat);
    out += ',';
    append_u64(out, static_cast<std::uint64_t>(event.kind));
    out += ',';
    append_u64(out, event.ts_ns);
    out += ',';
    append_u64(out, event.dur_ns);
    out += ',';
    append_u64(out, event.tid);
    out += ',';
    out += event.has_value ? '1' : '0';
    out += ',';
    append_hex_string(out, std::bit_cast<std::uint64_t>(event.value));
    out += ']';
  }
  out += ']';
}

void append_metric_deltas(std::string& out,
                          const std::vector<obs::MetricSnapshot>& deltas) {
  out += ",\"metrics\":[";
  bool first = true;
  for (const obs::MetricSnapshot& delta : deltas) {
    if (!first) out += ',';
    first = false;
    out += '[';
    append_json_string(out, delta.name);
    out += ',';
    switch (delta.kind) {
      case obs::MetricKind::kCounter:
        out += '0';
        out += ',';
        append_u64(out, static_cast<std::uint64_t>(delta.value));
        break;
      case obs::MetricKind::kGauge:
        out += '1';
        out += ',';
        append_hex_string(out, std::bit_cast<std::uint64_t>(delta.value));
        break;
      case obs::MetricKind::kHistogram: {
        out += '2';
        out += ',';
        append_u64(out, delta.count);
        out += ',';
        append_u64(out, delta.sum);
        out += ',';
        append_u64(out, delta.max);
        out += ",[";
        bool first_bucket = true;
        for (std::size_t b = 0; b < delta.buckets.size(); ++b) {
          if (delta.buckets[b] == 0) continue;
          if (!first_bucket) out += ',';
          first_bucket = false;
          out += '[';
          append_u64(out, b);
          out += ',';
          append_u64(out, delta.buckets[b]);
          out += ']';
        }
        out += ']';
        break;
      }
    }
    out += ']';
  }
  out += ']';
}

std::vector<obs::CapturedEvent> parse_trace_events(const Json& array) {
  std::vector<obs::CapturedEvent> events;
  for (const Json& entry : array.items()) {
    const std::vector<Json>& fields = entry.items();
    obs::CapturedEvent event;
    event.name = element_str(fields, 0);
    event.cat = element_str(fields, 1);
    const std::uint64_t kind = element_u64(fields, 2);
    if (kind > static_cast<std::uint64_t>(obs::TraceEvent::Kind::kInstant))
      throw std::runtime_error("serve proto: bad trace event kind");
    event.kind = static_cast<obs::TraceEvent::Kind>(kind);
    event.ts_ns = element_u64(fields, 3);
    event.dur_ns = element_u64(fields, 4);
    event.tid = static_cast<std::uint32_t>(element_u64(fields, 5));
    event.has_value = element_u64(fields, 6) != 0;
    event.value = std::bit_cast<double>(element_hex(fields, 7));
    events.push_back(std::move(event));
  }
  return events;
}

std::vector<obs::MetricSnapshot> parse_metric_deltas(const Json& array) {
  std::vector<obs::MetricSnapshot> deltas;
  for (const Json& entry : array.items()) {
    const std::vector<Json>& fields = entry.items();
    obs::MetricSnapshot delta;
    delta.name = element_str(fields, 0);
    switch (element_u64(fields, 1)) {
      case 0:
        delta.kind = obs::MetricKind::kCounter;
        delta.value = static_cast<double>(element_u64(fields, 2));
        break;
      case 1:
        delta.kind = obs::MetricKind::kGauge;
        delta.value = std::bit_cast<double>(element_hex(fields, 2));
        break;
      case 2: {
        delta.kind = obs::MetricKind::kHistogram;
        delta.count = element_u64(fields, 2);
        delta.sum = element_u64(fields, 3);
        delta.max = element_u64(fields, 4);
        if (fields.size() < 6)
          throw std::runtime_error("serve proto: short histogram delta");
        for (const Json& pair : fields[5].items()) {
          const std::vector<Json>& parts = pair.items();
          const std::uint64_t bucket = element_u64(parts, 0);
          if (bucket >= obs::Histogram::kBuckets)
            throw std::runtime_error("serve proto: bad histogram bucket");
          if (delta.buckets.size() <= bucket)
            delta.buckets.resize(bucket + 1, 0);
          delta.buckets[bucket] = element_u64(parts, 1);
        }
        break;
      }
      default:
        throw std::runtime_error("serve proto: bad metric delta kind");
    }
    deltas.push_back(std::move(delta));
  }
  return deltas;
}

}  // namespace

std::string encode_query(const QueryParams& query) {
  smc::JsonWriter json;
  json.field("req", std::string_view(query.req));
  json.field("n", query.n);
  json.field("extra", static_cast<std::uint64_t>(query.extra));
  json.field("trials", query.trials);
  json.field("seed", query.seed);
  json.field("delta", query.delta);
  json.field("indifference", query.indifference);
  json.field("alpha", query.alpha);
  json.field("beta", query.beta);
  json.field("window", query.window);
  json.field("budget", query.budget);
  json.field("shard", query.shard);
  json.field("dispatch", std::string_view(query.dispatch));
  if (!query.scenario.empty())
    json.field("scenario", std::string_view(query.scenario));
  if (query.batch != 0)
    json.field("batch", static_cast<std::uint64_t>(query.batch));
  if (!query.format.empty())
    json.field("format", std::string_view(query.format));
  if (query.recent != 0) json.field("recent", query.recent);
  return json.finish();
}

QueryParams parse_query(const Json& json) {
  QueryParams query;
  query.req = json.str("req", "");
  if (query.req.empty())
    throw std::runtime_error("serve proto: query without a req field");
  query.n = static_cast<int>(json.u64("n", 1));
  query.extra = static_cast<std::uint32_t>(json.u64("extra", 0));
  query.trials = json.u64("trials", query.trials);
  query.seed = json.u64("seed", query.seed);
  query.delta = json.dbl("delta", query.delta);
  query.indifference = json.dbl("indifference", query.indifference);
  query.alpha = json.dbl("alpha", query.alpha);
  query.beta = json.dbl("beta", query.beta);
  query.window = json.u64("window", query.window);
  query.budget = json.u64("budget", query.budget);
  query.shard = json.u64("shard", 0);
  query.dispatch = json.str("dispatch", query.dispatch);
  query.scenario = json.str("scenario", "");
  query.batch = static_cast<std::uint32_t>(json.u64("batch", 0));
  query.format = json.str("format", "");
  query.recent = json.u64("recent", 0);
  return query;
}

smc::CertifyOptions certify_options_of(const QueryParams& query) {
  smc::CertifyOptions options;
  options.delta = query.delta;
  options.indifference = query.indifference;
  options.alpha = query.alpha;
  options.beta = query.beta;
  options.max_trials = query.trials;
  options.seed = query.seed;
  options.sim.stable_window = query.window;
  options.sim.max_interactions = query.budget;
  options.dispatch = isa::parse_dispatch(query.dispatch);
  // Throws std::invalid_argument on a malformed descriptor — callers
  // reject the query at admission (handle_connection) before any work.
  if (!query.scenario.empty())
    options.scenario = sched::Scenario::parse(query.scenario);
  options.batch_width = query.batch;
  return options;
}

std::string encode_error(const std::string& message, bool busy) {
  smc::JsonWriter json;
  json.field("ok", false);
  json.field("error", std::string_view(message));
  if (busy) json.field("busy", true);
  return json.finish();
}

std::string encode_batch_request(const BatchRequest& request) {
  smc::JsonWriter json;
  json.field("op", std::string_view("batch"));
  json.field("kind",
             std::string_view(request.ensemble ? "ensemble" : "certify"));
  json.field("n", request.n);
  json.field("extra", static_cast<std::uint64_t>(request.extra));
  json.field("expected", request.expected);
  json.field("seed", request.seed);
  json.field("first", request.first);
  json.field("count", request.count);
  json.field("window", request.window);
  json.field("budget", request.budget);
  json.field("dispatch", std::string_view(request.dispatch));
  if (!request.scenario.empty())
    json.field("scenario", std::string_view(request.scenario));
  if (request.batch != 0)
    json.field("batch", static_cast<std::uint64_t>(request.batch));
  if (request.trace_id != 0) json.field("trace_id", request.trace_id);
  return json.finish();
}

BatchRequest parse_batch_request(const Json& json) {
  if (json.str("op", "") != "batch")
    throw std::runtime_error("serve proto: expected a batch op");
  BatchRequest request;
  request.ensemble = json.str("kind", "certify") == "ensemble";
  request.n = static_cast<int>(json.u64("n", 1));
  request.extra = static_cast<std::uint32_t>(json.u64("extra", 0));
  request.expected = json.boolean("expected", false);
  request.seed = json.u64("seed", 0);
  request.first = json.u64("first", 0);
  request.count = json.u64("count", 0);
  request.window = json.u64("window", 90'000'000);
  request.budget = json.u64("budget", 2'000'000'000);
  request.dispatch = json.str("dispatch", request.dispatch);
  request.scenario = json.str("scenario", "");
  request.batch = static_cast<std::uint32_t>(json.u64("batch", 0));
  request.trace_id = json.u64("trace_id", 0);
  return request;
}

std::string encode_exit() { return R"({"op":"exit"})"; }

bool is_exit(const Json& json) { return json.str("op", "") == "exit"; }

EnsembleRecord make_ensemble_record(std::uint64_t trial,
                                    const engine::TrialResult& result) {
  EnsembleRecord record;
  record.trial = trial;
  record.stabilised = result.sim.stabilised;
  record.output = result.sim.output;
  record.interactions = result.sim.interactions;
  record.parallel_time_bits =
      std::bit_cast<std::uint64_t>(result.sim.parallel_time);
  record.meetings = result.metrics.meetings;
  record.firings = result.metrics.firings;
  record.null_skip_batches = result.metrics.null_skip_batches;
  record.skipped_meetings = result.metrics.skipped_meetings;
  record.consensus_flips = result.metrics.consensus_flips;
  record.weight_updates = result.metrics.weight_updates;
  record.tree_descents = result.metrics.tree_descents;
  return record;
}

engine::TrialResult to_trial_result(const EnsembleRecord& record) {
  engine::TrialResult result;
  result.sim.stabilised = record.stabilised;
  result.sim.output = record.output;
  result.sim.interactions = record.interactions;
  result.sim.parallel_time = std::bit_cast<double>(record.parallel_time_bits);
  result.metrics.meetings = record.meetings;
  result.metrics.firings = record.firings;
  result.metrics.null_skip_batches = record.null_skip_batches;
  result.metrics.skipped_meetings = record.skipped_meetings;
  result.metrics.consensus_flips = record.consensus_flips;
  result.metrics.weight_updates = record.weight_updates;
  result.metrics.tree_descents = record.tree_descents;
  return result;
}

std::string encode_batch_result(const BatchResult& result, bool ensemble) {
  std::string out = R"({"op":"result","first":)";
  append_u64(out, result.first);
  out += ",\"records\":[";
  bool first_record = true;
  if (!ensemble) {
    for (const smc::TrialRecord& record : result.records) {
      if (!first_record) out += ',';
      first_record = false;
      out += '[';
      append_u64(out, record.trial);
      out += ',';
      out += record.success ? '1' : '0';
      out += ',';
      out += record.stabilised ? '1' : '0';
      out += ',';
      append_hex_string(out, record.time_bits);
      out += ',';
      append_u64(out, record.meetings);
      out += ',';
      append_u64(out, record.firings);
      out += ']';
    }
  } else {
    for (const EnsembleRecord& record : result.ensemble_records) {
      if (!first_record) out += ',';
      first_record = false;
      out += '[';
      append_u64(out, record.trial);
      out += ',';
      out += record.stabilised ? '1' : '0';
      out += ',';
      out += record.output ? '1' : '0';
      out += ',';
      append_u64(out, record.interactions);
      out += ',';
      append_hex_string(out, record.parallel_time_bits);
      for (const std::uint64_t value :
           {record.meetings, record.firings, record.null_skip_batches,
            record.skipped_meetings, record.consensus_flips,
            record.weight_updates, record.tree_descents}) {
        out += ',';
        append_u64(out, value);
      }
      out += ']';
    }
  }
  out += ']';
  if (result.worker_pid != 0) {
    out += ",\"pid\":";
    append_u64(out, result.worker_pid);
  }
  if (!result.trace.empty()) append_trace_events(out, result.trace);
  if (!result.metric_deltas.empty())
    append_metric_deltas(out, result.metric_deltas);
  out += '}';
  return out;
}

BatchResult parse_batch_result(const Json& json, bool ensemble) {
  if (json.str("op", "") != "result")
    throw std::runtime_error("serve proto: expected a result op");
  BatchResult result;
  result.first = json.u64("first", 0);
  const Json* records = json.find("records");
  if (records == nullptr)
    throw std::runtime_error("serve proto: result without records");
  for (const Json& entry : records->items()) {
    const std::vector<Json>& fields = entry.items();
    if (!ensemble) {
      smc::TrialRecord record;
      record.trial = element_u64(fields, 0);
      record.success = element_u64(fields, 1) != 0;
      record.stabilised = element_u64(fields, 2) != 0;
      record.time_bits = element_hex(fields, 3);
      record.meetings = element_u64(fields, 4);
      record.firings = element_u64(fields, 5);
      result.records.push_back(record);
    } else {
      EnsembleRecord record;
      record.trial = element_u64(fields, 0);
      record.stabilised = element_u64(fields, 1) != 0;
      record.output = element_u64(fields, 2) != 0;
      record.interactions = element_u64(fields, 3);
      record.parallel_time_bits = element_hex(fields, 4);
      record.meetings = element_u64(fields, 5);
      record.firings = element_u64(fields, 6);
      record.null_skip_batches = element_u64(fields, 7);
      record.skipped_meetings = element_u64(fields, 8);
      record.consensus_flips = element_u64(fields, 9);
      record.weight_updates = element_u64(fields, 10);
      record.tree_descents = element_u64(fields, 11);
      result.ensemble_records.push_back(record);
    }
  }
  result.worker_pid = json.u64("pid", 0);
  if (const Json* trace = json.find("trace"))
    result.trace = parse_trace_events(*trace);
  if (const Json* metrics = json.find("metrics"))
    result.metric_deltas = parse_metric_deltas(*metrics);
  return result;
}

}  // namespace ppde::serve
