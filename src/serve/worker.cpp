#include "serve/worker.hpp"

#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/count_sim.hpp"
#include "engine/ensemble.hpp"
#include "engine/executor.hpp"
#include "isa/compiled.hpp"
#include "obs/registry.hpp"
#include "obs/rollup.hpp"
#include "obs/trace.hpp"
#include "sched/scenario.hpp"
#include "serve/proto.hpp"
#include "serve/wire.hpp"
#include "smc/certify.hpp"
#include "smc/partial.hpp"

namespace ppde::serve {

namespace {

/// Per-n converted protocol + activity index, built once per worker
/// process and reused across batches (construction dominates small-batch
/// latency otherwise).
struct CachedProtocol {
  compile::ProtocolConversion conversion;
  std::optional<engine::PairIndex> index;
};

CachedProtocol& cached_protocol(int n) {
  static std::map<int, std::unique_ptr<CachedProtocol>> cache;
  std::unique_ptr<CachedProtocol>& slot = cache[n];
  if (!slot) {
    const auto lowered =
        compile::lower_program(czerner::build_construction(n).program);
    slot = std::make_unique<CachedProtocol>(CachedProtocol{
        compile::machine_to_protocol(lowered.machine), std::nullopt});
    slot->index.emplace(slot->conversion.protocol);
  }
  return *slot;
}

BatchResult run_certify_batch(const BatchRequest& request) {
  CachedProtocol& cached = cached_protocol(request.n);
  const std::uint64_t m = cached.conversion.num_pointers + request.extra;
  const pp::Config initial = cached.conversion.initial_config(m);
  smc::CertifyOptions options;
  options.seed = request.seed;
  options.sim.stable_window = request.window;
  options.sim.max_interactions = request.budget;
  options.dispatch = isa::parse_dispatch(request.dispatch);
  options.batch_width = request.batch;
  if (!request.scenario.empty())
    options.scenario = sched::Scenario::parse(request.scenario);
  // threads = 1: a worker process is single-threaded by design — the
  // daemon's parallelism is processes, and a forked child must not spawn
  // threads anyway.
  const std::vector<smc::TrialOutcome> outcomes = smc::run_outcome_range(
      cached.conversion.protocol, initial, request.expected, options,
      request.first, request.count, /*threads=*/1);
  BatchResult result;
  result.first = request.first;
  result.records.reserve(outcomes.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i)
    result.records.push_back(
        smc::make_trial_record(request.first + i, outcomes[i]));
  return result;
}

BatchResult run_ensemble_batch(const BatchRequest& request) {
  CachedProtocol& cached = cached_protocol(request.n);
  const std::uint64_t m = cached.conversion.num_pointers + request.extra;
  const pp::Config initial = cached.conversion.initial_config(m);
  pp::SimulationOptions sim_stop;
  sim_stop.stable_window = request.window;
  sim_stop.max_interactions = request.budget;
  // The shared trial body (S27): the serve protocol runs the S21 default
  // engine (count + null-skip) for the default scenario; a non-default
  // scenario falls back to the per-agent simulator inside the executor.
  sched::Scenario scenario;
  if (!request.scenario.empty())
    scenario = sched::Scenario::parse(request.scenario);
  engine::TrialExecutor executor(
      cached.conversion.protocol, engine::EngineKind::kCountNullSkip,
      isa::parse_dispatch(request.dispatch), scenario, /*workers=*/1,
      request.batch);
  std::vector<engine::TrialResult> trials;
  if (executor.batch_width() > 1) {
    // Lockstep path (S28): the whole shard is one contiguous range on this
    // worker's BatchSimulator. Per-trial purity makes the records
    // bit-identical to the per-trial loop below.
    trials.resize(request.count);
    executor.run_range(/*worker=*/0, initial, request.seed, request.first,
                       request.count, sim_stop, trials.data());
  } else {
    const auto body = [&](unsigned worker, std::uint64_t,
                          std::uint64_t seed) {
      return executor.run(worker, initial, seed, sim_stop);
    };
    trials = engine::run_trial_range(request.first, request.count,
                                     /*threads=*/1, request.seed, body);
  }
  BatchResult result;
  result.first = request.first;
  result.ensemble_records.reserve(trials.size());
  for (std::size_t i = 0; i < trials.size(); ++i)
    result.ensemble_records.push_back(
        make_ensemble_record(request.first + i, trials[i]));
  return result;
}

}  // namespace

bool worker_main(int fd) {
  // Process-lifetime observability state (S29). The tracker's baseline
  // excludes whatever registry values were inherited across fork(), so
  // only this worker's own work ever ships as a delta; the static
  // persists across worker_listen connections.
  static obs::DeltaTracker tracker;
  static obs::Counter& trials_executed =
      obs::Registry::global().counter("serve.trials_executed");
  static obs::Histogram& batch_micros =
      obs::Registry::global().histogram("serve.worker_batch_micros");

  std::string payload;
  while (read_frame(fd, payload)) {
    const Json message = Json::parse(payload);
    if (is_exit(message)) return true;
    const BatchRequest request = parse_batch_request(message);

    // A traced query lazily installs this process's capture tracer; it
    // stays installed for the worker's lifetime (cheap when idle — the
    // rings are only drained for traced batches).
    if (request.trace_id != 0 && obs::Tracer::active() == nullptr)
      obs::Tracer::start_capture();

    const std::uint64_t start_ns = obs::now_ns();
    BatchResult result;
    {
      obs::ObsSpan span("worker_batch", "serve");
      span.set_value(static_cast<double>(request.trace_id));
      result = request.ensemble ? run_ensemble_batch(request)
                                : run_certify_batch(request);
    }
    trials_executed.add(request.count);
    batch_micros.record((obs::now_ns() - start_ns) / 1000);

    result.worker_pid = static_cast<std::uint64_t>(::getpid());
    if (request.trace_id != 0 && obs::Tracer::capturing())
      result.trace = obs::Tracer::drain_capture();
    result.metric_deltas = tracker.collect();
    write_frame(fd, encode_batch_result(result, request.ensemble));
  }
  return false;
}

int worker_listen(std::uint16_t port) {
  const int listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("ppde worker: socket");
    return 1;
  }
  const int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd, 4) < 0) {
    std::perror("ppde worker: bind/listen");
    ::close(listen_fd);
    return 1;
  }
  std::fprintf(stderr, "ppde worker: listening on port %u\n",
               static_cast<unsigned>(port));
  bool exit_requested = false;
  while (!exit_requested) {
    const int conn = ::accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    try {
      exit_requested = worker_main(conn);
    } catch (const std::exception& error) {
      std::fprintf(stderr, "ppde worker: connection failed: %s\n",
                   error.what());
    }
    ::close(conn);
  }
  ::close(listen_fd);
  return 0;
}

}  // namespace ppde::serve
