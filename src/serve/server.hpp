// The `ppde serve` daemon (S25).
//
// One process accepts certification and ensemble queries over the framed
// JSON protocol (serve/wire.hpp, serve/proto.hpp), admits them through a
// bounded queue with per-query trial and wall budgets, and fans trial
// batches out to a prefork pool of worker processes (serve/supervisor.hpp)
// plus optional remote `ppde worker` endpoints. Workers ship ordered
// per-trial records; the daemon replays the canonical certification fold
// via smc::StreamingMerger, so the certificate digest is byte-identical to
// in-process smc::certify under any worker count, shard size, arrival
// order, or mid-query worker death (ranges of a dead worker are re-run on
// survivors — outcomes are pure functions of (trial, seed)).
//
// Threading: the Supervisor forks its workers in the Server constructor,
// strictly before run() spawns the accept loop and runner threads, because
// fork() from a multithreaded process is only safe up to exec. The accept
// loop parses one request per connection and answers stats/shutdown
// inline; certify/ensemble jobs go to the queue, executed by up to
// `max_active` runner threads that compete for workers through the
// supervisor (a worker serves one batch of one query at a time).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace ppde::serve {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = ephemeral; Server::port() reports the bound port either way.
  std::uint16_t port = 0;
  unsigned workers = 2;  ///< local forked worker processes
  std::vector<std::string> remote_workers;
  unsigned max_active = 2;    ///< concurrently executing queries
  unsigned queue_limit = 16;  ///< admission bound (beyond active)
  /// Admission control: a query asking for more trials is rejected.
  std::uint64_t max_trials_cap = 1u << 20;
  /// Per-query wall budget; an exceeded query returns an error (workers
  /// finish their in-flight batch, no partial certificate is emitted).
  double max_query_seconds = 600.0;
  /// Default trials per dispatched batch (a query's `shard` overrides).
  std::uint64_t shard = 8;
  /// Test hook (CI killed-worker scenario): SIGKILL one local worker after
  /// this many batches have been dispatched process-wide. 0 = never.
  std::uint64_t kill_worker_after = 0;
  /// Prometheus scrape endpoint (S29): -1 = disabled, 0 = ephemeral
  /// (Server::prom_port() reports the bound port), N = fixed port. A
  /// single-threaded HTTP listener serving GET /metrics on 127.0.0.1.
  std::int32_t prom_port = -1;
  /// Flight-recorder capacity: how many recent query records `stats`
  /// with `recent=N` can reach back over.
  std::size_t flight_capacity = 128;
};

class Server {
 public:
  /// Forks the worker pool and binds the listening socket — so port() is
  /// known before run(), and no thread exists yet when fork() happens.
  /// Throws std::runtime_error if the socket or every worker fails.
  explicit Server(const ServerOptions& options);
  ~Server();

  std::uint16_t port() const;

  /// The bound Prometheus scrape port, or 0 when disabled.
  std::uint16_t prom_port() const;

  /// Serve until request_stop(). Ignores SIGPIPE for the whole process
  /// (worker deaths surface as EPIPE write errors, not signals).
  void run();

  /// Stop accepting, finish active queries, return from run(). Safe from
  /// any thread (e.g. a SignalWatch callback).
  void request_stop();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ppde::serve
