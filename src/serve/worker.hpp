// Trial-batch worker process (S25).
//
// A worker is a single-threaded process that serves `batch` ops on one
// socket: build (and cache) the Czerner protocol conversion for the
// requested n, run trials [first, first + count) with globally derived
// seeds (engine::derive_trial_seed against the query's master seed), and
// reply with ordered per-trial records. Workers hold *no* statistical
// state — the coordinator folds (smc/partial.hpp) — so a worker can die
// at any point and its ranges are simply re-run elsewhere: outcomes are
// pure functions of (trial, seed), so the replacement results are
// identical and the certificate digest is unaffected.
//
// Local workers are forked over a socketpair by serve::Supervisor before
// the daemon spawns any thread; remote workers run `ppde worker --port=P`
// and speak the identical frame protocol over TCP.
#pragma once

#include <cstdint>

namespace ppde::serve {

/// Serve batch requests on `fd` until an exit op or EOF. Returns true if
/// terminated by an explicit exit op (false: the peer just closed).
/// Errors propagate as exceptions — a forked worker turns them into a
/// nonzero _exit, which the supervisor observes as a death.
bool worker_main(int fd);

/// Remote worker: listen on 0.0.0.0:`port`, serve one connection at a
/// time until a connection ends with an explicit exit op. Returns 0, or 1
/// if the socket cannot be opened.
int worker_listen(std::uint16_t port);

}  // namespace ppde::serve
