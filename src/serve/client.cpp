#include "serve/client.hpp"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/wire.hpp"

namespace ppde::serve {

int connect_hostport(const std::string& hostport, std::string* error) {
  const std::size_t colon = hostport.rfind(':');
  if (colon == std::string::npos || colon + 1 == hostport.size()) {
    if (error != nullptr) *error = "expected host:port, got '" + hostport + "'";
    return -1;
  }
  const std::string host = hostport.substr(0, colon);
  const std::string port = hostport.substr(colon + 1);

  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* results = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), port.c_str(), &hints, &results);
  if (rc != 0) {
    if (error != nullptr)
      *error = "cannot resolve " + hostport + ": " + gai_strerror(rc);
    return -1;
  }
  int fd = -1;
  for (addrinfo* entry = results; entry != nullptr; entry = entry->ai_next) {
    fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(results);
  if (fd < 0 && error != nullptr)
    *error = "cannot connect to " + hostport + ": " + std::strerror(errno);
  return fd;
}

bool rpc(const std::string& hostport, const std::string& request,
         std::string* response, std::string* error) {
  const int fd = connect_hostport(hostport, error);
  if (fd < 0) return false;
  bool ok = false;
  try {
    write_frame(fd, request);
    if (!read_frame(fd, *response))
      throw std::runtime_error("server closed the connection");
    ok = true;
  } catch (const std::exception& failure) {
    if (error != nullptr) *error = failure.what();
  }
  ::close(fd);
  return ok;
}

}  // namespace ppde::serve
