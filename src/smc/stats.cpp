#include "smc/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ppde::smc {

namespace {

/// Continued fraction for the regularised incomplete beta (modified
/// Lentz's method; converges for x < (a+1)/(a+b+2)).
double betacf(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEps = 3e-14;
  constexpr double kFpMin = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::abs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    const double m2 = 2.0 * m;
    double numerator = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + numerator * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + numerator / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + numerator * d;
    if (std::abs(d) < kFpMin) d = kFpMin;
    c = 1.0 + numerator / c;
    if (std::abs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double delta = d * c;
    h *= delta;
    if (std::abs(delta - 1.0) < kEps) break;
  }
  return h;
}

/// Quantile of the Beta(a, b) distribution by bisection on
/// incomplete_beta (monotone in x; ~1e-15 final bracket width).
double beta_quantile(double q, double a, double b) {
  double lo = 0.0, hi = 1.0;
  for (int i = 0; i < 100; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (incomplete_beta(a, b, mid) < q)
      lo = mid;
    else
      hi = mid;
  }
  return 0.5 * (lo + hi);
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (!(a > 0.0) || !(b > 0.0))
    throw std::invalid_argument("incomplete_beta: need a, b > 0");
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  const double ln_front = std::lgamma(a + b) - std::lgamma(a) -
                          std::lgamma(b) + a * std::log(x) +
                          b * std::log1p(-x);
  if (x < (a + 1.0) / (a + b + 2.0))
    return std::exp(ln_front) * betacf(a, b, x) / a;
  return 1.0 - std::exp(ln_front) * betacf(b, a, 1.0 - x) / b;
}

BinomialInterval clopper_pearson(std::uint64_t successes,
                                 std::uint64_t trials, double confidence) {
  if (!(0.0 < confidence && confidence < 1.0))
    throw std::invalid_argument("clopper_pearson: confidence in (0, 1)");
  if (successes > trials)
    throw std::invalid_argument("clopper_pearson: successes > trials");
  BinomialInterval interval;
  if (trials == 0) return interval;  // vacuous [0, 1]
  const double half_alpha = 0.5 * (1.0 - confidence);
  const double k = static_cast<double>(successes);
  const double n = static_cast<double>(trials);
  // Endpoints are beta quantiles: Lower ~ Beta(k, n-k+1) at alpha/2,
  // Upper ~ Beta(k+1, n-k) at 1 - alpha/2; the edges are exact one-sided
  // binomial inversions (Lower(0) = 0, Upper(n) = 1).
  interval.lower =
      successes == 0 ? 0.0 : beta_quantile(half_alpha, k, n - k + 1.0);
  interval.upper = successes == trials
                       ? 1.0
                       : beta_quantile(1.0 - half_alpha, k + 1.0, n - k);
  return interval;
}

P2Quantile::P2Quantile(double probability) : probability_(probability) {
  if (!(0.0 < probability && probability < 1.0))
    throw std::invalid_argument("P2Quantile: probability in (0, 1)");
}

double P2Quantile::parabolic(int i, double d) const {
  return heights_[i] +
         d / (positions_[i + 1] - positions_[i - 1]) *
             ((positions_[i] - positions_[i - 1] + d) *
                  (heights_[i + 1] - heights_[i]) /
                  (positions_[i + 1] - positions_[i]) +
              (positions_[i + 1] - positions_[i] - d) *
                  (heights_[i] - heights_[i - 1]) /
                  (positions_[i] - positions_[i - 1]));
}

double P2Quantile::linear(int i, double d) const {
  const int j = i + static_cast<int>(d);
  return heights_[i] + d * (heights_[j] - heights_[i]) /
                           (positions_[j] - positions_[i]);
}

void P2Quantile::add(double value) {
  if (count_ < 5) {
    heights_[count_++] = value;
    if (count_ == 5) {
      std::sort(heights_.begin(), heights_.end());
      for (int i = 0; i < 5; ++i) positions_[i] = i + 1;
      desired_ = {1.0, 1.0 + 2.0 * probability_, 1.0 + 4.0 * probability_,
                  3.0 + 2.0 * probability_, 5.0};
      increments_ = {0.0, probability_ / 2.0, probability_,
                     (1.0 + probability_) / 2.0, 1.0};
    }
    return;
  }

  ++count_;
  int cell;
  if (value < heights_[0]) {
    heights_[0] = value;
    cell = 0;
  } else if (value >= heights_[4]) {
    heights_[4] = value;
    cell = 3;
  } else {
    cell = 0;
    while (cell < 3 && value >= heights_[cell + 1]) ++cell;
  }
  for (int i = cell + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increments_[i];

  for (int i = 1; i <= 3; ++i) {
    const double offset = desired_[i] - positions_[i];
    if ((offset >= 1.0 && positions_[i + 1] - positions_[i] > 1.0) ||
        (offset <= -1.0 && positions_[i - 1] - positions_[i] < -1.0)) {
      const double d = offset >= 0.0 ? 1.0 : -1.0;
      const double candidate = parabolic(i, d);
      heights_[i] =
          (heights_[i - 1] < candidate && candidate < heights_[i + 1])
              ? candidate
              : linear(i, d);
      positions_[i] += d;
    }
  }
}

namespace {

std::array<std::uint64_t, 5> to_bits(const std::array<double, 5>& values) {
  std::array<std::uint64_t, 5> bits{};
  for (int i = 0; i < 5; ++i) bits[i] = std::bit_cast<std::uint64_t>(values[i]);
  return bits;
}

std::array<double, 5> from_bits(const std::array<std::uint64_t, 5>& bits) {
  std::array<double, 5> values{};
  for (int i = 0; i < 5; ++i) values[i] = std::bit_cast<double>(bits[i]);
  return values;
}

}  // namespace

P2Quantile::Snapshot P2Quantile::snapshot() const {
  Snapshot snapshot;
  snapshot.count = count_;
  snapshot.heights = to_bits(heights_);
  snapshot.positions = to_bits(positions_);
  snapshot.desired = to_bits(desired_);
  snapshot.increments = to_bits(increments_);
  return snapshot;
}

void P2Quantile::restore(const Snapshot& snapshot) {
  count_ = snapshot.count;
  heights_ = from_bits(snapshot.heights);
  positions_ = from_bits(snapshot.positions);
  desired_ = from_bits(snapshot.desired);
  increments_ = from_bits(snapshot.increments);
}

double P2Quantile::value() const {
  if (count_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (count_ < 5) {
    std::array<double, 5> sorted = heights_;
    std::sort(sorted.begin(), sorted.begin() + count_);
    const double rank = probability_ * static_cast<double>(count_);
    auto index = static_cast<std::uint64_t>(std::ceil(rank));
    index = index == 0 ? 0 : index - 1;
    return sorted[std::min<std::uint64_t>(index, count_ - 1)];
  }
  return heights_[2];
}

}  // namespace ppde::smc
