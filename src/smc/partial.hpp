// Shard-mergeable certification state for the serve daemon (S25).
//
// The serve layer (src/serve/) splits one SPRT certification across worker
// processes. The naive approach — each shard keeps its own SPRT counters
// and P² sketches, the coordinator unions them — cannot reproduce the
// single-process certificate digest: Wald's SPRT is a *sequential stopping
// rule* (which trial the test stops on depends on the entire outcome
// prefix, so shard-local stopping points are meaningless), and P² marker
// updates are order-dependent (each adjustment depends on every earlier
// observation). No commutative sketch union is bit-exact.
//
// What *is* exact: every statistical field of a certificate is a pure
// function of the trial-outcome sequence folded in trial order up to and
// including the SPRT decision point (smc/certify.cpp's fold loop), and
// outcome i is a pure function of (trial i, derive_trial_seed(seed, i))
// alone. So shards do not fold — they ship *ordered per-trial records*
// (TrialRecord), and the coordinator replays the one canonical fold:
//
//   * FoldState is that fold as a resumable state machine — exactly the
//     Sprt / QuantileTails / counter updates of smc::certify_trials, plus
//     bit-exact serialization (doubles travel as IEEE-754 bit patterns) so
//     a checkpointed fold resumes byte-identically.
//   * StreamingMerger wraps a FoldState in a reorder buffer: contiguous
//     record ranges absorbed in ANY arrival order, duplicates and
//     already-folded prefixes dropped, records folded strictly in trial
//     order, folding stopped at the SPRT decision point.
//
// Hence the merged certificate is byte-identical to in-process
// smc::certify under any shard layout — same records, same order, same
// fold — which tests/test_serve.cpp and the serve-smoke CI job assert
// differentially against smc::certify at several worker counts and shard
// splits (including after a killed-worker trial reassignment).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "smc/certify.hpp"
#include "smc/sprt.hpp"
#include "smc/stats.hpp"

namespace ppde::smc {

/// One trial's digest-relevant outcome, tagged with its trial index so the
/// coordinator can re-establish the canonical fold order. A pure function
/// of (trial, derive_trial_seed(seed, trial)) — never of the worker that
/// happened to run it. The convergence time travels as an IEEE-754 bit
/// pattern for exact round-trip through the wire protocol.
struct TrialRecord {
  std::uint64_t trial = 0;
  bool success = false;
  bool stabilised = false;
  std::uint64_t time_bits = 0;  ///< bit_cast of convergence_parallel_time
  std::uint64_t meetings = 0;
  std::uint64_t firings = 0;

  bool operator==(const TrialRecord&) const = default;
};

TrialRecord make_trial_record(std::uint64_t trial,
                              const TrialOutcome& outcome);

/// Statement fields of a certificate that depend only on the options (the
/// system-under-test fields — fingerprint, population, expected_output —
/// stay zero for the caller to fill). Shared by certify_trials and
/// StreamingMerger::finish so both paths produce identical payloads.
Certificate certificate_statement(const CertifyOptions& options);

/// The canonical certification fold (certify_trials' inner loop) as a
/// resumable, bit-exactly serializable state machine.
class FoldState {
 public:
  explicit FoldState(const CertifyOptions& options);

  /// Fold one outcome — exactly one iteration of certify_trials' loop.
  /// No-op once the SPRT has decided (the stopped test's statistics are
  /// final; trailing records of the last batch are discarded there too).
  void fold(const TrialRecord& record);

  bool decided() const { return sprt_.decided(); }
  const Sprt& sprt() const { return sprt_; }
  std::uint64_t stabilised() const { return stabilised_; }

  /// Evidence + verdict + statement fields of the certificate (the
  /// system-under-test fields stay zero; wall_seconds / threads_used are
  /// execution record, not statistics, and are the caller's).
  Certificate finish(const CertifyOptions& options) const;

  /// Checkpoint as a single-line token string (tag smc_fold_v1, all
  /// numbers hex, doubles as IEEE-754 bit patterns).
  std::string serialize() const;
  /// Inverse of serialize(); `options` must match the checkpointing
  /// fold's. Throws std::runtime_error on a malformed checkpoint.
  static FoldState deserialize(const CertifyOptions& options,
                               const std::string& text);

 private:
  Sprt sprt_;
  QuantileTails tails_;
  std::uint64_t stabilised_ = 0;
  std::uint64_t meetings_ = 0;
  std::uint64_t firings_ = 0;
};

/// Reorder buffer around a FoldState: absorbs contiguous trial-record
/// ranges in any arrival order and folds them strictly in trial order.
/// Duplicate deliveries (e.g. a range reassigned after a worker death
/// whose original response later arrived anyway) and records past the
/// SPRT decision point or the trial budget are dropped — the fold consumes
/// exactly the prefix the single-process fold would.
class StreamingMerger {
 public:
  explicit StreamingMerger(const CertifyOptions& options);

  /// Absorb `records` covering trials [first, first + records.size());
  /// records[i].trial must equal first + i (throws std::invalid_argument
  /// otherwise — a wire-decoding bug, not a statistics question).
  void absorb(std::uint64_t first, std::vector<TrialRecord> records);

  bool decided() const { return fold_.decided(); }
  /// Lowest trial index not yet folded (the dispatch frontier).
  std::uint64_t next_needed() const { return next_; }

  Certificate finish() const { return fold_.finish(options_); }

 private:
  CertifyOptions options_;
  FoldState fold_;
  std::uint64_t next_ = 0;
  /// Out-of-order ranges keyed by first trial index, trimmed so that no
  /// stored range starts below next_.
  std::map<std::uint64_t, std::vector<TrialRecord>> pending_;
};

}  // namespace ppde::smc
