#include "smc/certify.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "engine/count_sim.hpp"
#include "engine/executor.hpp"
#include "engine/pool.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "smc/partial.hpp"

namespace ppde::smc {

const char* to_string(Verdict verdict) {
  switch (verdict) {
    case Verdict::kCertified: return "CERTIFIED";
    case Verdict::kRefuted: return "REFUTED";
    case Verdict::kInconclusive: return "INCONCLUSIVE";
  }
  return "?";
}

SprtOptions CertifyOptions::sprt() const {
  SprtOptions options;
  options.p1 = 1.0 - delta;
  options.p0 = 1.0 - delta - indifference;
  options.alpha = alpha;
  options.beta = beta;
  options.validate();
  return options;
}

Certificate certify_trials(const TrialFn& body,
                           const CertifyOptions& options) {
  // The per-trial driver is the range driver at chunk 1: same pool
  // claims, same fold order, same digest — and the one place the trial
  // seeds are derived.
  return certify_trials(
      [&body, &options](unsigned worker, std::uint64_t first,
                        std::uint64_t count, TrialOutcome* out) {
        for (std::uint64_t i = 0; i < count; ++i) {
          const std::uint64_t trial = first + i;
          obs::ObsSpan trial_span("trial", "smc");
          trial_span.set_value(static_cast<double>(trial));
          out[i] = body(worker, trial,
                        engine::derive_trial_seed(options.seed, trial));
        }
      },
      1, options);
}

Certificate certify_trials(const TrialRangeFn& body, std::uint64_t chunk,
                           const CertifyOptions& options) {
  if (options.batch == 0)
    throw std::invalid_argument("certify_trials: batch must be positive");
  if (chunk == 0)
    throw std::invalid_argument("certify_trials: chunk must be positive");
  obs::ObsSpan span("certify_trials", "smc");
  const auto start_time = std::chrono::steady_clock::now();

  // The entire statistical state lives in the same FoldState the serve
  // daemon's StreamingMerger resumes (smc/partial.hpp), so the two paths
  // cannot drift apart: one fold implementation, one digest.
  FoldState fold(options);

  // A round's parallelism is its chunk count: with the lockstep core each
  // chunk occupies one worker's whole batch, so the pool is sized by
  // chunks, not trials.
  const std::uint64_t round_chunks = (options.batch + chunk - 1) / chunk;
  const unsigned workers = engine::fleet_workers(round_chunks, options.threads);
  engine::WorkerPool pool(workers);

  // The one outcome buffer the whole certification reuses: per-trial data
  // never outlives its batch, so memory stays O(batch) no matter how many
  // trials the SPRT ends up needing.
  std::vector<TrialOutcome> outcomes(options.batch);

  // Certification observability (S24): one span per SPRT round, live
  // gauges for the heartbeat. Everything here observes the fold — the
  // verdict, the fold order and hence the digest are untouched (test_obs
  // and the obs-smoke CI job assert digest equality with tracing on/off).
  obs::Registry& registry = obs::Registry::global();
  obs::Counter& rounds_counter = registry.counter("smc.rounds");
  obs::Gauge& trials_gauge = registry.gauge("smc.trials");
  obs::Gauge& successes_gauge = registry.gauge("smc.successes");
  obs::Gauge& llr_gauge = registry.gauge("smc.llr");
  obs::Gauge& llr_lower_gauge = registry.gauge("smc.llr_lower");
  obs::Gauge& llr_upper_gauge = registry.gauge("smc.llr_upper");
  obs::Gauge& max_trials_gauge = registry.gauge("smc.max_trials");
  llr_lower_gauge.set(fold.sprt().lower_bound());
  llr_upper_gauge.set(fold.sprt().upper_bound());
  max_trials_gauge.set(static_cast<double>(options.max_trials));

  std::uint64_t next_trial = 0;
  while (!fold.decided() && next_trial < options.max_trials) {
    const std::uint64_t batch =
        std::min(options.batch, options.max_trials - next_trial);
    const std::uint64_t base = next_trial;
    obs::ObsSpan round_span("sprt_round", "smc");
    round_span.set_value(static_cast<double>(batch));
    const std::uint64_t chunks = (batch + chunk - 1) / chunk;
    pool.parallel_for_workers(chunks, [&](unsigned worker, std::uint64_t c) {
      const std::uint64_t offset = c * chunk;
      const std::uint64_t count = std::min(chunk, batch - offset);
      body(worker, base + offset, count, outcomes.data() + offset);
    });
    // Fold in trial order; stop at the SPRT's decision point so that every
    // statistic covers exactly the trials the sequential test consumed —
    // the tail of the last batch ran but is not part of the certificate.
    for (std::uint64_t i = 0; i < batch && !fold.decided(); ++i)
      fold.fold(make_trial_record(base + i, outcomes[i]));
    next_trial = base + batch;
    rounds_counter.add(1);
    trials_gauge.set(static_cast<double>(fold.sprt().trials()));
    successes_gauge.set(static_cast<double>(fold.sprt().successes()));
    llr_gauge.set(fold.sprt().llr());
    obs::trace_counter("smc.llr", fold.sprt().llr());
  }

  Certificate cert = fold.finish(options);
  cert.threads_used = workers;
  cert.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_time)
          .count();
  return cert;
}

namespace {

/// The per-trial workload certify() folds, reusable by shard range runs.
/// Engine/dispatch/scenario selection and per-worker simulator reuse live
/// in engine::TrialExecutor (S27) — the same body run_ensemble and the
/// serve workers run; this class only maps the run to a TrialOutcome
/// against the expected output.
class TrialRunner {
 public:
  TrialRunner(const pp::Protocol& protocol, const pp::Config& initial,
              bool expected_output, const CertifyOptions& options,
              unsigned workers)
      : initial_(initial),
        expected_output_(expected_output),
        options_(options),
        executor_(protocol, options.engine, options.dispatch,
                  options.scenario, workers, options.batch_width),
        scratch_(workers) {}

  TrialOutcome run(unsigned worker, std::uint64_t seed) {
    return outcome_of(executor_.run(worker, initial_, seed, options_.sim));
  }

  /// Chunk entry for the lockstep core: trials [first, first + count) on
  /// the worker's BatchSimulator (or the scalar loop at width 1), mapped
  /// to outcomes. Emits the per-trial retire-marker spans the per-trial
  /// driver gets from its wrapper.
  void run_range(unsigned worker, std::uint64_t first, std::uint64_t count,
                 TrialOutcome* out) {
    std::vector<engine::TrialResult>& trials = scratch_[worker];
    trials.resize(count);
    executor_.run_range(worker, initial_, options_.seed, first, count,
                        options_.sim, trials.data());
    for (std::uint64_t i = 0; i < count; ++i) {
      obs::ObsSpan trial_span("trial", "smc");
      trial_span.set_value(static_cast<double>(first + i));
      out[i] = outcome_of(trials[i]);
    }
  }

  /// Lanes the executor's range path advances in lockstep; 1 = scalar.
  unsigned batch_width() const { return executor_.batch_width(); }

 private:
  TrialOutcome outcome_of(const engine::TrialResult& trial) const {
    const pp::SimulationResult& sim = trial.sim;
    TrialOutcome outcome;
    outcome.metrics = trial.metrics;
    outcome.stabilised =
        sim.stabilised &&
        sim.consensus_since != pp::SimulationResult::kNeverStabilised;
    outcome.success = outcome.stabilised && sim.output == expected_output_;
    if (outcome.stabilised)
      outcome.convergence_parallel_time =
          static_cast<double>(sim.consensus_since) /
          static_cast<double>(initial_.total());
    return outcome;
  }

  const pp::Config& initial_;
  bool expected_output_;
  const CertifyOptions& options_;
  engine::TrialExecutor executor_;
  std::vector<std::vector<engine::TrialResult>> scratch_;
};

}  // namespace

Certificate certify(const pp::Protocol& protocol, const pp::Config& initial,
                    bool expected_output, const CertifyOptions& options) {
  TrialRunner runner(protocol, initial, expected_output, options,
                     engine::fleet_workers(options.batch, options.threads));
  Certificate cert;
  if (runner.batch_width() > 1) {
    // One batch-fill per chunk: an SPRT round of B trials lands on one
    // worker's lanes in a single call; larger rounds still spread across
    // the pool chunk by chunk.
    cert = certify_trials(
        [&](unsigned worker, std::uint64_t first, std::uint64_t count,
            TrialOutcome* out) { runner.run_range(worker, first, count, out); },
        runner.batch_width(), options);
  } else {
    cert = certify_trials(
        [&](unsigned worker, std::uint64_t, std::uint64_t seed) {
          return runner.run(worker, seed);
        },
        options);
  }
  cert.protocol_fingerprint = protocol.fingerprint();
  cert.population = initial.total();
  cert.expected_output = expected_output;
  return cert;
}

std::vector<TrialOutcome> run_outcome_range(
    const pp::Protocol& protocol, const pp::Config& initial,
    bool expected_output, const CertifyOptions& options, std::uint64_t first,
    std::uint64_t count, unsigned threads) {
  std::vector<TrialOutcome> outcomes(count);
  if (count == 0) return outcomes;
  const unsigned workers = engine::fleet_workers(count, threads);
  TrialRunner runner(protocol, initial, expected_output, options, workers);
  if (const unsigned width = runner.batch_width(); width > 1) {
    // Serve shards ride the lockstep core too: chunks of a few batch
    // fills, results indexed by offset — the same per-trial outcomes as
    // the scalar pool below (digest parity is CI-asserted end to end).
    const std::uint64_t chunk = std::uint64_t{4} * width;
    const std::uint64_t chunks = (count + chunk - 1) / chunk;
    engine::WorkerPool pool(engine::fleet_workers(chunks, threads));
    pool.parallel_for_workers(chunks, [&](unsigned worker, std::uint64_t c) {
      const std::uint64_t offset = c * chunk;
      const std::uint64_t n = std::min(chunk, count - offset);
      runner.run_range(worker, first + offset, n, outcomes.data() + offset);
    });
    return outcomes;
  }
  engine::WorkerPool pool(workers);
  pool.parallel_for_workers(count, [&](unsigned worker, std::uint64_t i) {
    outcomes[i] = runner.run(
        worker, engine::derive_trial_seed(options.seed, first + i));
  });
  return outcomes;
}

std::string describe(const Certificate& cert) {
  char buffer[768];
  const bool have_tails = cert.successes > 0 && !std::isnan(cert.time_p50);
  char tails[128];
  if (have_tails)
    std::snprintf(tails, sizeof tails, "p50 %.3g  p90 %.3g  p99 %.3g",
                  cert.time_p50, cert.time_p90, cert.time_p99);
  else
    std::snprintf(tails, sizeof tails, "(no successful trials)");
  std::snprintf(
      buffer, sizeof buffer,
      "verdict ........... %s\n"
      "statement ......... P(stabilise to %s) >= %.4g at m = %llu\n"
      "errors ............ alpha %.3g  beta %.3g  indifference %.3g\n"
      "trials ............ %llu (%llu successes, %llu stabilised; "
      "budget %llu)\n"
      "llr ............... %.4g\n"
      "correctness CI .... [%.6g, %.6g] at %.4g (Clopper-Pearson)\n"
      "convergence time .. %s (parallel time)\n"
      "fingerprint ....... %016llx  seed %llu\n"
      "wall .............. %.3fs (%u threads)\n",
      to_string(cert.verdict), cert.expected_output ? "ACCEPT" : "REJECT",
      1.0 - cert.delta, static_cast<unsigned long long>(cert.population),
      cert.alpha, cert.beta, cert.indifference,
      static_cast<unsigned long long>(cert.trials),
      static_cast<unsigned long long>(cert.successes),
      static_cast<unsigned long long>(cert.stabilised),
      static_cast<unsigned long long>(cert.max_trials), cert.llr,
      cert.interval.lower, cert.interval.upper, cert.ci_confidence, tails,
      static_cast<unsigned long long>(cert.protocol_fingerprint),
      static_cast<unsigned long long>(cert.seed), cert.wall_seconds,
      cert.threads_used);
  std::string out = buffer;
  if (!cert.scenario.empty())
    out += "scenario .......... " + cert.scenario + "\n";
  return out;
}

}  // namespace ppde::smc
