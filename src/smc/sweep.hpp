// Adaptive population sweep: bisect for the empirical threshold (S23).
//
// A threshold protocol's observable behaviour over populations is
// monotone: below the threshold every run stabilises to reject, at or
// above it to accept. The sweep certifies "stabilises to ACCEPT w.p.
// >= 1 - delta" at individual populations and bisects on the verdict —
// kRefuted moves the lower end up, kCertified moves the upper end down —
// until the threshold is bracketed by two adjacent populations. Trials are
// allocated where the SPRT is undecided: a kInconclusive point gets its
// trial budget escalated (geometrically, up to a cap) and is re-certified
// before the bisection proceeds, so easy populations cost a handful of
// trials and only the boundary neighbourhood pays for precision.
//
// Every certificate in the sweep derives its seed from (master seed,
// population), so the whole sweep — points visited, budgets, verdicts,
// digests — is reproducible from one number at any thread count.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "pp/config.hpp"
#include "pp/protocol.hpp"
#include "smc/certify.hpp"

namespace ppde::smc {

struct SweepOptions {
  /// Per-point certification parameters. certify.seed is the sweep's
  /// master seed; certify.max_trials is each point's *initial* budget.
  CertifyOptions certify;
  /// Budget multiplier applied when a point comes back kInconclusive.
  std::uint64_t escalation = 4;
  /// Give up on a point after this many escalations (it stays
  /// kInconclusive in the result and the sweep stops).
  std::uint64_t max_escalations = 2;
};

struct SweepPoint {
  std::uint64_t population = 0;
  Certificate certificate;
};

struct ThresholdSweep {
  /// Every certification performed, in evaluation order (escalated retries
  /// replace the point's earlier attempt).
  std::vector<SweepPoint> points;
  /// True once `below` and `above` are adjacent populations with verdicts
  /// kRefuted resp. kCertified.
  bool bracketed = false;
  std::uint64_t below = 0;  ///< largest population certified to reject
  std::uint64_t above = 0;  ///< smallest population certified to accept
  std::uint64_t total_trials = 0;
};

/// Bisect for the empirical threshold of `protocol` on populations in
/// [lo, hi], `initial_for(m)` supplying the size-m initial configuration.
/// Requires lo < hi. If the endpoints do not come back (kRefuted at lo,
/// kCertified at hi) the sweep returns unbracketed with the endpoint
/// certificates as evidence.
ThresholdSweep sweep_threshold(
    const pp::Protocol& protocol,
    const std::function<pp::Config(std::uint64_t)>& initial_for,
    std::uint64_t lo, std::uint64_t hi, const SweepOptions& options);

}  // namespace ppde::smc
