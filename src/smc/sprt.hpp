// Wald's sequential probability ratio test for Bernoulli streams (S23).
//
// The statistical model checker certifies statements of the form "this
// protocol stabilises to the correct output with probability >= 1 - delta"
// by observing a stream of independent trial outcomes. A fixed-sample test
// wastes trials when the true probability is far from the decision
// boundary; Wald's SPRT stops as early as the evidence permits while
// keeping both error probabilities bounded:
//
//   H1: p >= p1      (the property holds — e.g. p1 = 1 - delta)
//   H0: p <= p0      (the property fails; p0 < p1, the gap is the
//                     indifference region inside which either verdict is
//                     statistically acceptable)
//
// After each observation the log-likelihood ratio
//   llr += success ? ln(p1/p0) : ln((1-p1)/(1-p0))
// is compared against Wald's thresholds
//   accept H1 when llr >= ln((1-beta)/alpha)
//   accept H0 when llr <= ln(beta/(1-alpha))
// which guarantee P(accept H1 | p <= p0) <= alpha and
// P(accept H0 | p >= p1) <= beta (Wald 1945, up to the standard overshoot
// slack). The expected sample sizes are available in closed form and are
// what the unit tests pin the implementation against.
#pragma once

#include <cstdint>

namespace ppde::smc {

struct SprtOptions {
  double p0 = 0.94;    ///< H0 boundary: property fails when p <= p0.
  double p1 = 0.99;    ///< H1 boundary: property holds when p >= p1.
  double alpha = 0.01; ///< Type-I error: P(accept H1 | p <= p0).
  double beta = 0.01;  ///< Type-II error: P(accept H0 | p >= p1).

  /// Throws std::invalid_argument unless 0 < p0 < p1 < 1 and the error
  /// rates are in (0, 1/2).
  void validate() const;
};

class Sprt {
 public:
  enum class Decision {
    kContinue,  ///< evidence insufficient, keep sampling
    kAcceptH1,  ///< p >= p1 accepted with type-I error alpha
    kAcceptH0,  ///< p <= p0 accepted with type-II error beta
  };

  explicit Sprt(const SprtOptions& options);

  /// Feed one Bernoulli observation. Further updates after a decision are
  /// ignored (the stopped test's verdict is final by definition).
  void update(bool success);

  /// Rehydrate the test mid-stream from a serialized fold checkpoint
  /// (smc/partial.hpp, serve S25): counters and llr of a folded prefix.
  /// The decision is recomputed from llr against the Wald thresholds,
  /// which is exactly where update() would have left it — update() never
  /// moves llr past a boundary, so a restored test continues the stream
  /// byte-identically to one that never paused.
  void restore(std::uint64_t trials, std::uint64_t successes, double llr);

  Decision decision() const { return decision_; }
  bool decided() const { return decision_ != Decision::kContinue; }

  std::uint64_t trials() const { return trials_; }
  std::uint64_t successes() const { return successes_; }
  /// Current log-likelihood ratio of H1 against H0.
  double llr() const { return llr_; }

  /// Wald's decision thresholds ln((1-beta)/alpha) and ln(beta/(1-alpha)).
  double upper_bound() const { return upper_; }
  double lower_bound() const { return lower_; }

  /// Wald's approximation of the expected number of observations until a
  /// decision when the true success probability is `p` (clamped away from
  /// the llr-drift singularity near the indifference region's interior
  /// root). Used by tests to bound observed stopping times.
  double expected_samples(double p) const;

 private:
  SprtOptions options_;
  double llr_increment_success_ = 0.0;
  double llr_increment_failure_ = 0.0;
  double upper_ = 0.0;
  double lower_ = 0.0;
  double llr_ = 0.0;
  std::uint64_t trials_ = 0;
  std::uint64_t successes_ = 0;
  Decision decision_ = Decision::kContinue;
};

const char* to_string(Sprt::Decision decision);

}  // namespace ppde::smc
