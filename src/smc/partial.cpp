#include "smc/partial.hpp"

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ppde::smc {

namespace {

constexpr const char* kFoldTag = "smc_fold_v1";

void append_hex(std::string& out, std::uint64_t value) {
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, " %llx",
                static_cast<unsigned long long>(value));
  out += buffer;
}

void append_p2(std::string& out, const P2Quantile::Snapshot& snapshot) {
  append_hex(out, snapshot.count);
  for (int i = 0; i < 5; ++i) append_hex(out, snapshot.heights[i]);
  for (int i = 0; i < 5; ++i) append_hex(out, snapshot.positions[i]);
  for (int i = 0; i < 5; ++i) append_hex(out, snapshot.desired[i]);
  for (int i = 0; i < 5; ++i) append_hex(out, snapshot.increments[i]);
}

/// Whitespace tokenizer + hex parser over a checkpoint string; throws
/// std::runtime_error with a field name on any malformed token.
class TokenReader {
 public:
  explicit TokenReader(const std::string& text) : text_(text) {}

  std::string word(const char* what) {
    skip_spaces();
    const std::size_t start = pos_;
    while (pos_ < text_.size() && !is_space(text_[pos_])) ++pos_;
    if (pos_ == start)
      throw std::runtime_error(std::string("FoldState: missing ") + what);
    return text_.substr(start, pos_ - start);
  }

  std::uint64_t hex(const char* what) {
    const std::string token = word(what);
    char* end = nullptr;
    errno = 0;
    const unsigned long long value = std::strtoull(token.c_str(), &end, 16);
    if (errno != 0 || end == token.c_str() || *end != '\0')
      throw std::runtime_error(std::string("FoldState: bad ") + what + " '" +
                               token + "'");
    return value;
  }

  void expect_end() {
    skip_spaces();
    if (pos_ != text_.size())
      throw std::runtime_error("FoldState: trailing data in checkpoint");
  }

 private:
  static bool is_space(char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  }
  void skip_spaces() {
    while (pos_ < text_.size() && is_space(text_[pos_])) ++pos_;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

P2Quantile::Snapshot read_p2(TokenReader& reader, const char* which) {
  P2Quantile::Snapshot snapshot;
  snapshot.count = reader.hex(which);
  for (int i = 0; i < 5; ++i) snapshot.heights[i] = reader.hex(which);
  for (int i = 0; i < 5; ++i) snapshot.positions[i] = reader.hex(which);
  for (int i = 0; i < 5; ++i) snapshot.desired[i] = reader.hex(which);
  for (int i = 0; i < 5; ++i) snapshot.increments[i] = reader.hex(which);
  return snapshot;
}

}  // namespace

TrialRecord make_trial_record(std::uint64_t trial,
                              const TrialOutcome& outcome) {
  TrialRecord record;
  record.trial = trial;
  record.success = outcome.success;
  record.stabilised = outcome.stabilised;
  record.time_bits =
      std::bit_cast<std::uint64_t>(outcome.convergence_parallel_time);
  record.meetings = outcome.metrics.meetings;
  record.firings = outcome.metrics.firings;
  return record;
}

Certificate certificate_statement(const CertifyOptions& options) {
  Certificate cert;
  cert.delta = options.delta;
  cert.indifference = options.indifference;
  cert.alpha = options.alpha;
  cert.beta = options.beta;
  cert.ci_confidence = options.ci_confidence;
  cert.seed = options.seed;
  cert.max_trials = options.max_trials;
  cert.interaction_budget = options.sim.max_interactions;
  if (!options.scenario.is_default())
    cert.scenario = options.scenario.to_string();
  return cert;
}

FoldState::FoldState(const CertifyOptions& options)
    : sprt_(options.sprt()) {}

void FoldState::fold(const TrialRecord& record) {
  if (sprt_.decided()) return;
  sprt_.update(record.success);
  if (record.stabilised) {
    ++stabilised_;
    if (record.success)
      tails_.add(std::bit_cast<double>(record.time_bits));
  }
  meetings_ += record.meetings;
  firings_ += record.firings;
}

Certificate FoldState::finish(const CertifyOptions& options) const {
  Certificate cert = certificate_statement(options);
  cert.trials = sprt_.trials();
  cert.successes = sprt_.successes();
  cert.llr = sprt_.llr();
  switch (sprt_.decision()) {
    case Sprt::Decision::kAcceptH1: cert.verdict = Verdict::kCertified; break;
    case Sprt::Decision::kAcceptH0: cert.verdict = Verdict::kRefuted; break;
    case Sprt::Decision::kContinue:
      cert.verdict = Verdict::kInconclusive;
      break;
  }
  cert.interval =
      clopper_pearson(cert.successes, cert.trials, options.ci_confidence);
  cert.time_p50 = tails_.p50();
  cert.time_p90 = tails_.p90();
  cert.time_p99 = tails_.p99();
  cert.stabilised = stabilised_;
  cert.total_meetings = meetings_;
  cert.total_firings = firings_;
  return cert;
}

std::string FoldState::serialize() const {
  std::string out = kFoldTag;
  append_hex(out, sprt_.trials());
  append_hex(out, sprt_.successes());
  append_hex(out, std::bit_cast<std::uint64_t>(sprt_.llr()));
  append_hex(out, stabilised_);
  append_hex(out, meetings_);
  append_hex(out, firings_);
  const QuantileTails::Snapshot tails = tails_.snapshot();
  append_p2(out, tails.p50);
  append_p2(out, tails.p90);
  append_p2(out, tails.p99);
  return out;
}

FoldState FoldState::deserialize(const CertifyOptions& options,
                                 const std::string& text) {
  TokenReader reader(text);
  if (reader.word("tag") != kFoldTag)
    throw std::runtime_error("FoldState: not an smc_fold_v1 checkpoint");
  FoldState state(options);
  const std::uint64_t trials = reader.hex("trials");
  const std::uint64_t successes = reader.hex("successes");
  const double llr = std::bit_cast<double>(reader.hex("llr"));
  if (successes > trials)
    throw std::runtime_error("FoldState: successes > trials");
  state.sprt_.restore(trials, successes, llr);
  state.stabilised_ = reader.hex("stabilised");
  state.meetings_ = reader.hex("meetings");
  state.firings_ = reader.hex("firings");
  QuantileTails::Snapshot tails;
  tails.p50 = read_p2(reader, "p50");
  tails.p90 = read_p2(reader, "p90");
  tails.p99 = read_p2(reader, "p99");
  reader.expect_end();
  state.tails_.restore(tails);
  return state;
}

StreamingMerger::StreamingMerger(const CertifyOptions& options)
    : options_(options), fold_(options) {}

void StreamingMerger::absorb(std::uint64_t first,
                             std::vector<TrialRecord> records) {
  for (std::size_t i = 0; i < records.size(); ++i)
    if (records[i].trial != first + i)
      throw std::invalid_argument(
          "StreamingMerger: record trial index does not match its range");
  if (fold_.decided()) {
    pending_.clear();  // verdict is final; nothing further can fold
    return;
  }
  if (records.empty() || first + records.size() <= next_) return;
  if (first < next_) {  // re-delivered prefix (reassignment race): trim
    records.erase(records.begin(),
                  records.begin() + static_cast<std::ptrdiff_t>(next_ - first));
    first = next_;
  }
  const std::size_t length = records.size();
  auto it = pending_.find(first);
  if (it == pending_.end())
    pending_.emplace(first, std::move(records));
  else if (it->second.size() < length)
    it->second = std::move(records);  // keep the longer duplicate

  // Drain every range that touches the frontier, folding in trial order.
  while (!fold_.decided() && !pending_.empty()) {
    auto front = pending_.begin();
    if (front->first > next_) break;
    const std::vector<TrialRecord>& range = front->second;
    const std::uint64_t skip = next_ - front->first;
    for (std::uint64_t i = skip;
         i < range.size() && !fold_.decided() && next_ < options_.max_trials;
         ++i) {
      fold_.fold(range[i]);
      ++next_;
    }
    if (fold_.decided() || next_ >= options_.max_trials) {
      pending_.clear();
      break;
    }
    pending_.erase(front);
  }
}

}  // namespace ppde::smc
