// Statistical model checking of population protocols (DESIGN.md S23).
//
// The exact verifier (S22) proves "every fair run stabilises to b" but is
// bounded by the explicit configuration space — ~m_regs = 7 under a 12 s
// budget on the converted Czerner n = 1 protocol. The paper's subject is
// behaviour at populations near k >= 2^(2^(n-1)), far beyond any explicit
// search. This module quantifies what simulation *can* establish there:
//
//   "from configuration C the protocol stabilises to output b with
//    probability >= 1 - delta over the uniform random scheduler"
//
// tested sequentially (Wald SPRT, smc/sprt.hpp) over independent trials of
// the S21 ensemble engine, with exact Clopper–Pearson intervals on the
// observed correctness probability and streaming P² tails of the
// convergence time. The result is a *certificate*: a versioned record with
// explicit (alpha, beta, delta) error bounds whose every statistical field
// is a pure function of (protocol, initial, options) — trial i always runs
// with seed derive_trial_seed(seed, i) and outcomes are folded in trial
// order, so the certificate digest is bit-identical at any thread count.
//
// A trial-budget cap downgrades the verdict to kInconclusive with the
// partial statistics attached; a certificate never overstates what was
// sampled.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "engine/ensemble.hpp"
#include "engine/metrics.hpp"
#include "pp/config.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"
#include "smc/sprt.hpp"
#include "smc/stats.hpp"

namespace ppde::smc {

enum class Verdict {
  kCertified,     ///< SPRT accepted H1: correctness probability >= 1-delta
  kRefuted,       ///< SPRT accepted H0: correctness probability <= 1-delta-eps
  kInconclusive,  ///< trial budget exhausted before either boundary
};

const char* to_string(Verdict verdict);

struct CertifyOptions {
  /// Certified statement: correct with probability >= 1 - delta.
  double delta = 0.01;
  /// Indifference width eps: H0 is p <= 1 - delta - eps. Inside the gap
  /// either verdict is statistically acceptable (Wald).
  double indifference = 0.05;
  double alpha = 0.01;  ///< P(kCertified | p <= 1-delta-eps)
  double beta = 0.01;   ///< P(kRefuted   | p >= 1-delta)
  /// Confidence level of the Clopper–Pearson interval in the certificate.
  double ci_confidence = 0.99;
  /// Hard trial cap; hitting it yields kInconclusive with partial stats.
  std::uint64_t max_trials = 4096;
  /// Trials dispatched per fleet batch. Outcomes are folded into the SPRT
  /// in trial order after each batch drains, so the batch size affects
  /// wall time only — never the verdict or the digest. Keep it small when
  /// individual trials are expensive: the whole batch runs even if the
  /// SPRT decides on its first outcome.
  std::uint64_t batch = 8;
  /// Lockstep lanes per worker (S28, engine/batch_sim.hpp): 0 = auto,
  /// 1 = off, N = exactly N lanes. Applies only where the lockstep core
  /// does (count+null-skip engine, default scenario). The certificate —
  /// digest included — is bit-identical at every width; only wall time
  /// moves. Distinct from `batch` above, which is the SPRT round size.
  std::uint32_t batch_width = 0;
  unsigned threads = 0;  ///< 0 = hardware concurrency
  std::uint64_t seed = 1;
  engine::EngineKind engine = engine::EngineKind::kCountNullSkip;
  /// Execution core (S26). Certificates and digests are bit-identical
  /// across dispatch modes (and thread counts) for a given seed.
  isa::Dispatch dispatch = isa::Dispatch::kBytecode;
  /// Stress scenario (S27): scheduler strategy + fault plan each trial
  /// runs under. Part of the certified statement — a non-default scenario
  /// is folded into the certificate payload (and hence the digest), so a
  /// claim is certified *per scenario*; the default emits nothing and
  /// reproduces pre-S27 certificates byte for byte.
  sched::Scenario scenario;
  /// Per-trial stopping rule (sim.seed is ignored; trial seeds are derived
  /// from `seed`).
  pp::SimulationOptions sim;

  /// The derived SPRT hypotheses; throws std::invalid_argument if delta,
  /// indifference, alpha, beta are inconsistent.
  SprtOptions sprt() const;
};

/// One trial's contribution to a certificate.
struct TrialOutcome {
  bool success = false;     ///< stabilised to the expected output
  bool stabilised = false;  ///< window heuristic fired at all
  /// Parallel time to the *start* of the final consensus (the window after
  /// it is measurement overhead). Valid iff stabilised.
  double convergence_parallel_time = 0.0;
  engine::RunMetrics metrics;
};

struct Certificate {
  /// Format version of the JSONL serialisation (smc/json.hpp).
  static constexpr int kVersion = 1;

  Verdict verdict = Verdict::kInconclusive;

  // -- the certified statement ------------------------------------------
  std::uint64_t protocol_fingerprint = 0;  ///< pp::Protocol::fingerprint()
  std::uint64_t population = 0;
  bool expected_output = false;
  double delta = 0.0;
  double indifference = 0.0;
  double alpha = 0.0;
  double beta = 0.0;
  double ci_confidence = 0.0;
  std::uint64_t seed = 0;
  std::uint64_t max_trials = 0;
  std::uint64_t interaction_budget = 0;  ///< per-trial scheduler budget
  /// Canonical scenario descriptor; empty for the default scenario, in
  /// which case the payload omits the field entirely (digest-scoping rule,
  /// sched/scenario.hpp: uniform certificates stay byte-identical to
  /// pre-S27 ones; every stressed claim gets its own digest space).
  std::string scenario;

  // -- evidence (all deterministic given the statement) ------------------
  std::uint64_t trials = 0;      ///< outcomes folded before the SPRT stopped
  std::uint64_t successes = 0;
  std::uint64_t stabilised = 0;  ///< window fired (irrespective of output)
  double llr = 0.0;              ///< final SPRT log-likelihood ratio
  BinomialInterval interval;     ///< Clopper–Pearson on successes/trials
  /// P² tails of convergence parallel time over successful trials; NaN
  /// until the estimator has seen at least one observation.
  double time_p50 = 0.0;
  double time_p90 = 0.0;
  double time_p99 = 0.0;
  std::uint64_t total_meetings = 0;  ///< summed over folded trials
  std::uint64_t total_firings = 0;

  // -- execution record (excluded from the digest) -----------------------
  double wall_seconds = 0.0;
  unsigned threads_used = 0;

  double success_fraction() const {
    return trials ? static_cast<double>(successes) / trials : 0.0;
  }
};

/// A trial body: given (executing worker, trial index, derived seed), run
/// one independent experiment. Must be safe to call concurrently from
/// different threads, and the outcome must be a pure function of (trial,
/// seed) alone — the worker index only identifies per-worker scratch
/// (e.g. a reusable CountSimulator) that is fully reset between trials,
/// so it can never influence a result (or the certificate digest).
using TrialFn = std::function<TrialOutcome(
    unsigned worker, std::uint64_t trial, std::uint64_t seed)>;

/// A range body (S28): run trials [first, first + count) — outcome i of
/// out[] must be trial first + i run with derive_trial_seed(options.seed,
/// first + i), each a pure function of its (trial, seed). This is how the
/// lockstep batch core plugs in: one call advances a whole chunk of
/// trials on the worker's BatchSimulator. Concurrency contract as TrialFn.
using TrialRangeFn =
    std::function<void(unsigned worker, std::uint64_t first,
                       std::uint64_t count, TrialOutcome* out)>;

/// Core driver: batches of `body` trials on the shared engine::WorkerPool,
/// folded into the SPRT/interval/quantile state in trial order until the
/// test decides or options.max_trials is exhausted. Statement fields that
/// depend on the system under test (fingerprint, population,
/// expected_output) are left zero — certify() fills them.
Certificate certify_trials(const TrialFn& body, const CertifyOptions& options);

/// Range-body variant: each SPRT round dispatches its options.batch trials
/// as contiguous chunks of `chunk` trials per body call. Because outcomes
/// are pure functions of (trial, seed) and the fold consumes them in trial
/// order either way, chunk size affects wall time only — verdict, stats
/// and digest are bit-identical to the per-trial driver (tests pin it).
Certificate certify_trials(const TrialRangeFn& body, std::uint64_t chunk,
                           const CertifyOptions& options);

/// Certify "`protocol` stabilises to `expected_output` from `initial` with
/// probability >= 1 - delta". Success = the run's window heuristic fired
/// AND the consensus equals expected_output; a budget-capped run counts as
/// failure (conservative: the certificate never credits unfinished runs).
Certificate certify(const pp::Protocol& protocol, const pp::Config& initial,
                    bool expected_output, const CertifyOptions& options);

/// Run trials [first, first + count) of the same workload certify() folds,
/// without folding: outcome i of the result is trial first + i, run with
/// seed derive_trial_seed(options.seed, first + i). This is the shard
/// entry point of the serve daemon (S25) — because each outcome is a pure
/// function of (trial, seed), any partition of the trial index space into
/// ranges reproduces exactly the outcome sequence certify() would fold,
/// regardless of which process runs which range. `threads` as in
/// CertifyOptions::threads (0 = hardware concurrency; capped at count).
std::vector<TrialOutcome> run_outcome_range(
    const pp::Protocol& protocol, const pp::Config& initial,
    bool expected_output, const CertifyOptions& options, std::uint64_t first,
    std::uint64_t count, unsigned threads);

/// Human-readable multi-line rendering (used by the CLI).
std::string describe(const Certificate& certificate);

}  // namespace ppde::smc
