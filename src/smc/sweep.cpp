#include "smc/sweep.hpp"

#include <stdexcept>

namespace ppde::smc {

namespace {

/// Certify one population, escalating the trial budget while the SPRT is
/// undecided. Appends every attempt's final certificate to `sweep`.
Certificate certify_point(
    const pp::Protocol& protocol,
    const std::function<pp::Config(std::uint64_t)>& initial_for,
    std::uint64_t population, const SweepOptions& options,
    ThresholdSweep& sweep) {
  CertifyOptions point = options.certify;
  // Decorrelate populations; engine::derive_trial_seed is just the
  // SplitMix64 stream, reused here as a seed mixer.
  point.seed = engine::derive_trial_seed(options.certify.seed, population);
  const pp::Config initial = initial_for(population);
  Certificate cert;
  for (std::uint64_t attempt = 0;; ++attempt) {
    cert = certify(protocol, initial, /*expected_output=*/true, point);
    sweep.total_trials += cert.trials;
    if (cert.verdict != Verdict::kInconclusive ||
        attempt >= options.max_escalations)
      break;
    point.max_trials *= options.escalation;
  }
  sweep.points.push_back({population, cert});
  return cert;
}

}  // namespace

ThresholdSweep sweep_threshold(
    const pp::Protocol& protocol,
    const std::function<pp::Config(std::uint64_t)>& initial_for,
    std::uint64_t lo, std::uint64_t hi, const SweepOptions& options) {
  if (lo >= hi)
    throw std::invalid_argument("sweep_threshold: need lo < hi");
  ThresholdSweep sweep;

  const Certificate at_lo =
      certify_point(protocol, initial_for, lo, options, sweep);
  const Certificate at_hi =
      certify_point(protocol, initial_for, hi, options, sweep);
  if (at_lo.verdict != Verdict::kRefuted ||
      at_hi.verdict != Verdict::kCertified)
    return sweep;  // threshold not inside [lo, hi] (or undecidable there)

  while (hi - lo > 1) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    const Certificate at_mid =
        certify_point(protocol, initial_for, mid, options, sweep);
    if (at_mid.verdict == Verdict::kCertified)
      hi = mid;
    else if (at_mid.verdict == Verdict::kRefuted)
      lo = mid;
    else
      return sweep;  // escalation cap hit at the boundary; stay honest
  }
  sweep.bracketed = true;
  sweep.below = lo;
  sweep.above = hi;
  return sweep;
}

}  // namespace ppde::smc
