// Streaming statistics for the statistical model checker (S23).
//
// Two independent pieces:
//
//   * Clopper–Pearson intervals — the *exact* binomial confidence interval
//     on a success probability. Unlike the normal approximation it never
//     undercovers, which matters because certificates quote it as a hard
//     error bound; the endpoints are beta-distribution quantiles, computed
//     here with a regularised-incomplete-beta continued fraction plus
//     bisection (no external math library).
//
//   * The P² (piecewise-parabolic) quantile estimator of Jain & Chlamtac
//     (CACM 1985) — a five-marker streaming estimate of one quantile in
//     O(1) memory. Certification fleets run up to millions of trials;
//     convergence-time tails (p50/p90/p99 of parallel time) are tracked by
//     feeding every observation through three of these instead of storing
//     per-trial vectors. Below five observations the estimator falls back
//     to the exact order statistic of what it has seen.
//
// Both are deterministic functions of their input stream, which is what
// lets a certificate's digest be reproduced at any thread count (the
// certify driver feeds them in trial order).
#pragma once

#include <array>
#include <cstdint>

namespace ppde::smc {

/// Exact two-sided Clopper–Pearson interval for `successes` out of
/// `trials` at confidence level `confidence` (e.g. 0.99). trials == 0
/// yields the vacuous interval [0, 1]; the edge cases successes == 0 and
/// successes == trials yield exact one-sided bounds (lower 0 resp. upper
/// 1).
struct BinomialInterval {
  double lower = 0.0;
  double upper = 1.0;
};
BinomialInterval clopper_pearson(std::uint64_t successes,
                                 std::uint64_t trials, double confidence);

/// Regularised incomplete beta function I_x(a, b) for a, b > 0 and
/// x in [0, 1] (exposed for the unit tests; continued-fraction evaluation
/// per Numerical Recipes' betacf, accurate to ~1e-12).
double incomplete_beta(double a, double b, double x);

/// Streaming P² estimator of one quantile.
class P2Quantile {
 public:
  /// Bit-exact serializable state (smc/partial.hpp, serve S25). The five
  /// marker arrays travel as IEEE-754 bit patterns, so a restored
  /// estimator continues the observation stream byte-identically to one
  /// that never paused — P² updates are *order-dependent* (each marker
  /// adjustment depends on the whole prefix), which is why shard merge
  /// must resume the canonical fold instead of unioning sketches.
  struct Snapshot {
    std::uint64_t count = 0;
    std::array<std::uint64_t, 5> heights{};
    std::array<std::uint64_t, 5> positions{};
    std::array<std::uint64_t, 5> desired{};
    std::array<std::uint64_t, 5> increments{};
  };

  /// `probability` in (0, 1): the quantile to track (0.5 = median).
  explicit P2Quantile(double probability);

  void add(double value);

  /// Current estimate. Exact while count() < 5; NaN while count() == 0.
  double value() const;

  Snapshot snapshot() const;
  /// Restore a snapshot taken from an estimator of the same probability.
  void restore(const Snapshot& snapshot);

  std::uint64_t count() const { return count_; }
  double probability() const { return probability_; }

 private:
  double parabolic(int i, double direction) const;
  double linear(int i, double direction) const;

  double probability_;
  std::uint64_t count_ = 0;
  std::array<double, 5> heights_{};    // marker heights q_i
  std::array<double, 5> positions_{};  // marker positions n_i (1-based)
  std::array<double, 5> desired_{};    // desired positions n'_i
  std::array<double, 5> increments_{}; // dn'_i per observation
};

/// The tail set every certificate reports: p50 / p90 / p99 of one stream.
class QuantileTails {
 public:
  struct Snapshot {
    P2Quantile::Snapshot p50;
    P2Quantile::Snapshot p90;
    P2Quantile::Snapshot p99;
  };

  QuantileTails() : p50_(0.5), p90_(0.9), p99_(0.99) {}

  void add(double value) {
    p50_.add(value);
    p90_.add(value);
    p99_.add(value);
  }

  Snapshot snapshot() const {
    return {p50_.snapshot(), p90_.snapshot(), p99_.snapshot()};
  }
  void restore(const Snapshot& snapshot) {
    p50_.restore(snapshot.p50);
    p90_.restore(snapshot.p90);
    p99_.restore(snapshot.p99);
  }

  std::uint64_t count() const { return p50_.count(); }
  double p50() const { return p50_.value(); }
  double p90() const { return p90_.value(); }
  double p99() const { return p99_.value(); }

 private:
  P2Quantile p50_;
  P2Quantile p90_;
  P2Quantile p99_;
};

}  // namespace ppde::smc
