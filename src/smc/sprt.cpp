#include "smc/sprt.hpp"

#include <cmath>
#include <stdexcept>

namespace ppde::smc {

void SprtOptions::validate() const {
  if (!(0.0 < p0 && p0 < p1 && p1 < 1.0))
    throw std::invalid_argument("SprtOptions: need 0 < p0 < p1 < 1");
  if (!(0.0 < alpha && alpha < 0.5) || !(0.0 < beta && beta < 0.5))
    throw std::invalid_argument("SprtOptions: need alpha, beta in (0, 1/2)");
}

Sprt::Sprt(const SprtOptions& options) : options_(options) {
  options.validate();
  llr_increment_success_ = std::log(options.p1 / options.p0);
  llr_increment_failure_ =
      std::log((1.0 - options.p1) / (1.0 - options.p0));
  upper_ = std::log((1.0 - options.beta) / options.alpha);
  lower_ = std::log(options.beta / (1.0 - options.alpha));
}

void Sprt::update(bool success) {
  if (decided()) return;
  ++trials_;
  if (success) {
    ++successes_;
    llr_ += llr_increment_success_;
  } else {
    llr_ += llr_increment_failure_;
  }
  if (llr_ >= upper_)
    decision_ = Decision::kAcceptH1;
  else if (llr_ <= lower_)
    decision_ = Decision::kAcceptH0;
}

void Sprt::restore(std::uint64_t trials, std::uint64_t successes,
                   double llr) {
  if (successes > trials)
    throw std::invalid_argument("Sprt::restore: successes > trials");
  trials_ = trials;
  successes_ = successes;
  llr_ = llr;
  decision_ = Decision::kContinue;
  if (trials_ == 0) return;
  if (llr_ >= upper_)
    decision_ = Decision::kAcceptH1;
  else if (llr_ <= lower_)
    decision_ = Decision::kAcceptH0;
}

double Sprt::expected_samples(double p) const {
  // E_p[N] ~= (L(p) * lower + (1 - L(p)) * upper) / E_p[Z], where L(p) is
  // the probability of accepting H0 and Z the per-observation llr
  // increment. We only need the two hypothesis points for the tests, where
  // L(p1) ~= beta and L(p0) ~= 1 - alpha; interpolate L linearly between
  // them elsewhere (the approximation is only used as a sanity bound).
  const double drift =
      p * llr_increment_success_ + (1.0 - p) * llr_increment_failure_;
  if (std::abs(drift) < 1e-12) {
    // Near the drift-free point Wald's formula degenerates; fall back to
    // the second-moment bound E[N] ~= upper * |lower| / E[Z^2].
    const double second =
        p * llr_increment_success_ * llr_increment_success_ +
        (1.0 - p) * llr_increment_failure_ * llr_increment_failure_;
    return upper_ * -lower_ / second;
  }
  double accept_h0;  // L(p)
  if (p >= options_.p1)
    accept_h0 = options_.beta;
  else if (p <= options_.p0)
    accept_h0 = 1.0 - options_.alpha;
  else
    accept_h0 = 1.0 - options_.alpha -
                (1.0 - options_.alpha - options_.beta) * (p - options_.p0) /
                    (options_.p1 - options_.p0);
  return (accept_h0 * lower_ + (1.0 - accept_h0) * upper_) / drift;
}

const char* to_string(Sprt::Decision decision) {
  switch (decision) {
    case Sprt::Decision::kContinue: return "continue";
    case Sprt::Decision::kAcceptH1: return "accept-H1";
    case Sprt::Decision::kAcceptH0: return "accept-H0";
  }
  return "?";
}

}  // namespace ppde::smc
