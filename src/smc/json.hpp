// Versioned JSONL artifacts for the SMC subsystem (S23).
//
// Certificates and ensemble summaries are emitted as one JSON object per
// line so benches and CI can parse results without scraping text. The
// writer is deliberately tiny (ordered fields, no nesting beyond what the
// records need) — no external JSON dependency.
//
// Reproducibility contract: a certificate's `digest` field is the FNV-1a
// hash of its *canonical payload* — the statement and evidence fields
// rendered in a fixed order with fixed formatting, excluding the execution
// record (wall_seconds, threads). Re-running `ppde certify` with the same
// (seed, alpha, beta, delta, budget) at any thread count reproduces the
// digest bit for bit; CI asserts exactly that.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "engine/ensemble.hpp"
#include "smc/certify.hpp"

namespace ppde::smc {

/// Minimal ordered-field JSON object writer.
class JsonWriter {
 public:
  void field(std::string_view key, std::uint64_t value);
  void field(std::string_view key, int value);
  void field(std::string_view key, bool value);
  /// Doubles use %.17g (shortest round-trip-safe); non-finite values (NaN,
  /// ±inf) render as null — "inf"/"nan" are not JSON.
  void field(std::string_view key, double value);
  /// Strings are escaped (quotes, backslash, control characters).
  void field(std::string_view key, std::string_view value);
  /// 64-bit value as a fixed-width hex string (JSON numbers lose precision
  /// past 2^53, so hashes travel as strings).
  void hex_field(std::string_view key, std::uint64_t value);
  /// Verbatim pre-serialised JSON value (nested object/array). The caller
  /// owns its validity — used for the "args" objects of trace events,
  /// which are themselves built with a JsonWriter.
  void raw_field(std::string_view key, std::string_view json);

  /// The complete object, e.g. {"a":1,"b":"x"}.
  std::string finish() const { return "{" + body_ + "}"; }

 private:
  void key(std::string_view name);
  std::string body_;
};

/// FNV-1a over a byte string (the digest primitive; fixed constants, no
/// platform dependence).
std::uint64_t fnv1a(std::string_view bytes);

/// The canonical deterministic payload of a certificate (a JSON object by
/// itself, without digest/wall/threads).
std::string certificate_payload(const Certificate& certificate);

/// fnv1a(certificate_payload(...)).
std::uint64_t certificate_digest(const Certificate& certificate);

/// Full JSONL record: {"smc_certificate_v":1, ...payload fields...,
/// "digest":"...", "wall_seconds":..., "threads":...}. No trailing newline.
std::string to_jsonl(const Certificate& certificate);

/// JSONL record for an ensemble run: {"smc_ensemble_v":1, ...}. The
/// population/seed/engine identify the workload (EnsembleStats itself does
/// not carry them). No trailing newline.
std::string to_jsonl(const engine::EnsembleStats& stats,
                     std::uint64_t population, std::uint64_t master_seed,
                     engine::EngineKind kind);

}  // namespace ppde::smc
