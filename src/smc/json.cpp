#include "smc/json.hpp"

#include <cmath>
#include <cstdio>

namespace ppde::smc {

void JsonWriter::key(std::string_view name) {
  if (!body_.empty()) body_ += ',';
  body_ += '"';
  body_ += name;
  body_ += "\":";
}

void JsonWriter::field(std::string_view name, std::uint64_t value) {
  key(name);
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "%llu",
                static_cast<unsigned long long>(value));
  body_ += buffer;
}

void JsonWriter::field(std::string_view name, int value) {
  key(name);
  char buffer[16];
  std::snprintf(buffer, sizeof buffer, "%d", value);
  body_ += buffer;
}

void JsonWriter::field(std::string_view name, bool value) {
  key(name);
  body_ += value ? "true" : "false";
}

void JsonWriter::field(std::string_view name, double value) {
  key(name);
  // JSON has no inf/nan literals; every non-finite double becomes null so
  // the emitted line always parses.
  if (!std::isfinite(value)) {
    body_ += "null";
    return;
  }
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%.17g", value);
  body_ += buffer;
}

void JsonWriter::field(std::string_view name, std::string_view value) {
  key(name);
  body_ += '"';
  for (char c : value) {
    switch (c) {
      case '"': body_ += "\\\""; break;
      case '\\': body_ += "\\\\"; break;
      case '\n': body_ += "\\n"; break;
      case '\t': body_ += "\\t"; break;
      case '\r': body_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof buffer, "\\u%04x",
                        static_cast<unsigned>(c));
          body_ += buffer;
        } else {
          body_ += c;
        }
    }
  }
  body_ += '"';
}

void JsonWriter::raw_field(std::string_view name, std::string_view json) {
  key(name);
  body_ += json;
}

void JsonWriter::hex_field(std::string_view name, std::uint64_t value) {
  key(name);
  char buffer[24];
  std::snprintf(buffer, sizeof buffer, "\"%016llx\"",
                static_cast<unsigned long long>(value));
  body_ += buffer;
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string certificate_payload(const Certificate& cert) {
  JsonWriter json;
  json.field("smc_certificate_v", Certificate::kVersion);
  json.field("verdict", std::string_view(to_string(cert.verdict)));
  json.hex_field("protocol", cert.protocol_fingerprint);
  json.field("population", cert.population);
  json.field("expected_output", cert.expected_output);
  json.field("delta", cert.delta);
  json.field("indifference", cert.indifference);
  json.field("alpha", cert.alpha);
  json.field("beta", cert.beta);
  json.field("ci_confidence", cert.ci_confidence);
  json.field("seed", cert.seed);
  json.field("max_trials", cert.max_trials);
  json.field("interaction_budget", cert.interaction_budget);
  // Digest-scoping rule (S27): the default scenario emits no field at all
  // — uniform certificates stay byte-identical to pre-S27 ones — while a
  // stressed scenario's canonical descriptor scopes the digest.
  if (!cert.scenario.empty())
    json.field("scenario", std::string_view(cert.scenario));
  json.field("trials", cert.trials);
  json.field("successes", cert.successes);
  json.field("stabilised", cert.stabilised);
  json.field("llr", cert.llr);
  json.field("ci_lower", cert.interval.lower);
  json.field("ci_upper", cert.interval.upper);
  json.field("time_p50", cert.time_p50);
  json.field("time_p90", cert.time_p90);
  json.field("time_p99", cert.time_p99);
  json.field("total_meetings", cert.total_meetings);
  json.field("total_firings", cert.total_firings);
  return json.finish();
}

std::uint64_t certificate_digest(const Certificate& cert) {
  return fnv1a(certificate_payload(cert));
}

std::string to_jsonl(const Certificate& cert) {
  // payload + execution record; the digest covers the payload only, so
  // wall time and thread count never perturb it.
  const std::string payload = certificate_payload(cert);
  JsonWriter tail;
  tail.hex_field("digest", fnv1a(payload));
  tail.field("wall_seconds", cert.wall_seconds);
  tail.field("threads", static_cast<std::uint64_t>(cert.threads_used));
  std::string line = payload;
  line.pop_back();  // strip '}'
  line += ',';
  line += tail.finish().substr(1);  // strip '{'
  return line;
}

std::string to_jsonl(const engine::EnsembleStats& stats,
                     std::uint64_t population, std::uint64_t master_seed,
                     engine::EngineKind kind) {
  JsonWriter json;
  json.field("smc_ensemble_v", 1);
  json.field("population", population);
  json.field("master_seed", master_seed);
  json.field("engine", std::string_view(engine::to_string(kind)));
  json.field("trials", stats.trials);
  json.field("stabilised", stats.stabilised);
  json.field("accepted", stats.accepted);
  json.field("interactions_p50", stats.interactions.p50);
  json.field("interactions_p90", stats.interactions.p90);
  json.field("interactions_max", stats.interactions.max);
  json.field("parallel_time_p50", stats.parallel_time.p50);
  json.field("parallel_time_p90", stats.parallel_time.p90);
  json.field("parallel_time_max", stats.parallel_time.max);
  json.field("total_meetings", stats.totals.meetings);
  json.field("total_firings", stats.totals.firings);
  json.field("null_skip_batches", stats.totals.null_skip_batches);
  json.field("wall_seconds", stats.wall_seconds);
  json.field("threads", static_cast<std::uint64_t>(stats.threads_used));
  return json.finish();
}

}  // namespace ppde::smc
