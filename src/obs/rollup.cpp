#include "obs/rollup.hpp"

namespace ppde::obs {

namespace {

MetricSnapshot baseline_of(const MetricSnapshot& current) {
  MetricSnapshot base;
  base.name = current.name;
  base.kind = current.kind;
  return base;
}

}  // namespace

DeltaTracker::DeltaTracker() {
  for (MetricSnapshot& metric : Registry::global().snapshot())
    last_.emplace(metric.name, std::move(metric));
}

std::vector<MetricSnapshot> DeltaTracker::collect() {
  std::vector<MetricSnapshot> deltas;
  for (MetricSnapshot& current : Registry::global().snapshot()) {
    auto it = last_.find(current.name);
    const MetricSnapshot base =
        it != last_.end() ? it->second : baseline_of(current);
    switch (current.kind) {
      case MetricKind::kCounter: {
        // Counters are monotone; reset() in tests can move them
        // backwards, in which case the whole post-reset value is new.
        const double delta =
            current.value >= base.value ? current.value - base.value
                                        : current.value;
        if (delta != 0.0) {
          MetricSnapshot out = baseline_of(current);
          out.value = delta;
          deltas.push_back(std::move(out));
        }
        break;
      }
      case MetricKind::kGauge:
        // Last-write-wins; ship only on change (bitwise, so a gauge
        // rewritten to the same value stays off the wire).
        if (current.value != base.value ||
            (current.value != current.value) !=
                (base.value != base.value)) {
          MetricSnapshot out = baseline_of(current);
          out.value = current.value;
          deltas.push_back(std::move(out));
        }
        break;
      case MetricKind::kHistogram: {
        // A reset() moved the histogram backwards: everything now in it
        // is new (mirrors the counter rule above).
        const bool rewound = current.count < base.count;
        const MetricSnapshot& effective =
            rewound ? baseline_of(current) : base;
        if (current.count != effective.count ||
            current.max != effective.max) {
          MetricSnapshot out = baseline_of(current);
          out.count = current.count - effective.count;
          out.sum = current.sum - effective.sum;
          out.max = current.max;  // cumulative; merge takes the larger
          out.buckets.resize(current.buckets.size());
          for (std::size_t b = 0; b < current.buckets.size(); ++b)
            out.buckets[b] =
                current.buckets[b] - (b < effective.buckets.size()
                                          ? effective.buckets[b]
                                          : 0);
          deltas.push_back(std::move(out));
        }
        break;
      }
    }
    if (it != last_.end())
      it->second = std::move(current);
    else
      last_.emplace(current.name, std::move(current));
  }
  return deltas;
}

void merge_deltas(std::string_view prefix,
                  const std::vector<MetricSnapshot>& deltas) {
  Registry& registry = Registry::global();
  std::string name;
  for (const MetricSnapshot& delta : deltas) {
    name.assign(prefix);
    name += delta.name;
    switch (delta.kind) {
      case MetricKind::kCounter:
        registry.counter(name).add(static_cast<std::uint64_t>(delta.value));
        break;
      case MetricKind::kGauge:
        registry.gauge(name).set(delta.value);
        break;
      case MetricKind::kHistogram:
        registry.histogram(name).merge_from(delta);
        break;
    }
  }
}

}  // namespace ppde::obs
