// Liveness heartbeat for long-running commands (S24).
//
// `ppde certify` at m_regs = 8 runs for ~18 minutes with no output; the
// heartbeat is a monitor thread that wakes every `period_seconds`, asks a
// caller-supplied formatter for a status line (rate, ETA, SPRT position,
// frontier size — whatever the verb can report, usually read from
// obs::Registry), and prints it to stderr. The formatter runs on the
// monitor thread, so it must only touch thread-safe state; returning an
// empty string skips the tick. The monitor is an observer: it never
// perturbs the computation it watches, and the CLI stops it before
// stopping the tracer so its final tick can still emit trace counters.
#pragma once

#include <functional>
#include <string>

namespace ppde::obs {

class ProgressMonitor {
 public:
  /// Starts the monitor thread immediately; the first line prints one
  /// period from now. `line` must stay callable until stop() returns.
  ProgressMonitor(double period_seconds, std::function<std::string()> line);

  /// Joins the monitor thread. Idempotent; the destructor calls it.
  void stop();

  ~ProgressMonitor();

  ProgressMonitor(const ProgressMonitor&) = delete;
  ProgressMonitor& operator=(const ProgressMonitor&) = delete;

  /// Ticks elapsed so far (lines requested, including skipped empties).
  std::uint64_t ticks() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace ppde::obs
