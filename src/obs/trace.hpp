// Low-overhead span tracing for long-running computations (DESIGN.md S24).
//
// Every layer of the library — the ensemble engine (S21), the verification
// kernel (S22), the certification driver (S23) — now runs for minutes at a
// time, and "where does the wall clock go" must be answerable without
// attaching a debugger. This tracer records RAII spans and counter samples
// into per-thread lock-free ring buffers; a collector thread drains the
// rings periodically and serialises Chrome trace-event records (one JSON
// object per line, `obs_trace_v` = 1) that open directly in
// `about:tracing` and Perfetto.
//
// Overhead contract (the subsystem's reason to exist):
//   * Tracing disabled — the default — an ObsSpan construction is one
//     relaxed load of a global pointer plus a branch on null; no
//     allocation, no clock read, no atomic RMW. bench_obs measures this
//     at well under a nanosecond, and `bench_simulator` count+null-skip
//     throughput is within noise of the pre-obs baseline (EXPERIMENTS.md).
//   * Tracing enabled, the hot path (one `record()`) is a clock read plus
//     a handful of plain stores into the calling thread's own ring and
//     one release store of the ring head: no locks, no CAS, no sharing.
//     When a ring fills faster than the collector drains it, events are
//     *dropped and counted* — never blocked on.
//
// Concurrency contract:
//   * record()/ObsSpan may be used from any thread at any time while a
//     tracer is active; rings are strictly single-producer (the owning
//     thread) / single-consumer (the collector, serialised by the ring
//     registry mutex).
//   * start()/stop() are control-plane calls: they must not race with
//     each other, and stop() must only be called once instrumented worker
//     threads have quiesced (joined or idle) — the CLI stops the tracer
//     after every pool has drained. The collector thread itself is owned
//     and joined by stop().
//
// Determinism: the tracer observes; it never touches RNG streams, trial
// scheduling or any certified statistic. Certificates and verification
// verdicts are byte-identical with tracing on, off, and at every thread
// count (test_obs and the obs-smoke CI job assert exactly that).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace ppde::obs {

/// Monotonic nanoseconds (steady_clock); the tracer's time base.
std::uint64_t now_ns();

/// One record in a thread ring. Name/category must be string literals (or
/// otherwise outlive the tracer): only the pointers travel through the
/// ring, the collector serialises the text.
struct TraceEvent {
  enum class Kind : std::uint8_t {
    kComplete,  ///< span: ts .. ts+dur ("ph":"X")
    kCounter,   ///< sampled value ("ph":"C")
    kInstant,   ///< point event ("ph":"i")
  };
  const char* name = nullptr;
  const char* cat = nullptr;
  std::uint64_t ts_ns = 0;   ///< since tracer start
  std::uint64_t dur_ns = 0;  ///< kComplete only
  double value = 0.0;        ///< kCounter value / optional span arg "n"
  bool has_value = false;    ///< emit the span's "n" arg
  Kind kind = Kind::kComplete;
};

struct TracerOptions {
  /// Per-thread ring capacity in events; must be a power of two.
  std::uint32_t ring_capacity = 1u << 14;
  /// Collector wake-up period.
  std::uint32_t flush_period_ms = 100;
  /// Stop emitting event lines once the file reaches this many bytes
  /// (0 = unlimited). Past the cap the collector counts each suppressed
  /// event in the `obs.trace_truncated` registry counter instead of
  /// growing the file; the footer is still written so the trace on disk
  /// stays one valid JSON array. CLI: `--trace-max-mb=N` (S29).
  std::uint64_t max_file_bytes = 0;
};

/// A trace event drained out of a *capture-mode* tracer (S29): names are
/// owned strings (safe to ship across a process boundary) and the
/// timestamp is absolute steady-clock nanoseconds — CLOCK_MONOTONIC is
/// machine-global on Linux, so the serve daemon can rebase a worker's
/// events onto its own tracer epoch and stitch one coherent timeline.
struct CapturedEvent {
  std::string name;
  std::string cat;
  TraceEvent::Kind kind = TraceEvent::Kind::kComplete;
  std::uint64_t ts_ns = 0;   ///< absolute now_ns() timebase
  std::uint64_t dur_ns = 0;  ///< kComplete only
  std::uint32_t tid = 0;     ///< producing thread's ring id
  double value = 0.0;
  bool has_value = false;
};

/// The process-wide tracer. At most one is active; instrumentation sites
/// reach it through active(), whose nullptr result is the disabled path.
class Tracer {
 public:
  /// Open `path` and install a tracer. Returns false (and stays disabled)
  /// if the file cannot be opened or a tracer is already active.
  static bool start(const std::string& path, const TracerOptions& options = {});

  /// Drain everything, write the trace footer, close the file, uninstall.
  /// No-op when no tracer is active.
  static void stop();

  /// Install a *capture-mode* tracer: no file, no collector thread.
  /// Instrumentation sites record into the usual per-thread rings; the
  /// owner periodically calls drain_capture() to take the accumulated
  /// events as structured CapturedEvent records. This is how a serve
  /// worker participates in distributed tracing (S29): it captures its
  /// spans per batch and ships them back on the wire for the daemon to
  /// stitch. Returns false if a tracer is already active.
  static bool start_capture(const TracerOptions& options = {});

  /// True when the active tracer is capture-mode.
  static bool capturing();

  /// Drain every ring of a capture-mode tracer and return the events
  /// (absolute timestamps, owned strings). Empty if no capture-mode
  /// tracer is active. Call from the thread(s) that own the protocol —
  /// serialised internally, safe alongside concurrent record() calls.
  static std::vector<CapturedEvent> drain_capture();

  /// Forget any tracer inherited across fork() without touching it.
  /// A child process must not drain rings, join the collector, or share
  /// the parent's FILE*; clearing the active pointer (and leaking the
  /// inherited copy-on-write Impl) lets the child start its own capture
  /// tracer cleanly. Called in the serve supervisor's child branch.
  static void reset_after_fork();

  /// Interrupt-path variant of stop() for SIGINT/SIGTERM handling (S25):
  /// drains the rings, writes the footer and closes the file so the trace
  /// on disk is a complete, valid JSON array — but deliberately leaves the
  /// tracer installed and leaks it. stop() requires instrumented threads
  /// to have quiesced; an interrupt arrives while workers are mid-span,
  /// and uninstalling under them would race ~ObsSpan's record() against
  /// the teardown. A leaked tracer keeps those record() calls writing into
  /// live (never again drained) rings, which is harmless for a process
  /// about to _exit(). Called from a signal-watcher *thread* (not a
  /// handler) — it takes locks and does file IO. Safe to call at most
  /// once; a later stop() is a no-op.
  static void interrupt_stop();

  /// The active tracer, or nullptr when tracing is disabled. The relaxed
  /// load + branch on the result IS the documented disabled-path cost.
  static Tracer* active() {
    return g_active.load(std::memory_order_relaxed);
  }

  /// Append one event to the calling thread's ring (lock-free; drops and
  /// counts the event if the ring is full).
  void record(const TraceEvent& event);

  /// Stitch a foreign process's event into this (file-mode) tracer: the
  /// event is written with `pid` — not the tracer's own pid 1 — so every
  /// worker lands in its own Perfetto track group; the first event per
  /// pid also emits a `process_name` metadata record naming the group
  /// (e.g. "ppde worker 1234"). `event.ts_ns` is absolute (a capture-
  /// mode drain) and is rebased onto this tracer's epoch. Thread-safe;
  /// a no-op on capture-mode tracers and after the file is closed.
  void emit_foreign(std::uint64_t pid, const std::string& group_name,
                    const CapturedEvent& event);

  /// Announce a foreign process's track-group name without an event, so
  /// every fleet worker appears in the trace even before (or without)
  /// contributing spans. Idempotent per pid.
  void announce_process(std::uint64_t pid, const std::string& group_name);

  /// Convenience: a counter sample ("ph":"C").
  void counter(const char* name, double value) {
    TraceEvent event;
    event.name = name;
    event.cat = "obs";
    event.kind = TraceEvent::Kind::kCounter;
    event.ts_ns = now_ns() - epoch_ns_;
    event.value = value;
    record(event);
  }

  std::uint64_t epoch_ns() const { return epoch_ns_; }
  /// Events dropped on full rings so far (approximate while running).
  std::uint64_t dropped() const;
  /// Events serialised so far (approximate while running).
  std::uint64_t written() const;

  ~Tracer();

 private:
  struct Impl;
  explicit Tracer(Impl* impl) : impl_(impl) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static std::atomic<Tracer*> g_active;

  Impl* impl_;
  std::uint64_t epoch_ns_ = 0;
};

/// RAII span: records a "ph":"X" complete event over its own lifetime.
/// With tracing disabled both constructor and destructor reduce to a load
/// and a branch. `name` and `cat` must outlive the tracer (use literals).
class ObsSpan {
 public:
  explicit ObsSpan(const char* name, const char* cat = "ppde") {
    tracer_ = Tracer::active();
    if (tracer_ != nullptr) {
      name_ = name;
      cat_ = cat;
      start_ns_ = now_ns();
    }
  }

  /// Attach a numeric argument ("args":{"n":value}) to the span.
  void set_value(double value) {
    value_ = value;
    has_value_ = true;
  }

  ~ObsSpan() {
    if (tracer_ == nullptr) return;
    TraceEvent event;
    event.name = name_;
    event.cat = cat_;
    event.kind = TraceEvent::Kind::kComplete;
    event.ts_ns = start_ns_ - tracer_->epoch_ns();
    event.dur_ns = now_ns() - start_ns_;
    event.value = value_;
    event.has_value = has_value_;
    tracer_->record(event);
  }

  ObsSpan(const ObsSpan&) = delete;
  ObsSpan& operator=(const ObsSpan&) = delete;

 private:
  Tracer* tracer_ = nullptr;
  const char* name_ = nullptr;
  const char* cat_ = nullptr;
  std::uint64_t start_ns_ = 0;
  double value_ = 0.0;
  bool has_value_ = false;
};

/// Counter sample if tracing is active; a load + branch otherwise.
inline void trace_counter(const char* name, double value) {
  if (Tracer* tracer = Tracer::active()) tracer->counter(name, value);
}

}  // namespace ppde::obs
