// Minimal single-threaded Prometheus scrape endpoint (DESIGN.md S29).
//
// A deliberately tiny HTTP/1.1 responder for exactly one route:
// `GET /metrics` returns `Registry::global().to_prometheus()` as
// `text/plain; version=0.0.4`. Everything else is a 404. One thread,
// one connection at a time, blocking reads with a short timeout —
// Prometheus scrapes are rare (seconds apart) and small, so this is the
// whole requirement; anything fancier would be a liability inside the
// certification daemon. The listener binds in the constructor (so port
// conflicts surface before the daemon reports ready) but only spawns
// its thread in start(): the serve supervisor forks workers strictly
// before any thread exists, and this class must respect that ordering.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>

namespace ppde::obs {

class PromHttpServer {
 public:
  /// Bind 127.0.0.1:`port` (0 = ephemeral). Throws std::runtime_error
  /// if the socket cannot be created or bound.
  explicit PromHttpServer(std::uint16_t port);
  ~PromHttpServer();

  /// The bound port (resolves an ephemeral request).
  std::uint16_t port() const { return port_; }

  /// Spawn the accept thread. Call only after any fork() is done.
  void start();

  /// Stop the accept thread and close the socket. Idempotent.
  void stop();

  PromHttpServer(const PromHttpServer&) = delete;
  PromHttpServer& operator=(const PromHttpServer&) = delete;

 private:
  void serve_loop();

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
};

}  // namespace ppde::obs
