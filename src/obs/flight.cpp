#include "obs/flight.hpp"

#include "smc/json.hpp"

namespace ppde::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void FlightRecorder::add(QueryFlight record) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.push_back(std::move(record));
  while (records_.size() > capacity_) records_.pop_front();
}

std::vector<QueryFlight> FlightRecorder::recent(std::size_t n) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QueryFlight> out;
  const std::size_t take = n < records_.size() ? n : records_.size();
  out.reserve(take);
  for (auto it = records_.rbegin(); out.size() < take; ++it)
    out.push_back(*it);
  return out;
}

std::string FlightRecorder::to_json(const QueryFlight& record) {
  smc::JsonWriter json;
  json.field("seq", record.seq);
  json.field("req", std::string_view(record.req));
  json.field("n", record.n);
  json.field("trials", record.trials);
  json.field("outcome", std::string_view(record.outcome));
  if (!record.detail.empty())
    json.field("detail", std::string_view(record.detail));
  json.field("queue_wait_micros", record.queue_wait_micros);
  json.field("trials_executed", record.trials_executed);
  json.field("batches", record.batches);
  json.field("reassigned", record.reassigned);
  if (!record.verdict.empty())
    json.field("verdict", std::string_view(record.verdict));
  if (!record.digest.empty())
    json.field("digest", std::string_view(record.digest));
  json.field("wall_seconds", record.wall_seconds);
  std::string workers = "[";
  for (std::size_t i = 0; i < record.workers.size(); ++i) {
    const WorkerLatency& worker = record.workers[i];
    smc::JsonWriter entry;
    entry.field("worker", worker.worker);
    entry.field("batches", worker.batches);
    entry.field("total_micros", worker.total_micros);
    entry.field("max_micros", worker.max_micros);
    if (i != 0) workers += ',';
    workers += entry.finish();
  }
  workers += ']';
  json.raw_field("workers", workers);
  return json.finish();
}

}  // namespace ppde::obs
