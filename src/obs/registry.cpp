#include "obs/registry.hpp"

#include <bit>
#include <cmath>
#include <cstdio>
#include <deque>
#include <map>
#include <mutex>
#include <stdexcept>

namespace ppde::obs {

unsigned this_thread_shard() {
  static std::atomic<unsigned> next{0};
  thread_local unsigned shard =
      next.fetch_add(1, std::memory_order_relaxed) % Counter::kShards;
  return shard;
}

void Histogram::record(std::uint64_t value) {
  const unsigned bucket = static_cast<unsigned>(std::bit_width(value));
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed))
    ;
}

void Histogram::merge_from(const MetricSnapshot& delta) {
  const unsigned limit = static_cast<unsigned>(
      delta.buckets.size() < kBuckets ? delta.buckets.size() : kBuckets);
  for (unsigned b = 0; b < limit; ++b)
    if (delta.buckets[b] != 0)
      buckets_[b].fetch_add(delta.buckets[b], std::memory_order_relaxed);
  count_.fetch_add(delta.count, std::memory_order_relaxed);
  sum_.fetch_add(delta.sum, std::memory_order_relaxed);
  std::uint64_t seen = max_.load(std::memory_order_relaxed);
  while (delta.max > seen &&
         !max_.compare_exchange_weak(seen, delta.max,
                                     std::memory_order_relaxed))
    ;
}

std::uint64_t Histogram::quantile_upper(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0;
  // Rank of the q-quantile, 1-based; clamp into [1, total].
  const double raw = q * static_cast<double>(total);
  std::uint64_t rank = static_cast<std::uint64_t>(raw);
  if (static_cast<double>(rank) < raw) ++rank;
  if (rank == 0) rank = 1;
  if (rank > total) rank = total;
  std::uint64_t cumulative = 0;
  for (unsigned b = 0; b < kBuckets; ++b) {
    cumulative += bucket(b);
    if (cumulative >= rank)
      return b == 0 ? 0
                    : (b >= 64 ? ~std::uint64_t{0} : (std::uint64_t{1} << b));
  }
  return max();
}

void Histogram::reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

namespace {

struct RegistryState {
  mutable std::mutex mutex;
  // Deques: stable addresses under growth, so handed-out references
  // survive any number of later registrations.
  std::deque<Counter> counters;
  std::deque<Gauge> gauges;
  std::deque<Histogram> histograms;
  std::map<std::string, std::pair<MetricKind, std::size_t>, std::less<>>
      names;
};

RegistryState& state() {
  static RegistryState instance;
  return instance;
}

std::size_t lookup(RegistryState& s, std::string_view name, MetricKind kind,
                   std::size_t next_index) {
  const auto it = s.names.find(name);
  if (it == s.names.end()) {
    s.names.emplace(std::string(name), std::make_pair(kind, next_index));
    return next_index;
  }
  if (it->second.first != kind)
    throw std::logic_error("obs::Registry: metric '" + std::string(name) +
                           "' already registered with a different kind");
  return it->second.second;
}

}  // namespace

Registry& Registry::global() {
  static Registry instance;
  return instance;
}

Counter& Registry::counter(std::string_view name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const std::size_t index =
      lookup(s, name, MetricKind::kCounter, s.counters.size());
  if (index == s.counters.size()) s.counters.emplace_back();
  return s.counters[index];
}

Gauge& Registry::gauge(std::string_view name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const std::size_t index =
      lookup(s, name, MetricKind::kGauge, s.gauges.size());
  if (index == s.gauges.size()) s.gauges.emplace_back();
  return s.gauges[index];
}

Histogram& Registry::histogram(std::string_view name) {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  const std::size_t index =
      lookup(s, name, MetricKind::kHistogram, s.histograms.size());
  if (index == s.histograms.size()) s.histograms.emplace_back();
  return s.histograms[index];
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  std::vector<MetricSnapshot> result;
  result.reserve(s.names.size());
  for (const auto& [name, entry] : s.names) {
    MetricSnapshot metric;
    metric.name = name;
    metric.kind = entry.first;
    switch (entry.first) {
      case MetricKind::kCounter:
        metric.value =
            static_cast<double>(s.counters[entry.second].value());
        break;
      case MetricKind::kGauge:
        metric.value = s.gauges[entry.second].value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& histogram = s.histograms[entry.second];
        metric.count = histogram.count();
        metric.sum = histogram.sum();
        metric.max = histogram.max();
        metric.p50 = histogram.quantile_upper(0.5);
        metric.p90 = histogram.quantile_upper(0.9);
        metric.p99 = histogram.quantile_upper(0.99);
        metric.buckets.resize(Histogram::kBuckets);
        for (unsigned b = 0; b < Histogram::kBuckets; ++b)
          metric.buckets[b] = histogram.bucket(b);
        break;
      }
    }
    result.push_back(std::move(metric));
  }
  return result;
}

void Registry::reset() {
  RegistryState& s = state();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (Counter& counter : s.counters) counter.reset();
  for (Gauge& gauge : s.gauges) gauge.reset();
  for (Histogram& histogram : s.histograms) histogram.reset();
}

std::string Registry::to_string() const {
  std::string out;
  char line[256];
  for (const MetricSnapshot& metric : snapshot()) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        std::snprintf(line, sizeof line, "%-32s counter %llu\n",
                      metric.name.c_str(),
                      static_cast<unsigned long long>(metric.value));
        break;
      case MetricKind::kGauge:
        std::snprintf(line, sizeof line, "%-32s gauge   %.6g\n",
                      metric.name.c_str(), metric.value);
        break;
      case MetricKind::kHistogram:
        std::snprintf(
            line, sizeof line,
            "%-32s histo   n=%llu p50<=%llu p90<=%llu p99<=%llu max=%llu\n",
            metric.name.c_str(),
            static_cast<unsigned long long>(metric.count),
            static_cast<unsigned long long>(metric.p50),
            static_cast<unsigned long long>(metric.p90),
            static_cast<unsigned long long>(metric.p99),
            static_cast<unsigned long long>(metric.max));
        break;
    }
    out += line;
  }
  return out;
}

std::string Registry::to_json() const {
  std::string out = "{";
  char buffer[320];
  bool first = true;
  const auto append_number = [&](double value) {
    if (value == static_cast<double>(static_cast<long long>(value)))
      std::snprintf(buffer, sizeof buffer, "%lld",
                    static_cast<long long>(value));
    else
      std::snprintf(buffer, sizeof buffer, "%.17g", value);
    out += buffer;
  };
  for (const MetricSnapshot& metric : snapshot()) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += metric.name;
    out += "\":";
    switch (metric.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        if (metric.kind == MetricKind::kGauge &&
            !std::isfinite(metric.value))
          out += "null";
        else
          append_number(metric.value);
        break;
      case MetricKind::kHistogram:
        std::snprintf(
            buffer, sizeof buffer,
            "{\"count\":%llu,\"sum\":%llu,\"max\":%llu,\"p50\":%llu,"
            "\"p90\":%llu,\"p99\":%llu}",
            static_cast<unsigned long long>(metric.count),
            static_cast<unsigned long long>(metric.sum),
            static_cast<unsigned long long>(metric.max),
            static_cast<unsigned long long>(metric.p50),
            static_cast<unsigned long long>(metric.p90),
            static_cast<unsigned long long>(metric.p99));
        out += buffer;
        break;
    }
  }
  out += '}';
  return out;
}

namespace {

std::string prometheus_name(const std::string& name) {
  std::string out = "ppde_";
  for (const char c : name) {
    const bool keep = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += keep ? c : '_';
  }
  return out;
}

}  // namespace

std::string Registry::to_prometheus() const {
  std::string out;
  char buffer[160];
  const auto append_u64 = [&](std::uint64_t value) {
    std::snprintf(buffer, sizeof buffer, "%llu",
                  static_cast<unsigned long long>(value));
    out += buffer;
  };
  for (const MetricSnapshot& metric : snapshot()) {
    const std::string name = prometheus_name(metric.name);
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n" + name + ' ';
        append_u64(static_cast<std::uint64_t>(metric.value));
        out += '\n';
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n" + name + ' ';
        if (std::isnan(metric.value))
          out += "NaN";
        else if (std::isinf(metric.value))
          out += metric.value > 0 ? "+Inf" : "-Inf";
        else {
          std::snprintf(buffer, sizeof buffer, "%.17g", metric.value);
          out += buffer;
        }
        out += '\n';
        break;
      case MetricKind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        // Emit cumulative buckets up to the highest populated native
        // bucket; le="2^k" covers native buckets 0..k (header caveat on
        // exact power-of-two samples applies).
        unsigned highest = 0;
        for (unsigned b = 0; b < metric.buckets.size(); ++b)
          if (metric.buckets[b] != 0) highest = b;
        std::uint64_t cumulative = 0;
        for (unsigned b = 0; b <= highest && b < metric.buckets.size();
             ++b) {
          cumulative += metric.buckets[b];
          out += name + "_bucket{le=\"";
          // 2^64 (b == 64) has no exact u64 edge; render it literally.
          if (b >= 64)
            out += "18446744073709551616";
          else
            append_u64(std::uint64_t{1} << b);
          out += "\"} ";
          append_u64(cumulative);
          out += '\n';
        }
        out += name + "_bucket{le=\"+Inf\"} ";
        append_u64(metric.count);
        out += '\n';
        out += name + "_sum ";
        append_u64(metric.sum);
        out += '\n';
        out += name + "_count ";
        append_u64(metric.count);
        out += '\n';
        break;
      }
    }
  }
  return out;
}

}  // namespace ppde::obs
