// Per-query flight recorder for the serve daemon (DESIGN.md S29).
//
// Traces answer "where did the time go" for a run you *chose* to trace;
// the flight recorder answers "what just happened" for the queries you
// didn't. The daemon appends one bounded-size record per admitted (or
// rejected) query — admission outcome, queue wait, per-worker batch
// latencies, reassignments, verdict, digest, wall — into a fixed-capacity
// in-memory ring. The newest N records come back as JSONL through
// `stats` with `recent=N` and `ppde client ... stats --recent=N`, so
// slow-query forensics needs no trace file and no restart.
//
// The recorder is an observer: nothing read from it feeds back into
// admission, scheduling or certification, and recording happens after
// the response bytes are already determined — certificates are
// byte-identical with the recorder at any capacity (test_serve pins the
// digest with every observability feature on).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

namespace ppde::obs {

/// One worker's contribution to one query, measured daemon-side from
/// batch dispatch to reply collection.
struct WorkerLatency {
  int worker = 0;  ///< supervisor slot index
  std::uint64_t batches = 0;
  std::uint64_t total_micros = 0;
  std::uint64_t max_micros = 0;
};

struct QueryFlight {
  std::uint64_t seq = 0;       ///< daemon-assigned query_seq == trace_id
  std::string req;             ///< "certify" | "ensemble"
  std::uint64_t n = 0;         ///< population size
  std::uint64_t trials = 0;    ///< requested trial cap
  std::string outcome;         ///< "ok" | "rejected" | "error"
  std::string detail;          ///< rejection/error reason, "" when ok
  std::uint64_t queue_wait_micros = 0;
  std::uint64_t trials_executed = 0;  ///< records delivered by workers
  std::uint64_t batches = 0;
  std::uint64_t reassigned = 0;  ///< trials re-dispatched off dead workers
  std::string verdict;           ///< certify only
  std::string digest;            ///< certify only (hex)
  double wall_seconds = 0.0;
  std::vector<WorkerLatency> workers;
};

/// Bounded MPSC-friendly ring of the most recent query records. All
/// methods are thread-safe; add() evicts the oldest record at capacity.
class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 128);

  void add(QueryFlight record);

  /// Up to `n` most recent records, newest first.
  std::vector<QueryFlight> recent(std::size_t n) const;

  /// One record as a single-line JSON object (the JSONL unit).
  static std::string to_json(const QueryFlight& record);

 private:
  mutable std::mutex mutex_;
  std::deque<QueryFlight> records_;
  std::size_t capacity_;
};

}  // namespace ppde::obs
