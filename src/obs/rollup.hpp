// Fleet metric roll-up: delta snapshots on the worker, namespaced
// merge on the daemon (DESIGN.md S29).
//
// A serve worker's obs::Registry is process-local; its counters and
// latency histograms are invisible to the daemon's `stats` query unless
// they travel on the wire. Shipping *cumulative* snapshots would make
// the merge order- and duplicate-sensitive (every batch reply would
// re-add the worker's lifetime totals), so workers ship *deltas*: a
// DeltaTracker remembers the last-shipped snapshot and collect() returns
// only what changed since — a counter increment, a gauge's new value, a
// histogram's per-bucket increments (plus its cumulative max, which
// merges by taking the larger value). Deltas make the daemon-side fold
// commutative and associative by construction: any interleaving of any
// workers' deltas sums to the same fleet totals (test_obs pins this).
//
// The daemon folds deltas into its own registry under a `worker.`
// prefix (merge_deltas), so `stats` and the Prometheus exposition
// report fleet-wide `worker.engine.trials_done`, `worker.serve.
// trials_executed`, per-trial latency tails, etc., next to the daemon's
// own `serve.*` metrics. The tracker's baseline is taken at
// construction, so counts inherited across fork() (the prefork
// supervisor copies the daemon's registry into every child) are never
// re-reported as worker work.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "obs/registry.hpp"

namespace ppde::obs {

/// Worker-side: diffs successive global-registry snapshots. A returned
/// MetricSnapshot is a *delta*: counters carry the increment in `value`,
/// gauges their current value (shipped only when changed), histograms
/// per-bucket/count/sum increments and the cumulative max. Metrics with
/// no change since the last collect() are omitted.
class DeltaTracker {
 public:
  /// Baseline = the registry's current state (nothing inherited across
  /// fork() is ever shipped).
  DeltaTracker();

  std::vector<MetricSnapshot> collect();

 private:
  std::map<std::string, MetricSnapshot> last_;
};

/// Daemon-side: fold worker deltas into the global registry, each metric
/// renamed `<prefix><name>` (the serve daemon passes "worker."). Safe
/// from any thread; commutative and associative across deltas.
void merge_deltas(std::string_view prefix,
                  const std::vector<MetricSnapshot>& deltas);

}  // namespace ppde::obs
