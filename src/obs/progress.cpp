#include "obs/progress.hpp"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

namespace ppde::obs {

struct ProgressMonitor::Impl {
  std::function<std::string()> line;
  std::chrono::duration<double> period{1.0};
  std::thread thread;
  std::mutex mutex;
  std::condition_variable cv;
  bool stop_requested = false;
  std::atomic<std::uint64_t> ticks{0};

  void loop() {
    std::unique_lock<std::mutex> lock(mutex);
    while (!stop_requested) {
      if (cv.wait_for(lock, period, [this] { return stop_requested; }))
        break;
      lock.unlock();
      ticks.fetch_add(1, std::memory_order_relaxed);
      const std::string text = line();
      if (!text.empty()) {
        std::fprintf(stderr, "%s\n", text.c_str());
        std::fflush(stderr);
      }
      lock.lock();
    }
  }
};

ProgressMonitor::ProgressMonitor(double period_seconds,
                                 std::function<std::string()> line)
    : impl_(new Impl) {
  impl_->line = std::move(line);
  if (period_seconds > 0.0)
    impl_->period = std::chrono::duration<double>(period_seconds);
  impl_->thread = std::thread([impl = impl_] { impl->loop(); });
}

void ProgressMonitor::stop() {
  if (impl_ == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(impl_->mutex);
    impl_->stop_requested = true;
  }
  impl_->cv.notify_all();
  if (impl_->thread.joinable()) impl_->thread.join();
}

ProgressMonitor::~ProgressMonitor() {
  stop();
  delete impl_;
}

std::uint64_t ProgressMonitor::ticks() const {
  return impl_->ticks.load(std::memory_order_relaxed);
}

}  // namespace ppde::obs
