// Named, typed runtime metrics with thread-local sharding (S24).
//
// The per-run RunMetrics record (engine/metrics.hpp) answers "what did
// *this* run do" after the fact; it cannot answer "what is the process
// doing right now" across a fleet of concurrent trials, an exploration
// wave, or an SPRT round. This registry holds the process-wide view:
//
//   * Counter   — monotone u64, add() from any thread. Writes land in one
//                 of 16 cache-line-sized cells chosen per thread, so
//                 concurrent trials never contend on a line; value() sums.
//   * Gauge     — last-written double (frontier size, interner bytes, SPRT
//                 log-likelihood position, ...), one relaxed store.
//   * Histogram — log₂-bucketed u64 samples (per-trial wall micros,
//                 per-wave expansion micros); quantile_upper(q) reports the
//                 upper edge of the bucket holding quantile q, i.e. tails
//                 with factor-of-2 resolution at O(1) memory.
//
// Metrics are created on first use (`Registry::global().counter("a.b")`),
// live for the process lifetime, and are safe to update from any thread;
// instrument sites cache the returned reference (`static Counter& c =`)
// so the name lookup happens once. The registry is an *observer*: nothing
// read from it feeds back into simulation, verification, or certificates.
// snapshot() serves the progress heartbeat (obs/progress.hpp) and tests;
// reset() re-zeroes values for test isolation (handles stay valid).
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ppde::obs {

/// Stable, dense per-thread shard index in [0, Counter::kShards).
unsigned this_thread_shard();

class Counter {
 public:
  static constexpr unsigned kShards = 16;

  void add(std::uint64_t n = 1) {
    cells_[this_thread_shard()].value.fetch_add(n,
                                                std::memory_order_relaxed);
  }

  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const Cell& cell : cells_)
      total += cell.value.load(std::memory_order_relaxed);
    return total;
  }

  void reset() {
    for (Cell& cell : cells_) cell.value.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> value{0};
  };
  Cell cells_[kShards];
};

class Gauge {
 public:
  void set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

struct MetricSnapshot;

class Histogram {
 public:
  /// Bucket b (b >= 1) holds values in [2^(b-1), 2^b); bucket 0 holds 0.
  static constexpr unsigned kBuckets = 65;

  void record(std::uint64_t value);

  /// Fold another histogram's (delta) snapshot into this one: buckets,
  /// count and sum add; max takes the larger value. Bucket-merging N
  /// snapshots is exactly equivalent to replaying their raw samples —
  /// both land each sample in the same log₂ bucket — so the serve
  /// daemon's fleet roll-up (S29) loses nothing an in-process histogram
  /// would have had. Safe from any thread; commutative and associative.
  void merge_from(const MetricSnapshot& delta);

  std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(unsigned b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Upper edge of the bucket containing quantile `q` in [0, 1]; 0 when
  /// empty. Log-scale precision: the true quantile is within 2x below.
  std::uint64_t quantile_upper(double q) const;
  void reset();

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind { kCounter, kGauge, kHistogram };

struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;        ///< counter total or gauge value
  std::uint64_t count = 0;   ///< histogram observations
  std::uint64_t sum = 0;     ///< histogram sum
  std::uint64_t max = 0;     ///< histogram max
  std::uint64_t p50 = 0;     ///< histogram bucket upper edges
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
  /// Histograms only: raw per-bucket counts (Histogram::kBuckets wide).
  /// Carried so snapshots can be diffed (worker deltas) and re-merged
  /// losslessly on the daemon side via Histogram::merge_from.
  std::vector<std::uint64_t> buckets;
};

class Registry {
 public:
  /// The process-wide registry every instrumentation point publishes to.
  static Registry& global();

  /// Find-or-create by name. Throws std::logic_error if `name` already
  /// exists with a different kind. References stay valid forever.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Point-in-time values of every registered metric, sorted by name.
  std::vector<MetricSnapshot> snapshot() const;

  /// Zero every metric (handles stay valid). Test isolation only.
  void reset();

  /// Human-readable one-metric-per-line rendering of snapshot().
  std::string to_string() const;

  /// snapshot() as one JSON object keyed by metric name: counters and
  /// gauges map to numbers, histograms to {"count","sum","max","p50",
  /// "p90","p99"} objects. Served by the daemon's stats query (S25).
  /// Metric names are [a-z0-9._-] identifiers, so no string escaping is
  /// needed; non-finite gauge values render as null.
  std::string to_json() const;

  /// snapshot() in Prometheus text exposition format 0.0.4. Metric
  /// names are prefixed with `ppde_` and sanitised ('.'/'-' → '_').
  /// Histograms render as cumulative `_bucket` series with exact
  /// power-of-two `le` edges: the series at le="2^k" counts samples in
  /// native buckets 0..k, i.e. values < 2^k plus the value 2^k-1 — the
  /// log₂ bucketing means an exact power-of-two sample 2^k lands one
  /// edge higher; tails stay correct to the factor-of-2 bucket
  /// resolution. A terminal `+Inf` bucket equals `_count`, and `_sum`
  /// is exact. Served by `stats?format=prometheus` and the daemon's
  /// `--prom-port` HTTP `/metrics` listener (S29).
  std::string to_prometheus() const;
};

}  // namespace ppde::obs
