#include "obs/trace.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <set>

#include "obs/registry.hpp"
#include "smc/json.hpp"  // the one JSON emitter in the repo (S23)

namespace ppde::obs {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

/// Single-producer (owning thread) / single-consumer (whoever holds the
/// ring registry mutex) event ring. The producer publishes slots with a
/// release store of head; a drainer acquires head, reads the slots below
/// it, and releases tail; the producer acquires tail to detect fullness.
struct ThreadRing {
  explicit ThreadRing(std::uint32_t capacity)
      : slots(capacity), mask(capacity - 1) {}

  std::vector<TraceEvent> slots;
  const std::uint64_t mask;
  std::atomic<std::uint64_t> head{0};
  std::atomic<std::uint64_t> tail{0};
  std::atomic<std::uint64_t> dropped{0};
  std::uint32_t tid = 0;
};

/// Per-thread ring cache. Tracer ids are globally unique and never reused,
/// so a stale cache entry from a previous tracer can never alias a new one.
struct TlCache {
  std::uint64_t tracer_id = 0;
  ThreadRing* ring = nullptr;
};
thread_local TlCache tl_cache;

std::atomic<std::uint64_t> g_next_tracer_id{1};

}  // namespace

struct Tracer::Impl {
  std::uint64_t id = 0;
  TracerOptions options;
  std::FILE* file = nullptr;
  std::uint64_t epoch_ns = 0;
  bool capture = false;  // capture mode: no file, no collector thread

  std::mutex rings_mutex;  // guards rings + draining (one drainer at a time)
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 1;  // tid 0 is the process-metadata pseudo-thread
  std::uint64_t written = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t truncated_events = 0;  // suppressed past max_file_bytes
  bool truncated = false;
  std::set<std::uint64_t> announced_pids;  // foreign process_name records

  std::thread collector;
  std::mutex control_mutex;
  std::condition_variable control_cv;
  bool stop_requested = false;

  ThreadRing* ring_for_current_thread() {
    if (tl_cache.tracer_id == id) return tl_cache.ring;
    std::lock_guard<std::mutex> lock(rings_mutex);
    rings.push_back(std::make_unique<ThreadRing>(options.ring_capacity));
    ThreadRing* ring = rings.back().get();
    ring->tid = next_tid++;
    tl_cache = {id, ring};
    return ring;
  }

  void write_line(const std::string& object, bool last) {
    if (file == nullptr) return;  // closed by an interrupt_stop()
    std::fputs(object.c_str(), file);
    std::fputs(last ? "\n" : ",\n", file);
    bytes_written += object.size() + 2;
    if (options.max_file_bytes != 0 && bytes_written >= options.max_file_bytes)
      truncated = true;
  }

  /// True (and accounted) when the size cap says this event must be
  /// suppressed rather than written. Callers hold rings_mutex.
  bool suppress_for_cap() {
    if (!truncated) return false;
    ++truncated_events;
    static Counter& counter =
        Registry::global().counter("obs.trace_truncated");
    counter.add(1);
    return true;
  }

  std::string serialise(const TraceEvent& event, std::uint32_t tid) const {
    smc::JsonWriter json;
    json.field("name", std::string_view(event.name));
    json.field("cat", std::string_view(event.cat));
    const double ts_us = static_cast<double>(event.ts_ns) / 1000.0;
    switch (event.kind) {
      case TraceEvent::Kind::kComplete:
        json.field("ph", std::string_view("X"));
        json.field("ts", ts_us);
        json.field("dur", static_cast<double>(event.dur_ns) / 1000.0);
        break;
      case TraceEvent::Kind::kCounter:
        json.field("ph", std::string_view("C"));
        json.field("ts", ts_us);
        break;
      case TraceEvent::Kind::kInstant:
        json.field("ph", std::string_view("i"));
        json.field("ts", ts_us);
        json.field("s", std::string_view("t"));
        break;
    }
    json.field("pid", 1);
    json.field("tid", static_cast<std::uint64_t>(tid));
    if (event.kind == TraceEvent::Kind::kCounter) {
      smc::JsonWriter args;
      args.field("value", event.value);
      json.raw_field("args", args.finish());
    } else if (event.has_value) {
      smc::JsonWriter args;
      args.field("n", event.value);
      json.raw_field("args", args.finish());
    }
    return json.finish();
  }

  /// Drain every ring to the file. Serialised by rings_mutex, so it is
  /// safe from the collector thread and from stop() after the join.
  /// Capture-mode tracers are drained by drain_capture() instead; here
  /// (their finish() path) leftover events are simply discarded.
  void drain() {
    std::lock_guard<std::mutex> lock(rings_mutex);
    for (const std::unique_ptr<ThreadRing>& ring : rings) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
      for (; tail != head; ++tail) {
        if (capture || file == nullptr) continue;
        if (suppress_for_cap()) continue;
        write_line(serialise(ring->slots[tail & ring->mask], ring->tid),
                   /*last=*/false);
        ++written;
      }
      ring->tail.store(head, std::memory_order_release);
    }
  }

  /// Capture-mode drain: move every ring's pending events out as owned,
  /// absolute-timestamped records.
  std::vector<CapturedEvent> drain_to_memory() {
    std::lock_guard<std::mutex> lock(rings_mutex);
    std::vector<CapturedEvent> out;
    for (const std::unique_ptr<ThreadRing>& ring : rings) {
      const std::uint64_t head = ring->head.load(std::memory_order_acquire);
      std::uint64_t tail = ring->tail.load(std::memory_order_relaxed);
      for (; tail != head; ++tail) {
        const TraceEvent& event = ring->slots[tail & ring->mask];
        CapturedEvent captured;
        captured.name = event.name;
        captured.cat = event.cat;
        captured.kind = event.kind;
        captured.ts_ns = epoch_ns + event.ts_ns;
        captured.dur_ns = event.dur_ns;
        captured.tid = ring->tid;
        captured.value = event.value;
        captured.has_value = event.has_value;
        out.push_back(std::move(captured));
        ++written;
      }
      ring->tail.store(head, std::memory_order_release);
    }
    return out;
  }

  void collector_loop() {
    std::unique_lock<std::mutex> lock(control_mutex);
    while (!stop_requested) {
      control_cv.wait_for(lock,
                          std::chrono::milliseconds(options.flush_period_ms),
                          [this] { return stop_requested; });
      lock.unlock();
      drain();
      lock.lock();
    }
  }

  std::uint64_t total_dropped() {
    std::lock_guard<std::mutex> lock(rings_mutex);
    std::uint64_t total = 0;
    for (const std::unique_ptr<ThreadRing>& ring : rings)
      total += ring->dropped.load(std::memory_order_relaxed);
    return total;
  }

  /// Shared tail of stop() / interrupt_stop(): stop the collector, drain,
  /// write the summary footer and close the file. Returns false if another
  /// shutdown path already ran (the collector is then already joined and
  /// the file closed — nothing left to do).
  bool finish() {
    {
      std::lock_guard<std::mutex> lock(control_mutex);
      if (stop_requested) return false;
      stop_requested = true;
    }
    control_cv.notify_all();
    if (collector.joinable()) collector.join();
    drain();  // anything recorded since the collector's final pass
    if (file == nullptr) return true;  // capture mode: nothing on disk

    // Footer: summary metadata (drop accounting) and the closing bracket —
    // the whole file is one valid JSON array. Written even past the size
    // cap (it is a handful of bytes and keeps the array valid).
    smc::JsonWriter summary;
    summary.field("obs_trace_v", 1);
    summary.field("ph", std::string_view("M"));
    summary.field("name", std::string_view("obs_summary"));
    summary.field("pid", 1);
    summary.field("tid", std::uint64_t{0});
    smc::JsonWriter args;
    args.field("written", written);
    args.field("dropped", total_dropped());
    args.field("truncated", truncated_events);
    summary.raw_field("args", args.finish());
    write_line(summary.finish(), /*last=*/true);
    std::fputs("]\n", file);
    std::fclose(file);
    {
      // write_line checks file without a lock of its own; the rings mutex
      // serialises the null-out against any concurrent drain.
      std::lock_guard<std::mutex> lock(rings_mutex);
      file = nullptr;
    }
    return true;
  }

  /// Serialise a foreign (worker) event under this tracer's epoch with an
  /// explicit pid. Callers hold rings_mutex.
  std::string serialise_foreign(std::uint64_t pid,
                                const CapturedEvent& event) const {
    smc::JsonWriter json;
    json.field("name", std::string_view(event.name));
    json.field("cat", std::string_view(event.cat));
    const std::uint64_t rel_ns =
        event.ts_ns > epoch_ns ? event.ts_ns - epoch_ns : 0;
    const double ts_us = static_cast<double>(rel_ns) / 1000.0;
    switch (event.kind) {
      case TraceEvent::Kind::kComplete:
        json.field("ph", std::string_view("X"));
        json.field("ts", ts_us);
        json.field("dur", static_cast<double>(event.dur_ns) / 1000.0);
        break;
      case TraceEvent::Kind::kCounter:
        json.field("ph", std::string_view("C"));
        json.field("ts", ts_us);
        break;
      case TraceEvent::Kind::kInstant:
        json.field("ph", std::string_view("i"));
        json.field("ts", ts_us);
        json.field("s", std::string_view("t"));
        break;
    }
    json.field("pid", pid);
    json.field("tid", static_cast<std::uint64_t>(event.tid));
    if (event.kind == TraceEvent::Kind::kCounter) {
      smc::JsonWriter args;
      args.field("value", event.value);
      json.raw_field("args", args.finish());
    } else if (event.has_value) {
      smc::JsonWriter args;
      args.field("n", event.value);
      json.raw_field("args", args.finish());
    }
    return json.finish();
  }

  /// Emit a process_name metadata record for a foreign pid, once per pid.
  /// Callers hold rings_mutex.
  void announce_locked(std::uint64_t pid, const std::string& group_name) {
    if (file == nullptr || !announced_pids.insert(pid).second) return;
    smc::JsonWriter meta;
    meta.field("ph", std::string_view("M"));
    meta.field("name", std::string_view("process_name"));
    meta.field("pid", pid);
    meta.field("tid", std::uint64_t{0});
    smc::JsonWriter args;
    args.field("name", std::string_view(group_name));
    meta.raw_field("args", args.finish());
    write_line(meta.finish(), /*last=*/false);
  }
};

std::atomic<Tracer*> Tracer::g_active{nullptr};

bool Tracer::start(const std::string& path, const TracerOptions& options) {
  if (g_active.load(std::memory_order_relaxed) != nullptr) return false;
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;

  auto* impl = new Impl;
  impl->id = g_next_tracer_id.fetch_add(1, std::memory_order_relaxed);
  impl->options = options;
  // Round the ring capacity down to a power of two (the mask invariant).
  std::uint32_t capacity = 1;
  while (capacity * 2 <= impl->options.ring_capacity && capacity < (1u << 20))
    capacity *= 2;
  impl->options.ring_capacity = capacity;
  impl->file = file;
  impl->epoch_ns = now_ns();

  // Header: a JSON array, one event object per line (trailing commas, so
  // `sed 's/,$//'` yields pure JSONL). The first record carries the
  // versioned schema tag CI validates.
  {
    smc::JsonWriter meta;
    meta.field("obs_trace_v", 1);
    meta.field("ph", std::string_view("M"));
    meta.field("name", std::string_view("process_name"));
    meta.field("pid", 1);
    meta.field("tid", std::uint64_t{0});
    smc::JsonWriter args;
    args.field("name", std::string_view("ppde"));
    meta.raw_field("args", args.finish());
    std::fputs("[\n", file);
    impl->write_line(meta.finish(), /*last=*/false);
  }

  Tracer* tracer = new Tracer(impl);
  tracer->epoch_ns_ = impl->epoch_ns;
  impl->collector = std::thread([impl] { impl->collector_loop(); });
  g_active.store(tracer, std::memory_order_release);
  return true;
}

bool Tracer::start_capture(const TracerOptions& options) {
  if (g_active.load(std::memory_order_relaxed) != nullptr) return false;
  auto* impl = new Impl;
  impl->id = g_next_tracer_id.fetch_add(1, std::memory_order_relaxed);
  impl->options = options;
  std::uint32_t capacity = 1;
  while (capacity * 2 <= impl->options.ring_capacity && capacity < (1u << 20))
    capacity *= 2;
  impl->options.ring_capacity = capacity;
  impl->capture = true;
  impl->epoch_ns = now_ns();
  Tracer* tracer = new Tracer(impl);
  tracer->epoch_ns_ = impl->epoch_ns;
  // No file, no collector thread: the owner drains via drain_capture().
  g_active.store(tracer, std::memory_order_release);
  return true;
}

bool Tracer::capturing() {
  Tracer* tracer = g_active.load(std::memory_order_relaxed);
  return tracer != nullptr && tracer->impl_->capture;
}

std::vector<CapturedEvent> Tracer::drain_capture() {
  Tracer* tracer = g_active.load(std::memory_order_relaxed);
  if (tracer == nullptr || !tracer->impl_->capture) return {};
  return tracer->impl_->drain_to_memory();
}

void Tracer::reset_after_fork() {
  // Leak whatever the child inherited: its collector thread did not
  // survive the fork and its FILE* is shared with the parent, so the
  // only safe interaction is none at all.
  g_active.store(nullptr, std::memory_order_relaxed);
  tl_cache = {};
}

void Tracer::stop() {
  Tracer* tracer = g_active.load(std::memory_order_relaxed);
  if (tracer == nullptr) return;
  // Uninstall first so no *new* spans begin; the contract requires
  // instrumented threads to have quiesced already, so no record() is in
  // flight past this point.
  g_active.store(nullptr, std::memory_order_release);

  if (!tracer->impl_->finish()) return;  // interrupt_stop() already ran
  delete tracer;
}

void Tracer::interrupt_stop() {
  Tracer* tracer = g_active.load(std::memory_order_relaxed);
  if (tracer == nullptr) return;
  // NOT uninstalled and deliberately leaked: see the header contract —
  // worker threads may be mid-record(), so the rings must stay live. The
  // drained-then-closed file is complete; later record() calls land in
  // rings nobody reads again.
  tracer->impl_->finish();
}

Tracer::~Tracer() { delete impl_; }

void Tracer::record(const TraceEvent& event) {
  ThreadRing* ring = impl_->ring_for_current_thread();
  const std::uint64_t head = ring->head.load(std::memory_order_relaxed);
  if (head - ring->tail.load(std::memory_order_acquire) > ring->mask) {
    ring->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->slots[head & ring->mask] = event;
  ring->head.store(head + 1, std::memory_order_release);
}

void Tracer::emit_foreign(std::uint64_t pid, const std::string& group_name,
                          const CapturedEvent& event) {
  std::lock_guard<std::mutex> lock(impl_->rings_mutex);
  if (impl_->capture || impl_->file == nullptr) return;
  impl_->announce_locked(pid, group_name);
  if (impl_->suppress_for_cap()) return;
  impl_->write_line(impl_->serialise_foreign(pid, event), /*last=*/false);
  ++impl_->written;
}

void Tracer::announce_process(std::uint64_t pid,
                              const std::string& group_name) {
  std::lock_guard<std::mutex> lock(impl_->rings_mutex);
  if (impl_->capture) return;
  impl_->announce_locked(pid, group_name);
}

std::uint64_t Tracer::dropped() const { return impl_->total_dropped(); }

std::uint64_t Tracer::written() const {
  std::lock_guard<std::mutex> lock(impl_->rings_mutex);
  return impl_->written;
}

}  // namespace ppde::obs
