#include "obs/prom_http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>

#include "obs/registry.hpp"

namespace ppde::obs {

PromHttpServer::PromHttpServer(std::uint16_t port) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("prom_http: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(listen_fd_, 8) < 0) {
    const std::string error = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("prom_http: cannot listen on port " +
                             std::to_string(port) + ": " + error);
  }
  socklen_t len = sizeof addr;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
}

PromHttpServer::~PromHttpServer() { stop(); }

void PromHttpServer::start() {
  if (listen_fd_ < 0 || thread_.joinable()) return;
  thread_ = std::thread([this] { serve_loop(); });
}

void PromHttpServer::stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void PromHttpServer::serve_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    if (::poll(&pfd, 1, 200) <= 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    timeval timeout{2, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);

    // Read until the header terminator (we only care about the request
    // line) or the buffer cap; a scrape request is a few hundred bytes.
    std::string request;
    char buffer[1024];
    while (request.size() < 8192 &&
           request.find("\r\n\r\n") == std::string::npos) {
      const ssize_t got = ::recv(fd, buffer, sizeof buffer, 0);
      if (got <= 0) break;
      request.append(buffer, static_cast<std::size_t>(got));
    }

    std::string response;
    if (request.rfind("GET /metrics", 0) == 0) {
      const std::string body = Registry::global().to_prometheus();
      response =
          "HTTP/1.1 200 OK\r\n"
          "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
          "Connection: close\r\n"
          "Content-Length: " +
          std::to_string(body.size()) + "\r\n\r\n" + body;
    } else {
      response =
          "HTTP/1.1 404 Not Found\r\n"
          "Content-Length: 0\r\nConnection: close\r\n\r\n";
    }
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t wrote = ::send(fd, response.data() + sent,
                                   response.size() - sent, MSG_NOSIGNAL);
      if (wrote <= 0) break;
      sent += static_cast<std::size_t>(wrote);
    }
    ::close(fd);
  }
}

}  // namespace ppde::obs
