// Robustness harness for almost self-stabilisation (paper Section 8).
//
// Definition 7: a protocol PP = (Q, delta, I, O) with |I| = 1 deciding phi
// is *almost self-stabilising* if every fair run from any configuration C
// with C(I) >= |Q| stabilises to phi(|C|): the adversary may add an
// arbitrary noise multiset C_N on top of the intended input, and the
// protocol must still count every agent. (The construction actually
// tolerates the weaker bound C(I) >= |F|, which is what its proof via
// Lemma 15 uses; the harness lets callers pick the floor.)
//
// The harness generates noise configurations — uniform random states, plus
// adversarially chosen ones like duplicated pointer agents or agents
// planted in accepting states — and checks the verdict exactly (bottom-SCC
// verifier) or statistically (random scheduler).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "engine/ensemble.hpp"
#include "pp/config.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"
#include "smc/certify.hpp"
#include "support/rng.hpp"

namespace ppde::analysis {

/// Predicate on the *total* agent count the protocol is supposed to decide.
using TotalPredicate = std::function<bool(std::uint64_t)>;

struct RobustnessResult {
  std::uint64_t trials = 0;
  std::uint64_t correct = 0;
  std::uint64_t wrong = 0;
  std::uint64_t unresolved = 0;  ///< verifier limit / simulation budget hit

  bool all_correct() const { return wrong == 0 && unresolved == 0; }
};

/// Uniformly random noise: `agents` agents in independently uniform states,
/// drawn from `pool` if given (e.g. register states only) or from all
/// states.
pp::Config random_noise(const pp::Protocol& protocol, std::uint32_t agents,
                        support::Rng& rng,
                        const std::vector<pp::State>* pool = nullptr);

/// Exact Definition-7 sweep: for `trials` draws of up to `max_noise` noise
/// agents added to `base`, verify (bottom-SCC) that every fair run
/// stabilises to predicate(total agents).
RobustnessResult sweep_exact(
    const pp::Protocol& protocol, const pp::Config& base,
    std::uint32_t max_noise, std::uint64_t trials,
    const TotalPredicate& predicate, const pp::VerifierOptions& options,
    std::uint64_t seed, const std::vector<pp::State>* noise_pool = nullptr);

/// Statistical sweep with the random scheduler (for instances beyond the
/// exact verifier's reach). Noise configurations are drawn sequentially
/// from `seed` (so the sweep is reproducible), then the trials run on the
/// engine's thread-pool fleet with per-trial seeds derived from `seed` —
/// the result is identical for every `threads` value. `engine` selects the
/// per-trial simulator: per-agent is fastest for small populations with
/// long stability windows; count+null-skip wins once populations are large
/// and meetings are mostly null (see DESIGN.md S21).
RobustnessResult sweep_simulated(
    const pp::Protocol& protocol, const pp::Config& base,
    std::uint32_t max_noise, std::uint64_t trials,
    const TotalPredicate& predicate, const pp::SimulationOptions& options,
    std::uint64_t seed, unsigned threads = 1,
    engine::EngineKind engine = engine::EngineKind::kPerAgent);

/// SMC-certified statistical sweep (S23): instead of a fixed trial count,
/// the sweep runs Wald's SPRT on the statement "a run from base + random
/// noise stabilises to predicate(total agents) with probability
/// >= 1 - delta" — the probability is over both the noise draw and the
/// scheduler. Trial i derives its noise configuration AND its scheduler
/// seed from derive_trial_seed(options.seed, i), so the certificate (and
/// its digest) is identical at every thread count. The trial budget cap in
/// `options` downgrades the verdict to kInconclusive rather than
/// overstating the evidence. certificate.population reports the *base*
/// population (each trial adds up to max_noise agents on top).
smc::Certificate sweep_certified(
    const pp::Protocol& protocol, const pp::Config& base,
    std::uint32_t max_noise, const TotalPredicate& predicate,
    const smc::CertifyOptions& options,
    engine::EngineKind engine = engine::EngineKind::kPerAgent,
    const std::vector<pp::State>* noise_pool = nullptr);

}  // namespace ppde::analysis
