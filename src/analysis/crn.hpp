// Chemical reaction network view of a population protocol.
//
// The paper's motivation for state-count frugality is chemistry: population
// protocols are the discrete model of chemical reaction networks, "every
// state corresponds to a chemical compound" (Section 1). This renders a
// protocol as its CRN — one species per state, one bimolecular reaction per
// non-silent transition — in the conventional notation
//
//     A + B -> C + D
//
// so a converted protocol can be read (and sized) as the reaction system a
// chemist would have to realise. Identical reactions are merged and the
// species inventory is split into reachable/unreachable from a given
// initial configuration when one is supplied.
#pragma once

#include <optional>
#include <string>

#include "pp/config.hpp"
#include "pp/protocol.hpp"

namespace ppde::analysis {

struct CrnStats {
  std::uint64_t species = 0;
  std::uint64_t reactions = 0;         ///< distinct non-silent reactions
  std::uint64_t reachable_species = 0; ///< 0 if no initial config given
};

/// Render the protocol as a CRN listing. If `initial` is given, species
/// unoccupiable from it are marked "(unreachable)". `max_reactions` caps
/// the listing length for large conversions.
std::string to_crn(const pp::Protocol& protocol,
                   const std::optional<pp::Config>& initial = std::nullopt,
                   std::size_t max_reactions = 200);

/// Counts only (no listing).
CrnStats crn_stats(const pp::Protocol& protocol,
                   const std::optional<pp::Config>& initial = std::nullopt);

}  // namespace ppde::analysis
