#include "analysis/tables.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace ppde::analysis {

TextTable::TextTable(std::vector<std::string> header) {
  rows_.push_back(std::move(header));
}

void TextTable::add_row(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths;
  for (const auto& row : rows_) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      os << std::left << std::setw(static_cast<int>(widths[i])) << row[i];
      if (i + 1 < row.size()) os << "  ";
    }
    os << "\n";
  };
  print_row(rows_.front());
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (std::size_t i = 1; i < rows_.size(); ++i) print_row(rows_[i]);
}

std::string fmt_u64(std::uint64_t value) { return std::to_string(value); }

std::string fmt_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace ppde::analysis
