// State-level reachability: which protocol states can ever be occupied?
//
// The Appendix-B.3 conversion creates states wholesale (every value ×
// stage combination per pointer), many of which no run can occupy — e.g.
// gadget stages of pointers that are never a move operand, or opinion
// variants that no broadcast produces. The fixpoint here over-approximates
// occupiable states from a set of initially occupied ones (a transition
// fires only if both left-hand states are occupiable), giving the
// *effective* state count of a conversion, reported alongside the nominal
// Theorem-5 count in bench_thm5_conversion.
#pragma once

#include <cstdint>
#include <vector>

#include "pp/config.hpp"
#include "pp/protocol.hpp"

namespace ppde::analysis {

/// All states occupiable from `initial` (over-approximation: ignores
/// multiplicities, so a (q, q) transition is considered enabled whenever q
/// is occupiable).
std::vector<bool> reachable_states(const pp::Protocol& protocol,
                                   const pp::Config& initial);

/// Convenience: number of occupiable states.
std::uint64_t reachable_state_count(const pp::Protocol& protocol,
                                    const pp::Config& initial);

/// A materialised pruned protocol plus the config remapped onto it.
struct PrunedProtocol {
  pp::Protocol protocol;
  pp::Config initial;
  /// old state id -> new state id (only meaningful for occupiable states).
  std::vector<pp::State> remap;
};

/// Drop every state unoccupiable from `initial` (and every transition
/// touching one). The result decides the same predicate on the same
/// populations — verified in the tests via the exact verifier — with the
/// *effective* state count.
PrunedProtocol prune_protocol(const pp::Protocol& protocol,
                              const pp::Config& initial);

}  // namespace ppde::analysis
