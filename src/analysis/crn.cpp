#include "analysis/crn.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/reachability.hpp"

namespace ppde::analysis {

namespace {

/// Canonical reaction key: unordered reactant pair -> unordered product
/// pair (chemistry has no initiator/responder distinction).
using Reaction = std::array<pp::State, 4>;

std::set<Reaction> distinct_reactions(const pp::Protocol& protocol) {
  std::set<Reaction> reactions;
  for (const pp::Transition& t : protocol.transitions()) {
    if (t.is_silent()) continue;
    Reaction reaction = {std::min(t.q, t.r), std::max(t.q, t.r),
                         std::min(t.q2, t.r2), std::max(t.q2, t.r2)};
    reactions.insert(reaction);
  }
  return reactions;
}

}  // namespace

std::string to_crn(const pp::Protocol& protocol,
                   const std::optional<pp::Config>& initial,
                   std::size_t max_reactions) {
  std::ostringstream os;
  std::vector<bool> occupiable;
  if (initial.has_value())
    occupiable = reachable_states(protocol, *initial);

  os << "# species: " << protocol.num_states() << "\n";
  for (pp::State q = 0; q < protocol.num_states(); ++q) {
    os << "species " << protocol.name(q);
    if (protocol.is_accepting(q)) os << "  # accepting";
    if (!occupiable.empty() && !occupiable[q]) os << "  # (unreachable)";
    os << "\n";
  }

  const std::set<Reaction> reactions = distinct_reactions(protocol);
  os << "# reactions: " << reactions.size() << "\n";
  std::size_t emitted = 0;
  for (const Reaction& r : reactions) {
    if (emitted++ >= max_reactions) {
      os << "# ... " << (reactions.size() - max_reactions)
         << " more reactions elided\n";
      break;
    }
    os << protocol.name(r[0]) << " + " << protocol.name(r[1]) << " -> "
       << protocol.name(r[2]) << " + " << protocol.name(r[3]) << "\n";
  }
  return os.str();
}

CrnStats crn_stats(const pp::Protocol& protocol,
                   const std::optional<pp::Config>& initial) {
  CrnStats stats;
  stats.species = protocol.num_states();
  stats.reactions = distinct_reactions(protocol).size();
  if (initial.has_value())
    stats.reachable_species = reachable_state_count(protocol, *initial);
  return stats;
}

}  // namespace ppde::analysis
