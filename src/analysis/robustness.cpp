#include "analysis/robustness.hpp"

#include <memory>
#include <optional>

#include "engine/executor.hpp"
#include "sched/fault.hpp"

namespace ppde::analysis {

pp::Config random_noise(const pp::Protocol& protocol, std::uint32_t agents,
                        support::Rng& rng,
                        const std::vector<pp::State>* pool) {
  // Per-agent draws go through the S27 noise primitive — the same one the
  // corrupt/burst fault plans use — with one below() call per agent, so
  // every sweep output is bit-identical to the pre-S27 inline loop (the
  // differential test in test_sched pins this).
  pp::Config noise(protocol.num_states());
  for (std::uint32_t i = 0; i < agents; ++i)
    noise.add(sched::uniform_noise_state(
        static_cast<std::uint32_t>(protocol.num_states()), rng, pool));
  return noise;
}

namespace {

pp::Config with_noise(const pp::Config& base, const pp::Config& noise) {
  pp::Config combined = base;
  for (pp::State q = 0; q < noise.num_states(); ++q)
    if (noise[q] != 0) combined.add(q, noise[q]);
  return combined;
}

}  // namespace

RobustnessResult sweep_exact(const pp::Protocol& protocol,
                             const pp::Config& base, std::uint32_t max_noise,
                             std::uint64_t trials,
                             const TotalPredicate& predicate,
                             const pp::VerifierOptions& options,
                             std::uint64_t seed,
                             const std::vector<pp::State>* noise_pool) {
  RobustnessResult result;
  support::Rng rng(seed);
  const pp::Verifier verifier(protocol);
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const auto agents =
        static_cast<std::uint32_t>(rng.below(max_noise + 1));
    const pp::Config config =
        with_noise(base, random_noise(protocol, agents, rng, noise_pool));
    const pp::VerificationResult verdict = verifier.verify(config, options);
    ++result.trials;
    if (!verdict.stabilises())
      ++result.unresolved;
    else if (verdict.output() == predicate(config.total()))
      ++result.correct;
    else
      ++result.wrong;
  }
  return result;
}

RobustnessResult sweep_simulated(const pp::Protocol& protocol,
                                 const pp::Config& base,
                                 std::uint32_t max_noise, std::uint64_t trials,
                                 const TotalPredicate& predicate,
                                 const pp::SimulationOptions& options,
                                 std::uint64_t seed, unsigned threads,
                                 engine::EngineKind kind) {
  // Draw every noise configuration up front from one sequential stream, so
  // the workload is a pure function of `seed` no matter how many workers
  // later execute it.
  support::Rng rng(seed);
  std::vector<pp::Config> configs;
  configs.reserve(trials);
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const auto agents =
        static_cast<std::uint32_t>(rng.below(max_noise + 1));
    configs.push_back(with_noise(base, random_noise(protocol, agents, rng)));
  }

  // The shared trial body (S27): per-worker simulator reuse and engine
  // selection live in engine::TrialExecutor; outcomes stay pure functions
  // of (trial, seed).
  engine::TrialExecutor executor(protocol, kind, isa::Dispatch::kBytecode,
                                 sched::Scenario{},
                                 engine::fleet_workers(trials, threads));
  const std::vector<engine::TrialResult> outcomes = engine::run_trial_fleet(
      trials, threads, seed,
      [&](unsigned worker, std::uint64_t trial, std::uint64_t trial_seed) {
        return executor.run(worker, configs[trial], trial_seed, options);
      });

  RobustnessResult result;
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const engine::TrialResult& outcome = outcomes[trial];
    ++result.trials;
    if (!outcome.sim.stabilised)
      ++result.unresolved;
    else if (outcome.sim.output == predicate(configs[trial].total()))
      ++result.correct;
    else
      ++result.wrong;
  }
  return result;
}

smc::Certificate sweep_certified(const pp::Protocol& protocol,
                                 const pp::Config& base,
                                 std::uint32_t max_noise,
                                 const TotalPredicate& predicate,
                                 const smc::CertifyOptions& options,
                                 engine::EngineKind kind,
                                 const std::vector<pp::State>* noise_pool) {
  engine::TrialExecutor executor(
      protocol, kind, options.dispatch, sched::Scenario{},
      engine::fleet_workers(options.batch, options.threads));

  // Unlike sweep_simulated the trial count is not known up front (the SPRT
  // decides it), so noise cannot be drawn from one sequential stream.
  // Instead trial i expands its own noise from its derived seed — still a
  // pure function of (options.seed, i), hence reproducible at any thread
  // count and under any budget escalation.
  const auto body = [&](unsigned worker, std::uint64_t, std::uint64_t seed) {
    support::Rng rng(seed);
    const auto agents =
        static_cast<std::uint32_t>(rng.below(max_noise + 1));
    const pp::Config config =
        with_noise(base, random_noise(protocol, agents, rng, noise_pool));

    // The scheduler continues on the same per-trial stream the noise came
    // from; distinct trials stay decorrelated by seed derivation.
    const engine::TrialResult trial =
        executor.run(worker, config, rng(), options.sim);
    const pp::SimulationResult& sim = trial.sim;
    smc::TrialOutcome outcome;
    outcome.metrics = trial.metrics;
    outcome.stabilised =
        sim.stabilised &&
        sim.consensus_since != pp::SimulationResult::kNeverStabilised;
    outcome.success =
        outcome.stabilised && sim.output == predicate(config.total());
    if (outcome.stabilised)
      outcome.convergence_parallel_time =
          static_cast<double>(sim.consensus_since) /
          static_cast<double>(config.total());
    return outcome;
  };

  smc::Certificate cert = smc::certify_trials(body, options);
  cert.protocol_fingerprint = protocol.fingerprint();
  cert.population = base.total();
  cert.expected_output = true;  // "correct" is per-trial, vs predicate
  return cert;
}

}  // namespace ppde::analysis
