#include "analysis/robustness.hpp"

namespace ppde::analysis {

pp::Config random_noise(const pp::Protocol& protocol, std::uint32_t agents,
                        support::Rng& rng,
                        const std::vector<pp::State>* pool) {
  pp::Config noise(protocol.num_states());
  for (std::uint32_t i = 0; i < agents; ++i) {
    if (pool != nullptr)
      noise.add((*pool)[rng.below(pool->size())]);
    else
      noise.add(static_cast<pp::State>(rng.below(protocol.num_states())));
  }
  return noise;
}

namespace {

pp::Config with_noise(const pp::Config& base, const pp::Config& noise) {
  pp::Config combined = base;
  for (pp::State q = 0; q < noise.num_states(); ++q)
    if (noise[q] != 0) combined.add(q, noise[q]);
  return combined;
}

}  // namespace

RobustnessResult sweep_exact(const pp::Protocol& protocol,
                             const pp::Config& base, std::uint32_t max_noise,
                             std::uint64_t trials,
                             const TotalPredicate& predicate,
                             const pp::VerifierOptions& options,
                             std::uint64_t seed,
                             const std::vector<pp::State>* noise_pool) {
  RobustnessResult result;
  support::Rng rng(seed);
  const pp::Verifier verifier(protocol);
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const auto agents =
        static_cast<std::uint32_t>(rng.below(max_noise + 1));
    const pp::Config config =
        with_noise(base, random_noise(protocol, agents, rng, noise_pool));
    const pp::VerificationResult verdict = verifier.verify(config, options);
    ++result.trials;
    if (!verdict.stabilises())
      ++result.unresolved;
    else if (verdict.output() == predicate(config.total()))
      ++result.correct;
    else
      ++result.wrong;
  }
  return result;
}

RobustnessResult sweep_simulated(const pp::Protocol& protocol,
                                 const pp::Config& base,
                                 std::uint32_t max_noise, std::uint64_t trials,
                                 const TotalPredicate& predicate,
                                 const pp::SimulationOptions& options,
                                 std::uint64_t seed) {
  RobustnessResult result;
  support::Rng rng(seed);
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    const auto agents =
        static_cast<std::uint32_t>(rng.below(max_noise + 1));
    const pp::Config config =
        with_noise(base, random_noise(protocol, agents, rng));
    pp::Simulator simulator(protocol, config, seed * 7919 + trial);
    const pp::SimulationResult sim = simulator.run_until_stable(options);
    ++result.trials;
    if (!sim.stabilised)
      ++result.unresolved;
    else if (sim.output == predicate(config.total()))
      ++result.correct;
    else
      ++result.wrong;
  }
  return result;
}

}  // namespace ppde::analysis
