#include "analysis/reachability.hpp"

namespace ppde::analysis {

std::vector<bool> reachable_states(const pp::Protocol& protocol,
                                   const pp::Config& initial) {
  std::vector<bool> occupiable(protocol.num_states(), false);

  // Worklist fixpoint: index transitions by reactant state and fire each at
  // most once, when its second reactant lights up. Each transition is
  // visited O(1) times from each side — O(|Q| + |delta|) total, versus the
  // former chaotic whole-list rescan at O(rounds * |delta|), which was
  // quadratic on the deep conversion chains the compiler emits.
  std::vector<std::vector<std::uint32_t>> by_reactant(protocol.num_states());
  const std::vector<pp::Transition>& transitions = protocol.transitions();
  for (std::uint32_t index = 0; index < transitions.size(); ++index) {
    const pp::Transition& t = transitions[index];
    by_reactant[t.q].push_back(index);
    if (t.r != t.q) by_reactant[t.r].push_back(index);
  }

  std::vector<pp::State> worklist;
  const auto mark = [&](pp::State q) {
    if (!occupiable[q]) {
      occupiable[q] = true;
      worklist.push_back(q);
    }
  };
  for (pp::State q = 0; q < initial.num_states(); ++q)
    if (initial[q] != 0) mark(q);

  while (!worklist.empty()) {
    const pp::State q = worklist.back();
    worklist.pop_back();
    for (const std::uint32_t index : by_reactant[q]) {
      const pp::Transition& t = transitions[index];
      if (!occupiable[t.q] || !occupiable[t.r]) continue;
      mark(t.q2);
      mark(t.r2);
    }
  }
  return occupiable;
}

std::uint64_t reachable_state_count(const pp::Protocol& protocol,
                                    const pp::Config& initial) {
  std::uint64_t count = 0;
  for (bool occupiable : reachable_states(protocol, initial))
    if (occupiable) ++count;
  return count;
}

PrunedProtocol prune_protocol(const pp::Protocol& protocol,
                              const pp::Config& initial) {
  const std::vector<bool> occupiable = reachable_states(protocol, initial);
  PrunedProtocol result;
  result.remap.assign(protocol.num_states(), 0);
  for (pp::State q = 0; q < protocol.num_states(); ++q)
    if (occupiable[q])
      result.remap[q] = result.protocol.add_state(protocol.name(q));
  for (pp::State q = 0; q < protocol.num_states(); ++q) {
    if (!occupiable[q]) continue;
    if (protocol.is_accepting(q))
      result.protocol.mark_accepting(result.remap[q]);
  }
  for (pp::State q : protocol.input_states())
    if (occupiable[q]) result.protocol.mark_input(result.remap[q]);
  for (const pp::Transition& t : protocol.transitions()) {
    if (!occupiable[t.q] || !occupiable[t.r]) continue;
    // Occupiable reactants imply occupiable products by the fixpoint.
    result.protocol.add_transition(result.remap[t.q], result.remap[t.r],
                                   result.remap[t.q2], result.remap[t.r2]);
  }
  result.protocol.finalize();
  result.initial = pp::Config(result.protocol.num_states());
  for (pp::State q = 0; q < initial.num_states(); ++q)
    if (initial[q] != 0) result.initial.add(result.remap[q], initial[q]);
  return result;
}

}  // namespace ppde::analysis
