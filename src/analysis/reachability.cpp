#include "analysis/reachability.hpp"

namespace ppde::analysis {

std::vector<bool> reachable_states(const pp::Protocol& protocol,
                                   const pp::Config& initial) {
  std::vector<bool> occupiable(protocol.num_states(), false);
  for (pp::State q = 0; q < initial.num_states(); ++q)
    if (initial[q] != 0) occupiable[q] = true;

  // Chaotic iteration to fixpoint; the transition list is scanned until no
  // new state lights up (protocol transition counts are the bottleneck, so
  // the simple O(rounds * |delta|) loop is fine).
  bool changed = true;
  while (changed) {
    changed = false;
    for (const pp::Transition& t : protocol.transitions()) {
      if (!occupiable[t.q] || !occupiable[t.r]) continue;
      if (!occupiable[t.q2]) {
        occupiable[t.q2] = true;
        changed = true;
      }
      if (!occupiable[t.r2]) {
        occupiable[t.r2] = true;
        changed = true;
      }
    }
  }
  return occupiable;
}

std::uint64_t reachable_state_count(const pp::Protocol& protocol,
                                    const pp::Config& initial) {
  std::uint64_t count = 0;
  for (bool occupiable : reachable_states(protocol, initial))
    if (occupiable) ++count;
  return count;
}

PrunedProtocol prune_protocol(const pp::Protocol& protocol,
                              const pp::Config& initial) {
  const std::vector<bool> occupiable = reachable_states(protocol, initial);
  PrunedProtocol result;
  result.remap.assign(protocol.num_states(), 0);
  for (pp::State q = 0; q < protocol.num_states(); ++q)
    if (occupiable[q])
      result.remap[q] = result.protocol.add_state(protocol.name(q));
  for (pp::State q = 0; q < protocol.num_states(); ++q) {
    if (!occupiable[q]) continue;
    if (protocol.is_accepting(q))
      result.protocol.mark_accepting(result.remap[q]);
  }
  for (pp::State q : protocol.input_states())
    if (occupiable[q]) result.protocol.mark_input(result.remap[q]);
  for (const pp::Transition& t : protocol.transitions()) {
    if (!occupiable[t.q] || !occupiable[t.r]) continue;
    // Occupiable reactants imply occupiable products by the fixpoint.
    result.protocol.add_transition(result.remap[t.q], result.remap[t.r],
                                   result.remap[t.q2], result.remap[t.r2]);
  }
  result.protocol.finalize();
  result.initial = pp::Config(result.protocol.num_states());
  for (pp::State q = 0; q < initial.num_states(); ++q)
    if (initial[q] != 0) result.initial.add(result.remap[q], initial[q]);
  return result;
}

}  // namespace ppde::analysis
