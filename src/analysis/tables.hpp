// Fixed-width text tables for the benchmark harnesses' report output.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ppde::analysis {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Render with columns padded to their widest cell, a rule under the
  /// header, and two spaces between columns.
  void print(std::ostream& os) const;

 private:
  std::vector<std::vector<std::string>> rows_;
};

/// Format helpers for table cells.
std::string fmt_u64(std::uint64_t value);
std::string fmt_double(double value, int precision = 2);

}  // namespace ppde::analysis
