// Convergence measurement: interactions (and parallel time) until stable
// consensus, sampled over seeds. Used by the benchmark harnesses to compare
// the construction against the baselines near their thresholds.
#pragma once

#include <cstdint>
#include <vector>

#include "pp/config.hpp"
#include "pp/protocol.hpp"
#include "pp/simulator.hpp"

namespace ppde::analysis {

struct ConvergenceSample {
  bool stabilised = false;
  bool output = false;
  std::uint64_t interactions = 0;
  double parallel_time = 0.0;
};

struct ConvergenceSummary {
  std::uint64_t trials = 0;
  std::uint64_t stabilised = 0;
  std::uint64_t accepted = 0;
  double mean_interactions = 0.0;    ///< over stabilised trials
  double median_interactions = 0.0;  ///< over stabilised trials
  double mean_parallel_time = 0.0;
};

/// Run `trials` independent simulations from `initial`.
std::vector<ConvergenceSample> sample_convergence(
    const pp::Protocol& protocol, const pp::Config& initial,
    std::uint64_t trials, const pp::SimulationOptions& options,
    std::uint64_t seed);

ConvergenceSummary summarize(const std::vector<ConvergenceSample>& samples);

}  // namespace ppde::analysis
