#include "analysis/convergence.hpp"

#include <algorithm>

namespace ppde::analysis {

std::vector<ConvergenceSample> sample_convergence(
    const pp::Protocol& protocol, const pp::Config& initial,
    std::uint64_t trials, const pp::SimulationOptions& options,
    std::uint64_t seed) {
  std::vector<ConvergenceSample> samples;
  samples.reserve(trials);
  for (std::uint64_t trial = 0; trial < trials; ++trial) {
    pp::Simulator simulator(protocol, initial, seed + trial * 1000003);
    const pp::SimulationResult result = simulator.run_until_stable(options);
    ConvergenceSample sample;
    sample.stabilised = result.stabilised;
    sample.output = result.output;
    // Count the interactions up to the *start* of the final consensus — the
    // window afterwards is measurement overhead, not convergence time. The
    // explicit sentinel check mirrors the CLI's: consensus_since is
    // kNeverStabilised (~1.8e19) unless the run stabilised, and that value
    // must never leak into the statistics.
    sample.interactions =
        result.stabilised &&
                result.consensus_since !=
                    pp::SimulationResult::kNeverStabilised
            ? result.consensus_since
            : result.interactions;
    sample.parallel_time = static_cast<double>(sample.interactions) /
                           static_cast<double>(initial.total());
    samples.push_back(sample);
  }
  return samples;
}

ConvergenceSummary summarize(const std::vector<ConvergenceSample>& samples) {
  ConvergenceSummary summary;
  summary.trials = samples.size();
  std::vector<std::uint64_t> interactions;
  double parallel_sum = 0.0;
  for (const ConvergenceSample& sample : samples) {
    if (!sample.stabilised) continue;
    ++summary.stabilised;
    if (sample.output) ++summary.accepted;
    interactions.push_back(sample.interactions);
    parallel_sum += sample.parallel_time;
  }
  if (!interactions.empty()) {
    std::sort(interactions.begin(), interactions.end());
    double sum = 0.0;
    for (std::uint64_t value : interactions)
      sum += static_cast<double>(value);
    summary.mean_interactions = sum / static_cast<double>(interactions.size());
    summary.median_interactions =
        static_cast<double>(interactions[interactions.size() / 2]);
    summary.mean_parallel_time =
        parallel_sum / static_cast<double>(interactions.size());
  }
  return summary;
}

}  // namespace ppde::analysis
