// Arbitrary-precision natural numbers.
//
// The thresholds decided by the paper's protocols grow as k >= 2^(2^(n-1)),
// which overflows 64-bit integers from n = 7 on. Everywhere the *value* of a
// threshold is computed, reported, or compared we use Nat. (Runtime agent
// counts stay machine-sized: the experiments only ever simulate populations
// far below 2^64 agents.)
//
// Representation: little-endian vector of 64-bit limbs, normalised so the
// most significant limb is nonzero; zero is the empty vector. Nat is a
// regular value type: copyable, movable, totally ordered, hashable.
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace ppde::bignum {

class Nat {
 public:
  /// Zero.
  Nat() = default;

  /// Construct from a machine integer.
  Nat(std::uint64_t value) {  // NOLINT(google-explicit-constructor): a Nat
    // is-a natural number; implicit widening mirrors the built-in integers.
    if (value != 0) limbs_.push_back(value);
  }

  /// Parse a decimal string. Throws std::invalid_argument on bad input.
  static Nat from_decimal(std::string_view text);

  /// 2^exponent.
  static Nat pow2(std::uint64_t exponent);

  bool is_zero() const { return limbs_.empty(); }

  /// Number of significant bits; bit_length(0) == 0.
  std::uint64_t bit_length() const;

  /// True iff the value fits in a std::uint64_t.
  bool fits_u64() const { return limbs_.size() <= 1; }

  /// Value as uint64_t. Requires fits_u64().
  std::uint64_t to_u64() const;

  /// Approximate value as double (inf if out of range).
  double to_double() const;

  /// Approximate log2 of the value; requires *this > 0.
  double log2() const;

  std::string to_decimal() const;

  Nat& operator+=(const Nat& rhs);
  Nat& operator-=(const Nat& rhs);  ///< Requires *this >= rhs.
  Nat& operator*=(const Nat& rhs);

  friend Nat operator+(Nat lhs, const Nat& rhs) { return lhs += rhs; }
  friend Nat operator-(Nat lhs, const Nat& rhs) { return lhs -= rhs; }
  friend Nat operator*(const Nat& lhs, const Nat& rhs);

  /// Quotient and remainder; divisor must be nonzero.
  static struct NatDivMod divmod(const Nat& dividend, const Nat& divisor);

  Nat operator/(const Nat& rhs) const;
  Nat operator%(const Nat& rhs) const;

  /// Left shift by an arbitrary number of bits.
  Nat shifted_left(std::uint64_t bits) const;

  /// *this raised to a machine-sized power (0^0 == 1).
  Nat pow(std::uint64_t exponent) const;

  friend bool operator==(const Nat& lhs, const Nat& rhs) = default;
  friend std::strong_ordering operator<=>(const Nat& lhs, const Nat& rhs);

  friend std::ostream& operator<<(std::ostream& os, const Nat& value);

  /// Stable hash of the value.
  std::uint64_t hash() const;

  /// Limb access for tests.
  const std::vector<std::uint64_t>& limbs() const { return limbs_; }

 private:
  void normalise();

  std::vector<std::uint64_t> limbs_;
};

/// Result of Nat::divmod.
struct NatDivMod {
  Nat quotient;
  Nat remainder;
};

inline Nat Nat::operator/(const Nat& rhs) const {
  return divmod(*this, rhs).quotient;
}
inline Nat Nat::operator%(const Nat& rhs) const {
  return divmod(*this, rhs).remainder;
}

}  // namespace ppde::bignum
