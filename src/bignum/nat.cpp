#include "bignum/nat.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "support/hash.hpp"

namespace ppde::bignum {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

constexpr int kLimbBits = 64;

int high_bit(u64 x) {
  assert(x != 0);
  return 63 - __builtin_clzll(x);
}

}  // namespace

void Nat::normalise() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

Nat Nat::from_decimal(std::string_view text) {
  if (text.empty()) throw std::invalid_argument("Nat: empty decimal string");
  Nat result;
  for (char c : text) {
    if (c < '0' || c > '9')
      throw std::invalid_argument("Nat: invalid decimal digit");
    // result = result * 10 + digit, fused into one limb pass.
    u64 carry = static_cast<u64>(c - '0');
    for (auto& limb : result.limbs_) {
      u128 acc = static_cast<u128>(limb) * 10 + carry;
      limb = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> kLimbBits);
    }
    if (carry != 0) result.limbs_.push_back(carry);
  }
  return result;
}

Nat Nat::pow2(u64 exponent) {
  Nat result;
  result.limbs_.assign(exponent / kLimbBits, 0);
  result.limbs_.push_back(u64{1} << (exponent % kLimbBits));
  return result;
}

std::uint64_t Nat::bit_length() const {
  if (limbs_.empty()) return 0;
  return (limbs_.size() - 1) * kLimbBits + high_bit(limbs_.back()) + 1;
}

std::uint64_t Nat::to_u64() const {
  if (!fits_u64()) throw std::overflow_error("Nat: does not fit in uint64_t");
  return limbs_.empty() ? 0 : limbs_[0];
}

double Nat::to_double() const {
  double result = 0.0;
  for (auto it = limbs_.rbegin(); it != limbs_.rend(); ++it)
    result = result * std::ldexp(1.0, kLimbBits) + static_cast<double>(*it);
  return result;
}

double Nat::log2() const {
  if (is_zero()) throw std::domain_error("Nat: log2 of zero");
  // Use the top two limbs for the mantissa; the rest only shifts.
  const std::size_t n = limbs_.size();
  double top = static_cast<double>(limbs_[n - 1]);
  if (n >= 2)
    top += static_cast<double>(limbs_[n - 2]) * std::ldexp(1.0, -kLimbBits);
  return std::log2(top) + static_cast<double>((n - 1)) * kLimbBits;
}

Nat& Nat::operator+=(const Nat& rhs) {
  if (limbs_.size() < rhs.limbs_.size()) limbs_.resize(rhs.limbs_.size(), 0);
  u64 carry = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u128 acc = static_cast<u128>(limbs_[i]) + carry;
    if (i < rhs.limbs_.size()) acc += rhs.limbs_[i];
    limbs_[i] = static_cast<u64>(acc);
    carry = static_cast<u64>(acc >> kLimbBits);
    if (carry == 0 && i >= rhs.limbs_.size()) break;
  }
  if (carry != 0) limbs_.push_back(carry);
  return *this;
}

Nat& Nat::operator-=(const Nat& rhs) {
  if (*this < rhs) throw std::underflow_error("Nat: subtraction underflow");
  u64 borrow = 0;
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    u128 sub = borrow;
    if (i < rhs.limbs_.size()) sub += rhs.limbs_[i];
    if (static_cast<u128>(limbs_[i]) >= sub) {
      limbs_[i] -= static_cast<u64>(sub);
      borrow = 0;
    } else {
      limbs_[i] = static_cast<u64>((static_cast<u128>(1) << kLimbBits) +
                                   limbs_[i] - sub);
      borrow = 1;
    }
    if (borrow == 0 && i >= rhs.limbs_.size()) break;
  }
  normalise();
  return *this;
}

Nat operator*(const Nat& lhs, const Nat& rhs) {
  Nat result;
  if (lhs.is_zero() || rhs.is_zero()) return result;
  result.limbs_.assign(lhs.limbs_.size() + rhs.limbs_.size(), 0);
  for (std::size_t i = 0; i < lhs.limbs_.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < rhs.limbs_.size(); ++j) {
      u128 acc = static_cast<u128>(lhs.limbs_[i]) * rhs.limbs_[j] +
                 result.limbs_[i + j] + carry;
      result.limbs_[i + j] = static_cast<u64>(acc);
      carry = static_cast<u64>(acc >> kLimbBits);
    }
    result.limbs_[i + rhs.limbs_.size()] += carry;
  }
  result.normalise();
  return result;
}

Nat& Nat::operator*=(const Nat& rhs) { return *this = *this * rhs; }

Nat Nat::shifted_left(u64 bits) const {
  if (is_zero()) return {};
  Nat result;
  const u64 limb_shift = bits / kLimbBits;
  const int bit_shift = static_cast<int>(bits % kLimbBits);
  result.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (std::size_t i = 0; i < limbs_.size(); ++i) {
    result.limbs_[i + limb_shift] |= limbs_[i] << bit_shift;
    if (bit_shift != 0)
      result.limbs_[i + limb_shift + 1] |= limbs_[i] >> (kLimbBits - bit_shift);
  }
  result.normalise();
  return result;
}

NatDivMod Nat::divmod(const Nat& dividend, const Nat& divisor) {
  if (divisor.is_zero()) throw std::domain_error("Nat: division by zero");
  if (dividend < divisor) return {Nat{}, dividend};

  // Fast path: single-limb divisor.
  if (divisor.limbs_.size() == 1) {
    const u64 d = divisor.limbs_[0];
    Nat quotient;
    quotient.limbs_.assign(dividend.limbs_.size(), 0);
    u64 rem = 0;
    for (std::size_t i = dividend.limbs_.size(); i-- > 0;) {
      u128 acc = (static_cast<u128>(rem) << kLimbBits) | dividend.limbs_[i];
      quotient.limbs_[i] = static_cast<u64>(acc / d);
      rem = static_cast<u64>(acc % d);
    }
    quotient.normalise();
    return {std::move(quotient), Nat{rem}};
  }

  // General case: binary long division. O(bits * limbs) — fine for the
  // magnitudes the library manipulates (thresholds for n <= ~20 levels).
  const u64 shift = dividend.bit_length() - divisor.bit_length();
  Nat remainder = dividend;
  Nat quotient;
  quotient.limbs_.assign(shift / kLimbBits + 1, 0);
  for (u64 s = shift + 1; s-- > 0;) {
    Nat shifted = divisor.shifted_left(s);
    if (shifted <= remainder) {
      remainder -= shifted;
      quotient.limbs_[s / kLimbBits] |= u64{1} << (s % kLimbBits);
    }
  }
  quotient.normalise();
  return {std::move(quotient), std::move(remainder)};
}

Nat Nat::pow(u64 exponent) const {
  Nat base = *this;
  Nat result{1};
  while (exponent != 0) {
    if (exponent & 1) result *= base;
    exponent >>= 1;
    if (exponent != 0) base *= base;
  }
  return result;
}

std::strong_ordering operator<=>(const Nat& lhs, const Nat& rhs) {
  if (lhs.limbs_.size() != rhs.limbs_.size())
    return lhs.limbs_.size() <=> rhs.limbs_.size();
  for (std::size_t i = lhs.limbs_.size(); i-- > 0;)
    if (lhs.limbs_[i] != rhs.limbs_[i]) return lhs.limbs_[i] <=> rhs.limbs_[i];
  return std::strong_ordering::equal;
}

std::string Nat::to_decimal() const {
  if (is_zero()) return "0";
  // Peel off 19 decimal digits at a time.
  constexpr u64 kChunk = 10'000'000'000'000'000'000ULL;
  std::string out;
  Nat value = *this;
  while (!value.is_zero()) {
    auto [q, r] = divmod(value, Nat{kChunk});
    u64 digits = r.is_zero() ? 0 : r.to_u64();
    const bool last = q.is_zero();
    for (int i = 0; i < 19 && (digits != 0 || !last); ++i) {
      out.push_back(static_cast<char>('0' + digits % 10));
      digits /= 10;
    }
    if (last && digits == 0 && out.empty()) out.push_back('0');
    value = std::move(q);
  }
  std::reverse(out.begin(), out.end());
  return out;
}

std::ostream& operator<<(std::ostream& os, const Nat& value) {
  return os << value.to_decimal();
}

std::uint64_t Nat::hash() const { return support::hash_range(limbs_); }

}  // namespace ppde::bignum
