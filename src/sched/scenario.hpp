// Scenario descriptors for adversarial scheduling & fault injection (S27).
//
// The paper's Theorem 2 claims *almost self-stabilisation*, but every
// guarantee in earlier sections is stated over the one benign uniform
// scheduler. A Scenario names the stress model a run executes under: a
// scheduler strategy (which ordered agent pair meets next — uniform, a
// graph-restricted topology, adversarially biased, or fairness-quota
// aging) plus a fault plan (transient state corruption, agent
// arrival/departure churn, scheduled burst corruption). Both halves are
// pure functions of the trial's derived seed, so a trial outcome remains a
// pure function of (trial, derive_trial_seed(master_seed, trial)) and all
// of the repo's determinism machinery — thread-count-independent ensemble
// stats, shard-layout-independent certificate digests — carries over to
// every scenario unchanged.
//
// The canonical string descriptor (`to_string`) is the single token that
// travels everywhere: it is the CLI flag value (--scheduler= / --fault=),
// the serve wire field (QueryParams.scenario), and the digest-scoping
// field of the certificate payload. Digest-scoping rule: the DEFAULT
// scenario (uniform scheduler, no faults) emits no scenario field at all,
// so uniform certificates are byte-identical to every certificate minted
// before this subsystem existed; any other scenario adds exactly one
// `"scenario":"<canonical descriptor>"` field, so certificates for
// different stress models can never collide.
//
// Grammar (case-sensitive; numbers canonicalised on parse):
//
//   scheduler := uniform | clique | ring | grid[:W] | regular[:D]
//              | biased[:G] | aging
//   fault     := none | corrupt:RATE[,K] | churn:RATE[,CAP]
//              | burst:AT,K[;AT,K...]
//   scenario  := <scheduler> | <scheduler>+<fault>
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ppde::sched {

enum class SchedKind {
  kUniform,  ///< the classic scheduler: uniform ordered pair of distinct agents
  kClique,   ///< complete graph through the adjacency-sampler machinery
             ///< (same meeting law as uniform — the differential anchor)
  kRing,     ///< agents on a cycle; meetings only between ring neighbours
  kGrid,     ///< circulant width-W grid (offsets ±1, ±W), a twisted torus
  kRegular,  ///< random D-regular multigraph from seed-derived permutations
  kBiased,   ///< adversarial weighting: accepting agents drawn with weight G
  kAging,    ///< fairness quota: initiator is always the least recently met
};

enum class FaultKind {
  kNone,
  kCorrupt,  ///< per-meeting probability RATE of K uniform state overwrites
  kChurn,    ///< per-meeting probability RATE of one arrival or departure
  kBurst,    ///< K uniform state overwrites at each scheduled meeting index
};

struct SchedulerSpec {
  SchedKind kind = SchedKind::kUniform;
  /// Grid row width; 0 = floor(sqrt(population)), chosen at load time.
  std::uint64_t width = 0;
  /// Regular-graph degree (even, >= 2).
  std::uint64_t degree = 4;
  /// Biased: relative selection weight of accepting-state agents (> 0,
  /// != 1). G < 1 starves accepting agents (delays consensus on ACCEPT);
  /// G > 1 over-selects them.
  double bias = 4.0;

  bool operator==(const SchedulerSpec&) const = default;
};

/// One scheduled burst: overwrite `agents` uniformly chosen agents with
/// uniformly random states immediately before meeting index `at`.
struct BurstEvent {
  std::uint64_t at = 0;
  std::uint64_t agents = 0;

  bool operator==(const BurstEvent&) const = default;
};

struct FaultSpec {
  FaultKind kind = FaultKind::kNone;
  /// Per-meeting event probability (corrupt/churn), in (0, 1].
  double rate = 0.0;
  /// Corrupt: agents overwritten per event (>= 1).
  std::uint64_t agents = 1;
  /// Churn: max agents above the initial population (0 = initial
  /// population, i.e. the population may at most double).
  std::uint64_t cap = 0;
  /// Burst schedule, sorted by `at` (parse sorts; ties fire in order).
  std::vector<BurstEvent> bursts;

  bool operator==(const FaultSpec&) const = default;
};

/// Fixed stream tags splitting one trial seed into independent RNG
/// streams via support::derive_trial_seed(seed, tag): the meeting stream
/// keeps the raw seed (bit-compatible with the pre-S27 simulators), the
/// topology stream drives graph sampling, the fault stream drives every
/// fault draw. Faults therefore never perturb the scheduler's draws —
/// the same meeting sequence replays under different fault rates until
/// the first fault actually changes a state.
inline constexpr std::uint64_t kTopologyStream = 0x53323774UL;  // "S27t"
inline constexpr std::uint64_t kFaultStream = 0x53323766UL;     // "S27f"

struct Scenario {
  SchedulerSpec scheduler;
  FaultSpec fault;

  bool operator==(const Scenario&) const = default;

  /// True for the pre-S27 execution model: uniform scheduler, no faults.
  /// Default scenarios take the untouched fast paths everywhere (per-agent
  /// legacy draw loop, count-engine flat-weight/Fenwick sampling) and emit
  /// no scenario field in certificates or wire messages.
  bool is_default() const {
    return scheduler.kind == SchedKind::kUniform &&
           fault.kind == FaultKind::kNone;
  }

  /// Canonical descriptor: "<scheduler>" or "<scheduler>+<fault>", with
  /// every number re-rendered in its shortest round-trippable form.
  /// parse(to_string()) == *this for every valid scenario.
  std::string to_string() const;

  /// Inverse of to_string, accepting any valid (not necessarily
  /// canonical) descriptor. Throws std::invalid_argument with a
  /// descriptive message on malformed input.
  static Scenario parse(const std::string& text);
};

/// Parse just the scheduler half (the CLI --scheduler= value).
SchedulerSpec parse_scheduler(const std::string& text);
/// Parse just the fault half (the CLI --fault= value).
FaultSpec parse_fault(const std::string& text);

std::string to_string(const SchedulerSpec& spec);
std::string to_string(const FaultSpec& spec);

}  // namespace ppde::sched
