#include "sched/scenario.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace ppde::sched {

namespace {

[[noreturn]] void bad(const std::string& what, const std::string& text) {
  throw std::invalid_argument("scenario: " + what + " in '" + text + "'");
}

/// Shortest %g rendering that strtod round-trips to the same double, so
/// the canonical descriptor (and hence the certificate digest) never
/// depends on who formatted it.
std::string format_double(double value) {
  char buffer[40];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buffer, sizeof buffer, "%.*g", precision, value);
    if (std::strtod(buffer, nullptr) == value) return buffer;
  }
  return buffer;
}

/// Split "name[:params]" and return the params part ("" if absent).
std::string split_params(const std::string& text, std::string* name) {
  const std::size_t colon = text.find(':');
  *name = text.substr(0, colon);
  return colon == std::string::npos ? std::string() : text.substr(colon + 1);
}

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    parts.push_back(text.substr(start, pos - start));
    if (pos == std::string::npos) return parts;
    start = pos + 1;
  }
}

std::uint64_t parse_u64(const std::string& token, const std::string& text) {
  if (token.empty() || token[0] == '-') bad("expected a number", text);
  char* end = nullptr;
  const std::uint64_t value = std::strtoull(token.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') bad("expected a number", text);
  return value;
}

double parse_rate(const std::string& token, const std::string& text) {
  if (token.empty()) bad("expected a rate", text);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == nullptr || *end != '\0') bad("expected a rate", text);
  if (!(value > 0.0) || value > 1.0) bad("rate must be in (0, 1]", text);
  return value;
}

}  // namespace

SchedulerSpec parse_scheduler(const std::string& text) {
  SchedulerSpec spec;
  std::string name;
  const std::string params = split_params(text, &name);
  if (name == "uniform") {
    spec.kind = SchedKind::kUniform;
    if (!params.empty()) bad("uniform takes no parameters", text);
  } else if (name == "clique") {
    spec.kind = SchedKind::kClique;
    if (!params.empty()) bad("clique takes no parameters", text);
  } else if (name == "ring") {
    spec.kind = SchedKind::kRing;
    if (!params.empty()) bad("ring takes no parameters", text);
  } else if (name == "grid") {
    spec.kind = SchedKind::kGrid;
    if (!params.empty()) {
      spec.width = parse_u64(params, text);
      if (spec.width < 2) bad("grid width must be >= 2", text);
    }
  } else if (name == "regular") {
    spec.kind = SchedKind::kRegular;
    if (!params.empty()) spec.degree = parse_u64(params, text);
    if (spec.degree < 2 || spec.degree % 2 != 0)
      bad("regular degree must be even and >= 2", text);
  } else if (name == "biased") {
    spec.kind = SchedKind::kBiased;
    if (!params.empty()) {
      char* end = nullptr;
      spec.bias = std::strtod(params.c_str(), &end);
      if (end == nullptr || *end != '\0') bad("expected a weight", text);
    }
    if (!(spec.bias > 0.0) || spec.bias == 1.0)
      bad("bias weight must be > 0 and != 1", text);
  } else if (name == "aging") {
    spec.kind = SchedKind::kAging;
    if (!params.empty()) bad("aging takes no parameters", text);
  } else {
    bad("unknown scheduler '" + name + "'", text);
  }
  return spec;
}

FaultSpec parse_fault(const std::string& text) {
  FaultSpec spec;
  std::string name;
  const std::string params = split_params(text, &name);
  if (name == "none") {
    spec.kind = FaultKind::kNone;
    if (!params.empty()) bad("none takes no parameters", text);
  } else if (name == "corrupt") {
    spec.kind = FaultKind::kCorrupt;
    const std::vector<std::string> parts = split(params, ',');
    if (parts.empty() || parts.size() > 2)
      bad("corrupt takes RATE[,AGENTS]", text);
    spec.rate = parse_rate(parts[0], text);
    if (parts.size() == 2) spec.agents = parse_u64(parts[1], text);
    if (spec.agents == 0) bad("corrupt agent count must be >= 1", text);
  } else if (name == "churn") {
    spec.kind = FaultKind::kChurn;
    const std::vector<std::string> parts = split(params, ',');
    if (parts.empty() || parts.size() > 2) bad("churn takes RATE[,CAP]", text);
    spec.rate = parse_rate(parts[0], text);
    if (parts.size() == 2) spec.cap = parse_u64(parts[1], text);
  } else if (name == "burst") {
    spec.kind = FaultKind::kBurst;
    for (const std::string& event : split(params, ';')) {
      const std::vector<std::string> parts = split(event, ',');
      if (parts.size() != 2) bad("burst takes AT,AGENTS[;AT,AGENTS...]", text);
      BurstEvent burst;
      burst.at = parse_u64(parts[0], text);
      burst.agents = parse_u64(parts[1], text);
      if (burst.agents == 0) bad("burst agent count must be >= 1", text);
      spec.bursts.push_back(burst);
    }
    if (spec.bursts.empty()) bad("burst schedule is empty", text);
    std::stable_sort(spec.bursts.begin(), spec.bursts.end(),
                     [](const BurstEvent& a, const BurstEvent& b) {
                       return a.at < b.at;
                     });
  } else {
    bad("unknown fault '" + name + "'", text);
  }
  return spec;
}

std::string to_string(const SchedulerSpec& spec) {
  switch (spec.kind) {
    case SchedKind::kUniform: return "uniform";
    case SchedKind::kClique: return "clique";
    case SchedKind::kRing: return "ring";
    case SchedKind::kGrid:
      return spec.width == 0 ? "grid"
                             : "grid:" + std::to_string(spec.width);
    case SchedKind::kRegular: return "regular:" + std::to_string(spec.degree);
    case SchedKind::kBiased: return "biased:" + format_double(spec.bias);
    case SchedKind::kAging: return "aging";
  }
  return "?";
}

std::string to_string(const FaultSpec& spec) {
  switch (spec.kind) {
    case FaultKind::kNone: return "none";
    case FaultKind::kCorrupt: {
      std::string out = "corrupt:" + format_double(spec.rate);
      if (spec.agents != 1) {
        out += ',';
        out += std::to_string(spec.agents);
      }
      return out;
    }
    case FaultKind::kChurn: {
      std::string out = "churn:" + format_double(spec.rate);
      if (spec.cap != 0) {
        out += ',';
        out += std::to_string(spec.cap);
      }
      return out;
    }
    case FaultKind::kBurst: {
      std::string out = "burst:";
      for (std::size_t i = 0; i < spec.bursts.size(); ++i) {
        if (i != 0) out += ';';
        out += std::to_string(spec.bursts[i].at) + "," +
               std::to_string(spec.bursts[i].agents);
      }
      return out;
    }
  }
  return "?";
}

std::string Scenario::to_string() const {
  std::string out = sched::to_string(scheduler);
  if (fault.kind != FaultKind::kNone) {
    out += '+';
    out += sched::to_string(fault);
  }
  return out;
}

Scenario Scenario::parse(const std::string& text) {
  Scenario scenario;
  const std::size_t plus = text.find('+');
  scenario.scheduler = parse_scheduler(text.substr(0, plus));
  if (plus != std::string::npos)
    scenario.fault = parse_fault(text.substr(plus + 1));
  return scenario;
}

}  // namespace ppde::sched
