#include "sched/fault.hpp"

#include <cmath>
#include <stdexcept>

namespace ppde::sched {

namespace {

/// Geometric inter-arrival gap for a per-meeting event probability
/// `rate`: the number of meetings until the next event, distributed
/// Geometric(rate) on {0, 1, 2, ...} via inversion. u is uniform in
/// (0, 1] (never 0, so log(u) is finite).
std::uint64_t geometric_gap(double rate, support::Rng& rng) {
  if (rate >= 1.0) return 0;
  const double u = support::to_unit_open(rng());
  const double gap = std::floor(std::log(u) / std::log1p(-rate));
  if (!(gap < 1e18)) return FaultPlan::kNever;  // rate ~ 0 underflow guard
  return static_cast<std::uint64_t>(gap);
}

/// Overwrite `count` uniformly chosen agents with uniformly random
/// states. Slots are drawn independently (a slot may be hit twice within
/// one event — matching the independent-noise model of Definition 7).
void corrupt_agents(std::uint64_t count, support::Rng& rng, FaultOps& ops,
                    FaultStats* stats) {
  for (std::uint64_t k = 0; k < count; ++k) {
    const std::uint64_t slot = rng.below(ops.population());
    const std::uint32_t to = uniform_noise_state(ops.num_states(), rng);
    ops.set_agent(slot, to);
    ++stats->corruptions;
  }
}

class CorruptPlan final : public FaultPlan {
 public:
  CorruptPlan(const FaultSpec& spec, std::uint64_t fault_seed)
      : rng_(fault_seed), rate_(spec.rate), agents_(spec.agents) {
    next_ = geometric_gap(rate_, rng_);
  }

  void fire(std::uint64_t now, FaultOps& ops) override {
    ++stats_.events;
    corrupt_agents(agents_, rng_, ops, &stats_);
    const std::uint64_t gap = geometric_gap(rate_, rng_);
    next_ = gap == kNever ? kNever : now + 1 + gap;
  }

 private:
  support::Rng rng_;
  double rate_;
  std::uint64_t agents_;
};

class ChurnPlan final : public FaultPlan {
 public:
  ChurnPlan(const FaultSpec& spec, std::uint64_t fault_seed,
            std::uint64_t initial_population)
      : rng_(fault_seed),
        rate_(spec.rate),
        max_population_(initial_population +
                        (spec.cap == 0 ? initial_population : spec.cap)) {
    next_ = geometric_gap(rate_, rng_);
  }

  void fire(std::uint64_t now, FaultOps& ops) override {
    const bool prefer_arrival = rng_.coin();
    const bool can_arrive = ops.population() < max_population_;
    // Departures must leave at least two agents — a meeting needs a pair.
    const bool can_depart = ops.population() > 2;
    if ((prefer_arrival && can_arrive) || (!prefer_arrival && !can_depart)) {
      if (can_arrive) {
        ops.add_agent(ops.random_input_state(rng_));
        ++stats_.events;
        ++stats_.arrivals;
      }
    } else if (can_depart) {
      ops.remove_agent(rng_.below(ops.population()));
      ++stats_.events;
      ++stats_.departures;
    }
    const std::uint64_t gap = geometric_gap(rate_, rng_);
    next_ = gap == kNever ? kNever : now + 1 + gap;
  }

 private:
  support::Rng rng_;
  double rate_;
  std::uint64_t max_population_;
};

class BurstPlan final : public FaultPlan {
 public:
  BurstPlan(const FaultSpec& spec, std::uint64_t fault_seed)
      : rng_(fault_seed), bursts_(spec.bursts) {
    next_ = bursts_.empty() ? kNever : bursts_.front().at;
  }

  void fire(std::uint64_t now, FaultOps& ops) override {
    while (index_ < bursts_.size() && bursts_[index_].at <= now) {
      ++stats_.events;
      corrupt_agents(bursts_[index_].agents, rng_, ops, &stats_);
      ++index_;
    }
    next_ = index_ < bursts_.size() ? bursts_[index_].at : kNever;
  }

 private:
  support::Rng rng_;
  std::vector<BurstEvent> bursts_;
  std::size_t index_ = 0;
};

}  // namespace

std::unique_ptr<FaultPlan> make_fault_plan(const FaultSpec& spec,
                                           std::uint64_t fault_seed,
                                           std::uint64_t initial_population) {
  switch (spec.kind) {
    case FaultKind::kNone: return nullptr;
    case FaultKind::kCorrupt:
      return std::make_unique<CorruptPlan>(spec, fault_seed);
    case FaultKind::kChurn:
      return std::make_unique<ChurnPlan>(spec, fault_seed, initial_population);
    case FaultKind::kBurst:
      return std::make_unique<BurstPlan>(spec, fault_seed);
  }
  throw std::logic_error("make_fault_plan: unknown fault kind");
}

}  // namespace ppde::sched
