#include "sched/scheduler.hpp"

#include <numeric>
#include <stdexcept>

namespace ppde::sched {

namespace {

/// Uniform double in [0, 1) from one 64-bit draw (53-bit mantissa).
double uniform01(support::Rng& rng) { return support::to_unit(rng()); }

/// Complete graph via the adjacency-sampler machinery: the meeting law is
/// the classic uniform ordered pair of distinct agents, drawn with the
/// exact RNG consumption of the built-in uniform path — so a clique
/// trajectory is bit-identical to a default trajectory with the same
/// seed. That makes `clique` the differential anchor of the whole
/// subsystem (tests assert the equality).
class CliqueScheduler final : public Scheduler {
 public:
  bool pick(PickContext& ctx, std::uint64_t* initiator,
            std::uint64_t* responder) override {
    const std::uint64_t i = ctx.rng.below(ctx.population);
    std::uint64_t j = ctx.rng.below(ctx.population - 1);
    if (j >= i) ++j;
    *initiator = i;
    *responder = j;
    return true;
  }
};

/// Agents on a cycle; a meeting is a uniform agent paired with one of its
/// two ring neighbours (fair coin).
class RingScheduler final : public Scheduler {
 public:
  bool pick(PickContext& ctx, std::uint64_t* initiator,
            std::uint64_t* responder) override {
    const std::uint64_t m = ctx.population;
    const std::uint64_t i = ctx.rng.below(m);
    *initiator = i;
    *responder = ctx.rng.coin() ? (i + 1) % m : (i + m - 1) % m;
    return true;
  }
};

/// Circulant "twisted torus": slots 0..m-1 laid out row-major with row
/// width W (default floor(sqrt(m))); neighbours at offsets ±1 and ±W
/// modulo m. Well-defined and degree-4 for every population size, no
/// ragged edge cases. A neighbour offset that wraps onto the agent itself
/// (tiny populations) is a null meeting.
class GridScheduler final : public Scheduler {
 public:
  explicit GridScheduler(std::uint64_t width) : requested_width_(width) {}

  void on_population(std::uint64_t m, support::Rng&) override {
    width_ = requested_width_;
    if (width_ == 0) {
      width_ = 1;
      while ((width_ + 1) * (width_ + 1) <= m) ++width_;
    }
  }

  bool pick(PickContext& ctx, std::uint64_t* initiator,
            std::uint64_t* responder) override {
    const std::uint64_t m = ctx.population;
    const std::uint64_t i = ctx.rng.below(m);
    const std::uint64_t direction = ctx.rng.below(4);
    const std::uint64_t offset = direction < 2 ? 1 : width_ % m;
    const std::uint64_t j =
        (direction & 1) == 0 ? (i + offset) % m : (i + m - offset % m) % m;
    *initiator = i;
    *responder = j;
    return i != j;
  }

 private:
  std::uint64_t requested_width_ = 0;
  std::uint64_t width_ = 1;
};

/// Random D-regular multigraph: D/2 uniformly random permutations of the
/// slot set, sampled from the topology stream (Fisher–Yates). Each slot
/// has D incident half-edges — its image and preimage under every
/// permutation. pick() draws a uniform slot and a uniform half-edge;
/// permutation fixed points are self-loops and count as null meetings.
/// Population changes resample the permutations (slots are renumbered by
/// swap-removal anyway).
class RegularScheduler final : public Scheduler {
 public:
  explicit RegularScheduler(std::uint64_t degree) : degree_(degree) {}

  void on_population(std::uint64_t m, support::Rng& topology_rng) override {
    const std::size_t half = degree_ / 2;
    perms_.assign(half, {});
    inverse_.assign(half, {});
    for (std::size_t p = 0; p < half; ++p) {
      std::vector<std::uint32_t>& perm = perms_[p];
      perm.resize(m);
      std::iota(perm.begin(), perm.end(), 0);
      for (std::uint64_t k = m; k > 1; --k) {
        const std::uint64_t other = topology_rng.below(k);
        std::swap(perm[k - 1], perm[other]);
      }
      std::vector<std::uint32_t>& inverse = inverse_[p];
      inverse.resize(m);
      for (std::uint64_t k = 0; k < m; ++k) inverse[perm[k]] = k;
    }
  }

  bool pick(PickContext& ctx, std::uint64_t* initiator,
            std::uint64_t* responder) override {
    const std::uint64_t i = ctx.rng.below(ctx.population);
    const std::uint64_t edge = ctx.rng.below(degree_);
    const std::size_t half = degree_ / 2;
    const std::uint64_t j = edge < half ? perms_[edge][i]
                                        : inverse_[edge - half][i];
    *initiator = i;
    *responder = j;
    return i != j;
  }

 private:
  std::uint64_t degree_;
  std::vector<std::vector<std::uint32_t>> perms_;
  std::vector<std::vector<std::uint32_t>> inverse_;
};

/// Adversarially biased pair weighting: an agent in an accepting state is
/// selected with relative weight G, a rejecting agent with weight 1
/// (exact rejection sampling against the max weight). G < 1 starves the
/// accepting side of interactions — the adversary that most directly
/// attacks a consensus-window heuristic.
class BiasedScheduler final : public Scheduler {
 public:
  explicit BiasedScheduler(double bias) : bias_(bias) {}

  bool pick(PickContext& ctx, std::uint64_t* initiator,
            std::uint64_t* responder) override {
    const std::uint64_t i = weighted_slot(ctx, ctx.population, ~0ull);
    const std::uint64_t j = weighted_slot(ctx, ctx.population, i);
    *initiator = i;
    *responder = j;
    return true;
  }

 private:
  std::uint64_t weighted_slot(PickContext& ctx, std::uint64_t m,
                              std::uint64_t exclude) {
    const double max_weight = bias_ > 1.0 ? bias_ : 1.0;
    // Rejection sampling terminates with probability 1; the iteration cap
    // (hit only when one side has weight ~0 relative to the other and the
    // population is all the other side) degrades to the uniform pick so a
    // meeting is always produced.
    for (int round = 0; round < 4096; ++round) {
      std::uint64_t slot = ctx.rng.below(exclude == ~0ull ? m : m - 1);
      if (exclude != ~0ull && slot >= exclude) ++slot;
      const bool accepting =
          ctx.accepting != nullptr && (*ctx.accepting)(slot);
      const double weight = accepting ? bias_ : 1.0;
      if (weight >= max_weight || uniform01(ctx.rng) * max_weight < weight)
        return slot;
    }
    std::uint64_t slot = ctx.rng.below(exclude == ~0ull ? m : m - 1);
    if (exclude != ~0ull && slot >= exclude) ++slot;
    return slot;
  }

  double bias_;
};

/// Fairness-quota scheduler: the initiator is always the least recently
/// met agent (an O(1) intrusive LRU list over slots), the responder is
/// uniform among the rest. The strongest-fairness counterpoint to the
/// biased adversary: no agent can be starved for more than one list
/// rotation. Population changes rebuild (and hence reset) the recency
/// order in slot order.
class AgingScheduler final : public Scheduler {
 public:
  void on_population(std::uint64_t m, support::Rng&) override {
    next_.resize(m);
    prev_.resize(m);
    for (std::uint64_t s = 0; s < m; ++s) {
      next_[s] = s + 1 < m ? s + 1 : kNil;
      prev_[s] = s > 0 ? s - 1 : kNil;
    }
    head_ = 0;
    tail_ = m - 1;
  }

  bool pick(PickContext& ctx, std::uint64_t* initiator,
            std::uint64_t* responder) override {
    const std::uint64_t m = ctx.population;
    const std::uint64_t i = head_;
    std::uint64_t j = ctx.rng.below(m - 1);
    if (j >= i) ++j;
    *initiator = i;
    *responder = j;
    return true;
  }

  void on_meeting(std::uint64_t initiator, std::uint64_t responder) override {
    touch(initiator);
    touch(responder);
  }

 private:
  static constexpr std::uint64_t kNil = ~std::uint64_t{0};

  void touch(std::uint64_t slot) {
    if (slot == tail_) return;
    // Unlink.
    const std::uint64_t p = prev_[slot];
    const std::uint64_t n = next_[slot];
    if (p != kNil) next_[p] = n;
    if (n != kNil) prev_[n] = p;
    if (head_ == slot) head_ = n;
    // Append at the tail (most recently met).
    prev_[slot] = tail_;
    next_[slot] = kNil;
    next_[tail_] = slot;
    tail_ = slot;
  }

  std::vector<std::uint64_t> next_;
  std::vector<std::uint64_t> prev_;
  std::uint64_t head_ = 0;
  std::uint64_t tail_ = 0;
};

}  // namespace

std::unique_ptr<Scheduler> make_scheduler(const SchedulerSpec& spec) {
  switch (spec.kind) {
    case SchedKind::kUniform: return nullptr;
    case SchedKind::kClique: return std::make_unique<CliqueScheduler>();
    case SchedKind::kRing: return std::make_unique<RingScheduler>();
    case SchedKind::kGrid: return std::make_unique<GridScheduler>(spec.width);
    case SchedKind::kRegular:
      return std::make_unique<RegularScheduler>(spec.degree);
    case SchedKind::kBiased:
      return std::make_unique<BiasedScheduler>(spec.bias);
    case SchedKind::kAging: return std::make_unique<AgingScheduler>();
  }
  throw std::logic_error("make_scheduler: unknown scheduler kind");
}

}  // namespace ppde::sched
