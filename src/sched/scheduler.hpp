// Scheduler strategy interface + implementations (S27).
//
// A Scheduler decides which ordered (initiator, responder) pair of agent
// slots meets next. The uniform default never constructs one — the
// simulators keep their original inline draw (and their original RNG
// streams) when Scenario::is_default(); a Scheduler object only exists
// for the non-uniform strategies, which all require agent identity and
// therefore run on the per-agent pp::Simulator.
//
// Determinism contract: pick() consumes only the PickContext's meeting
// stream, on_population() consumes only the dedicated topology stream
// (sched::kTopologyStream), and neither reads any global state, so a
// trial's meeting sequence is a pure function of its derived seed under
// every strategy.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sched/scenario.hpp"
#include "support/rng.hpp"

namespace ppde::sched {

/// Everything a strategy may consult when drawing the next pair.
struct PickContext {
  support::Rng& rng;         ///< the trial's meeting stream
  std::uint64_t population;  ///< current number of agents (>= 2)
  /// State predicate for state-aware strategies (biased): is the agent in
  /// slot s currently in an accepting state? Bound by the simulator.
  const std::function<bool(std::uint64_t)>* accepting = nullptr;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Draw the next meeting's ordered pair of distinct agent slots in
  /// [0, population). Returns false for a null meeting that selects no
  /// valid pair (e.g. a self-loop edge of a sampled multigraph); the
  /// caller counts the meeting and applies no transition.
  virtual bool pick(PickContext& ctx, std::uint64_t* initiator,
                    std::uint64_t* responder) = 0;

  /// The population changed to `m` agents (initial load, fault arrival or
  /// departure): rebuild any per-slot structure from the topology stream.
  /// Slot identities are not stable across a change (departures
  /// swap-remove), so strategies rebuild rather than patch.
  virtual void on_population(std::uint64_t m, support::Rng& topology_rng) {
    (void)m;
    (void)topology_rng;
  }

  /// Called after the pair returned by pick() actually met (recency
  /// bookkeeping for the aging strategy).
  virtual void on_meeting(std::uint64_t initiator, std::uint64_t responder) {
    (void)initiator;
    (void)responder;
  }
};

/// Strategy factory. Returns nullptr for SchedKind::kUniform — callers
/// keep the built-in uniform draw (the digest-parity fast path).
std::unique_ptr<Scheduler> make_scheduler(const SchedulerSpec& spec);

}  // namespace ppde::sched
