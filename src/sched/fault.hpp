// Fault-plan interface + implementations (S27).
//
// A FaultPlan injects adversarial events into a running trial: transient
// state corruption (the noise model of the paper's almost
// self-stabilisation claim, Definition 7, but struck mid-run instead of
// at time zero), agent arrival/departure churn (the paper's closing open
// question about dynamic populations), and scheduled corruption bursts.
//
// Scheduling model: the simulator polls `next_due()` before every meeting
// draw and calls `fire(now, ops)` while it is <= the completed-meeting
// count, so fault timing is expressed in meeting indices and is
// independent of wall time, thread count and shard layout. Every random
// choice a plan makes comes from its own fault stream
// (derive_trial_seed(trial_seed, kFaultStream)), never from the meeting
// stream — the same meeting sequence replays under different fault rates
// until the first fault actually rewrites a state.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/scenario.hpp"
#include "support/rng.hpp"

namespace ppde::sched {

/// Mutation surface a plan fires against, bound by the simulator. Slots
/// are agent indices in [0, population()); removal swap-removes (the
/// simulator's existing departure semantics), so slot identities are not
/// stable across a departure.
class FaultOps {
 public:
  virtual ~FaultOps() = default;

  virtual std::uint64_t population() const = 0;
  virtual std::uint32_t num_states() const = 0;

  /// Overwrite the agent in `slot` with state `to` (transient corruption).
  virtual void set_agent(std::uint64_t slot, std::uint32_t to) = 0;
  /// An agent in state `q` joins the population.
  virtual void add_agent(std::uint32_t q) = 0;
  /// The agent in `slot` leaves the population (swap-remove).
  virtual void remove_agent(std::uint64_t slot) = 0;
  /// A uniformly random *input* state — arriving agents are fresh inputs,
  /// not arbitrary noise (noise is what corrupt/burst model).
  virtual std::uint32_t random_input_state(support::Rng& rng) = 0;
};

/// Tally of what a plan actually did to one trial. Deliberately NOT part
/// of engine::RunMetrics: the stats are per-plan diagnostics, not part of
/// the certified statement, so they stay out of the wire format and the
/// digest.
struct FaultStats {
  std::uint64_t events = 0;       ///< fire() calls that did something
  std::uint64_t corruptions = 0;  ///< individual state overwrites
  std::uint64_t arrivals = 0;
  std::uint64_t departures = 0;
};

class FaultPlan {
 public:
  /// next_due() value meaning "no further events".
  static constexpr std::uint64_t kNever = ~std::uint64_t{0};

  virtual ~FaultPlan() = default;

  /// Meeting index at which the next event is due. The simulator fires
  /// the plan while next_due() <= completed meetings.
  std::uint64_t next_due() const { return next_; }

  /// Execute the event(s) due at meeting index `now` and advance
  /// next_due() strictly past `now`.
  virtual void fire(std::uint64_t now, FaultOps& ops) = 0;

  const FaultStats& stats() const { return stats_; }

 protected:
  std::uint64_t next_ = kNever;
  FaultStats stats_;
};

/// Build the plan for `spec`; nullptr for FaultKind::kNone. `fault_seed`
/// is the trial's dedicated fault stream seed
/// (derive_trial_seed(trial_seed, kFaultStream)); `initial_population`
/// anchors the churn cap.
std::unique_ptr<FaultPlan> make_fault_plan(const FaultSpec& spec,
                                           std::uint64_t fault_seed,
                                           std::uint64_t initial_population);

/// One uniformly random noise state: from `pool` if given, else uniform
/// over all `num_states` states. This is THE noise primitive — the
/// corrupt/burst plans and analysis::random_noise draw through it with
/// identical RNG consumption (one below() call), which is what keeps the
/// robustness sweeps bit-identical to their pre-S27 outputs.
inline std::uint32_t uniform_noise_state(
    std::uint32_t num_states, support::Rng& rng,
    const std::vector<std::uint32_t>* pool = nullptr) {
  if (pool != nullptr)
    return (*pool)[rng.below(pool->size())];
  return static_cast<std::uint32_t>(rng.below(num_states));
}

}  // namespace ppde::sched
