// Exhaustive exploration of population programs under the paper's exact
// nondeterministic + fair semantics.
//
// The state of a flattened program — (registers, CF, OF, pc, call stack) —
// ranges over a finite set once the conserved agent total is fixed, so we
// can enumerate the full reachability graph and decide the fair-run
// properties the paper's lemmas assert:
//
//   * post(C, f)   (Appendix A notation): all outcomes of running procedure
//     f from register configuration C — returned configurations/values,
//     whether a restart is possible, and whether ⊥ (hang/divergence) is
//     possible. A fair run diverges iff it can reach a *non-terminal bottom
//     SCC* of the graph (fairness forces runs out of any SCC with an exit
//     edge), so ⊥ detection is a Tarjan pass.
//
//   * decision analysis for the whole program (Theorem 3): with restart
//     edges expanded to *all* compositions of the agent total, the program
//     stabilises to b iff every reachable bottom SCC is OF-constant with
//     value b.
//
//   * per-configuration Main analysis (Lemma 4): with restarts treated as
//     terminals, report which outputs Main may stabilise to from one
//     configuration and whether it otherwise always restarts.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "progmodel/flat.hpp"

namespace ppde::progmodel {

struct ExploreLimits {
  std::uint64_t max_nodes = 2'000'000;
  /// Worker threads for frontier expansion (0 = hardware concurrency).
  /// Results are identical at every thread count (DESIGN.md S22).
  unsigned threads = 1;
};

/// Result of exhaustively running one procedure (paper: post(C, f)).
struct PostResult {
  struct Outcome {
    std::vector<std::uint64_t> regs;
    /// -1: void return, 0: returned false, 1: returned true.
    int ret = -1;

    friend bool operator==(const Outcome&, const Outcome&) = default;
  };

  std::vector<Outcome> outcomes;  ///< deduplicated
  bool can_restart = false;
  bool can_hang = false;     ///< a blocked move is reachable
  bool can_diverge = false;  ///< ⊥: non-terminal bottom SCC reachable
  bool limit_hit = false;
  std::uint64_t explored_nodes = 0;

  /// True iff (regs, ret) is among the outcomes.
  bool contains(const std::vector<std::uint64_t>& regs, int ret) const;

  /// True iff the only possible behaviour is returning (no restart/⊥).
  bool returns_only() const {
    return !can_restart && !can_diverge && !limit_hit;
  }
};

/// Run procedure `proc` from register configuration `regs` (CF/OF start
/// false; they are always written before being read by lowered code).
PostResult explore_post(const FlatProgram& flat, ProcId proc,
                        const std::vector<std::uint64_t>& regs,
                        const ExploreLimits& limits = {});

/// Lemma-4-style analysis of a full program from ONE initial configuration,
/// with restart as a terminal event.
struct MainAnalysis {
  bool may_stabilise_true = false;   ///< an OF≡true bottom SCC is reachable
  bool may_stabilise_false = false;  ///< an OF≡false bottom SCC is reachable
  bool has_mixed_bscc = false;       ///< a bottom SCC with both OF values
  bool can_restart = false;
  bool limit_hit = false;
  std::uint64_t explored_nodes = 0;

  /// "It always restarts": no stabilisation possible at all.
  bool always_restarts() const {
    return !may_stabilise_true && !may_stabilise_false && !has_mixed_bscc &&
           can_restart && !limit_hit;
  }
};
MainAnalysis analyse_main(const FlatProgram& flat,
                          const std::vector<std::uint64_t>& regs,
                          const ExploreLimits& limits = {});

/// Full decision analysis (Theorem 3): explore from every composition? No —
/// from the given initial configuration, with restart edges expanded to all
/// compositions of the conserved total. Every fair run stabilises to b iff
/// every reachable bottom SCC is OF-constant with value b.
struct DecisionResult {
  enum class Verdict {
    kStabilisesTrue,
    kStabilisesFalse,
    kDoesNotStabilise,
    kLimit,
  };
  Verdict verdict = Verdict::kLimit;
  std::uint64_t explored_nodes = 0;

  bool stabilises() const {
    return verdict == Verdict::kStabilisesTrue ||
           verdict == Verdict::kStabilisesFalse;
  }
  bool output() const { return verdict == Verdict::kStabilisesTrue; }
};
DecisionResult decide(const FlatProgram& flat,
                      const std::vector<std::uint64_t>& initial_regs,
                      const ExploreLimits& limits = {});

/// All compositions of `total` agents over `registers` registers
/// (helper shared by decide() and the tests; ordering is lexicographic).
std::vector<std::vector<std::uint64_t>> all_compositions(
    std::uint64_t total, std::uint32_t registers);

}  // namespace ppde::progmodel
