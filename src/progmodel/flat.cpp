#include "progmodel/flat.hpp"

#include <sstream>
#include <stdexcept>

namespace ppde::progmodel {

namespace {

class FlatCompiler {
 public:
  explicit FlatCompiler(const Program& program) : program_(program) {}

  FlatProgram compile() {
    out_.num_registers = static_cast<std::uint32_t>(program_.num_registers());
    out_.reg_names = program_.registers;
    out_.main_proc = program_.main_proc;
    out_.proc_entry.assign(program_.procedures.size(), 0);

    // Prologue: call Main, then loop forever (Appendix B.2 inserts exactly
    // this in case Main returns).
    emit({FlatOp::Kind::kCall, program_.main_proc, 0});
    emit({FlatOp::Kind::kHalt, 0, 0});

    for (ProcId id = 0; id < program_.procedures.size(); ++id) {
      const Procedure& proc = program_.procedures[id];
      out_.proc_names.push_back(proc.name);
      out_.proc_entry[id] = next_pc();
      lower_block(proc.body);
      // Fall-off-the-end: implicit void return. (The paper's programs end
      // value-returning procedures with explicit returns.)
      emit({FlatOp::Kind::kReturn, 2, 0});
    }
    return std::move(out_);
  }

 private:
  std::uint32_t next_pc() const {
    return static_cast<std::uint32_t>(out_.ops.size());
  }

  std::uint32_t emit(FlatOp op) {
    out_.ops.push_back(op);
    return next_pc() - 1;
  }

  /// Lower a condition so that execution falls through with CF = its value.
  void lower_cond(CondId id) {
    const Cond& cond = program_.conds[id];
    switch (cond.kind) {
      case Cond::Kind::kConst:
        emit({FlatOp::Kind::kSetCF, cond.value ? 1u : 0u, 0});
        break;
      case Cond::Kind::kDetect:
        emit({FlatOp::Kind::kDetect, cond.reg, 0});
        break;
      case Cond::Kind::kCall:
        emit({FlatOp::Kind::kCall, cond.proc, 0});
        break;
      case Cond::Kind::kNot:
        lower_cond(cond.lhs);
        emit({FlatOp::Kind::kNotCF, 0, 0});
        break;
      case Cond::Kind::kAnd: {
        lower_cond(cond.lhs);
        // if !CF skip rhs (CF already false)
        const std::uint32_t branch = emit({FlatOp::Kind::kBranch, 0, 0});
        out_.ops[branch].a = next_pc();  // true: evaluate rhs
        lower_cond(cond.rhs);
        out_.ops[branch].b = next_pc();  // false: skip, CF == false
        break;
      }
      case Cond::Kind::kOr: {
        lower_cond(cond.lhs);
        const std::uint32_t branch = emit({FlatOp::Kind::kBranch, 0, 0});
        out_.ops[branch].b = next_pc();  // false: evaluate rhs
        lower_cond(cond.rhs);
        out_.ops[branch].a = next_pc();  // true: skip, CF == true
        break;
      }
    }
  }

  void lower_block(BlockId block) {
    if (block == kNoBlock) return;
    for (StmtId id : program_.blocks[block]) lower_stmt(program_.stmts[id]);
  }

  void lower_stmt(const Stmt& stmt) {
    switch (stmt.kind) {
      case Stmt::Kind::kMove:
        emit({FlatOp::Kind::kMove, stmt.from, stmt.to});
        break;
      case Stmt::Kind::kSwap:
        emit({FlatOp::Kind::kSwap, stmt.from, stmt.to});
        break;
      case Stmt::Kind::kSetOF:
        emit({FlatOp::Kind::kSetOF, stmt.value ? 1u : 0u, 0});
        break;
      case Stmt::Kind::kRestart:
        emit({FlatOp::Kind::kRestart, 0, 0});
        break;
      case Stmt::Kind::kCall:
        emit({FlatOp::Kind::kCall, stmt.proc, 0});
        break;
      case Stmt::Kind::kIf: {
        lower_cond(stmt.cond);
        const std::uint32_t branch = emit({FlatOp::Kind::kBranch, 0, 0});
        out_.ops[branch].a = next_pc();
        lower_block(stmt.then_block);
        if (stmt.else_block == kNoBlock) {
          out_.ops[branch].b = next_pc();
        } else {
          const std::uint32_t jump_end = emit({FlatOp::Kind::kJump, 0, 0});
          out_.ops[branch].b = next_pc();
          lower_block(stmt.else_block);
          out_.ops[jump_end].a = next_pc();
        }
        break;
      }
      case Stmt::Kind::kWhile: {
        const std::uint32_t head = next_pc();
        lower_cond(stmt.cond);
        const std::uint32_t branch = emit({FlatOp::Kind::kBranch, 0, 0});
        out_.ops[branch].a = next_pc();
        lower_block(stmt.then_block);
        emit({FlatOp::Kind::kJump, head, 0});
        out_.ops[branch].b = next_pc();
        break;
      }
      case Stmt::Kind::kReturn:
        if (!stmt.has_cond) {
          emit({FlatOp::Kind::kReturn, 2, 0});
        } else if (program_.conds[stmt.cond].kind == Cond::Kind::kConst) {
          emit({FlatOp::Kind::kReturn,
                program_.conds[stmt.cond].value ? 1u : 0u, 0});
        } else {
          lower_cond(stmt.cond);
          const std::uint32_t branch = emit({FlatOp::Kind::kBranch, 0, 0});
          out_.ops[branch].a = next_pc();
          emit({FlatOp::Kind::kReturn, 1, 0});
          out_.ops[branch].b = next_pc();
          emit({FlatOp::Kind::kReturn, 0, 0});
        }
        break;
    }
  }

  const Program& program_;
  FlatProgram out_;
};

}  // namespace

FlatProgram FlatProgram::compile(const Program& program) {
  program.validate();
  return FlatCompiler(program).compile();
}

std::string FlatProgram::to_string() const {
  std::ostringstream os;
  for (std::uint32_t pc = 0; pc < ops.size(); ++pc) {
    for (ProcId proc = 0; proc < proc_entry.size(); ++proc)
      if (proc_entry[proc] == pc) os << proc_names[proc] << ":\n";
    const FlatOp& op = ops[pc];
    os << "  " << pc << ": ";
    switch (op.kind) {
      case FlatOp::Kind::kMove:
        os << reg_names[op.a] << " -> " << reg_names[op.b];
        break;
      case FlatOp::Kind::kSwap:
        os << "swap " << reg_names[op.a] << ", " << reg_names[op.b];
        break;
      case FlatOp::Kind::kSetOF:
        os << "OF := " << (op.a ? "true" : "false");
        break;
      case FlatOp::Kind::kRestart:
        os << "restart";
        break;
      case FlatOp::Kind::kDetect:
        os << "CF := detect " << reg_names[op.a] << " > 0";
        break;
      case FlatOp::Kind::kSetCF:
        os << "CF := " << (op.a ? "true" : "false");
        break;
      case FlatOp::Kind::kNotCF:
        os << "CF := !CF";
        break;
      case FlatOp::Kind::kJump:
        os << "goto " << op.a;
        break;
      case FlatOp::Kind::kBranch:
        os << "if CF goto " << op.a << " else goto " << op.b;
        break;
      case FlatOp::Kind::kCall:
        os << "call " << proc_names[op.a];
        break;
      case FlatOp::Kind::kReturn:
        os << (op.a == 2 ? "return" : op.a == 1 ? "return true"
                                                : "return false");
        break;
      case FlatOp::Kind::kHalt:
        os << "halt";
        break;
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace ppde::progmodel
