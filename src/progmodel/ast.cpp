#include "progmodel/ast.hpp"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace ppde::progmodel {

namespace {

/// Collect every condition reachable from `cond` (post-order irrelevant).
void visit_conds(const Program& program, CondId cond,
                 const std::function<void(const Cond&)>& fn) {
  const Cond& node = program.conds.at(cond);
  fn(node);
  switch (node.kind) {
    case Cond::Kind::kNot:
      visit_conds(program, node.lhs, fn);
      break;
    case Cond::Kind::kAnd:
    case Cond::Kind::kOr:
      visit_conds(program, node.lhs, fn);
      visit_conds(program, node.rhs, fn);
      break;
    default:
      break;
  }
}

/// Walk every statement of a block tree.
void visit_stmts(const Program& program, BlockId block,
                 const std::function<void(const Stmt&)>& fn) {
  if (block == kNoBlock) return;
  for (StmtId id : program.blocks.at(block)) {
    const Stmt& stmt = program.stmts.at(id);
    fn(stmt);
    if (stmt.kind == Stmt::Kind::kIf || stmt.kind == Stmt::Kind::kWhile) {
      visit_stmts(program, stmt.then_block, fn);
      visit_stmts(program, stmt.else_block, fn);
    }
  }
}

}  // namespace

std::vector<ProcId> Program::callees(ProcId proc) const {
  std::vector<ProcId> result;
  auto add = [&result](ProcId id) {
    for (ProcId existing : result)
      if (existing == id) return;
    result.push_back(id);
  };
  visit_stmts(*this, procedures.at(proc).body, [&](const Stmt& stmt) {
    if (stmt.kind == Stmt::Kind::kCall) add(stmt.proc);
    if (stmt.kind == Stmt::Kind::kIf || stmt.kind == Stmt::Kind::kWhile ||
        (stmt.kind == Stmt::Kind::kReturn && stmt.has_cond)) {
      visit_conds(*this, stmt.cond, [&](const Cond& cond) {
        if (cond.kind == Cond::Kind::kCall) add(cond.proc);
      });
    }
  });
  return result;
}

void Program::validate() const {
  if (main_proc >= procedures.size())
    throw std::logic_error("Program: main procedure out of range");

  auto check_reg = [this](Reg reg) {
    if (reg >= registers.size())
      throw std::logic_error("Program: register index out of range");
  };

  for (const Procedure& proc : procedures) {
    if (proc.body == kNoBlock)
      throw std::logic_error("Program: procedure " + proc.name +
                             " has no body");
    visit_stmts(*this, proc.body, [&](const Stmt& stmt) {
      switch (stmt.kind) {
        case Stmt::Kind::kMove:
        case Stmt::Kind::kSwap:
          check_reg(stmt.from);
          check_reg(stmt.to);
          if (stmt.kind == Stmt::Kind::kSwap && stmt.from == stmt.to)
            throw std::logic_error("Program: swap of a register with itself");
          break;
        case Stmt::Kind::kCall:
          if (stmt.proc >= procedures.size())
            throw std::logic_error("Program: call target out of range");
          break;
        case Stmt::Kind::kIf:
        case Stmt::Kind::kWhile:
        case Stmt::Kind::kReturn:
          if (stmt.kind != Stmt::Kind::kReturn || stmt.has_cond) {
            visit_conds(*this, stmt.cond, [&](const Cond& cond) {
              if (cond.kind == Cond::Kind::kDetect) check_reg(cond.reg);
              if (cond.kind == Cond::Kind::kCall) {
                if (cond.proc >= procedures.size())
                  throw std::logic_error("Program: call target out of range");
                if (!procedures[cond.proc].returns_value)
                  throw std::logic_error(
                      "Program: void procedure used as condition");
              }
            });
          }
          break;
        default:
          break;
      }
    });
  }

  // Procedure calls must be acyclic (Section 4: no recursion, bounded
  // stack). Colour-DFS over the call graph.
  enum class Colour : std::uint8_t { kWhite, kGrey, kBlack };
  std::vector<Colour> colour(procedures.size(), Colour::kWhite);
  std::function<void(ProcId)> dfs = [&](ProcId proc) {
    colour[proc] = Colour::kGrey;
    for (ProcId callee : callees(proc)) {
      if (colour[callee] == Colour::kGrey)
        throw std::logic_error("Program: cyclic procedure calls involving " +
                               procedures[proc].name);
      if (colour[callee] == Colour::kWhite) dfs(callee);
    }
    colour[proc] = Colour::kBlack;
  };
  for (ProcId proc = 0; proc < procedures.size(); ++proc)
    if (colour[proc] == Colour::kWhite) dfs(proc);
}

Program::SizeInfo Program::size() const {
  SizeInfo info;
  info.num_registers = registers.size();

  // L: count primitive instructions — statements plus detect/call
  // occurrences inside conditions (each evaluates as one instruction).
  for (const Procedure& proc : procedures) {
    visit_stmts(*this, proc.body, [&](const Stmt& stmt) {
      ++info.num_instructions;
      if (stmt.kind == Stmt::Kind::kIf || stmt.kind == Stmt::Kind::kWhile ||
          (stmt.kind == Stmt::Kind::kReturn && stmt.has_cond)) {
        visit_conds(*this, stmt.cond, [&](const Cond& cond) {
          if (cond.kind == Cond::Kind::kDetect ||
              cond.kind == Cond::Kind::kCall)
            ++info.num_instructions;
        });
      }
    });
  }

  // S: union-find over swap statements, then sum |component| * (|component|-1)
  // over components with >= 2 members.
  std::vector<Reg> parent(registers.size());
  for (Reg r = 0; r < parent.size(); ++r) parent[r] = r;
  std::function<Reg(Reg)> find = [&](Reg r) {
    while (parent[r] != r) r = parent[r] = parent[parent[r]];
    return r;
  };
  for (const Procedure& proc : procedures) {
    visit_stmts(*this, proc.body, [&](const Stmt& stmt) {
      if (stmt.kind == Stmt::Kind::kSwap)
        parent[find(stmt.from)] = find(stmt.to);
    });
  }
  std::vector<std::uint64_t> component_size(registers.size(), 0);
  for (Reg r = 0; r < registers.size(); ++r) ++component_size[find(r)];
  for (std::uint64_t size : component_size)
    if (size >= 2) info.swap_size += size * (size - 1);

  return info;
}

namespace {

class Printer {
 public:
  explicit Printer(const Program& program) : program_(program) {}

  std::string print() {
    for (ProcId id = 0; id < program_.procedures.size(); ++id) {
      const Procedure& proc = program_.procedures[id];
      os_ << "procedure " << proc.name;
      if (id == program_.main_proc) os_ << "  // Main";
      os_ << "\n";
      print_block(proc.body, 1);
      os_ << "\n";
    }
    return os_.str();
  }

 private:
  void indent(int depth) {
    for (int i = 0; i < depth; ++i) os_ << "  ";
  }

  std::string cond_str(CondId id) {
    const Cond& cond = program_.conds[id];
    switch (cond.kind) {
      case Cond::Kind::kConst:
        return cond.value ? "true" : "false";
      case Cond::Kind::kDetect:
        return "detect " + program_.registers[cond.reg] + " > 0";
      case Cond::Kind::kCall:
        return program_.procedures[cond.proc].name + "()";
      case Cond::Kind::kNot:
        return "!(" + cond_str(cond.lhs) + ")";
      case Cond::Kind::kAnd:
        return "(" + cond_str(cond.lhs) + " && " + cond_str(cond.rhs) + ")";
      case Cond::Kind::kOr:
        return "(" + cond_str(cond.lhs) + " || " + cond_str(cond.rhs) + ")";
    }
    return "?";
  }

  void print_block(BlockId block, int depth) {
    if (block == kNoBlock) return;
    for (StmtId id : program_.blocks[block]) {
      const Stmt& stmt = program_.stmts[id];
      indent(depth);
      switch (stmt.kind) {
        case Stmt::Kind::kMove:
          os_ << program_.registers[stmt.from] << " -> "
              << program_.registers[stmt.to] << "\n";
          break;
        case Stmt::Kind::kSwap:
          os_ << "swap " << program_.registers[stmt.from] << ", "
              << program_.registers[stmt.to] << "\n";
          break;
        case Stmt::Kind::kSetOF:
          os_ << "OF := " << (stmt.value ? "true" : "false") << "\n";
          break;
        case Stmt::Kind::kRestart:
          os_ << "restart\n";
          break;
        case Stmt::Kind::kCall:
          os_ << program_.procedures[stmt.proc].name << "()\n";
          break;
        case Stmt::Kind::kIf:
          os_ << "if " << cond_str(stmt.cond) << " then\n";
          print_block(stmt.then_block, depth + 1);
          if (stmt.else_block != kNoBlock) {
            indent(depth);
            os_ << "else\n";
            print_block(stmt.else_block, depth + 1);
          }
          break;
        case Stmt::Kind::kWhile:
          os_ << "while " << cond_str(stmt.cond) << " do\n";
          print_block(stmt.then_block, depth + 1);
          break;
        case Stmt::Kind::kReturn:
          os_ << "return";
          if (stmt.has_cond) os_ << " " << cond_str(stmt.cond);
          os_ << "\n";
          break;
      }
    }
  }

  const Program& program_;
  std::ostringstream os_;
};

}  // namespace

std::string Program::to_string() const { return Printer(*this).print(); }

}  // namespace ppde::progmodel
