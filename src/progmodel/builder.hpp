// Fluent construction of population programs.
//
// Usage (the Figure-1 program, abbreviated):
//
//   ProgramBuilder b;
//   Reg x = b.reg("x"), y = b.reg("y"), z = b.reg("z");
//   ProcRef test4 = b.declare_proc("Test(4)", /*returns_value=*/true);
//   ProcRef main = b.declare_proc("Main", false);
//   b.define(test4, [&](BlockBuilder& s) {
//     for (int j = 0; j < 4; ++j)
//       s.if_(s.detect(x), [&](BlockBuilder& t) { t.move(x, y); },
//             [&](BlockBuilder& e) { e.return_(false); });
//     s.return_(true);
//   });
//   ...
//   Program p = b.build(main);
//
// for-loops of the paper are macros: express them as C++ loops that emit
// the body repeatedly (exactly the paper's expansion).
#pragma once

#include <functional>
#include <string>

#include "progmodel/ast.hpp"

namespace ppde::progmodel {

/// Opaque handle for a declared procedure.
struct ProcRef {
  ProcId id = 0;
};

/// Handle for a condition being built (arena index).
struct CondExpr {
  CondId id = 0;
};

class ProgramBuilder;

/// Builds one block of statements. Only valid during the define() callback
/// that produced it.
class BlockBuilder {
 public:
  // -- conditions (usable in if_/while_/return_) ---------------------------
  CondExpr detect(Reg reg);
  CondExpr call_cond(ProcRef proc);
  CondExpr constant(bool value);
  CondExpr not_(CondExpr operand);
  CondExpr and_(CondExpr lhs, CondExpr rhs);
  CondExpr or_(CondExpr lhs, CondExpr rhs);

  // -- statements -----------------------------------------------------------
  void move(Reg from, Reg to);
  void swap(Reg a, Reg b);
  void set_of(bool value);
  void restart();
  void call(ProcRef proc);
  void if_(CondExpr cond, const std::function<void(BlockBuilder&)>& then_fn,
           const std::function<void(BlockBuilder&)>& else_fn = nullptr);
  void while_(CondExpr cond, const std::function<void(BlockBuilder&)>& body);
  void return_(CondExpr value);
  void return_(bool value);
  void return_void();

 private:
  friend class ProgramBuilder;
  BlockBuilder(ProgramBuilder& builder, BlockId block)
      : builder_(builder), block_(block) {}

  void append(Stmt stmt);

  ProgramBuilder& builder_;
  BlockId block_;
};

class ProgramBuilder {
 public:
  /// Create a register; names must be unique.
  Reg reg(std::string name);

  /// Declare a procedure (so it can be referenced before its definition).
  ProcRef declare_proc(std::string name, bool returns_value);

  /// Define the body of a previously declared procedure.
  void define(ProcRef proc, const std::function<void(BlockBuilder&)>& body);

  /// Declare + define in one go.
  ProcRef proc(std::string name, bool returns_value,
               const std::function<void(BlockBuilder&)>& body);

  /// Finish; validates the program. `main` is the entry procedure.
  Program build(ProcRef main) &&;

 private:
  friend class BlockBuilder;
  BlockId new_block();

  Program program_;
};

}  // namespace ppde::progmodel
