#include "progmodel/builder.hpp"

#include <stdexcept>
#include <utility>

namespace ppde::progmodel {

// -- BlockBuilder ------------------------------------------------------------

CondExpr BlockBuilder::detect(Reg reg) {
  Cond cond;
  cond.kind = Cond::Kind::kDetect;
  cond.reg = reg;
  builder_.program_.conds.push_back(cond);
  return {static_cast<CondId>(builder_.program_.conds.size() - 1)};
}

CondExpr BlockBuilder::call_cond(ProcRef proc) {
  Cond cond;
  cond.kind = Cond::Kind::kCall;
  cond.proc = proc.id;
  builder_.program_.conds.push_back(cond);
  return {static_cast<CondId>(builder_.program_.conds.size() - 1)};
}

CondExpr BlockBuilder::constant(bool value) {
  Cond cond;
  cond.kind = Cond::Kind::kConst;
  cond.value = value;
  builder_.program_.conds.push_back(cond);
  return {static_cast<CondId>(builder_.program_.conds.size() - 1)};
}

CondExpr BlockBuilder::not_(CondExpr operand) {
  Cond cond;
  cond.kind = Cond::Kind::kNot;
  cond.lhs = operand.id;
  builder_.program_.conds.push_back(cond);
  return {static_cast<CondId>(builder_.program_.conds.size() - 1)};
}

CondExpr BlockBuilder::and_(CondExpr lhs, CondExpr rhs) {
  Cond cond;
  cond.kind = Cond::Kind::kAnd;
  cond.lhs = lhs.id;
  cond.rhs = rhs.id;
  builder_.program_.conds.push_back(cond);
  return {static_cast<CondId>(builder_.program_.conds.size() - 1)};
}

CondExpr BlockBuilder::or_(CondExpr lhs, CondExpr rhs) {
  Cond cond;
  cond.kind = Cond::Kind::kOr;
  cond.lhs = lhs.id;
  cond.rhs = rhs.id;
  builder_.program_.conds.push_back(cond);
  return {static_cast<CondId>(builder_.program_.conds.size() - 1)};
}

void BlockBuilder::append(Stmt stmt) {
  builder_.program_.stmts.push_back(stmt);
  builder_.program_.blocks[block_].push_back(
      static_cast<StmtId>(builder_.program_.stmts.size() - 1));
}

void BlockBuilder::move(Reg from, Reg to) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kMove;
  stmt.from = from;
  stmt.to = to;
  append(stmt);
}

void BlockBuilder::swap(Reg a, Reg b) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kSwap;
  stmt.from = a;
  stmt.to = b;
  append(stmt);
}

void BlockBuilder::set_of(bool value) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kSetOF;
  stmt.value = value;
  append(stmt);
}

void BlockBuilder::restart() {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kRestart;
  append(stmt);
}

void BlockBuilder::call(ProcRef proc) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kCall;
  stmt.proc = proc.id;
  append(stmt);
}

void BlockBuilder::if_(CondExpr cond,
                       const std::function<void(BlockBuilder&)>& then_fn,
                       const std::function<void(BlockBuilder&)>& else_fn) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kIf;
  stmt.cond = cond.id;
  stmt.then_block = builder_.new_block();
  {
    BlockBuilder then_builder(builder_, stmt.then_block);
    then_fn(then_builder);
  }
  if (else_fn) {
    stmt.else_block = builder_.new_block();
    BlockBuilder else_builder(builder_, stmt.else_block);
    else_fn(else_builder);
  }
  append(stmt);
}

void BlockBuilder::while_(CondExpr cond,
                          const std::function<void(BlockBuilder&)>& body) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kWhile;
  stmt.cond = cond.id;
  stmt.then_block = builder_.new_block();
  {
    BlockBuilder body_builder(builder_, stmt.then_block);
    body(body_builder);
  }
  append(stmt);
}

void BlockBuilder::return_(CondExpr value) {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kReturn;
  stmt.has_cond = true;
  stmt.cond = value.id;
  append(stmt);
}

void BlockBuilder::return_(bool value) { return_(constant(value)); }

void BlockBuilder::return_void() {
  Stmt stmt;
  stmt.kind = Stmt::Kind::kReturn;
  stmt.has_cond = false;
  append(stmt);
}

// -- ProgramBuilder ----------------------------------------------------------

Reg ProgramBuilder::reg(std::string name) {
  for (const std::string& existing : program_.registers)
    if (existing == name)
      throw std::invalid_argument("ProgramBuilder: duplicate register " +
                                  name);
  program_.registers.push_back(std::move(name));
  return static_cast<Reg>(program_.registers.size() - 1);
}

ProcRef ProgramBuilder::declare_proc(std::string name, bool returns_value) {
  Procedure proc;
  proc.name = std::move(name);
  proc.returns_value = returns_value;
  program_.procedures.push_back(std::move(proc));
  return {static_cast<ProcId>(program_.procedures.size() - 1)};
}

void ProgramBuilder::define(ProcRef proc,
                            const std::function<void(BlockBuilder&)>& body) {
  Procedure& decl = program_.procedures.at(proc.id);
  if (decl.body != kNoBlock)
    throw std::logic_error("ProgramBuilder: procedure " + decl.name +
                           " defined twice");
  const BlockId block = new_block();
  BlockBuilder block_builder(*this, block);
  body(block_builder);
  // Re-fetch: `program_.procedures` may have grown during body().
  program_.procedures.at(proc.id).body = block;
}

ProcRef ProgramBuilder::proc(std::string name, bool returns_value,
                             const std::function<void(BlockBuilder&)>& body) {
  const ProcRef ref = declare_proc(std::move(name), returns_value);
  define(ref, body);
  return ref;
}

BlockId ProgramBuilder::new_block() {
  program_.blocks.emplace_back();
  return static_cast<BlockId>(program_.blocks.size() - 1);
}

Program ProgramBuilder::build(ProcRef main) && {
  program_.main_proc = main.id;
  program_.validate();
  return std::move(program_);
}

}  // namespace ppde::progmodel
