// Randomized execution of population programs.
//
// Resolves the model's nondeterminism stochastically, which realises a fair
// run with probability 1:
//   * detect x > 0 returns true with probability 1/2 when x > 0 (always
//     false when x == 0),
//   * restart redistributes the conserved agent total over the registers by
//     a uniform multinomial draw (every composition has positive
//     probability, so fairness reaches every initial configuration).
//
// Used for the large instances the exhaustive explorer cannot enumerate and
// for the restart-dynamics experiments. Stabilisation is detected
// heuristically (OF unchanged for a window); progmodel/explore.hpp gives
// exact answers for small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "progmodel/flat.hpp"
#include "support/rng.hpp"

namespace ppde::progmodel {

/// How the randomized interpreter resolves a restart. The model demands
/// every composition be reachable; the policies exist for the ablation
/// bench (bench_ablation) showing correctness depends on that coverage.
enum class RestartPolicy {
  kMultinomial,   ///< each unit placed in an independently uniform register
  kStarsAndBars,  ///< uniform over *compositions* (heavier tail per register)
  kAllInHub,      ///< everything into register 0 — deliberately broken:
                  ///< covers almost no compositions, so runs that need a
                  ///< structured good configuration never find one
};

struct RunOptions {
  std::uint64_t max_steps = 50'000'000;
  /// OF must hold this many steps to declare stabilisation.
  std::uint64_t stable_window = 1'000'000;
  std::uint64_t seed = 1;
  RestartPolicy restart_policy = RestartPolicy::kMultinomial;
  /// detect x > 0 returns true with probability num/den when x > 0.
  std::uint32_t detect_true_num = 1;
  std::uint32_t detect_true_den = 2;
};

struct RunResult {
  bool stabilised = false;
  bool output = false;        ///< valid if stabilised
  bool hung = false;          ///< a move from an empty register blocked
  std::uint64_t steps = 0;
  std::uint64_t restarts = 0; ///< number of restart instructions executed
};

class Runner {
 public:
  /// `flat` must outlive the runner. `initial_regs.size()` must equal
  /// flat.num_registers.
  Runner(const FlatProgram& flat, std::vector<std::uint64_t> initial_regs,
         std::uint64_t seed = 1);

  /// Override the nondeterminism policies (defaults match RunOptions).
  void set_policies(RestartPolicy restart_policy, std::uint32_t detect_num,
                    std::uint32_t detect_den);

  enum class StepStatus { kOk, kHung };

  /// Execute one instruction.
  StepStatus step();

  RunResult run(const RunOptions& options);

  const std::vector<std::uint64_t>& registers() const { return regs_; }
  bool output_flag() const { return of_; }
  std::uint64_t restarts() const { return restarts_; }
  std::uint32_t pc() const { return pc_; }

 private:
  const FlatProgram& flat_;
  std::vector<std::uint64_t> regs_;
  std::vector<std::uint32_t> stack_;
  std::uint32_t pc_ = 0;
  bool cf_ = false;
  bool of_ = false;
  std::uint64_t restarts_ = 0;
  std::uint64_t total_agents_ = 0;
  RestartPolicy restart_policy_ = RestartPolicy::kMultinomial;
  std::uint32_t detect_num_ = 1;
  std::uint32_t detect_den_ = 2;
  support::Rng rng_;
};

}  // namespace ppde::progmodel
