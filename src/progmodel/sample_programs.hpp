// Small population programs used by tests, benches and examples.
#pragma once

#include <cstdint>

#include "progmodel/ast.hpp"

namespace ppde::progmodel {

/// The paper's Figure-1 program: registers x, y, z; decides
/// phi(m) <=> 4 <= m < 7 (m = total agents). Main tries to move 4 and then
/// 7 units out of x; Clean restarts when z is occupied and drains y back
/// into x (including the paper's superfluous swap).
Program make_figure1_program();

/// Generalisation of Figure 1 deciding lo <= m < hi (0 < lo < hi).
Program make_window_program(std::uint32_t lo, std::uint32_t hi);

/// Plain threshold program deciding m >= k, built in the Figure-1 style
/// (Theta(k) instructions). Used for differential tests of the compilation
/// pipeline against the flock-of-birds protocol.
Program make_threshold_program(std::uint32_t k);

/// The Figure-3 snippet (Main: while detect x > 0 { x -> y; swap x, y }),
/// used by the lowering goldens. Not a decider.
Program make_figure3_program();

}  // namespace ppde::progmodel
