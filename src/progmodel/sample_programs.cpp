#include "progmodel/sample_programs.hpp"

#include <stdexcept>
#include <string>

#include "progmodel/builder.hpp"

namespace ppde::progmodel {

namespace {

/// Test(i): move i units from x to y, reporting success (Figure 1).
ProcRef make_test_proc(ProgramBuilder& b, Reg x, Reg y, std::uint32_t i) {
  return b.proc("Test(" + std::to_string(i) + ")", /*returns_value=*/true,
                [&, i](BlockBuilder& s) {
                  for (std::uint32_t j = 0; j < i; ++j) {
                    s.if_(s.detect(x), [&](BlockBuilder& t) { t.move(x, y); },
                          [](BlockBuilder& e) { e.return_(false); });
                  }
                  s.return_(true);
                });
}

/// Clean: restart when z is occupied, then drain y back into x (Figure 1).
/// `z` may be absent (kNoReg) for programs without a junk register.
constexpr Reg kNoReg = 0xffffffffu;

ProcRef make_clean_proc(ProgramBuilder& b, Reg x, Reg y, Reg z,
                        bool with_swap) {
  return b.proc("Clean", /*returns_value=*/false, [&](BlockBuilder& s) {
    if (z != kNoReg)
      s.if_(s.detect(z), [](BlockBuilder& t) { t.restart(); });
    if (with_swap) s.swap(x, y);
    s.while_(s.detect(y), [&](BlockBuilder& t) { t.move(y, x); });
  });
}

}  // namespace

Program make_figure1_program() { return make_window_program(4, 7); }

Program make_window_program(std::uint32_t lo, std::uint32_t hi) {
  if (lo == 0 || lo >= hi)
    throw std::invalid_argument("window program: need 0 < lo < hi");
  ProgramBuilder b;
  const Reg x = b.reg("x");
  const Reg y = b.reg("y");
  const Reg z = b.reg("z");
  const ProcRef test_lo = make_test_proc(b, x, y, lo);
  const ProcRef test_hi = make_test_proc(b, x, y, hi);
  const ProcRef clean = make_clean_proc(b, x, y, z, /*with_swap=*/true);
  const ProcRef main =
      b.proc("Main", /*returns_value=*/false, [&](BlockBuilder& s) {
        s.set_of(false);
        s.while_(s.not_(s.call_cond(test_lo)),
                 [&](BlockBuilder& t) { t.call(clean); });
        s.set_of(true);
        s.while_(s.not_(s.call_cond(test_hi)),
                 [&](BlockBuilder& t) { t.call(clean); });
        s.set_of(false);
        s.while_(s.constant(true),
                 [&](BlockBuilder& t) { t.call(clean); });
      });
  return std::move(b).build(main);
}

Program make_threshold_program(std::uint32_t k) {
  if (k == 0) throw std::invalid_argument("threshold program: k must be >= 1");
  ProgramBuilder b;
  const Reg x = b.reg("x");
  const Reg y = b.reg("y");
  const ProcRef test = make_test_proc(b, x, y, k);
  const ProcRef clean = make_clean_proc(b, x, y, kNoReg, /*with_swap=*/false);
  const ProcRef main =
      b.proc("Main", /*returns_value=*/false, [&](BlockBuilder& s) {
        s.set_of(false);
        s.while_(s.not_(s.call_cond(test)),
                 [&](BlockBuilder& t) { t.call(clean); });
        s.set_of(true);
        s.while_(s.constant(true),
                 [&](BlockBuilder& t) { t.call(clean); });
      });
  return std::move(b).build(main);
}

Program make_figure3_program() {
  ProgramBuilder b;
  const Reg x = b.reg("x");
  const Reg y = b.reg("y");
  const ProcRef main =
      b.proc("Main", /*returns_value=*/false, [&](BlockBuilder& s) {
        s.while_(s.detect(x), [&](BlockBuilder& t) {
          t.move(x, y);
          t.swap(x, y);
        });
      });
  return std::move(b).build(main);
}

}  // namespace ppde::progmodel
