// Population programs (paper Section 4).
//
// A population program P = (Q, Proc) is a structured program over registers
// with values in N. Three primitives exist:
//   * move (x -> y): decrement x, increment y; *hangs* if x is empty,
//   * detect x > 0: nondeterministically returns false or whether x > 0
//     (fairness forbids returning false forever while x > 0),
//   * swap x, y: exchange two registers' values.
// plus OF := true/false (the output flag), restart (jump to a fresh,
// nondeterministically chosen initial configuration with the same agent
// total), while/if with boolean conditions over detects and procedure
// calls, and acyclic, argumentless procedures that may return a boolean.
//
// The AST lives in index-based arenas inside Program, so programs are plain
// values (copyable, hashable by content if needed) and the interpreters can
// address nodes by dense ids. Programs are assembled with
// progmodel/builder.hpp and consumed by the interpreters and by the
// Section-7.2 lowering in compile/lower.hpp.
//
// The paper's size measure (Section 4): size = |Q| + L + S where L is the
// number of instructions and S the swap-size — the number of ordered
// register pairs that can be exchanged through some sequence of swaps.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ppde::progmodel {

using Reg = std::uint32_t;
using ProcId = std::uint32_t;
using StmtId = std::uint32_t;
using CondId = std::uint32_t;
using BlockId = std::uint32_t;

constexpr std::uint32_t kNoBlock = 0xffffffffu;

/// Boolean condition node.
struct Cond {
  enum class Kind { kConst, kDetect, kCall, kNot, kAnd, kOr };
  Kind kind = Kind::kConst;
  bool value = false;  ///< kConst
  Reg reg = 0;         ///< kDetect
  ProcId proc = 0;     ///< kCall (procedure must return a value)
  CondId lhs = 0;      ///< kNot / kAnd / kOr
  CondId rhs = 0;      ///< kAnd / kOr
};

/// Statement node.
struct Stmt {
  enum class Kind {
    kMove,     ///< from -> to
    kSwap,     ///< swap a, b
    kSetOF,    ///< OF := value
    kRestart,  ///< restart with a fresh initial configuration
    kCall,     ///< call procedure, discarding any return value
    kIf,       ///< if cond then then_block [else else_block]
    kWhile,    ///< while cond do body
    kReturn,   ///< return [cond]; void return if !cond
  };
  Kind kind = Kind::kMove;
  Reg from = 0, to = 0;          ///< kMove / kSwap (a = from, b = to)
  bool value = false;            ///< kSetOF
  ProcId proc = 0;               ///< kCall
  CondId cond = 0;               ///< kIf / kWhile / kReturn (if has_cond)
  bool has_cond = false;         ///< kReturn: returns a value?
  BlockId then_block = kNoBlock; ///< kIf then / kWhile body
  BlockId else_block = kNoBlock; ///< kIf else (kNoBlock if absent)
};

struct Procedure {
  std::string name;
  bool returns_value = false;
  BlockId body = kNoBlock;
};

/// A complete population program. Construct via ProgramBuilder.
struct Program {
  std::vector<std::string> registers;
  std::vector<Procedure> procedures;
  ProcId main_proc = 0;

  // Arenas.
  std::vector<Stmt> stmts;
  std::vector<Cond> conds;
  std::vector<std::vector<StmtId>> blocks;

  std::size_t num_registers() const { return registers.size(); }

  /// Throws std::logic_error on malformed programs: out-of-range indices,
  /// cyclic procedure calls, value-returning calls of void procedures, or a
  /// missing return value on some path of a value-returning procedure (the
  /// last is not checked — the interpreters treat it as a runtime error).
  void validate() const;

  /// Paper size metrics.
  struct SizeInfo {
    std::uint64_t num_registers = 0;   ///< |Q|
    std::uint64_t num_instructions = 0;///< L: moves, swaps, OF writes,
                                       ///< restarts, returns, detects, calls
    std::uint64_t swap_size = 0;       ///< S: transitively swappable pairs
    std::uint64_t total() const {
      return num_registers + num_instructions + swap_size;
    }
  };
  SizeInfo size() const;

  /// Pretty-print as pseudocode (used by goldens and the examples).
  std::string to_string() const;

  /// Procedures called (directly) by `proc`, deduplicated.
  std::vector<ProcId> callees(ProcId proc) const;
};

}  // namespace ppde::progmodel
