// Flattened form of population programs.
//
// Both interpreters (the randomized runner and the exhaustive explorer)
// work on a compiled, goto-style representation: structured control flow is
// lowered to branches on an internal condition flag, short-circuit boolean
// operators become control flow, and procedure calls push explicit return
// addresses. This mirrors what the Section-7.2 lowering does for population
// machines, but stays internal to the interpreters: the official machine
// lowering (compile/lower.hpp) is a separate, faithful implementation with
// the register map and pointer domains of the paper.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "progmodel/ast.hpp"

namespace ppde::progmodel {

struct FlatOp {
  enum class Kind {
    kMove,     ///< regs[a] -> regs[b]; hangs if regs[a] == 0
    kSwap,     ///< exchange regs[a], regs[b]
    kSetOF,    ///< OF := a
    kRestart,  ///< restart with a nondeterministic composition
    kDetect,   ///< CF := nondet in {false, regs[a] > 0}
    kSetCF,    ///< CF := a
    kNotCF,    ///< CF := !CF
    kJump,     ///< goto a
    kBranch,   ///< if CF goto a else goto b
    kCall,     ///< push pc+1; goto entry of procedure a
    kReturn,   ///< a: 0 = return false, 1 = return true, 2 = void return
    kHalt,     ///< self-loop (reached when Main returns)
  };
  Kind kind = Kind::kHalt;
  std::uint32_t a = 0;
  std::uint32_t b = 0;
};

struct FlatProgram {
  std::uint32_t num_registers = 0;
  std::vector<FlatOp> ops;
  std::vector<std::uint32_t> proc_entry;  ///< per source procedure
  std::vector<std::string> reg_names;
  std::vector<std::string> proc_names;
  ProcId main_proc = 0;

  /// Lower a (validated) population program. ops[0] calls Main; ops[1] is
  /// the halt loop, matching the paper's machine prologue (Appendix B.2).
  static FlatProgram compile(const Program& program);

  std::string to_string() const;
};

}  // namespace ppde::progmodel
