#include "progmodel/interp.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace ppde::progmodel {

Runner::Runner(const FlatProgram& flat, std::vector<std::uint64_t> initial_regs,
               std::uint64_t seed)
    : flat_(flat), regs_(std::move(initial_regs)), rng_(seed) {
  if (regs_.size() != flat.num_registers)
    throw std::invalid_argument("Runner: wrong number of registers");
  total_agents_ = std::accumulate(regs_.begin(), regs_.end(),
                                  std::uint64_t{0});
}

Runner::StepStatus Runner::step() {
  const FlatOp& op = flat_.ops[pc_];
  switch (op.kind) {
    case FlatOp::Kind::kMove:
      if (regs_[op.a] == 0) return StepStatus::kHung;
      --regs_[op.a];
      ++regs_[op.b];
      ++pc_;
      break;
    case FlatOp::Kind::kSwap:
      std::swap(regs_[op.a], regs_[op.b]);
      ++pc_;
      break;
    case FlatOp::Kind::kSetOF:
      of_ = op.a != 0;
      ++pc_;
      break;
    case FlatOp::Kind::kRestart: {
      ++restarts_;
      // Fresh initial configuration per the configured policy. OF survives
      // a restart (the machine lowering keeps it; Main overwrites it).
      std::fill(regs_.begin(), regs_.end(), 0);
      switch (restart_policy_) {
        case RestartPolicy::kMultinomial:
          for (std::uint64_t i = 0; i < total_agents_; ++i)
            ++regs_[rng_.below(regs_.size())];
          break;
        case RestartPolicy::kStarsAndBars: {
          // Uniform composition: draw r-1 distinct bar positions out of
          // total + r - 1 slots; gaps between bars are the register values.
          const std::uint64_t r = regs_.size();
          std::vector<std::uint64_t> bars;
          // Floyd's algorithm for a uniform (r-1)-subset of [0, m + r - 2].
          const std::uint64_t slots = total_agents_ + r - 1;
          for (std::uint64_t j = slots - (r - 1); j < slots; ++j) {
            std::uint64_t candidate = rng_.below(j + 1);
            if (std::find(bars.begin(), bars.end(), candidate) != bars.end())
              candidate = j;
            bars.push_back(candidate);
          }
          std::sort(bars.begin(), bars.end());
          std::uint64_t previous = 0;
          for (std::uint64_t index = 0; index < r - 1; ++index) {
            regs_[index] = bars[index] - previous;
            previous = bars[index] + 1;
          }
          regs_[r - 1] = slots - previous;
          break;
        }
        case RestartPolicy::kAllInHub:
          regs_[0] = total_agents_;
          break;
      }
      stack_.clear();
      cf_ = false;
      pc_ = 0;
      break;
    }
    case FlatOp::Kind::kDetect:
      cf_ = regs_[op.a] > 0 && rng_.chance(detect_num_, detect_den_);
      ++pc_;
      break;
    case FlatOp::Kind::kSetCF:
      cf_ = op.a != 0;
      ++pc_;
      break;
    case FlatOp::Kind::kNotCF:
      cf_ = !cf_;
      ++pc_;
      break;
    case FlatOp::Kind::kJump:
      pc_ = op.a;
      break;
    case FlatOp::Kind::kBranch:
      pc_ = cf_ ? op.a : op.b;
      break;
    case FlatOp::Kind::kCall:
      stack_.push_back(pc_ + 1);
      pc_ = flat_.proc_entry[op.a];
      break;
    case FlatOp::Kind::kReturn:
      if (op.a != 2) cf_ = op.a != 0;
      if (stack_.empty()) {
        pc_ = 1;  // halt op of the prologue
      } else {
        pc_ = stack_.back();
        stack_.pop_back();
      }
      break;
    case FlatOp::Kind::kHalt:
      break;  // spin
  }
  return StepStatus::kOk;
}

void Runner::set_policies(RestartPolicy restart_policy,
                          std::uint32_t detect_num, std::uint32_t detect_den) {
  restart_policy_ = restart_policy;
  detect_num_ = detect_num;
  detect_den_ = detect_den;
}

RunResult Runner::run(const RunOptions& options) {
  set_policies(options.restart_policy, options.detect_true_num,
               options.detect_true_den);
  RunResult result;
  bool held_of = of_;
  std::uint64_t held_since = 0;
  for (std::uint64_t steps = 0; steps < options.max_steps; ++steps) {
    if (step() == StepStatus::kHung) {
      // A hung program never changes OF again: it has stabilised in the
      // fair-run sense, but we surface the hang for diagnostics.
      result.hung = true;
      result.stabilised = true;
      result.output = of_;
      result.steps = steps;
      result.restarts = restarts_;
      return result;
    }
    if (of_ != held_of) {
      held_of = of_;
      held_since = steps;
    }
    if (steps - held_since >= options.stable_window &&
        flat_.ops[pc_].kind != FlatOp::Kind::kHalt) {
      // (The Halt check is cosmetic: halting also counts as stable.)
      result.stabilised = true;
      result.output = of_;
      result.steps = steps;
      result.restarts = restarts_;
      return result;
    }
    if (flat_.ops[pc_].kind == FlatOp::Kind::kHalt) {
      result.stabilised = true;
      result.output = of_;
      result.steps = steps;
      result.restarts = restarts_;
      return result;
    }
  }
  result.steps = options.max_steps;
  result.restarts = restarts_;
  return result;
}

}  // namespace ppde::progmodel
