#include "progmodel/explore.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "support/hash.hpp"
#include "support/scc.hpp"

namespace ppde::progmodel {

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

// Node encoding: [regs (R entries), meta, stack...] with
// meta = pc | cf << 32 | of << 33.
struct VecHash {
  u64 operator()(const std::vector<u64>& v) const {
    return support::hash_range(v);
  }
};

constexpr u64 kCfBit = u64{1} << 32;
constexpr u64 kOfBit = u64{1} << 33;

enum class Terminal : std::uint8_t { kNone, kReturn, kRestart };

class Engine {
 public:
  enum class Mode { kPost, kMain, kDecide };

  Engine(const FlatProgram& flat, Mode mode, const ExploreLimits& limits)
      : flat_(flat), mode_(mode), limits_(limits) {}

  /// Returns false if the node limit was hit.
  bool explore(const std::vector<u64>& regs, u32 entry_pc) {
    if (regs.size() != flat_.num_registers)
      throw std::invalid_argument("explore: wrong number of registers");
    total_ = 0;
    for (u64 r : regs) total_ += r;
    if (mode_ == Mode::kDecide)
      compositions_ = all_compositions(total_, flat_.num_registers);

    std::vector<u64> start = regs;
    start.push_back(entry_pc);  // meta: cf = of = false
    intern(std::move(start));

    for (u32 id = 0; id < nodes_.size(); ++id) {
      if (nodes_.size() > limits_.max_nodes) return false;
      expand(id);
    }
    return true;
  }

  PostResult finish_post() {
    PostResult result;
    result.explored_nodes = nodes_.size();
    result.can_hang = can_hang_;
    for (u32 id = 0; id < nodes_.size(); ++id) {
      if (terminal_[id] == Terminal::kRestart) result.can_restart = true;
      if (terminal_[id] == Terminal::kReturn) {
        PostResult::Outcome outcome;
        const std::vector<u64>& node = *nodes_[id];
        outcome.regs.assign(node.begin(), node.begin() + flat_.num_registers);
        outcome.ret = return_value_[id];
        if (std::find(result.outcomes.begin(), result.outcomes.end(),
                      outcome) == result.outcomes.end())
          result.outcomes.push_back(std::move(outcome));
      }
    }
    compute_scc();
    result.can_diverge = has_nonterminal_bscc();
    return result;
  }

  MainAnalysis finish_main() {
    MainAnalysis result;
    result.explored_nodes = nodes_.size();
    for (u32 id = 0; id < nodes_.size(); ++id)
      if (terminal_[id] == Terminal::kRestart) result.can_restart = true;
    compute_scc();
    classify_bsccs([&](bool saw_true, bool saw_false) {
      if (saw_true && saw_false)
        result.has_mixed_bscc = true;
      else if (saw_true)
        result.may_stabilise_true = true;
      else
        result.may_stabilise_false = true;
    });
    return result;
  }

  DecisionResult finish_decide() {
    DecisionResult result;
    result.explored_nodes = nodes_.size();
    compute_scc();
    bool any_true = false, any_false = false, any_mixed = false;
    classify_bsccs([&](bool saw_true, bool saw_false) {
      if (saw_true && saw_false)
        any_mixed = true;
      else if (saw_true)
        any_true = true;
      else
        any_false = true;
    });
    using Verdict = DecisionResult::Verdict;
    if (any_mixed || (any_true && any_false))
      result.verdict = Verdict::kDoesNotStabilise;
    else if (any_true)
      result.verdict = Verdict::kStabilisesTrue;
    else if (any_false)
      result.verdict = Verdict::kStabilisesFalse;
    else
      result.verdict = Verdict::kDoesNotStabilise;  // no BSCC: impossible
    return result;
  }

 private:
  u32 intern(std::vector<u64> node) {
    auto [it, inserted] =
        ids_.try_emplace(std::move(node), static_cast<u32>(nodes_.size()));
    if (inserted) {
      nodes_.push_back(&it->first);
      successors_.emplace_back();
      terminal_.push_back(Terminal::kNone);
      return_value_.push_back(-1);
    }
    return it->second;
  }

  void expand(u32 id) {
    // Decode. Copy the node: intern() may rehash the map while we hold it.
    const std::vector<u64> node = *nodes_[id];
    const u32 regs_n = flat_.num_registers;
    const u64 meta = node[regs_n];
    const u32 pc = static_cast<u32>(meta & 0xffffffffu);
    const bool cf = (meta & kCfBit) != 0;
    const bool of = (meta & kOfBit) != 0;

    auto make = [&](u32 new_pc, bool new_cf, bool new_of,
                    const std::vector<u64>* new_regs,
                    int stack_delta /* -1 pop, 0, +1 push */,
                    u32 push_value) {
      std::vector<u64> next;
      next.reserve(node.size() + 1);
      if (new_regs != nullptr)
        next.insert(next.end(), new_regs->begin(), new_regs->end());
      else
        next.insert(next.end(), node.begin(), node.begin() + regs_n);
      next.push_back(u64{new_pc} | (new_cf ? kCfBit : 0) |
                     (new_of ? kOfBit : 0));
      const std::size_t stack_begin = regs_n + 1;
      const std::size_t stack_end = node.size();
      std::size_t copy_end = stack_end;
      if (stack_delta < 0) --copy_end;
      next.insert(next.end(), node.begin() + stack_begin,
                  node.begin() + copy_end);
      if (stack_delta > 0) next.push_back(push_value);
      return intern(std::move(next));
    };

    std::vector<u32> succs;
    const FlatOp& op = flat_.ops[pc];
    switch (op.kind) {
      case FlatOp::Kind::kMove: {
        if (node[op.a] == 0) {
          can_hang_ = true;
          succs.push_back(id);  // blocked: self-loop
          break;
        }
        std::vector<u64> regs(node.begin(), node.begin() + regs_n);
        --regs[op.a];
        ++regs[op.b];
        succs.push_back(make(pc + 1, cf, of, &regs, 0, 0));
        break;
      }
      case FlatOp::Kind::kSwap: {
        std::vector<u64> regs(node.begin(), node.begin() + regs_n);
        std::swap(regs[op.a], regs[op.b]);
        succs.push_back(make(pc + 1, cf, of, &regs, 0, 0));
        break;
      }
      case FlatOp::Kind::kSetOF:
        succs.push_back(make(pc + 1, cf, op.a != 0, nullptr, 0, 0));
        break;
      case FlatOp::Kind::kRestart:
        if (mode_ == Mode::kDecide) {
          // Expand to every fresh initial configuration with the same total.
          for (const std::vector<u64>& regs : compositions_) {
            std::vector<u64> next = regs;
            next.push_back(u64{0} | (of ? kOfBit : 0));  // pc=0, cf=false
            succs.push_back(intern(std::move(next)));
          }
        } else {
          terminal_[id] = Terminal::kRestart;
        }
        break;
      case FlatOp::Kind::kDetect:
        succs.push_back(make(pc + 1, false, of, nullptr, 0, 0));
        if (node[op.a] > 0)
          succs.push_back(make(pc + 1, true, of, nullptr, 0, 0));
        break;
      case FlatOp::Kind::kSetCF:
        succs.push_back(make(pc + 1, op.a != 0, of, nullptr, 0, 0));
        break;
      case FlatOp::Kind::kNotCF:
        succs.push_back(make(pc + 1, !cf, of, nullptr, 0, 0));
        break;
      case FlatOp::Kind::kJump:
        succs.push_back(make(op.a, cf, of, nullptr, 0, 0));
        break;
      case FlatOp::Kind::kBranch:
        succs.push_back(make(cf ? op.a : op.b, cf, of, nullptr, 0, 0));
        break;
      case FlatOp::Kind::kCall:
        succs.push_back(
            make(flat_.proc_entry[op.a], cf, of, nullptr, +1, pc + 1));
        break;
      case FlatOp::Kind::kReturn: {
        const bool new_cf = op.a == 2 ? cf : op.a != 0;
        const bool stack_empty = node.size() == regs_n + 1;
        if (stack_empty) {
          if (mode_ == Mode::kPost) {
            terminal_[id] = Terminal::kReturn;
            return_value_[id] = op.a == 2 ? -1 : static_cast<int>(op.a);
          } else {
            succs.push_back(make(1 /* halt */, new_cf, of, nullptr, 0, 0));
          }
        } else {
          const u32 return_pc = static_cast<u32>(node.back());
          succs.push_back(make(return_pc, new_cf, of, nullptr, -1, 0));
        }
        break;
      }
      case FlatOp::Kind::kHalt:
        succs.push_back(id);
        break;
    }

    std::sort(succs.begin(), succs.end());
    succs.erase(std::unique(succs.begin(), succs.end()), succs.end());
    successors_[id] = std::move(succs);
  }

  void compute_scc() {
    const support::SccResult scc = support::tarjan_scc(successors_);
    scc_of_ = scc.scc_of;
    scc_count_ = scc.scc_count;
  }

  /// Invoke fn(saw_true, saw_false) once per bottom SCC made of
  /// non-terminal nodes, with the OF values present in that SCC.
  template <typename Fn>
  void classify_bsccs(const Fn& fn) {
    std::vector<std::uint8_t> is_bottom(scc_count_, 1);
    for (u32 id = 0; id < nodes_.size(); ++id) {
      if (terminal_[id] != Terminal::kNone) {
        is_bottom[scc_of_[id]] = 0;  // terminal events are not stabilisation
        continue;
      }
      for (u32 succ : successors_[id])
        if (scc_of_[succ] != scc_of_[id]) is_bottom[scc_of_[id]] = 0;
    }
    std::vector<std::uint8_t> saw_true(scc_count_, 0);
    std::vector<std::uint8_t> saw_false(scc_count_, 0);
    for (u32 id = 0; id < nodes_.size(); ++id) {
      const u32 scc = scc_of_[id];
      if (!is_bottom[scc]) continue;
      const bool of = (((*nodes_[id])[flat_.num_registers]) & kOfBit) != 0;
      (of ? saw_true : saw_false)[scc] = 1;
    }
    for (u32 scc = 0; scc < scc_count_; ++scc)
      if (is_bottom[scc] && (saw_true[scc] || saw_false[scc]))
        fn(saw_true[scc] != 0, saw_false[scc] != 0);
  }

  bool has_nonterminal_bscc() {
    std::vector<std::uint8_t> is_bottom(scc_count_, 1);
    std::vector<std::uint8_t> has_nonterminal(scc_count_, 0);
    for (u32 id = 0; id < nodes_.size(); ++id) {
      if (terminal_[id] != Terminal::kNone) {
        is_bottom[scc_of_[id]] = 0;
        continue;
      }
      has_nonterminal[scc_of_[id]] = 1;
      for (u32 succ : successors_[id])
        if (scc_of_[succ] != scc_of_[id]) is_bottom[scc_of_[id]] = 0;
    }
    for (u32 scc = 0; scc < scc_count_; ++scc)
      if (is_bottom[scc] && has_nonterminal[scc]) return true;
    return false;
  }

  const FlatProgram& flat_;
  Mode mode_;
  ExploreLimits limits_;
  u64 total_ = 0;
  std::vector<std::vector<u64>> compositions_;

  std::unordered_map<std::vector<u64>, u32, VecHash> ids_;
  std::vector<const std::vector<u64>*> nodes_;
  std::vector<std::vector<u32>> successors_;
  std::vector<Terminal> terminal_;
  std::vector<int> return_value_;
  std::vector<u32> scc_of_;
  u32 scc_count_ = 0;
  bool can_hang_ = false;
};

}  // namespace

bool PostResult::contains(const std::vector<std::uint64_t>& regs,
                          int ret) const {
  for (const Outcome& outcome : outcomes)
    if (outcome.regs == regs && outcome.ret == ret) return true;
  return false;
}

PostResult explore_post(const FlatProgram& flat, ProcId proc,
                        const std::vector<std::uint64_t>& regs,
                        const ExploreLimits& limits) {
  Engine engine(flat, Engine::Mode::kPost, limits);
  if (!engine.explore(regs, flat.proc_entry[proc])) {
    PostResult result;
    result.limit_hit = true;
    return result;
  }
  return engine.finish_post();
}

MainAnalysis analyse_main(const FlatProgram& flat,
                          const std::vector<std::uint64_t>& regs,
                          const ExploreLimits& limits) {
  Engine engine(flat, Engine::Mode::kMain, limits);
  if (!engine.explore(regs, 0)) {
    MainAnalysis result;
    result.limit_hit = true;
    return result;
  }
  return engine.finish_main();
}

DecisionResult decide(const FlatProgram& flat,
                      const std::vector<std::uint64_t>& initial_regs,
                      const ExploreLimits& limits) {
  Engine engine(flat, Engine::Mode::kDecide, limits);
  if (!engine.explore(initial_regs, 0)) {
    DecisionResult result;
    result.verdict = DecisionResult::Verdict::kLimit;
    return result;
  }
  return engine.finish_decide();
}

std::vector<std::vector<std::uint64_t>> all_compositions(
    std::uint64_t total, std::uint32_t registers) {
  std::vector<std::vector<std::uint64_t>> result;
  std::vector<std::uint64_t> current(registers, 0);
  // Lexicographic recursive enumeration (iterative would obscure it).
  struct Rec {
    std::vector<std::vector<std::uint64_t>>& out;
    std::vector<std::uint64_t>& current;
    std::uint32_t registers;
    void go(std::uint32_t index, std::uint64_t remaining) {
      if (index + 1 == registers) {
        current[index] = remaining;
        out.push_back(current);
        return;
      }
      for (std::uint64_t v = 0; v <= remaining; ++v) {
        current[index] = v;
        go(index + 1, remaining - v);
      }
    }
  };
  if (registers == 0) {
    if (total == 0) result.push_back({});
    return result;
  }
  Rec{result, current, registers}.go(0, total);
  return result;
}

}  // namespace ppde::progmodel
