#include "progmodel/explore.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>

#include "verify/kernel.hpp"

namespace ppde::progmodel {

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

// Node encoding: [regs (R entries), meta, stack...] with
// meta = pc | cf << 32 | of << 33.
constexpr u64 kCfBit = u64{1} << 32;
constexpr u64 kOfBit = u64{1} << 33;

// Terminal tags (kernel terminal_tag values; see verify::kNoTerminal).
constexpr u32 kTagRestart = 0;
constexpr u32 kTagReturnVoid = 1;   ///< ret -1
constexpr u32 kTagReturnFalse = 2;  ///< ret 0
constexpr u32 kTagReturnTrue = 3;   ///< ret 1

constexpr bool is_return_tag(u32 tag) {
  return tag >= kTagReturnVoid && tag <= kTagReturnTrue;
}
constexpr int ret_of_tag(u32 tag) {
  return tag == kTagReturnVoid ? -1 : (tag == kTagReturnFalse ? 0 : 1);
}
constexpr u32 tag_of_ret(int ret) {
  return ret < 0 ? kTagReturnVoid
                 : (ret == 0 ? kTagReturnFalse : kTagReturnTrue);
}

enum class Mode { kPost, kMain, kDecide };

/// Successor generator over flattened-program nodes for the verification
/// kernel. Stateless apart from the blocked-move flag, so concurrent
/// expansion from the kernel's wave workers is safe.
class ProgramDomain {
 public:
  ProgramDomain(const FlatProgram& flat, Mode mode, u64 total)
      : flat_(flat), mode_(mode) {
    if (mode == Mode::kDecide)
      compositions_ = all_compositions(total, flat.num_registers);
  }

  bool can_hang() const {
    return can_hang_.load(std::memory_order_relaxed);
  }

  void expand(std::span<const u64> node, verify::Emitter& emit) const {
    const u32 regs_n = flat_.num_registers;
    const u64 meta = node[regs_n];
    const u32 pc = static_cast<u32>(meta & 0xffffffffu);
    const bool cf = (meta & kCfBit) != 0;
    const bool of = (meta & kOfBit) != 0;

    std::vector<u64> scratch;
    const auto make = [&](u32 new_pc, bool new_cf, bool new_of,
                          const u64* new_regs,
                          int stack_delta /* -1 pop, 0, +1 push */,
                          u32 push_value) {
      scratch.clear();
      scratch.reserve(node.size() + 1);
      if (new_regs != nullptr)
        scratch.insert(scratch.end(), new_regs, new_regs + regs_n);
      else
        scratch.insert(scratch.end(), node.begin(), node.begin() + regs_n);
      scratch.push_back(u64{new_pc} | (new_cf ? kCfBit : 0) |
                        (new_of ? kOfBit : 0));
      const std::size_t stack_begin = regs_n + 1;
      std::size_t copy_end = node.size();
      if (stack_delta < 0) --copy_end;
      scratch.insert(scratch.end(), node.begin() + stack_begin,
                     node.begin() + copy_end);
      if (stack_delta > 0) scratch.push_back(push_value);
      emit.emit(scratch);
    };

    const FlatOp& op = flat_.ops[pc];
    switch (op.kind) {
      case FlatOp::Kind::kMove: {
        if (node[op.a] == 0) {
          can_hang_.store(true, std::memory_order_relaxed);
          emit.emit_self();  // blocked: self-loop
          break;
        }
        std::vector<u64> regs(node.begin(), node.begin() + regs_n);
        --regs[op.a];
        ++regs[op.b];
        make(pc + 1, cf, of, regs.data(), 0, 0);
        break;
      }
      case FlatOp::Kind::kSwap: {
        std::vector<u64> regs(node.begin(), node.begin() + regs_n);
        std::swap(regs[op.a], regs[op.b]);
        make(pc + 1, cf, of, regs.data(), 0, 0);
        break;
      }
      case FlatOp::Kind::kSetOF:
        make(pc + 1, cf, op.a != 0, nullptr, 0, 0);
        break;
      case FlatOp::Kind::kRestart:
        if (mode_ == Mode::kDecide) {
          // Expand to every fresh initial configuration with the same total.
          for (const std::vector<u64>& regs : compositions_) {
            scratch.assign(regs.begin(), regs.end());
            scratch.push_back(u64{0} | (of ? kOfBit : 0));  // pc=0, cf=false
            emit.emit(scratch);
          }
        } else {
          emit.set_terminal(kTagRestart);
        }
        break;
      case FlatOp::Kind::kDetect:
        make(pc + 1, false, of, nullptr, 0, 0);
        if (node[op.a] > 0) make(pc + 1, true, of, nullptr, 0, 0);
        break;
      case FlatOp::Kind::kSetCF:
        make(pc + 1, op.a != 0, of, nullptr, 0, 0);
        break;
      case FlatOp::Kind::kNotCF:
        make(pc + 1, !cf, of, nullptr, 0, 0);
        break;
      case FlatOp::Kind::kJump:
        make(op.a, cf, of, nullptr, 0, 0);
        break;
      case FlatOp::Kind::kBranch:
        make(cf ? op.a : op.b, cf, of, nullptr, 0, 0);
        break;
      case FlatOp::Kind::kCall:
        make(flat_.proc_entry[op.a], cf, of, nullptr, +1, pc + 1);
        break;
      case FlatOp::Kind::kReturn: {
        const bool new_cf = op.a == 2 ? cf : op.a != 0;
        const bool stack_empty = node.size() == regs_n + 1;
        if (stack_empty) {
          if (mode_ == Mode::kPost) {
            emit.set_terminal(tag_of_ret(op.a == 2 ? -1
                                                   : static_cast<int>(op.a)));
          } else {
            make(1 /* halt */, new_cf, of, nullptr, 0, 0);
          }
        } else {
          const u32 return_pc = static_cast<u32>(node.back());
          make(return_pc, new_cf, of, nullptr, -1, 0);
        }
        break;
      }
      case FlatOp::Kind::kHalt:
        emit.emit_self();
        break;
    }
  }

 private:
  const FlatProgram& flat_;
  Mode mode_;
  std::vector<std::vector<u64>> compositions_;
  mutable std::atomic<bool> can_hang_{false};
};

using ProgramKernel = verify::Kernel<ProgramDomain>;

/// Run the kernel from (regs, entry_pc); throws on malformed input.
verify::KernelStats explore(ProgramKernel& kernel, const FlatProgram& flat,
                            const std::vector<u64>& regs, u32 entry_pc) {
  if (regs.size() != flat.num_registers)
    throw std::invalid_argument("explore: wrong number of registers");
  std::vector<u64> start = regs;
  start.push_back(entry_pc);  // meta: cf = of = false
  const std::vector<std::vector<u64>> roots = {std::move(start)};
  return kernel.run(roots);
}

verify::KernelOptions kernel_options(const ExploreLimits& limits) {
  verify::KernelOptions options;
  options.max_nodes = limits.max_nodes;
  options.threads = limits.threads;
  return options;
}

/// OF flag of a node, the output classification all modes share.
verify::NodeOutput of_output(const ProgramKernel& kernel, u32 regs_n,
                             u32 id) {
  const bool of = (kernel.state(id)[regs_n] & kOfBit) != 0;
  return of ? verify::NodeOutput::kTrue : verify::NodeOutput::kFalse;
}

}  // namespace

bool PostResult::contains(const std::vector<std::uint64_t>& regs,
                          int ret) const {
  for (const Outcome& outcome : outcomes)
    if (outcome.regs == regs && outcome.ret == ret) return true;
  return false;
}

PostResult explore_post(const FlatProgram& flat, ProcId proc,
                        const std::vector<std::uint64_t>& regs,
                        const ExploreLimits& limits) {
  const ProgramDomain domain(flat, Mode::kPost, 0);
  ProgramKernel kernel(domain, kernel_options(limits));
  const verify::KernelStats& stats =
      explore(kernel, flat, regs, flat.proc_entry[proc]);
  PostResult result;
  result.explored_nodes = stats.nodes;
  if (!stats.complete) {
    result.limit_hit = true;
    return result;
  }
  result.can_hang = domain.can_hang();
  for (u32 id = 0; id < kernel.num_nodes(); ++id) {
    const u32 tag = kernel.terminal_tag(id);
    if (tag == kTagRestart) result.can_restart = true;
    if (is_return_tag(tag)) {
      PostResult::Outcome outcome;
      const std::span<const u64> node = kernel.state(id);
      outcome.regs.assign(node.begin(), node.begin() + flat.num_registers);
      outcome.ret = ret_of_tag(tag);
      if (std::find(result.outcomes.begin(), result.outcomes.end(),
                    outcome) == result.outcomes.end())
        result.outcomes.push_back(std::move(outcome));
    }
  }
  result.can_diverge = verify::any_bottom(kernel.analyse());
  return result;
}

MainAnalysis analyse_main(const FlatProgram& flat,
                          const std::vector<std::uint64_t>& regs,
                          const ExploreLimits& limits) {
  const ProgramDomain domain(flat, Mode::kMain, 0);
  ProgramKernel kernel(domain, kernel_options(limits));
  const verify::KernelStats& stats = explore(kernel, flat, regs, 0);
  MainAnalysis result;
  result.explored_nodes = stats.nodes;
  if (!stats.complete) {
    result.limit_hit = true;
    return result;
  }
  for (u32 id = 0; id < kernel.num_nodes(); ++id)
    if (kernel.terminal_tag(id) == kTagRestart) result.can_restart = true;
  const verify::ConsensusReport report = verify::classify_bottom(
      kernel.analyse(), kernel.num_nodes(),
      [&](u32 id) { return of_output(kernel, flat.num_registers, id); });
  result.has_mixed_bscc = report.any_mixed_bscc;
  result.may_stabilise_true = report.any_true_bscc;
  result.may_stabilise_false = report.any_false_bscc;
  return result;
}

DecisionResult decide(const FlatProgram& flat,
                      const std::vector<std::uint64_t>& initial_regs,
                      const ExploreLimits& limits) {
  u64 total = 0;
  for (const u64 r : initial_regs) total += r;
  const ProgramDomain domain(flat, Mode::kDecide, total);
  ProgramKernel kernel(domain, kernel_options(limits));
  const verify::KernelStats& stats = explore(kernel, flat, initial_regs, 0);
  DecisionResult result;
  result.explored_nodes = stats.nodes;
  if (!stats.complete) {
    result.verdict = DecisionResult::Verdict::kLimit;
    return result;
  }
  const verify::ConsensusReport report = verify::classify_bottom(
      kernel.analyse(), kernel.num_nodes(),
      [&](u32 id) { return of_output(kernel, flat.num_registers, id); });
  using Verdict = DecisionResult::Verdict;
  if (report.any_mixed_bscc ||
      (report.any_true_bscc && report.any_false_bscc))
    result.verdict = Verdict::kDoesNotStabilise;
  else if (report.any_true_bscc)
    result.verdict = Verdict::kStabilisesTrue;
  else if (report.any_false_bscc)
    result.verdict = Verdict::kStabilisesFalse;
  else
    result.verdict = Verdict::kDoesNotStabilise;  // no BSCC: impossible
  return result;
}

std::vector<std::vector<std::uint64_t>> all_compositions(
    std::uint64_t total, std::uint32_t registers) {
  std::vector<std::vector<std::uint64_t>> result;
  std::vector<std::uint64_t> current(registers, 0);
  // Lexicographic recursive enumeration (iterative would obscure it).
  struct Rec {
    std::vector<std::vector<std::uint64_t>>& out;
    std::vector<std::uint64_t>& current;
    std::uint32_t registers;
    void go(std::uint32_t index, std::uint64_t remaining) {
      if (index + 1 == registers) {
        current[index] = remaining;
        out.push_back(current);
        return;
      }
      for (std::uint64_t v = 0; v <= remaining; ++v) {
        current[index] = v;
        go(index + 1, remaining - v);
      }
    }
  };
  if (registers == 0) {
    if (total == 0) result.push_back({});
    return result;
  }
  Rec{result, current, registers}.go(0, total);
  return result;
}

}  // namespace ppde::progmodel
