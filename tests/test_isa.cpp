// Tests for the bytecode execution core (DESIGN.md S26): lowering
// round-trips through raw()/adopt(), malformed tables are rejected, and —
// the load-bearing property — the bytecode and interpreter dispatch modes
// produce bit-identical trajectories, metrics, verification graphs and
// certificate digests on every protocol in the zoo.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <stdexcept>
#include <utility>
#include <vector>

#include "baselines/flock.hpp"
#include "baselines/majority.hpp"
#include "compile/lower.hpp"
#include "compile/to_protocol.hpp"
#include "czerner/construction.hpp"
#include "engine/count_sim.hpp"
#include "isa/compiled.hpp"
#include "machine/interp.hpp"
#include "pp/simulator.hpp"
#include "pp/verifier.hpp"
#include "smc/certify.hpp"
#include "smc/json.hpp"

namespace ppde {
namespace {

using isa::CompiledProtocol;
using isa::Dispatch;

// ---------------------------------------------------------------------------
// Zoo.

pp::Protocol czerner_protocol(int n) {
  const auto lowered = compile::lower_program(czerner::build_construction(n).program);
  return compile::machine_to_protocol(lowered.machine).protocol;
}

/// Ring protocol over `n` states: (i, i) -> (i, i+1 mod n). Every state is
/// populated from a uniform start, so with n > 64 the count engine's
/// matrix fast path cannot hold the populated set and the general path
/// runs; with n large enough the compiler also picks the perfect-hash
/// lookup over the dense table.
pp::Protocol make_ring(std::uint32_t n) {
  pp::Protocol protocol;
  for (std::uint32_t i = 0; i < n; ++i)
    protocol.add_state("s" + std::to_string(i));
  for (std::uint32_t i = 0; i < n; ++i) {
    protocol.mark_input(i);
    if (i % 2 == 0) protocol.mark_accepting(i);
    protocol.add_transition(i, i, i, (i + 1) % n);
  }
  protocol.finalize();
  return protocol;
}

pp::Config uniform_initial(const pp::Protocol& protocol, std::uint32_t per) {
  pp::Config config(protocol.num_states());
  for (pp::State q = 0; q < protocol.num_states(); ++q) config.add(q, per);
  return config;
}

void expect_metrics_equal(const engine::RunMetrics& a,
                          const engine::RunMetrics& b) {
  EXPECT_EQ(a.meetings, b.meetings);
  EXPECT_EQ(a.firings, b.firings);
  EXPECT_EQ(a.null_skip_batches, b.null_skip_batches);
  EXPECT_EQ(a.skipped_meetings, b.skipped_meetings);
  EXPECT_EQ(a.consensus_flips, b.consensus_flips);
  EXPECT_EQ(a.weight_updates, b.weight_updates);
  EXPECT_EQ(a.tree_descents, b.tree_descents);
}

// ---------------------------------------------------------------------------
// Dispatch plumbing.

TEST(Dispatch, ToStringParseRoundTrip) {
  EXPECT_STREQ(isa::to_string(Dispatch::kInterp), "interp");
  EXPECT_STREQ(isa::to_string(Dispatch::kBytecode), "bytecode");
  EXPECT_EQ(isa::parse_dispatch("interp"), Dispatch::kInterp);
  EXPECT_EQ(isa::parse_dispatch("bytecode"), Dispatch::kBytecode);
}

TEST(Dispatch, ParseRejectsUnknown) {
  EXPECT_THROW((void)isa::parse_dispatch("fast"), std::invalid_argument);
  EXPECT_THROW((void)isa::parse_dispatch(""), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Lowering.

/// The compiled pair table must agree with the protocol's own transition
/// list: for every ordered state pair, entry_of resolves to exactly the
/// non-silent transitions of that pair, in declaration order.
void expect_table_matches_transitions(const pp::Protocol& protocol) {
  const CompiledProtocol& compiled = protocol.compiled();
  std::map<std::pair<pp::State, pp::State>, std::vector<std::uint32_t>> want;
  std::map<std::pair<pp::State, pp::State>, bool> silent;
  for (std::uint32_t i = 0; i < protocol.transitions().size(); ++i) {
    const pp::Transition& t = protocol.transitions()[i];
    if (t.q2 == t.q && t.r2 == t.r)
      silent[{t.q, t.r}] = true;
    else
      want[{t.q, t.r}].push_back(i);
  }
  for (pp::State q = 0; q < protocol.num_states(); ++q) {
    for (pp::State r = 0; r < protocol.num_states(); ++r) {
      const std::uint32_t entry = compiled.entry_of(q, r);
      const auto it = want.find({q, r});
      if (it == want.end()) {
        if (silent.count({q, r}))
          EXPECT_EQ(entry, CompiledProtocol::kSilentOnly);
        else
          EXPECT_EQ(entry, CompiledProtocol::kAbsent);
        continue;
      }
      ASSERT_LT(entry, CompiledProtocol::kSilentOnly);
      const auto candidates = compiled.candidates(entry);
      ASSERT_EQ(candidates.size(), it->second.size());
      const auto cells = compiled.cells(entry);
      ASSERT_EQ(cells.size(), it->second.size());
      for (std::size_t k = 0; k < candidates.size(); ++k) {
        EXPECT_EQ(candidates[k], it->second[k]);
        const pp::Transition& t = protocol.transitions()[candidates[k]];
        // The cell's post-states reconstruct the transition regardless of
        // which opcode the classifier picked.
        std::uint32_t q2 = q, r2 = r;
        switch (cells[k].op()) {
          case isa::Op::kNop: break;
          case isa::Op::kWriteQ: q2 = cells[k].q2; break;
          case isa::Op::kWriteR: r2 = cells[k].r2; break;
          case isa::Op::kWriteBoth: q2 = cells[k].q2; r2 = cells[k].r2; break;
          case isa::Op::kSwap: q2 = r; r2 = q; break;
          default: FAIL() << "bad opcode";
        }
        EXPECT_EQ(q2, t.q2);
        EXPECT_EQ(r2, t.r2);
        const std::int32_t want_delta =
            (protocol.is_accepting(t.q2) ? 1 : 0) -
            (protocol.is_accepting(t.q) ? 1 : 0) +
            (protocol.is_accepting(t.r2) ? 1 : 0) -
            (protocol.is_accepting(t.r) ? 1 : 0);
        EXPECT_EQ(cells[k].accepting_delta(), want_delta);
      }
    }
  }
}

TEST(CompiledProtocol, TableMatchesTransitionList) {
  expect_table_matches_transitions(baselines::make_majority());
  expect_table_matches_transitions(baselines::make_flock_of_birds(3));
  expect_table_matches_transitions(czerner_protocol(1));
  expect_table_matches_transitions(make_ring(5));
}

TEST(CompiledProtocol, LargeProtocolsUsePerfectHash) {
  // 600 states: the dense table would cost 600^2 * 4 bytes = 1.44 MB,
  // far past both dense admission criteria, so compile() must fall back
  // to the perfect hash — and the table must still resolve every pair.
  const pp::Protocol ring = make_ring(600);
  EXPECT_TRUE(ring.compiled().raw().dense.empty());
  EXPECT_FALSE(ring.compiled().raw().ph_key.empty());
  expect_table_matches_transitions(ring);

  const pp::Protocol majority = baselines::make_majority();
  EXPECT_FALSE(majority.compiled().raw().dense.empty());
}

TEST(CompiledProtocol, RawTablesRoundTripThroughAdopt) {
  for (const pp::Protocol& protocol :
       {baselines::make_majority(), czerner_protocol(1), make_ring(600)}) {
    const CompiledProtocol& original = protocol.compiled();
    const auto readopted = CompiledProtocol::adopt(original.raw());
    ASSERT_NE(readopted, nullptr);
    for (pp::State q = 0; q < protocol.num_states(); ++q) {
      for (pp::State r = 0; r < protocol.num_states(); ++r) {
        const std::uint32_t entry = original.entry_of(q, r);
        ASSERT_EQ(readopted->entry_of(q, r), entry);
        if (entry >= CompiledProtocol::kSilentOnly) continue;
        const auto a = original.candidates(entry);
        const auto b = readopted->candidates(entry);
        ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
      }
    }
  }
}

TEST(CompiledProtocol, AdoptRejectsMalformedTables) {
  const pp::Protocol majority = baselines::make_majority();
  const CompiledProtocol::RawTables good = majority.compiled().raw();

  {  // Bad opcode.
    CompiledProtocol::RawTables bad = good;
    ASSERT_FALSE(bad.cells.empty());
    bad.cells[0].meta = isa::Cell::pack_meta(isa::Op::kNumOps, 0);
    EXPECT_THROW((void)CompiledProtocol::adopt(std::move(bad)),
                 std::invalid_argument);
  }
  {  // Post-state out of range.
    CompiledProtocol::RawTables bad = good;
    bad.cells[0].q2 = bad.num_states + 7;
    bad.cells[0].meta = isa::Cell::pack_meta(isa::Op::kWriteQ, 0);
    EXPECT_THROW((void)CompiledProtocol::adopt(std::move(bad)),
                 std::invalid_argument);
  }
  {  // Accepting delta outside [-2, 2].
    CompiledProtocol::RawTables bad = good;
    bad.cells[0].meta =
        isa::Cell::pack_meta(bad.cells[0].op(), 3);
    EXPECT_THROW((void)CompiledProtocol::adopt(std::move(bad)),
                 std::invalid_argument);
  }
  {  // Truncated candidate stream breaks the CSR.
    CompiledProtocol::RawTables bad = good;
    ASSERT_FALSE(bad.cand_flat.empty());
    bad.cand_flat.pop_back();
    bad.cells.pop_back();
    EXPECT_THROW((void)CompiledProtocol::adopt(std::move(bad)),
                 std::invalid_argument);
  }
  {  // Dense table of the wrong size.
    CompiledProtocol::RawTables bad = good;
    ASSERT_FALSE(bad.dense.empty());
    bad.dense.pop_back();
    EXPECT_THROW((void)CompiledProtocol::adopt(std::move(bad)),
                 std::invalid_argument);
  }
  {  // Both lookup strategies at once.
    CompiledProtocol::RawTables bad = good;
    bad.ph_disp.assign(1, 0);
    bad.ph_key.assign(2, ~std::uint64_t{0});
    bad.ph_entry.assign(2, CompiledProtocol::kAbsent);
    EXPECT_THROW((void)CompiledProtocol::adopt(std::move(bad)),
                 std::invalid_argument);
  }
}

// ---------------------------------------------------------------------------
// Differential: per-agent simulator.

void expect_per_agent_bit_identical(const pp::Protocol& protocol,
                                    const pp::Config& initial,
                                    std::uint64_t steps) {
  pp::Simulator interp(protocol, initial, 99, Dispatch::kInterp);
  pp::Simulator bytecode(protocol, initial, 99, Dispatch::kBytecode);
  for (std::uint64_t i = 0; i < steps; ++i) {
    ASSERT_EQ(interp.step(), bytecode.step()) << "step " << i;
    ASSERT_EQ(interp.accepting_agents(), bytecode.accepting_agents())
        << "step " << i;
    if (i % 512 == 0) ASSERT_EQ(interp.config(), bytecode.config());
  }
  EXPECT_EQ(interp.config(), bytecode.config());
  expect_metrics_equal(interp.metrics(), bytecode.metrics());
}

TEST(Differential, PerAgentTrajectoriesBitIdentical) {
  const pp::Protocol majority = baselines::make_majority();
  expect_per_agent_bit_identical(
      majority, baselines::majority_initial(majority, 30, 28), 20'000);

  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  expect_per_agent_bit_identical(flock, baselines::flock_initial(flock, 8),
                                 20'000);

  const pp::Protocol czerner = czerner_protocol(1);
  const auto conv = compile::machine_to_protocol(
      compile::lower_program(czerner::build_construction(1).program).machine);
  expect_per_agent_bit_identical(
      conv.protocol, conv.initial_config(conv.num_pointers + 4), 20'000);
}

// ---------------------------------------------------------------------------
// Differential: count engine.

void expect_count_bit_identical(const pp::Protocol& protocol,
                                const pp::Config& initial, bool null_skip,
                                std::uint64_t steps) {
  engine::CountSimOptions interp_options{null_skip, Dispatch::kInterp};
  engine::CountSimOptions bytecode_options{null_skip, Dispatch::kBytecode};
  engine::CountSimulator interp(protocol, initial, 7, interp_options);
  engine::CountSimulator bytecode(protocol, initial, 7, bytecode_options);
  for (std::uint64_t i = 0; i < steps && !interp.frozen(); ++i) {
    ASSERT_EQ(interp.step(), bytecode.step()) << "step " << i;
    ASSERT_EQ(interp.interactions(), bytecode.interactions()) << "step " << i;
    if (i % 512 == 0) ASSERT_EQ(interp.config(), bytecode.config());
  }
  EXPECT_EQ(interp.config(), bytecode.config());
  expect_metrics_equal(interp.metrics(), bytecode.metrics());
}

TEST(Differential, CountEngineBitIdenticalWithNullSkip) {
  const pp::Protocol majority = baselines::make_majority();
  expect_count_bit_identical(
      majority, baselines::majority_initial(majority, 500, 480), true, 50'000);
  const pp::Protocol flock = baselines::make_flock_of_birds(3);
  expect_count_bit_identical(flock, baselines::flock_initial(flock, 60), true,
                             50'000);
  const pp::Protocol czerner = czerner_protocol(1);
  const auto conv = compile::machine_to_protocol(
      compile::lower_program(czerner::build_construction(1).program).machine);
  expect_count_bit_identical(conv.protocol,
                             conv.initial_config(conv.num_pointers + 6), true,
                             50'000);
}

TEST(Differential, CountEngineBitIdenticalWithoutNullSkip) {
  const pp::Protocol majority = baselines::make_majority();
  expect_count_bit_identical(
      majority, baselines::majority_initial(majority, 500, 480), false,
      50'000);
  const pp::Protocol czerner = czerner_protocol(1);
  const auto conv = compile::machine_to_protocol(
      compile::lower_program(czerner::build_construction(1).program).machine);
  expect_count_bit_identical(conv.protocol,
                             conv.initial_config(conv.num_pointers + 6), false,
                             50'000);
}

TEST(Differential, CountEngineBeyondMatrixCapacity) {
  // 100 populated states exceed the 64-slot activity matrix, forcing the
  // general selection paths in both dispatch modes; 600 states also puts
  // the bytecode probe on the perfect-hash lookup.
  const pp::Protocol small_ring = make_ring(100);
  expect_count_bit_identical(small_ring, uniform_initial(small_ring, 3), true,
                             30'000);
  const pp::Protocol big_ring = make_ring(600);
  expect_count_bit_identical(big_ring, uniform_initial(big_ring, 2), true,
                             10'000);
  expect_count_bit_identical(big_ring, uniform_initial(big_ring, 2), false,
                             10'000);
}

TEST(Differential, SilentOnlyPairsAreNullInBothModes) {
  // (a, b) has only the identity transition: the meeting must not fire in
  // either dispatch mode, and trajectories must stay aligned.
  pp::Protocol protocol;
  const pp::State a = protocol.add_state("a");
  const pp::State b = protocol.add_state("b");
  protocol.mark_input(a);
  protocol.mark_input(b);
  protocol.mark_accepting(a);
  protocol.add_transition(a, b, a, b);  // silent
  protocol.add_transition(b, a, a, a);
  protocol.finalize();
  EXPECT_EQ(protocol.compiled().entry_of(a, b), CompiledProtocol::kSilentOnly);
  EXPECT_TRUE(protocol.transitions_for(a, b).empty());

  pp::Config initial(protocol.num_states());
  initial.add(a, 5);
  initial.add(b, 5);
  expect_per_agent_bit_identical(protocol, initial, 2'000);
  expect_count_bit_identical(protocol, initial, false, 2'000);
}

// ---------------------------------------------------------------------------
// Differential: exact verification.

TEST(Differential, VerifierGraphIdenticalAcrossDispatch) {
  const auto lowered =
      compile::lower_program(czerner::build_construction(1).program);
  compile::ConversionOptions nb;
  nb.with_broadcast = false;
  const auto conv = compile::machine_to_protocol(lowered.machine, nb);
  const czerner::Construction c = czerner::build_construction(1);
  for (std::uint64_t m_regs : {6ull, 7ull, 8ull}) {
    std::vector<std::uint64_t> regs(c.num_registers(), 0);
    regs[c.R()] = m_regs;
    const pp::Config initial =
        conv.pi(machine::initial_state(lowered.machine, regs), false);
    // Interp at one thread is the reference; bytecode must match it both
    // single- and multi-threaded. (Interp thread-independence is already
    // pinned by test_verify.)
    const std::pair<Dispatch, unsigned> configs[] = {
        {Dispatch::kInterp, 1u},
        {Dispatch::kBytecode, 1u},
        {Dispatch::kBytecode, 4u},
    };
    std::vector<pp::VerificationResult> results;
    for (const auto& [dispatch, threads] : configs) {
      pp::VerifierOptions options;
      options.witness_mode = true;
      options.threads = threads;
      options.dispatch = dispatch;
      results.push_back(pp::Verifier(conv.protocol).verify(initial, options));
    }
    for (std::size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].verdict, results[0].verdict) << "m=" << m_regs;
      EXPECT_EQ(results[i].explored_configs, results[0].explored_configs);
      EXPECT_EQ(results[i].explored_edges, results[0].explored_edges);
      EXPECT_EQ(results[i].num_sccs, results[0].num_sccs);
      EXPECT_EQ(results[i].num_bottom_sccs, results[0].num_bottom_sccs);
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: certification.

TEST(Differential, CertificateDigestIdenticalAcrossDispatchAndThreads) {
  const auto conv = compile::machine_to_protocol(
      compile::lower_program(czerner::build_construction(1).program).machine);
  const pp::Config initial = conv.initial_config(conv.num_pointers + 2);
  std::vector<smc::Certificate> certs;
  for (const Dispatch dispatch : {Dispatch::kInterp, Dispatch::kBytecode}) {
    for (const unsigned threads : {1u, 4u}) {
      smc::CertifyOptions options;
      options.max_trials = 12;
      options.batch = 4;
      options.threads = threads;
      options.seed = 3;
      options.sim.stable_window = 2'000'000;
      options.sim.max_interactions = 40'000'000;
      options.dispatch = dispatch;
      certs.push_back(smc::certify(conv.protocol, initial,
                                   /*expected_output=*/false, options));
    }
  }
  for (std::size_t i = 1; i < certs.size(); ++i) {
    EXPECT_EQ(smc::certificate_digest(certs[i]),
              smc::certificate_digest(certs[0]));
    EXPECT_EQ(certs[i].verdict, certs[0].verdict);
    EXPECT_EQ(certs[i].trials, certs[0].trials);
  }
}

}  // namespace
}  // namespace ppde
